#!/usr/bin/env python
"""Telemetry tour: trace and meter a compile -> map -> simulate run.

Shows the observability subsystem end to end:

1. enable telemetry for a scoped session,
2. compile a ruleset and simulate it on the BVAP cycle model,
3. print the span breakdown (where did the time go?),
4. print the metrics snapshot (what did the hardware do?),
5. export a Chrome trace (open in chrome://tracing or Perfetto),
6. join the telemetry with the paper-figure report columns.

Run:  python examples/telemetry_tour.py
"""

import json
import os
import tempfile

from repro import telemetry
from repro.analysis.report import (
    join_report_metrics,
    metrics_summary_table,
    span_summary_table,
)
from repro.compiler import compile_ruleset
from repro.hardware.simulator import BVAPSimulator
from repro.telemetry.export import write_chrome_trace, write_metrics


def main() -> None:
    patterns = ["ab{20}c", "x[0-9]{4}y", "begin.{10}end"]
    data = (b"zz ab" + b"b" * 19 + b"c x0123y begin0123456789end ") * 4

    # ------------------------------------------------------------------
    # 1-2. Run the whole stack inside a telemetry session.  Outside a
    # session every probe is a no-op, so library users pay nothing.
    # ------------------------------------------------------------------
    with telemetry.session():
        ruleset = compile_ruleset(patterns)
        report = BVAPSimulator(ruleset).run(data)
        snapshot = telemetry.snapshot()

        # --------------------------------------------------------------
        # 5. Export while the session is live.  trace.json is the Chrome
        # trace-event format; load it in chrome://tracing / Perfetto.
        # --------------------------------------------------------------
        with tempfile.TemporaryDirectory() as tmp:
            trace_path = os.path.join(tmp, "trace.json")
            metrics_path = os.path.join(tmp, "metrics.json")
            write_chrome_trace(trace_path)
            write_metrics(metrics_path)
            events = json.load(open(trace_path))["traceEvents"]
            saved = json.load(open(metrics_path))
            print(
                f"exported {len(events)} trace events and "
                f"{len(saved['counters'])} counters (temp files)"
            )

    # ------------------------------------------------------------------
    # 3. Span breakdown: the five compiler phases plus the simulation.
    # ------------------------------------------------------------------
    print("\nwhere the time went:")
    print(span_summary_table(snapshot))

    # ------------------------------------------------------------------
    # 4. Metrics: per-tile BVM activations, per-array stalls, occupancy.
    # ------------------------------------------------------------------
    print("\nwhat the hardware did:")
    print(metrics_summary_table(snapshot))

    occupancy = snapshot["histograms"]["sim.active_states"]
    print(
        f"\nactive-state occupancy: mean {occupancy['mean']:.2f} "
        f"max {occupancy['max']} over {occupancy['count']} symbols"
    )

    # ------------------------------------------------------------------
    # 6. The report carries the snapshot in notes["metrics"], so analysis
    # code can join telemetry with the paper-figure columns.
    # ------------------------------------------------------------------
    joined = join_report_metrics(report)
    print("\njoined row (report columns + telemetry.*):")
    for key in (
        "architecture",
        "throughput_gbps",
        "energy_per_symbol_nj",
        "telemetry.sim.bvm_activations",
        "telemetry.sim.stall_cycles",
        "telemetry.span.sim.run.total_us",
    ):
        print(f"  {key:40s} {joined[key]}")


if __name__ == "__main__":
    main()
