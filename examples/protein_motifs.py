#!/usr/bin/env python
"""Protein motif search: PROSITE-style patterns over amino-acid sequences.

Bioinformatics is the paper's second motivating domain: PROSITE motifs
are regexes over the 20-letter amino-acid alphabet whose ``x(m,n)`` gaps
are bounded repetitions.  This example translates a few real PROSITE
motifs into PCRE form, scans a synthetic proteome, and shows how the
design-space knobs (small virtual bit vectors) fit this small-bound
workload.

Run:  python examples/protein_motifs.py
"""

import random

from repro.analysis.dse import explore_dataset
from repro.compiler import CompilerOptions, compile_ruleset
from repro.matching import PatternSet
from repro.workloads.prosite import prosite_to_pcre

AMINO = "ACDEFGHIKLMNPQRSTVWY"

#: Real PROSITE motifs in their native syntax, translated by the
#: repro.workloads.prosite front end.
PROSITE_MOTIFS = {
    # PS00010 ASX_HYDROXYL
    "ASX_HYDROXYL": "C-x-[DN]-x(4)-[FY]-x-C-x-C.",
    # PS00018 EF_HAND_1 (abridged)
    "EF_HAND": "D-x-[DNS]-{ILVFYW}-[DENSTG]-[DNQGHRK]-{GP}-[LIVMC]-[DENQSTAGC]-x(2)-[DE]-[LIVMFYW].",
    # PS00029 LEUCINE_ZIPPER
    "LEUCINE_ZIPPER": "L-x(6)-L-x(6)-L-x(6)-L.",
    # PS00028 ZINC_FINGER_C2H2
    "ZINC_FINGER_C2H2": "C-x(2,4)-C-x(3)-[LIVMFYWC]-x(8)-H-x(3,5)-H.",
    # PS00107-style kinase ATP motif with a medium gap
    "KINASE_ATP": "[LIV]-G-[ES]-G-x(5,18)-K.",
}
MOTIFS = {
    name: prosite_to_pcre(motif) for name, motif in PROSITE_MOTIFS.items()
}


def synthetic_proteome(rng: random.Random, length: int) -> bytes:
    """Random residues with a few planted motif instances."""
    sequence = [rng.choice(AMINO) for _ in range(length)]
    plants = {
        "LEUCINE_ZIPPER": "L" + "A" * 6 + "L" + "G" * 6 + "L" + "K" * 6 + "L",
        "ZINC_FINGER_C2H2": "CAAC" + "AAA" + "L" + "V" * 8 + "H" + "QQQ" + "H",
        "EF_HAND": "DADKDDALA" + "AA" + "DL",
    }
    for instance in plants.values():
        position = rng.randrange(0, length - len(instance))
        sequence[position : position + len(instance)] = list(instance)
    return "".join(sequence).encode()


def main() -> None:
    rng = random.Random(2024)
    proteome = synthetic_proteome(rng, 6000)
    names = list(MOTIFS)
    patterns = [MOTIFS[name] for name in names]

    print(f"scanning a {len(proteome)}-residue synthetic proteome "
          f"for {len(patterns)} PROSITE motifs...\n")
    matcher = PatternSet(patterns)
    hits = matcher.scan(proteome)
    for match in hits[:12]:
        print(f"  {names[match.pattern_id]:18s} hit ending at residue {match.end}")
    if len(hits) > 12:
        print(f"  ... and {len(hits) - 12} more")

    # Small bounds favour small virtual bit vectors (paper Table 5 picks
    # bv_size 16 for Prosite): compare two compiler configurations.
    print("\ncompiler configurations (paper §8 design-space trade-off):")
    for bv_size, threshold in ((64, 4), (16, 4)):
        options = CompilerOptions(bv_size=bv_size, unfold_threshold=threshold)
        ruleset = compile_ruleset(patterns, options)
        print(
            f"  bv_size={bv_size:2d} unfold_th={threshold}: "
            f"{ruleset.num_stes:3d} STEs, {ruleset.num_bv_stes:2d} BV-STEs, "
            f"max swap words "
            f"{max((r.max_swap_words() for r in ruleset.regexes), default=0)}"
        )

    print("\nrunning the Prosite design-space sweep (small, seeded)...")
    result = explore_dataset(
        "Prosite", regex_count=12, input_length=1000, seed=0,
        bv_sizes=(16, 64), unfold_thresholds=(4, 8),
    )
    best = result.best_by_fom()
    print(
        f"  best FoM at bv_size={best.bv_size}, "
        f"unfold_th={best.unfold_threshold} "
        f"(paper Table 5: bv_size=16, unfold_th=4)"
    )


if __name__ == "__main__":
    main()
