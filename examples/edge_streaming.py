#!/usr/bin/env python
"""Edge streaming with BVAP-S: constant-rate matching at low power.

§6 introduces BVAP-S for direct sensor connection: the BVM runs on every
symbol so the system clock is constant (no input buffering needed) and
the state-matching/transition rails drop to 0.65 V.  This example
monitors a simulated sensor log for alert patterns and compares the two
modes.

Run:  python examples/edge_streaming.py
"""

import random

from repro.compiler import compile_ruleset
from repro.hardware.simulator import BVAPSimulator
from repro.matching import PatternSet

ALERT_PATTERNS = [
    # temperature spike: 8+ consecutive high readings
    "H{8,64}",
    # sustained vibration: bursts of v separated by short gaps, 6 times
    "(v{3,8}-){6}",
    # watchdog silence: 32 idle ticks then an error marker
    "\\.{32}E",
    # checksum failure burst
    "X{4}",
]


def sensor_log(rng: random.Random, length: int) -> bytes:
    """A plausible sensor event stream: mostly idle, a few incidents."""
    out = bytearray()
    while len(out) < length:
        roll = rng.random()
        if roll < 0.93:
            out.append(ord("."))  # idle tick
        elif roll < 0.96:
            out.extend(b"H" * rng.randint(1, 12))
        elif roll < 0.98:
            burst = b"v" * rng.randint(2, 8) + b"-"
            out.extend(burst * rng.randint(1, 7))
        elif roll < 0.995:
            out.append(ord("E"))
        else:
            out.extend(b"X" * rng.randint(1, 5))
    return bytes(out[:length])


def main() -> None:
    rng = random.Random(7)
    log = sensor_log(rng, 5000)

    matcher = PatternSet(ALERT_PATTERNS)
    alerts = matcher.scan(log)
    by_pattern = {}
    for alert in alerts:
        by_pattern[alert.pattern_id] = by_pattern.get(alert.pattern_id, 0) + 1
    print(f"scanned {len(log)} sensor ticks, {len(alerts)} alert events:")
    for pattern_id, count in sorted(by_pattern.items()):
        print(f"  {ALERT_PATTERNS[pattern_id]!r:16s} {count:5d} events")

    ruleset = compile_ruleset(ALERT_PATTERNS)
    normal = BVAPSimulator(ruleset).run(log)
    streaming = BVAPSimulator(ruleset, streaming=True).run(log)

    print("\nBVAP vs BVAP-S on this stream (§6/§8):")
    rows = [
        ("clock (GHz)", normal.clock_hz / 1e9, streaming.clock_hz / 1e9),
        ("throughput (Gbps)", normal.throughput_gbps, streaming.throughput_gbps),
        ("energy/symbol (pJ)", normal.energy_per_symbol_nj * 1e3,
         streaming.energy_per_symbol_nj * 1e3),
        ("power (mW)", normal.power_w * 1e3, streaming.power_w * 1e3),
        ("stall cycles", normal.stall_cycles, streaming.stall_cycles),
    ]
    print(f"  {'metric':20s} {'BVAP':>10s} {'BVAP-S':>10s}")
    for label, a, b in rows:
        print(f"  {label:20s} {a:10.3f} {b:10.3f}")

    print(
        f"\nBVAP-S: constant 1-symbol-per-cycle rate, "
        f"{1 - streaming.power_w / normal.power_w:.0%} lower power — "
        f"the right trade for an always-on edge sensor."
    )
    assert normal.matches == streaming.matches == len(alerts)


if __name__ == "__main__":
    main()
