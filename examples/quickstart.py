#!/usr/bin/env python
"""Quickstart: compile regexes with bounded repetitions and match them.

Walks the paper's running example ``a(Σa){3}b`` through the whole stack:
parse → rewrite → NBVA → AH-NBVA → match, and shows the state-space
savings bounded repetitions get from bit vectors.

Run:  python examples/quickstart.py
"""

from repro import PatternSet, compile_pattern
from repro.automata.nca import NCAMatcher
from repro.compiler import CompilerOptions


def main() -> None:
    # ------------------------------------------------------------------
    # 1. High-level matching API
    # ------------------------------------------------------------------
    patterns = ["a(.a){3}b", "ab{100}c"]
    pattern_set = PatternSet(patterns)
    data = b"xx abaaabab yy a" + b"b" * 100 + b"c zz"
    print("input:", data[:40], "...")
    for match in pattern_set.scan(data):
        print(
            f"  pattern {match.pattern_id} ({patterns[match.pattern_id]!r}) "
            f"matched ending at byte {match.end}"
        )

    # ------------------------------------------------------------------
    # 2. What the compiler produced (the paper's headline: state space
    #    linear in the regex, not in the repetition bounds)
    # ------------------------------------------------------------------
    print("\ncompilation (bounded repetitions NOT unfolded):")
    for pattern in ["a(.a){3}b", "ab{100}c", "url=.{8000}"]:
        compiled = compile_pattern(pattern)
        print(
            f"  {pattern!r:20s} unfolded NFA: {compiled.unfolded_states:5d} states"
            f"  ->  BVAP: {compiled.num_stes:3d} STEs"
            f" ({compiled.num_bv_stes} BV-STEs)"
        )

    # ------------------------------------------------------------------
    # 3. Under the hood: the AH-NBVA for a(Σa){3}b (paper Fig. 2(g))
    # ------------------------------------------------------------------
    compiled = compile_pattern(
        "a(.a){3}b", options=CompilerOptions(unfold_threshold=2)
    )
    print("\nAH-NBVA for 'a(.a){3}b' (compare paper Fig. 2(g) / Fig. 3(c)):")
    for index, state in enumerate(compiled.ah.states):
        role = "BV-STE" if state.is_bv_ste() else "STE   "
        preds = ", ".join(str(p) for p in compiled.ah.preds[index]) or "-"
        print(
            f"  state {index}: {role} class={state.cc!r:24} "
            f"action={state.action!r:8} width={state.width} preds=[{preds}]"
        )

    # ------------------------------------------------------------------
    # 4. The same execution on the counter-automaton view (paper Fig. 1)
    # ------------------------------------------------------------------
    print("\nNCA view of 'a.{3}' over 'babaabaaa' (paper Fig. 1):")
    fig1 = compile_pattern("a.{3}", options=CompilerOptions(unfold_threshold=2))
    nca = NCAMatcher(fig1.nbva)
    counting = next(
        q for q, s in enumerate(fig1.nbva.states) if s.is_counting()
    )
    for symbol in b"babaabaaa":
        matched = nca.step(symbol)
        values = sorted(nca.values[counting])
        flag = "  <- match" if matched else ""
        print(f"  {chr(symbol)}: counter values {values}{flag}")


if __name__ == "__main__":
    main()
