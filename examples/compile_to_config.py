#!/usr/bin/env python
"""Compile a rule set to a JSON hardware configuration and reload it.

The compiler's final artefact (§7 step 5) is a JSON document that
programs the hardware: per-regex AH-NBVAs with their BVM instructions,
the symbol-encoding schema, and the tile mapping.  This example compiles
a malware-signature rule set, inspects the emitted BVM instructions,
writes the configuration, and reloads it to drive a simulation.

Run:  python examples/compile_to_config.py
"""

import os
import random
import tempfile

from repro.compiler import (
    compile_ruleset,
    dump_config,
    load_config,
    virtual_width,
)
from repro.hardware.bvm import instruction_for
from repro.hardware.simulator import BVAPSimulator
from repro.workloads import PROFILES, dataset_stream, load_dataset


def main() -> None:
    rules = load_dataset("ClamAV", 12, seed=5) + [
        "\\x43\\x30{3}.{139}\\x65\\x6e\\x75",  # interleaved byte signature
    ]
    ruleset = compile_ruleset(rules)
    print(f"compiled {len(ruleset.regexes)} signatures; "
          f"{ruleset.encoding.num_codes} symbol codes "
          f"({ruleset.encoding.code_bits} bits/symbol on the CAM)")

    # The BVM instructions for one compiled signature.
    regex = max(ruleset.regexes, key=lambda r: r.num_bv_stes)
    print(f"\nBVM program for {regex.pattern!r}:")
    for index, state in enumerate(regex.ah.states):
        if not state.is_bv_ste():
            continue
        if state.action.reads_source:
            virtual = virtual_width(state.in_width)
        else:
            virtual = virtual_width(regex.ah.scopes[state.scope].high)
        instruction = instruction_for(state.action, virtual)
        print(
            f"  BV-STE {index:3d}: {instruction.opcode.name:14s}"
            f" pointer={instruction.pointer:2d}"
            f"  word=0b{instruction.encode():010b}"
            f"  (virtual size {virtual})"
        )

    # Emit, reload, and verify the configuration round-trips.
    path = os.path.join(tempfile.gettempdir(), "bvap_config.json")
    dump_config(ruleset, path)
    print(f"\nwrote configuration: {path} ({os.path.getsize(path)} bytes)")

    loaded = load_config(path)
    data = dataset_stream(
        rules, random.Random(1), 2000, PROFILES["ClamAV"].literal_pool
    )
    for original, reloaded in zip(ruleset.regexes, loaded.automata):
        assert reloaded.match_ends(data) == original.ah.match_ends(data)
    print("reloaded automata verified against the in-memory compile")

    report = BVAPSimulator(ruleset).run(data)
    print(
        f"\nsimulated {report.symbols} bytes: {report.matches} matches, "
        f"{report.energy_per_symbol_nj * 1e3:.1f} pJ/byte, "
        f"{report.throughput_gbps:.1f} Gbps on "
        f"{report.num_tiles} tiles"
    )


if __name__ == "__main__":
    main()
