#!/usr/bin/env python
"""Network intrusion detection: Snort-style rules on an in-memory BVAP.

The scenario that motivates the paper: deep-packet-inspection rule sets
are full of bounded repetitions (``url=.{8000}``-style payload gaps) that
blow up unfolding-based automata processors.  This example compiles a
Snort-like rule set, scans synthetic traffic, and compares BVAP against
CAMA / eAP / CA on the paper's metrics.

Run:  python examples/network_ids.py
"""

import random

from repro.compiler import compile_ruleset
from repro.hardware.simulator import (
    BaselineSimulator,
    BVAPSimulator,
    compile_baseline,
)
from repro.hardware.specs import CA_SPEC, CAMA_SPEC, EAP_SPEC
from repro.workloads import PROFILES, dataset_stream, load_dataset

TRAFFIC_BYTES = 4000
RULE_COUNT = 25


def main() -> None:
    # A synthetic Snort-profile rule set plus a few hand-written rules.
    rules = load_dataset("Snort", RULE_COUNT, seed=11)
    rules += [
        "GET /admin[a-z0-9]{8,64}",
        "User-Agent: bot.{40}",
        "\\x90{32}",  # NOP sled
    ]

    ruleset = compile_ruleset(rules)
    print(f"compiled {len(ruleset.regexes)} rules "
          f"({len(ruleset.rejected)} rejected)")
    print(f"  STEs: {ruleset.num_stes}  BV-STEs: {ruleset.num_bv_stes} "
          f"(ratio {ruleset.bv_ste_ratio():.1%})")
    print(f"  tiles: {ruleset.mapping.num_tiles} "
          f"(STE utilisation {ruleset.mapping.ste_utilization():.1%})")
    unfolded = sum(r.unfolded_states or 0 for r in ruleset.regexes)
    print(f"  unfolding-based designs would need {unfolded} STEs "
          f"({unfolded / max(1, ruleset.num_stes):.1f}x more)")

    # Synthetic traffic with planted (mostly partial) rule hits.
    traffic = dataset_stream(
        rules,
        random.Random(3),
        TRAFFIC_BYTES,
        PROFILES["Snort"].literal_pool,
        plant_rate=0.002,
    )

    print(f"\nscanning {len(traffic)} bytes of traffic...")
    baseline = compile_baseline(rules)
    reports = [
        BVAPSimulator(ruleset).run(traffic),
        BaselineSimulator(CAMA_SPEC, baseline).run(traffic),
        BaselineSimulator(EAP_SPEC, baseline).run(traffic),
        BaselineSimulator(CA_SPEC, baseline).run(traffic),
    ]
    header = (
        f"{'arch':6s} {'alerts':>6s} {'E/sym (pJ)':>11s} {'area (mm2)':>11s} "
        f"{'thr (Gbps)':>11s} {'Gbps/mm2':>9s} {'power (mW)':>11s}"
    )
    print(header)
    print("-" * len(header))
    for report in reports:
        print(
            f"{report.architecture:6s} {report.matches:6d} "
            f"{report.energy_per_symbol_nj * 1000:11.2f} "
            f"{report.area_mm2:11.4f} {report.throughput_gbps:11.2f} "
            f"{report.compute_density_gbps_mm2:9.0f} "
            f"{report.power_w * 1000:11.2f}"
        )

    bvap, cama = reports[0], reports[1]
    saving = 1 - bvap.energy_per_symbol_j / cama.energy_per_symbol_j
    print(
        f"\nBVAP vs CAMA: {saving:.0%} less energy per byte, "
        f"{1 - bvap.area_mm2 / cama.area_mm2:.0%} less area, "
        f"{cama.fom / bvap.fom:.1f}x better FoM"
    )


if __name__ == "__main__":
    main()
