"""Table 1 — execution of the naïve PE-array design for ``a(Σa){3}b``.

Regenerates the per-cycle trace over the input ``abaaabab`` and checks the
published cells.  One deviation from the printed table is documented in
DESIGN.md: with the stated activation rule ("active iff available AND
matched") STE4 cannot be active in row 4 (the input is ``a``, STE4's
predicate is ``b``); we follow the stated semantics.
"""

from repro.compiler import CompilerOptions, compile_pattern
from repro.hardware.traces import bits_str, naive_trace
from conftest import write_result

OPTIONS = CompilerOptions(bv_size=8, unfold_threshold=2)
INPUT = b"abaaabab"

# Paper Table 1: the aggregated "->bv2" column (the sigma state's next
# vector) and the report column.
EXPECTED_BV2_OUT = [
    0b001,  # a: set1
    0b000,  # b
    0b011,  # a: set1 | shift([1,0,0])
    0b001,  # a
    0b111,  # a: set1 | shift([1,1,0])
    0b000,  # b
    0b111,  # a
    None,  # last row: don't care
]
EXPECTED_REPORTS = [False] * 7 + [True]


def regenerate():
    compiled = compile_pattern("a(.a){3}b", options=OPTIONS)
    return compiled, naive_trace(compiled.nbva, INPUT)


def test_table1_naive_design_trace(benchmark):
    compiled, table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    sigma = 1  # the sigma position of a(.a){3}b
    for row, expected_bv2, expected_report in zip(
        table.rows, EXPECTED_BV2_OUT, EXPECTED_REPORTS
    ):
        if expected_bv2 is not None:
            assert row["bv_out"][sigma] == expected_bv2, row
        assert row["report"] == expected_report

    # STE activity columns (rows follow the stated activation semantics).
    actives = [[int(a) for a in row["active"]] for row in table.rows]
    assert actives[0] == [1, 0, 0, 0]
    assert actives[1] == [0, 1, 0, 0]
    assert actives[2] == [1, 0, 1, 0]
    assert actives[4] == [1, 1, 1, 0]
    assert actives[7][3] == 1  # STE4 reports on the final b

    # The PE-array cost grows quadratically with tile size (§3).
    from repro.hardware.naive import NaiveMachine

    assert NaiveMachine.pe_array_size(256) == 256 * 256

    write_result("table1_naive_trace", table.render())


def test_table1_matches_functionally_equal_bvap(benchmark):
    """The naïve and AH designs accept exactly the same streams (§3)."""

    def run():
        compiled = compile_pattern("a(.a){3}b", options=OPTIONS)
        from repro.hardware.naive import NaiveMachine

        naive = NaiveMachine(compiled.nbva)
        return naive.match_ends(INPUT), compiled.ah.match_ends(INPUT)

    naive_ends, ah_ends = benchmark.pedantic(run, rounds=1, iterations=1)
    assert naive_ends == ah_ends == [7]
