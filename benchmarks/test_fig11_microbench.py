"""Figure 11 — micro-benchmark ``r a{n}`` (r = a^16) vs CAMA.

Sweeps the repetition bound n and the bit-vector activation ratio alpha,
with per-regex customised memory (pro-rated area/energy, §8).  Shape
targets from the paper:

* BVAP's energy per symbol is consistently lower than CAMA's for n >= 16;
* BVAP's compute density is higher for n >= 16 and grows with n;
* larger alpha worsens both metrics (more frequent BV-STE activations).
"""

import random

import pytest

from repro.analysis.report import format_table
from repro.compiler import compile_ruleset
from repro.hardware.simulator import (
    BaselineSimulator,
    BVAPSimulator,
    SimOptions,
    compile_baseline,
)
from repro.hardware.specs import CAMA_SPEC
from repro.workloads.inputs import activation_stream
from conftest import write_result

ALPHAS = (0.05, 0.10, 0.15, 0.20)
BOUNDS = (16, 64, 256, 1024)
STREAM_LENGTH = 4000
OPTIONS = SimOptions(prorate_area=True)


def run_sweep():
    rng = random.Random(0)
    rows = {}
    for alpha in ALPHAS:
        data = activation_stream(
            rng, STREAM_LENGTH, alpha, prefix=b"a" * 17, body=b"a" * 64
        )
        for n in BOUNDS:
            pattern = "a" * 16 + f"a{{{n}}}"
            bvap = BVAPSimulator(
                compile_ruleset([pattern]), options=OPTIONS
            ).run(data)
            cama = BaselineSimulator(
                CAMA_SPEC, compile_baseline([pattern]), options=OPTIONS
            ).run(data)
            rows[(alpha, n)] = (
                bvap.energy_per_symbol_j / cama.energy_per_symbol_j,
                bvap.compute_density_gbps_mm2 / cama.compute_density_gbps_mm2,
            )
    return rows


@pytest.fixture(scope="module")
def sweep(request):
    return run_sweep()


def test_fig11_energy_and_density(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = format_table(
        ["alpha", "n", "energy/symbol (vs CAMA)", "compute density (vs CAMA)"],
        [
            [alpha, n, energy, density]
            for (alpha, n), (energy, density) in sorted(rows.items())
        ],
    )
    write_result("fig11_microbench", table)

    for alpha in ALPHAS:
        energies = [rows[(alpha, n)][0] for n in BOUNDS]
        densities = [rows[(alpha, n)][1] for n in BOUNDS]
        # Consistently better than CAMA for n >= 16.
        assert all(e < 1.0 for e in energies), (alpha, energies)
        assert all(d > 1.0 for d in densities), (alpha, densities)
        # Both metrics improve as n grows (each BV-STE replaces more STEs).
        assert energies == sorted(energies, reverse=True), (alpha, energies)
        assert densities == sorted(densities), (alpha, densities)

    # Higher alpha worsens compute density and energy (at large n, where
    # the BVM is actually exercised).
    for n in (256, 1024):
        dens_by_alpha = [rows[(alpha, n)][1] for alpha in ALPHAS]
        assert dens_by_alpha == sorted(dens_by_alpha, reverse=True), n
        energy_by_alpha = [rows[(alpha, n)][0] for alpha in ALPHAS]
        assert energy_by_alpha == sorted(energy_by_alpha), n
