"""Ablations — BV provisioning (48 per tile) and stall-model sensitivity.

§6 sizes each 256-STE tile with 48 BVs "based on the observation that
the ratio of BV-STEs is typically below 18% across our benchmarks, which
covers over 99% of regexes in our datasets".  The first benchmark
measures that coverage.  The second sweeps the stall model's hidden
cycles — the one calibrated parameter in our timing model — to show the
throughput conclusion is robust to it.
"""

import random

from repro.analysis.report import format_table
from repro.compiler import compile_pattern
from repro.compiler.mapping import ArchParams
from repro.hardware.simulator import BVAPSimulator, SimOptions
from repro.hardware.specs import StallModel
from repro.workloads import PROFILES, dataset_stream, load_dataset
from repro.workloads.datasets import DATASET_NAMES
from conftest import write_result


def coverage_sweep():
    """Per dataset: fraction of regexes fitting N BVs per tile."""
    budgets = (16, 32, 48, 64)
    rows = []
    for name in DATASET_NAMES:
        demands = []
        for pattern in load_dataset(name, 40, seed=8):
            try:
                compiled = compile_pattern(pattern)
            except ValueError:
                continue
            demands.append(compiled.num_bv_stes)
        row = [name]
        for budget in budgets:
            fitting = sum(1 for d in demands if d <= budget)
            row.append(fitting / len(demands))
        rows.append(row)
    return budgets, rows


def test_ablation_bv_provisioning(benchmark):
    budgets, rows = benchmark.pedantic(coverage_sweep, rounds=1, iterations=1)
    write_result(
        "ablation_bv_provisioning",
        format_table(
            ["dataset"] + [f"<= {b} BVs" for b in budgets], rows
        ),
    )
    # §6: 48 BVs per tile covers the overwhelming majority of regexes.
    for row in rows:
        coverage_48 = row[3]
        assert coverage_48 >= 0.9, row
    # The budget matters: 16 BVs covers strictly less somewhere.
    assert any(row[1] < row[3] for row in rows)


def stall_sensitivity():
    patterns = load_dataset("Snort", 20, seed=8)
    data = dataset_stream(
        patterns, random.Random(4), 2500, PROFILES["Snort"].literal_pool
    )
    from repro.compiler import compile_ruleset

    ruleset = compile_ruleset(patterns)
    rows = []
    for hidden in (0, 1, 2, 3, 4, 5):
        options = SimOptions(stall_model=StallModel(hidden_cycles=hidden))
        report = BVAPSimulator(ruleset, options=options).run(data)
        rows.append((hidden, report.stall_cycles, report.throughput_gbps))
    return rows


def test_ablation_stall_sensitivity(benchmark):
    rows = benchmark.pedantic(stall_sensitivity, rounds=1, iterations=1)
    write_result(
        "ablation_stall_sensitivity",
        format_table(["hidden cycles", "stall cycles", "throughput (Gbps)"], rows),
    )
    stalls = [row[1] for row in rows]
    throughputs = [row[2] for row in rows]
    # More buffering -> monotonically fewer stalls, higher throughput.
    assert stalls == sorted(stalls, reverse=True)
    assert throughputs == sorted(throughputs)
    # Even with zero hiding, BVAP stays within 2.5x of its peak rate on a
    # realistic stream — the conclusion is not an artefact of the knob.
    assert throughputs[0] > throughputs[-1] / 2.5
