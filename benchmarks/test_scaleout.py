"""Extension — multi-array / multi-bank scale-out (§6).

Maps a large rule set (hundreds of regexes) across several arrays and
checks the hierarchy-level behaviour: arrays consume the stream through
independent FIFOs so the bank finishes with the *slowest* array, BV
capacity is honoured everywhere, and functional results are preserved at
scale.
"""

import random

from repro.analysis.report import format_table
from repro.compiler import compile_ruleset
from repro.hardware.simulator import BVAPSimulator
from repro.workloads import PROFILES, dataset_stream, load_dataset
from conftest import write_result

REGEX_COUNT = 150


def build():
    patterns = []
    for name in ("Snort", "ClamAV", "YARA"):
        patterns.extend(load_dataset(name, REGEX_COUNT // 3, seed=13))
    ruleset = compile_ruleset(patterns)
    data = dataset_stream(
        patterns, random.Random(6), 2000, PROFILES["Snort"].literal_pool
    )
    return patterns, ruleset, data


def test_scaleout_across_arrays(benchmark):
    patterns, ruleset, data = benchmark.pedantic(build, rounds=1, iterations=1)
    mapping = ruleset.mapping
    assert mapping.num_arrays >= 2  # genuinely multi-array

    simulator = BVAPSimulator(ruleset)
    report = simulator.run(data)

    # Capacity invariants hold on every tile.
    for tile in mapping.tiles:
        assert tile.stes_used <= mapping.params.stes_per_tile
        assert tile.bvs_used <= mapping.params.bvs_per_tile

    # Every regex is placed, and placements point at real tiles.
    for regex in ruleset.regexes:
        for tile_index in mapping.placements[regex.regex_id]:
            assert 0 <= tile_index < mapping.num_tiles

    # Functional equivalence at scale.
    functional = sum(len(r.ah.match_ends(data)) for r in ruleset.regexes)
    assert report.matches == functional

    # The bank's finishing time is the slowest array's cycle count, so
    # total cycles never exceed symbols x (1 + worst LUT stall).
    worst_stall = max(
        (entry for c in simulator.controllers for entry in c.lut), default=0
    )
    assert len(data) <= report.system_cycles <= len(data) * (1 + worst_stall)

    write_result(
        "scaleout",
        format_table(
            ["metric", "value"],
            [
                ["regexes", len(ruleset.regexes)],
                ["rejected", len(ruleset.rejected)],
                ["tiles", mapping.num_tiles],
                ["arrays", mapping.num_arrays],
                ["banks", mapping.num_banks],
                ["STE utilisation", mapping.ste_utilization()],
                ["BV utilisation", mapping.bv_utilization()],
                ["matches", report.matches],
                ["stall cycles", report.stall_cycles],
                ["throughput (Gbps)", report.throughput_gbps],
            ],
        ),
    )


def test_scaleout_utilisation(benchmark):
    def measure():
        _, ruleset, _ = build()
        return ruleset.mapping

    mapping = benchmark.pedantic(measure, rounds=1, iterations=1)
    # Greedy FFD keeps packing reasonable even with mixed demands.
    assert mapping.ste_utilization() > 0.5
