"""Figure 1 — NCA and NBVA execution for ``Σ* a Σ{3}``.

Regenerates both configuration columns of the paper's Fig. 1 table and
checks them cell-for-cell against the published values.
"""

from repro.analysis.report import format_table
from repro.automata.nca import NCAMatcher
from repro.compiler import CompilerOptions, compile_pattern
from conftest import write_result

OPTIONS = CompilerOptions(bv_size=8, unfold_threshold=2)
STREAM = "babaabaaa"

#: The paper's Fig. 1 rows (q2 column): NCA counter-value sets, NBVA bit
#: vectors, and the output bit.
EXPECTED = [
    ("b", set(), [0, 0, 0], 0),
    ("a", set(), [0, 0, 0], 0),
    ("b", {1}, [1, 0, 0], 0),
    ("a", {2}, [0, 1, 0], 0),
    ("a", {1, 3}, [1, 0, 1], 1),
    ("b", {1, 2}, [1, 1, 0], 0),
    ("a", {2, 3}, [0, 1, 1], 1),
    ("a", {1, 3}, [1, 0, 1], 1),
    ("a", {1, 2}, [1, 1, 0], 0),
]


def regenerate():
    compiled = compile_pattern("a.{3}", options=OPTIONS)
    nbva = compiled.nbva
    counting = next(q for q, s in enumerate(nbva.states) if s.is_counting())
    nca = NCAMatcher(nbva)
    bv = nbva.matcher()
    rows = []
    for symbol in STREAM:
        nca_matched = nca.step(ord(symbol))
        bv_matched = bv.step(ord(symbol))
        assert nca_matched == bv_matched
        value = bv.vectors[counting]
        rows.append(
            (
                symbol,
                set(nca.values[counting]),
                [(value >> i) & 1 for i in range(3)],
                int(bv_matched),
            )
        )
    return rows


def test_fig01_nca_nbva_trace(benchmark):
    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert rows == EXPECTED
    table = format_table(
        ["input", "NCA q2 counters", "NBVA q2 vector", "output"],
        [
            (sym, sorted(counters), bits, out)
            for sym, counters, bits, out in rows
        ],
    )
    write_result("fig01_trace", table)
