"""Table 5 — per-dataset (bv_size, unfold_th) with the best FoM.

Selects the optimum from the Figure 13 sweep.  The paper's selections
(bv_size 64 for the large-bound datasets, 16 for Prosite / SpamAssassin /
RegexLib; thresholds 4-12) are shape targets: we assert the qualitative
split — small-bound datasets prefer small virtual BVs — rather than the
exact table, since the synthetic corpora only approximate the real rule
sets (EXPERIMENTS.md records the measured table side by side).
"""

from repro.analysis.report import format_table
from repro.workloads.datasets import DATASET_NAMES
from conftest import write_result

#: Paper Table 5.
PAPER_TABLE5 = {
    "ClamAV": (64, 8),
    "Prosite": (16, 4),
    "RegexLib": (16, 4),
    "Snort": (64, 12),
    "SpamAssassin": (16, 12),
    "Suricata": (64, 12),
    "YARA": (64, 8),
}


def test_table5_best_parameters(benchmark, dse_results):
    def select():
        return {
            name: (
                dse_results[name].best_by_fom().bv_size,
                dse_results[name].best_by_fom().unfold_threshold,
            )
            for name in DATASET_NAMES
        }

    best = benchmark.pedantic(select, rounds=1, iterations=1)

    rows = [
        [name, best[name][0], best[name][1], PAPER_TABLE5[name][0], PAPER_TABLE5[name][1]]
        for name in DATASET_NAMES
    ]
    write_result(
        "table5_best_params",
        format_table(
            ["dataset", "bv_size", "unfold_th", "paper bv_size", "paper unfold_th"],
            rows,
        ),
    )

    # Shape: Prosite (small bounds) never needs the full 64-bit vectors.
    assert best["Prosite"][0] <= 32
    # Shape: at least one large-bound network/malware dataset picks 64.
    assert any(
        best[name][0] == 64 for name in ("Snort", "Suricata", "ClamAV", "YARA")
    )
    # All selections come from the swept grid.
    for bv_size, unfold_th in best.values():
        assert bv_size in (16, 32, 64)
        assert unfold_th in (4, 8, 12)
