"""Shared fixtures for the table/figure reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper, writes the
regenerated rows to ``benchmarks/results/<name>.txt``, and asserts the
*shape* of the result (orderings, crossovers, rough factors) rather than
absolute numbers — our substrate is a Python simulator, not the authors'
28nm testbed (see DESIGN.md §2/§3).

Heavy artefacts (the seven compiled datasets, their input streams, and
per-architecture simulations) are computed once per session and shared.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Dict

import pytest

from repro.compiler import CompiledRuleset, compile_ruleset
from repro.hardware.report import SimulationReport
from repro.hardware.simulator import (
    BaselineRuleset,
    BaselineSimulator,
    BVAPSimulator,
    compile_baseline,
)
from repro.hardware.specs import CA_SPEC, CAMA_SPEC, EAP_SPEC
from repro.workloads.datasets import DATASET_NAMES, PROFILES, load_dataset
from repro.workloads.inputs import dataset_stream

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Evaluation scale (kept modest so the whole harness runs in minutes;
#: the paper similarly samples >300 regexes per dataset, §8).
REGEXES_PER_DATASET = 30
INPUT_LENGTH = 3000
SEED = 1


def write_result(name: str, text: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path


@dataclass
class DatasetBundle:
    """One dataset compiled for every architecture plus its input."""

    name: str
    patterns: list
    data: bytes
    bvap: CompiledRuleset
    baseline: BaselineRuleset


@pytest.fixture(scope="session")
def bundles() -> Dict[str, DatasetBundle]:
    out: Dict[str, DatasetBundle] = {}
    for name in DATASET_NAMES:
        patterns = load_dataset(name, REGEXES_PER_DATASET, seed=SEED)
        data = dataset_stream(
            patterns,
            random.Random(7),
            INPUT_LENGTH,
            PROFILES[name].literal_pool,
        )
        out[name] = DatasetBundle(
            name=name,
            patterns=patterns,
            data=data,
            bvap=compile_ruleset(patterns),
            baseline=compile_baseline(patterns),
        )
    return out


@pytest.fixture(scope="session")
def fig14_reports(bundles) -> Dict[str, Dict[str, SimulationReport]]:
    """Dataset -> architecture -> simulation report (shared by several
    benchmarks)."""
    out: Dict[str, Dict[str, SimulationReport]] = {}
    for name, bundle in bundles.items():
        out[name] = {
            "BVAP": BVAPSimulator(bundle.bvap).run(bundle.data),
            "BVAP-S": BVAPSimulator(bundle.bvap, streaming=True).run(
                bundle.data
            ),
            "CAMA": BaselineSimulator(CAMA_SPEC, bundle.baseline).run(
                bundle.data
            ),
            "eAP": BaselineSimulator(EAP_SPEC, bundle.baseline).run(
                bundle.data
            ),
            "CA": BaselineSimulator(CA_SPEC, bundle.baseline).run(bundle.data),
        }
    return out


@pytest.fixture(scope="session")
def dse_results():
    """Full Fig. 13 sweep, shared with the Table 5 benchmark."""
    from repro.analysis.dse import explore_dataset

    out = {}
    for name in DATASET_NAMES:
        out[name] = explore_dataset(
            name,
            regex_count=20,
            input_length=1500,
            seed=SEED,
        )
    return out
