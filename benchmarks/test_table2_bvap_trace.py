"""Table 2 — execution of the BVAP (action-homogeneous) design for
``a(Σa){3}b`` over ``abaaabab``, checked against the published cells."""

from repro.compiler import CompilerOptions, compile_pattern
from repro.hardware.traces import ah_trace, bits_str
from conftest import write_result

OPTIONS = CompilerOptions(bv_size=8, unfold_threshold=2)
INPUT = b"abaaabab"

#: Table 2's "bvi →" columns for STE3 (copy) and STE2b (shift), rows 1-8,
#: and the report column.  bv_in here is the stored vector the STE holds
#: at the start of the cycle (zero when inactive).  Rows 6-7 of the
#: printed table report *availability* (pre-match) for the STE columns —
#: e.g. STE3 is listed active on input ``b`` although its predicate is
#: ``a`` — so the cells that depend on that convention are skipped (None)
#: and the deviation is recorded in EXPERIMENTS.md.
EXPECTED_BV3_IN = [0b000, 0b000, 0b001, 0b000, 0b011, None, 0b111, None]
EXPECTED_BV2B_IN = [0b000, 0b000, 0b000, 0b010, 0b000, 0b110, None, 0b110]
EXPECTED_REPORTS = [False] * 7 + [True]


def regenerate():
    compiled = compile_pattern("a(.a){3}b", options=OPTIONS)
    return compiled, ah_trace(compiled.ah, INPUT)


def test_table2_bvap_trace(benchmark):
    compiled, rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    states = compiled.ah.states
    ste3 = next(
        i
        for i, s in enumerate(states)
        if repr(s.action) == "copy" and s.width == 3
    )
    ste2b = next(i for i, s in enumerate(states) if repr(s.action) == "shift")

    for row, bv3, bv2b, report in zip(
        rows, EXPECTED_BV3_IN, EXPECTED_BV2B_IN, EXPECTED_REPORTS
    ):
        if bv3 is not None:
            assert row.bv_in[ste3] == bv3, (chr(row.symbol), row.bv_in)
        if bv2b is not None:
            assert row.bv_in[ste2b] == bv2b, (chr(row.symbol), row.bv_in)
        assert row.report == report

    lines = []
    for row in rows:
        lines.append(
            " | ".join(
                [chr(row.symbol)]
                + ["1" if a else "0" for a in row.active]
                + [bits_str(v, 3) if states[i].width == 3 else str(v)
                   for i, v in enumerate(row.bv_in)]
                + ["report" if row.report else ""]
            )
        )
    write_result("table2_bvap_trace", "\n".join(lines))


def test_table2_ah_structure(benchmark):
    """Fig. 3(c): five STEs — one plain, four BV-STEs, split STE2a/2b."""

    def build():
        return compile_pattern("a(.a){3}b", options=OPTIONS)

    compiled = benchmark.pedantic(build, rounds=1, iterations=1)
    assert compiled.ah.num_states == 5
    assert compiled.ah.num_bv_stes() == 4
    actions = sorted(repr(s.action) for s in compiled.ah.states)
    assert actions == ["copy", "copy", "r(3)", "set1", "shift"]
