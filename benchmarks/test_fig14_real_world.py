"""Figure 14 — the headline comparison: BVAP, BVAP-S, CAMA, eAP, CA on
the seven real-world datasets (area, energy/symbol, power, compute
density, throughput, FoM — all normalised to CA, as in the paper).

Shape targets (paper §1/§8, geometric means across datasets):

* energy per symbol: BVAP saves ~67% vs CAMA, ~95% vs CA, ~94% vs eAP;
* area: BVAP is 42-68% smaller than the baselines;
* compute density: BVAP beats CA (by ~134%) and eAP (~62%), is broadly
  comparable to CAMA — above it on Snort/Suricata/ClamAV/YARA, *below*
  it on Prosite and SpamAssassin;
* throughput: BVAP trails CAMA slightly; BVAP-S trades ~2/3 of its
  throughput for ~39% energy and ~79% power savings;
* FoM: BVAP improves on CAMA (~4.3x), CA (~50x), and eAP (~33x).

Tolerances are generous (the substrate is a simulator over synthetic
corpora); EXPERIMENTS.md records measured-vs-paper numbers.
"""

import pytest

from repro.analysis.metrics import METRIC_NAMES, average_normalized, geometric_mean
from repro.analysis.report import format_table
from repro.workloads.datasets import DATASET_NAMES
from conftest import write_result

ARCHITECTURES = ("CA", "eAP", "CAMA", "BVAP", "BVAP-S")


def normalise(fig14_reports):
    """dataset -> architecture -> the six metrics normalised to CA."""
    out = {}
    for name, reports in fig14_reports.items():
        base = reports["CA"]
        out[name] = {
            arch: reports[arch].normalized_to(base) for arch in ARCHITECTURES
        }
    return out


def test_fig14_comparison(benchmark, fig14_reports):
    normalised = benchmark.pedantic(
        lambda: normalise(fig14_reports), rounds=1, iterations=1
    )

    lines = []
    for name in DATASET_NAMES:
        lines.append(f"== {name} (normalised to CA) ==")
        rows = [
            [arch] + [normalised[name][arch][m] for m in METRIC_NAMES]
            for arch in ARCHITECTURES
        ]
        lines.append(format_table(["architecture"] + list(METRIC_NAMES), rows))
        ca = fig14_reports[name]["CA"]
        lines.append(
            f"CA absolute: area={ca.area_mm2:.3f} mm2, "
            f"E/sym={ca.energy_per_symbol_nj:.4f} nJ, "
            f"power={ca.power_w:.4f} W, thr={ca.throughput_gbps:.1f} Gbps"
        )
        lines.append("")

    # Machine-readable companion artefacts for re-plotting.
    from repro.analysis.figures import normalized_to_csv, reports_to_csv
    from conftest import RESULTS_DIR
    import os

    os.makedirs(RESULTS_DIR, exist_ok=True)
    for name in DATASET_NAMES:
        reports_to_csv(
            fig14_reports[name],
            os.path.join(RESULTS_DIR, f"fig14_{name.lower()}.csv"),
        )
        normalized_to_csv(
            normalised[name],
            os.path.join(RESULTS_DIR, f"fig14_{name.lower()}_normalized.csv"),
        )

    mean = {
        arch: average_normalized(
            {name: normalised[name][arch] for name in DATASET_NAMES}
        )
        for arch in ARCHITECTURES
    }
    lines.append("== geometric mean across datasets (normalised to CA) ==")
    lines.append(
        format_table(
            ["architecture"] + list(METRIC_NAMES),
            [[arch] + [mean[arch][m] for m in METRIC_NAMES] for arch in ARCHITECTURES],
        )
    )
    write_result("fig14_real_world", "\n".join(lines))

    bvap, bvaps, cama, eap = (
        mean["BVAP"],
        mean["BVAP-S"],
        mean["CAMA"],
        mean["eAP"],
    )

    # --- energy per symbol ---
    saving_vs_cama = 1 - bvap["energy_per_symbol"] / cama["energy_per_symbol"]
    saving_vs_ca = 1 - bvap["energy_per_symbol"]
    saving_vs_eap = 1 - bvap["energy_per_symbol"] / eap["energy_per_symbol"]
    assert 0.40 <= saving_vs_cama <= 0.80  # paper: 0.67
    assert 0.85 <= saving_vs_ca <= 0.99  # paper: 0.95
    assert 0.85 <= saving_vs_eap <= 0.99  # paper: 0.94

    # --- area ---
    area_saving_vs_cama = 1 - bvap["area"] / cama["area"]
    assert 0.30 <= area_saving_vs_cama <= 0.70  # paper band: 0.42-0.68
    assert bvap["area"] < eap["area"] < 1.0  # CA largest

    # --- compute density ---
    assert bvap["compute_density"] > 1.5  # +134% over CA in the paper
    assert bvap["compute_density"] > 1.2 * eap["compute_density"]
    per_dataset_density = {
        name: normalised[name]["BVAP"]["compute_density"]
        / normalised[name]["CAMA"]["compute_density"]
        for name in DATASET_NAMES
    }
    for name in ("Snort", "Suricata", "ClamAV", "YARA"):
        assert per_dataset_density[name] > 1.0, (name, per_dataset_density)
    for name in ("Prosite", "SpamAssassin"):
        assert per_dataset_density[name] < 1.0, (name, per_dataset_density)

    # --- throughput ---
    assert 0.5 <= bvap["throughput"] / cama["throughput"] <= 1.0
    streaming_loss = 1 - bvaps["throughput"] / bvap["throughput"]
    assert 0.5 <= streaming_loss <= 0.85  # paper: 0.67

    # --- BVAP-S energy & power ---
    assert 0.25 <= 1 - bvaps["energy_per_symbol"] / bvap["energy_per_symbol"] <= 0.55
    assert 0.6 <= 1 - bvaps["power"] / bvap["power"] <= 0.95  # paper: 0.79

    # --- figure of merit ---
    assert 2.0 <= cama["fom"] / bvap["fom"] <= 12.0  # paper: 4.3x
    assert 1 / bvap["fom"] >= 20  # paper: 50x vs CA
    assert eap["fom"] / bvap["fom"] >= 15  # paper: 33x vs eAP


def test_fig14_match_consistency(benchmark, fig14_reports):
    """All five simulators report identical match counts per dataset —
    the §8 functional cross-check at system level."""

    def collect():
        return {
            name: {arch: reports[arch].matches for arch in ARCHITECTURES}
            for name, reports in fig14_reports.items()
        }

    counts = benchmark.pedantic(collect, rounds=1, iterations=1)
    for name, per_arch in counts.items():
        assert len(set(per_arch.values())) == 1, (name, per_arch)
