"""Figure 13 — design-space exploration over (bv_size, unfold_threshold).

For each of the seven datasets, sweeps bv_size in {16, 32, 64} and the
unfolding threshold in {4, 8, 12}, reporting compute density, EDP, and
FoM normalised to CAMA (the grids the paper plots as heat maps).
"""

import pytest

from repro.analysis.dse import DEFAULT_BV_SIZES, DEFAULT_UNFOLD_THRESHOLDS
from repro.analysis.report import format_table
from repro.workloads.datasets import DATASET_NAMES
from conftest import write_result


def test_fig13_dse_grids(benchmark, dse_results):
    results = benchmark.pedantic(
        lambda: dse_results, rounds=1, iterations=1
    )
    lines = []
    for name in DATASET_NAMES:
        result = results[name]
        rows = [
            [
                point.bv_size,
                point.unfold_threshold,
                point.compute_density_norm,
                point.edp_norm,
                point.fom_norm,
            ]
            for point in result.points
        ]
        lines.append(f"== {name} ==")
        lines.append(
            format_table(
                [
                    "bv_size",
                    "unfold_th",
                    "density (vs CAMA)",
                    "EDP (vs CAMA)",
                    "FoM (vs CAMA)",
                ],
                rows,
            )
        )
        lines.append("")
    write_result("fig13_dse", "\n".join(lines))

    for name in DATASET_NAMES:
        result = results[name]
        # Full grid evaluated.
        assert len(result.points) == len(DEFAULT_BV_SIZES) * len(
            DEFAULT_UNFOLD_THRESHOLDS
        )
        # Every point produces positive, finite normalised metrics.
        for point in result.points:
            assert 0 < point.fom_norm < float("inf")
            assert 0 < point.edp_norm
            assert 0 < point.compute_density_norm

    # The knobs matter: on the counting-heavy datasets the spread across
    # the grid is substantial (the paper's heat maps are far from flat).
    for name in ("Snort", "ClamAV"):
        foms = [p.fom_norm for p in results[name].points]
        assert max(foms) / min(foms) > 1.2, name

    # FoM beats CAMA on the counting-heavy datasets at the best point.
    for name in ("Snort", "Suricata", "ClamAV", "YARA"):
        assert results[name].best_by_fom().fom_norm < 0.6, name


def test_fig13_best_metrics_can_disagree(benchmark, dse_results):
    """§8: the best density and best EDP points are not always the same
    parameter combination — the motivation for the combined FoM."""

    def collect():
        disagreements = 0
        for name in DATASET_NAMES:
            result = dse_results[name]
            best_density = result.best_by_density()
            best_edp = result.best_by_edp()
            if (best_density.bv_size, best_density.unfold_threshold) != (
                best_edp.bv_size,
                best_edp.unfold_threshold,
            ):
                disagreements += 1
        return disagreements

    disagreements = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert disagreements >= 1
