"""Table 3 — the BVM instruction set.

Regenerates the instruction table (opcode, pointer use, phase) and checks
that the compiler only ever emits instructions from it.
"""

from repro.analysis.report import format_table
from repro.compiler import CompilerOptions, compile_pattern, virtual_width
from repro.hardware.bvm import Instruction, Opcode, instruction_for
from repro.workloads.datasets import DATASET_NAMES, load_dataset
from conftest import write_result

#: The paper's instruction set (§4, Table 3): mnemonics and whether each
#: instruction reads in the Read step / moves data in the Swap step.
TABLE3 = [
    ("nop", Opcode.NOP, False, False),
    ("set1", Opcode.SET1, False, False),
    ("copy", Opcode.COPY, False, True),
    ("shift", Opcode.SHIFT, False, True),
    ("r(n)", Opcode.READ, True, False),
    ("rAll", Opcode.RALL, True, False),
    ("rHalf", Opcode.RHALF, True, False),
    ("rQuarter", Opcode.RQUARTER, True, False),
    ("r(n).set1", Opcode.READ_SET1, True, False),
    ("rAll.set1", Opcode.RALL_SET1, True, False),
    ("rHalf.set1", Opcode.RHALF_SET1, True, False),
    ("rQuarter.set1", Opcode.RQUARTER_SET1, True, False),
]


def compile_and_collect_instructions():
    """Compile a slice of every dataset and collect the emitted opcodes."""
    seen = set()
    options = CompilerOptions()
    # Multi-position counting bodies exercise the copy instruction.
    extra = ["x(ab){40}y", "p(cd?e){12}q"]
    for name in DATASET_NAMES:
        for pattern in load_dataset(name, 8, seed=3) + extra:
            try:
                compiled = compile_pattern(pattern, options=options)
            except ValueError:
                continue
            for state in compiled.ah.states:
                if not state.is_bv_ste():
                    continue
                if state.action.reads_source:
                    # Reads execute at the source BV (§5): the rAll/rHalf/
                    # rQuarter choice follows the source's virtual size.
                    virtual = virtual_width(state.in_width)
                else:
                    virtual = virtual_width(
                        compiled.ah.scopes[state.scope].high
                    )
                seen.add(instruction_for(state.action, virtual).opcode)
    return seen


def test_table3_instruction_set(benchmark):
    seen = benchmark.pedantic(
        compile_and_collect_instructions, rounds=1, iterations=1
    )
    legal = {opcode for _, opcode, _, _ in TABLE3}
    assert seen <= legal
    # The core instructions all appear in real rule sets.
    assert {Opcode.SET1, Opcode.COPY, Opcode.SHIFT} <= seen
    assert any(
        op in seen for op in (Opcode.READ, Opcode.READ_SET1)
    )

    rows = []
    for mnemonic, opcode, is_read, is_swap in TABLE3:
        pointer = 7 if opcode in (Opcode.READ, Opcode.READ_SET1) else 0
        inst = Instruction(opcode, pointer)
        assert inst.is_read == is_read
        assert inst.is_swap == is_swap
        rows.append(
            [
                mnemonic,
                opcode.value,
                "6-bit" if pointer else "-",
                "Read" if is_read else ("Swap" if is_swap else "-"),
                "yes" if opcode in seen else "unused here",
            ]
        )
    write_result(
        "table3_isa",
        format_table(
            ["instruction", "opcode", "pointer", "phase", "emitted"], rows
        ),
    )


def test_table3_encoding_roundtrip(benchmark):
    def roundtrip():
        out = []
        for _, opcode, _, _ in TABLE3:
            pointer = 7 if opcode in (Opcode.READ, Opcode.READ_SET1) else 0
            inst = Instruction(opcode, pointer)
            out.append(Instruction.decode(inst.encode()))
        return out

    decoded = benchmark.pedantic(roundtrip, rounds=1, iterations=1)
    assert [d.opcode for d in decoded] == [op for _, op, _, _ in TABLE3]
