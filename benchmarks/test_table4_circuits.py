"""Table 4 — the 28nm circuit models.

Regenerates the table from the constants the simulators actually use and
checks the published values plus the §8 derived facts (BVM area, clock
frequencies, BVAP/CAMA tile ratio).
"""

import pytest

from repro.analysis.report import format_table
from repro.hardware import circuits
from repro.hardware.specs import BVAP_SPEC, CAMA_SPEC
from conftest import write_result

EXPECTED_ROWS = [
    ("8T SRAM", "128x128", 1.0, 14.2, 298.0, 5655.0, 57.0),
    ("routing switch", "256x256", 2.0, 55.0, 410.0, 18153.0, 228.0),
    ("8T CAM", "32x256", 33.56, 33.56, 336.0, 7838.0, 28.5),
    ("4-port SRAM routing switch", "48x48", 0.76, 3.25, 173.0, 1818.0, 25.0),
    ("Bit Vector", "64", 1.37, 1.37, 178.0, 17.7, 0.56),
    ("Global wire", "1 mm", 0.07, 0.07, 66.0, 50.0, 0.0),
]


def regenerate():
    return [
        (
            m.name,
            m.size,
            m.energy_min_pj,
            m.energy_max_pj,
            m.delay_ps,
            m.area_um2,
            m.leakage_ua,
        )
        for m in circuits.TABLE4
    ]


def test_table4_circuit_models(benchmark):
    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert rows == EXPECTED_ROWS
    write_result(
        "table4_circuits",
        format_table(
            [
                "type",
                "size",
                "E_min (pJ)",
                "E_max (pJ)",
                "delay (ps)",
                "area (um2)",
                "leakage (uA)",
            ],
            rows,
        ),
    )


def test_table4_derived_facts(benchmark):
    def derive():
        return {
            "bvm_area": circuits.BVM_AREA_UM2,
            "tile_ratio": BVAP_SPEC.area_um2 / CAMA_SPEC.area_um2,
            "system_clock": circuits.BVAP_SYSTEM_CLOCK_HZ,
            "bvm_clock": circuits.BVM_CLOCK_HZ,
        }

    facts = benchmark.pedantic(derive, rounds=1, iterations=1)
    # §8: the BVM occupies 4490 um2; BVAP tile ~1.5x a CAMA tile;
    # 2 GHz system clock, 5 GHz BVM clock.
    assert facts["bvm_area"] == 4490.0
    assert 1.25 <= facts["tile_ratio"] <= 1.6
    assert facts["system_clock"] == pytest.approx(2e9)
    assert facts["bvm_clock"] == pytest.approx(5e9)
