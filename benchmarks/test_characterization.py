"""The paper's motivating statistics (§1) over the synthetic corpora.

"Over the diverse collection of datasets that we consider, bounded
repetition is found in 37% of the regexes and they account for 85% of
all NFA states (after unfolding)"; the RegexLib analysis puts the
average plain-STE count at 16 (§8).
"""

from repro.analysis.characterize import characterize
from repro.analysis.report import format_table
from repro.workloads.datasets import DATASET_NAMES, load_dataset
from conftest import write_result


def run():
    per_dataset = {}
    combined = []
    for name in DATASET_NAMES:
        patterns = load_dataset(name, 40, seed=1)
        combined.extend(patterns)
        per_dataset[name] = characterize(patterns)
    return per_dataset, characterize(combined)


def test_motivating_statistics(benchmark):
    per_dataset, combined = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            name,
            stats.counting_fraction,
            stats.counting_state_fraction,
            stats.mean_plain_states,
        ]
        for name, stats in per_dataset.items()
    ]
    rows.append(
        [
            "ALL (paper: 0.37 / 0.85)",
            combined.counting_fraction,
            combined.counting_state_fraction,
            combined.mean_plain_states,
        ]
    )
    write_result(
        "characterization",
        format_table(
            [
                "dataset",
                "regexes w/ counting",
                "states from counting",
                "mean plain states",
            ],
            rows,
        )
        + "\nbound histogram: "
        + str(combined.bound_histogram),
    )

    # Combined corpus reproduces the §1 claims' band.
    assert 0.25 <= combined.counting_fraction <= 0.55  # paper: 0.37
    assert 0.60 <= combined.counting_state_fraction <= 0.95  # paper: 0.85
    assert combined.parse_failures == 0

    # RegexLib's plain-STE average (paper: 16).
    assert 8 <= per_dataset["RegexLib"].mean_plain_states <= 30

    # Non-trivial bounds exist all the way past 1024 (§8 notes bounds
    # beyond 10,000 exist; ours are capped for baseline mappability).
    assert combined.bound_histogram["257-1024"] > 0
