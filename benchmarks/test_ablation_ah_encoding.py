"""Ablations — AH transformation overhead and symbol-encoding savings.

Two design choices the paper leans on:

* the **AH transformation** (§4) splits states per incoming action; it
  must cost only a small constant factor for the BV-STE budget of 48 per
  tile to make sense — measured here across all seven datasets;
* the **symbol encoding** (§7 step 2, after CAMA) shrinks the CAM: the
  equivalence-class count of real rule sets is far below 256, which is
  why a 32-bit CAM row suffices.
"""

from repro.analysis.report import format_table
from repro.compiler import compile_pattern, compile_ruleset
from repro.workloads.datasets import DATASET_NAMES, load_dataset
from conftest import write_result


def run_ah_overhead():
    rows = []
    for name in DATASET_NAMES:
        nbva_states = 0
        ah_states = 0
        bv_stes = 0
        for pattern in load_dataset(name, 20, seed=4):
            try:
                compiled = compile_pattern(pattern)
            except ValueError:
                continue
            nbva_states += compiled.nbva.num_states
            ah_states += compiled.ah.num_states
            bv_stes += compiled.ah.num_bv_stes()
        rows.append(
            (name, nbva_states, ah_states, ah_states / nbva_states, bv_stes)
        )
    return rows


def test_ablation_ah_overhead(benchmark):
    rows = benchmark.pedantic(run_ah_overhead, rounds=1, iterations=1)
    write_result(
        "ablation_ah_overhead",
        format_table(
            ["dataset", "NBVA states", "AH states", "blowup", "BV-STEs"],
            rows,
        ),
    )
    for name, nbva_states, ah_states, blowup, _ in rows:
        assert 1.0 <= blowup <= 1.6, (name, blowup)  # small constant factor


def run_encoding():
    rows = []
    for name in DATASET_NAMES:
        ruleset = compile_ruleset(load_dataset(name, 20, seed=4))
        schema = ruleset.encoding
        rows.append(
            (
                name,
                schema.num_codes,
                schema.code_bits,
                256 // max(1, 2 ** schema.code_bits),
            )
        )
    return rows


def test_ablation_symbol_encoding(benchmark):
    rows = benchmark.pedantic(run_encoding, rounds=1, iterations=1)
    write_result(
        "ablation_encoding",
        format_table(
            ["dataset", "codes", "bits/symbol", "CAM width saving"], rows
        ),
    )
    for name, codes, bits, _ in rows:
        # Far fewer equivalence classes than raw bytes on every dataset.
        assert codes < 128, (name, codes)
        assert bits <= 7
