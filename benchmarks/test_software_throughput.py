"""Software-engine throughput (real timing via pytest-benchmark).

Not a paper figure — engineering due diligence for the repository: the
functional engines must be fast enough to drive the cycle-level
simulations.  Measures bytes/second of the bitset NFA engine, the
AH-NBVA engine, and the instrumented hardware stepper on a Snort-profile
workload.
"""

import random

import pytest

from repro.compiler import compile_ruleset
from repro.compiler.pipeline import build_unfolded_nfa
from repro.hardware.activity import AHStepper, StepStats
from repro.regex.parser import parse
from repro.workloads import PROFILES, dataset_stream, load_dataset

PATTERNS = load_dataset("Snort", 10, seed=21)
DATA = dataset_stream(
    PATTERNS, random.Random(2), 2000, PROFILES["Snort"].literal_pool
)


@pytest.fixture(scope="module")
def ruleset():
    return compile_ruleset(PATTERNS)


def test_throughput_ah_matcher(benchmark, ruleset):
    matchers = [regex.ah.matcher() for regex in ruleset.regexes]

    def scan():
        total = 0
        for matcher in matchers:
            matcher.reset()
        for symbol in DATA:
            for matcher in matchers:
                if matcher.step(symbol):
                    total += 1
        return total

    result = benchmark(scan)
    assert result >= 0


def test_throughput_hardware_stepper(benchmark, ruleset):
    steppers = [AHStepper(regex.ah) for regex in ruleset.regexes]

    def scan():
        total = 0
        for stepper in steppers:
            stepper.reset()
        for symbol in DATA:
            stats = StepStats()
            for stepper in steppers:
                if stepper.step(symbol, stats):
                    total += 1
        return total

    result = benchmark(scan)
    assert result >= 0


def test_throughput_bitset_nfa(benchmark):
    nfas = []
    for pattern in PATTERNS:
        try:
            nfas.append(build_unfolded_nfa(parse(pattern)).matcher())
        except ValueError:
            continue

    def scan():
        total = 0
        for matcher in nfas:
            matcher.reset()
        for symbol in DATA:
            for matcher in nfas:
                if matcher.step(symbol):
                    total += 1
        return total

    result = benchmark(scan)
    assert result >= 0


def test_steppers_agree_with_matchers(benchmark, ruleset):
    """The optimised stepper must not diverge from the reference engine
    while being at least comparable in speed."""

    def compare():
        for regex in ruleset.regexes[:4]:
            assert (
                AHStepper(regex.ah).match_ends(DATA[:500])
                == regex.ah.match_ends(DATA[:500])
            )
        return True

    assert benchmark.pedantic(compare, rounds=1, iterations=1)
