"""Ablation — why not the naïve per-transition PE array? (§3)

The naïve bit-vector design needs a processing element at every crossing
point, so its PE array grows quadratically with the STEs per tile, while
BVAP's AH design attaches one instruction per BV-STE (linear).  This
ablation quantifies both on compiled rule sets and on the worst case.
"""

from repro.analysis.report import format_table
from repro.compiler import compile_pattern
from repro.hardware import circuits
from repro.hardware.naive import NaiveMachine
from repro.workloads.datasets import load_dataset
from conftest import write_result

#: A 4-port MFCB cross-point is ~0.79 um2 (1818 um2 / 48x48); a PE that
#: must *transform* vectors (mux + shifter slice + gating) is several
#: times that.  Conservative per-PE estimate:
PE_AREA_UM2 = 4.0


def run_ablation():
    rows = []
    patterns = load_dataset("Snort", 12, seed=2) + [
        "a(.a){30}b",
        "ab{2,114}c",
    ]
    for pattern in patterns:
        try:
            compiled = compile_pattern(pattern)
        except ValueError:
            continue
        machine = NaiveMachine(compiled.nbva)
        rows.append(
            (
                pattern[:32],
                compiled.nbva.num_states,
                machine.num_pes(),
                compiled.ah.num_states,
                compiled.ah.num_bv_stes(),
            )
        )
    return rows


def test_ablation_naive_pe_array(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    write_result(
        "ablation_naive_pe",
        format_table(
            ["pattern", "NBVA states", "naive PEs", "AH states", "AH BV-STEs"],
            rows,
        ),
    )

    # Worst case per tile: 256^2 PEs vs 48 BVs + one MFCB.
    naive_tile_area = NaiveMachine.pe_array_size(256) * PE_AREA_UM2
    bvap_tile_bv_area = circuits.BVM_AREA_UM2
    assert naive_tile_area > 50 * bvap_tile_bv_area

    # On real rule sets the AH transformation costs only a small state
    # increase while eliminating per-transition PEs entirely.
    for pattern, nbva_states, pes, ah_states, _ in rows:
        assert ah_states <= 3 * nbva_states, pattern
    total_pes = sum(r[2] for r in rows)
    total_bv_stes = sum(r[4] for r in rows)
    assert total_pes > total_bv_stes  # transitions outnumber states
