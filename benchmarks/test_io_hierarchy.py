"""Extension — the §6 I/O hierarchy under a real stall schedule.

Replays a BVAP simulation's per-symbol stall schedule through the
two-level input buffering and the report path, verifying the §6 sizing
rules hold under load: the 8-entry array FIFO absorbs stall bursts
without underruns when DMA keeps up, and the output path never loses
reports.
"""

from repro.compiler import compile_ruleset
from repro.hardware.activity import AHStepper, StepStats
from repro.hardware.iobuffer import replay_io
from repro.hardware.specs import StallModel
from repro.analysis.report import format_table
from repro.workloads import PROFILES, dataset_stream, load_dataset
from conftest import write_result

import random


def build_schedule():
    """Per-symbol (stall, reports) schedule from a Snort-profile run."""
    patterns = load_dataset("Snort", 15, seed=6)
    data = dataset_stream(
        patterns, random.Random(5), 2000, PROFILES["Snort"].literal_pool,
        plant_rate=0.002,
    )
    ruleset = compile_ruleset(patterns)
    steppers = [AHStepper(r.ah) for r in ruleset.regexes]
    model = StallModel()
    stalls = []
    reports = {}
    for index, symbol in enumerate(data):
        stats = StepStats()
        raised = 0
        for stepper in steppers:
            if stepper.step(symbol, stats):
                raised += 1
        stalls.append(
            model.stall_cycles(stats.max_words) if stats.bvm_activated else 0
        )
        if raised:
            reports[index] = raised
    return len(data), stalls, reports


def test_io_hierarchy_replay(benchmark):
    symbols, stalls, reports = benchmark.pedantic(
        build_schedule, rounds=1, iterations=1
    )
    fast = replay_io(symbols, stalls, reports, dma_latency=8)
    slow = replay_io(symbols, stalls, reports, dma_latency=400)

    write_result(
        "io_hierarchy",
        format_table(
            ["dma latency", "cycles", "underruns", "input DMAs",
             "output stalls", "max FIFO"],
            [
                [8, fast.cycles, fast.underrun_cycles, fast.dma_transfers,
                 fast.output_full_stalls, fast.max_fifo_occupancy],
                [400, slow.cycles, slow.underrun_cycles, slow.dma_transfers,
                 slow.output_full_stalls, slow.max_fifo_occupancy],
            ],
        ),
    )

    # Every symbol is eventually broadcast, reports are never lost.
    assert fast.symbols_broadcast == symbols
    assert slow.symbols_broadcast == symbols

    # §6 sizing: with DMA keeping up, the FIFO never starves the array
    # beyond the initial fill, and occupancy respects the 8-entry bound.
    assert fast.underrun_cycles <= 2
    assert fast.max_fifo_occupancy <= 8

    # An undersized DMA shows up as underruns — the failure §6's
    # bandwidth rule ("scale linearly with the number of arrays") avoids.
    assert slow.underrun_cycles > fast.underrun_cycles

    # The output path is ample for realistic match rates (<10%).
    assert fast.output_full_stalls == 0
