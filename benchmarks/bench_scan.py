#!/usr/bin/env python
"""Emit the fused-scan perf record (``BENCH_scan.json``).

Times the fused multi-pattern engine against the per-pattern engines on
a pattern-count × input-size grid over one workload profile, and writes
a machine-readable JSON record to track the scan-performance trajectory
across PRs.  The headline figure is the fused speedup over the
per-pattern ``nfa`` loop at the largest pattern count (16 by default).

Usage::

    PYTHONPATH=src python benchmarks/bench_scan.py                 # full grid
    PYTHONPATH=src python benchmarks/bench_scan.py --quick         # CI smoke
    PYTHONPATH=src python benchmarks/bench_scan.py --check 2.0     # enforce

``--check X`` exits non-zero unless the headline speedup is at least X
(the tracked regression bound is 2x; the measured margin is far larger).
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.matching import ENGINES  # noqa: E402
from repro.matching.bench import (  # noqa: E402
    bench_compile_cache,
    bench_grid,
    bench_reduction,
    bench_workloads,
    format_grid,
    write_record,
)
from repro.workloads import DATASET_NAMES  # noqa: E402

DEFAULT_OUT = "BENCH_scan.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--profile", default="RegexLib", choices=DATASET_NAMES)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--engines", default="all",
        help="comma-separated engine list (default: all five)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small grid / fewer repeats for CI smoke runs",
    )
    parser.add_argument(
        "--shards", default="1,2,4",
        help="comma-separated worker counts for the shard-scaling grid "
             "(measured on the largest cell; empty string disables)",
    )
    parser.add_argument(
        "--check", type=float, default=None, metavar="FACTOR",
        help="fail unless the headline fused speedup is >= FACTOR",
    )
    parser.add_argument(
        "--recovery", action="store_true",
        help="add the supervised-recovery latency cell (clean sharded "
             "scan vs one with a mid-stream worker kill)",
    )
    parser.add_argument(
        "--match-rates", default="0.0,0.01,0.5", dest="match_rates",
        help="comma-separated plant rates for the fused-tier match-rate "
             "axis (measured at the largest pattern count; empty string "
             "disables)",
    )
    parser.add_argument(
        "--check-table", type=float, default=None, metavar="FACTOR",
        dest="check_table",
        help="fail unless the table-vs-bitset speedup at the lowest "
             "match rate is >= FACTOR",
    )
    parser.add_argument(
        "--check-prefilter", type=float, default=None, metavar="FACTOR",
        dest="check_prefilter",
        help="fail unless the prefilter-vs-bitset speedup at the 0%% "
             "match-rate cell is >= FACTOR",
    )
    parser.add_argument(
        "--compile-patterns", type=int, default=64, dest="compile_patterns",
        help="ruleset size for the cold/warm compile-cache cell "
             "(0 disables the cell)",
    )
    parser.add_argument(
        "--check-compile", type=float, default=None, metavar="FACTOR",
        dest="check_compile",
        help="fail unless the warm-cache compile speedup is >= FACTOR",
    )
    parser.add_argument(
        "--workload-records", type=int, default=512, dest="workload_records",
        help="records per anchored-workload cell (log_scan/ids/pii "
             "per-record scans; 0 disables the section)",
    )
    parser.add_argument(
        "--check-workload-prefilter", type=float, default=None,
        metavar="FACTOR", dest="check_workload_prefilter",
        help="fail unless the prefilter-vs-bitset speedup on the ids "
             "workload's 0%% match-rate cell is >= FACTOR",
    )
    parser.add_argument(
        "--reduction-patterns", type=int, default=64,
        dest="reduction_patterns",
        help="ruleset size for the reduced-vs-unreduced reduction cell "
             "(0 disables the cell)",
    )
    parser.add_argument(
        "--check-reduction", type=float, default=None, metavar="FRACTION",
        dest="check_reduction",
        help="fail unless the fused state-count reduction is >= FRACTION "
             "(e.g. 0.10 for 10%%)",
    )
    args = parser.parse_args(argv)

    engines = (
        list(ENGINES)
        if args.engines == "all"
        else [e.strip() for e in args.engines.split(",") if e.strip()]
    )
    if args.quick:
        pattern_counts = (4, 16)
        input_sizes = (4096,)
        repeats = 1
    else:
        pattern_counts = (1, 4, 16)
        input_sizes = (4096, 16384)
        repeats = args.repeats

    shard_counts = tuple(
        int(s) for s in args.shards.split(",") if s.strip()
    )
    match_rates = tuple(
        float(s) for s in args.match_rates.split(",") if s.strip()
    )
    record = bench_grid(
        profile_name=args.profile,
        pattern_counts=pattern_counts,
        input_sizes=input_sizes,
        engines=engines,
        repeats=repeats,
        seed=args.seed,
        shard_counts=shard_counts or None,
        match_rates=match_rates or None,
        recovery=args.recovery,
    )
    if args.compile_patterns:
        record["compile_cache"] = bench_compile_cache(
            profile_name=args.profile,
            num_patterns=args.compile_patterns,
            repeats=repeats,
            seed=args.seed,
        )
    if args.workload_records:
        record["workloads"] = bench_workloads(
            num_records=(
                min(args.workload_records, 128)
                if args.quick
                else args.workload_records
            ),
            repeats=repeats,
            seed=args.seed,
        )
    if args.reduction_patterns:
        record["reduction"] = bench_reduction(
            profile_name=args.profile,
            num_patterns=args.reduction_patterns,
            repeats=repeats,
            seed=args.seed,
        )
    print(format_grid(record))
    write_record(record, args.out)
    print(f"wrote {args.out}")

    headline = record.get("fused_speedup_max_patterns")
    if headline is not None:
        print(
            f"headline: fused is {headline:.2f}x the per-pattern "
            f"{record['baseline_engine']} loop at "
            f"{max(pattern_counts)} patterns"
        )
    if args.check is not None:
        if headline is None or headline < args.check:
            print(
                f"FAIL: headline speedup {headline} below --check {args.check}",
                file=sys.stderr,
            )
            return 1
    table_speedup = record.get("table_speedup_low_match")
    prefilter_speedup = record.get("prefilter_speedup_zero_match")
    if table_speedup is not None:
        print(
            f"tiers: table-driven fused is {table_speedup:.2f}x bitset "
            f"fused at the lowest match rate; prefiltered scan is "
            f"{prefilter_speedup or 0:.2f}x at 0% match rate"
        )
    if args.check_table is not None:
        if table_speedup is None or table_speedup < args.check_table:
            print(
                f"FAIL: table speedup {table_speedup} below "
                f"--check-table {args.check_table}",
                file=sys.stderr,
            )
            return 1
    if args.check_prefilter is not None:
        if prefilter_speedup is None or prefilter_speedup < args.check_prefilter:
            print(
                f"FAIL: prefilter speedup {prefilter_speedup} below "
                f"--check-prefilter {args.check_prefilter}",
                file=sys.stderr,
            )
            return 1
    reduction_cell = record.get("reduction")
    if reduction_cell is not None:
        print(
            f"reduction: {reduction_cell['state_reduction']:.1%} fewer "
            f"fused states at level {reduction_cell['reduce_level']} "
            f"({reduction_cell['unreduced']['fused_states']} -> "
            f"{reduction_cell['reduced']['fused_states']})"
        )
    if args.check_reduction is not None:
        shrink = (reduction_cell or {}).get("state_reduction")
        if shrink is None or shrink < args.check_reduction:
            print(
                f"FAIL: state reduction {shrink} below "
                f"--check-reduction {args.check_reduction}",
                file=sys.stderr,
            )
            return 1
    workload_cells = record.get("workloads") or []
    for cell in workload_cells:
        if cell["match_rate"] == 0.0:
            print(
                f"workload {cell['workload']}: table "
                f"{cell.get('table_speedup', 0):.2f}x / prefilter "
                f"{cell.get('prefilter_speedup', 0):.2f}x bitset at "
                f"0% record match rate"
            )
    if args.check_workload_prefilter is not None:
        ids_zero = next(
            (
                c for c in workload_cells
                if c["workload"] == "ids" and c["match_rate"] == 0.0
            ),
            None,
        )
        speedup = (ids_zero or {}).get("prefilter_speedup")
        if speedup is None or speedup < args.check_workload_prefilter:
            print(
                f"FAIL: ids workload prefilter speedup {speedup} below "
                f"--check-workload-prefilter {args.check_workload_prefilter}",
                file=sys.stderr,
            )
            return 1
    compile_cell = record.get("compile_cache")
    if compile_cell is not None:
        print(
            f"compile cache: warm recompile of "
            f"{compile_cell['num_patterns']} patterns is "
            f"{compile_cell.get('warm_speedup', 0):.1f}x faster than cold"
        )
    if args.check_compile is not None:
        warm = (compile_cell or {}).get("warm_speedup")
        if warm is None or warm < args.check_compile:
            print(
                f"FAIL: warm compile speedup {warm} below "
                f"--check-compile {args.check_compile}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
