"""Figure 12 — BVAP vs CNT (CAMA + counter elements) on ``r a{64} b{m}``.

The counter-ambiguous ``a{64}`` forces CNT to unfold, while ``b{m}`` maps
to one counter element; BVAP handles both with bit vectors.  Shape
targets (paper §8):

* BVAP uses less energy per symbol than CNT across the sweep (our model
  reproduces this up to m = 1024; at m = 2048 the two are within a few
  percent — recorded in EXPERIMENTS.md);
* BVAP's compute density beats CNT's for small/medium m, with a crossover
  as m grows (the counter's flat area eventually wins; the paper places
  the crossover at m ~ 512, ours lands between 256 and 1024);
* both beat CAMA by growing margins as m grows.
"""

import random

import pytest

from repro.analysis.report import format_table
from repro.compiler import compile_ruleset
from repro.hardware.baselines.cnt import CNTSimulator, compile_cnt
from repro.hardware.simulator import (
    BaselineSimulator,
    BVAPSimulator,
    SimOptions,
    compile_baseline,
)
from repro.hardware.specs import CAMA_SPEC
from repro.workloads.inputs import activation_stream
from conftest import write_result

BOUNDS = (16, 64, 128, 256, 512, 1024, 2048)
ALPHA = 0.10
STREAM_LENGTH = 4000
OPTIONS = SimOptions(prorate_area=True)


def run_sweep():
    rng = random.Random(0)
    data = activation_stream(
        rng, STREAM_LENGTH, ALPHA, prefix=b"a" * 81, body=b"b" * 48
    )
    rows = {}
    for m in BOUNDS:
        pattern = "a" * 16 + "a{64}" + f"b{{{m}}}"
        bvap = BVAPSimulator(compile_ruleset([pattern]), options=OPTIONS).run(
            data
        )
        cama = BaselineSimulator(
            CAMA_SPEC, compile_baseline([pattern]), options=OPTIONS
        ).run(data)
        cnt = CNTSimulator(compile_cnt([pattern]), options=OPTIONS).run(data)
        rows[m] = {
            "bvap_energy": bvap.energy_per_symbol_j / cama.energy_per_symbol_j,
            "cnt_energy": cnt.energy_per_symbol_j / cama.energy_per_symbol_j,
            "bvap_density": bvap.compute_density_gbps_mm2
            / cama.compute_density_gbps_mm2,
            "cnt_density": cnt.compute_density_gbps_mm2
            / cama.compute_density_gbps_mm2,
        }
    return rows


def test_fig12_bvap_vs_cnt(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    write_result(
        "fig12_cnt",
        format_table(
            [
                "m",
                "BVAP energy (vs CAMA)",
                "CNT energy (vs CAMA)",
                "BVAP density (vs CAMA)",
                "CNT density (vs CAMA)",
            ],
            [
                [
                    m,
                    r["bvap_energy"],
                    r["cnt_energy"],
                    r["bvap_density"],
                    r["cnt_density"],
                ]
                for m, r in sorted(rows.items())
            ],
        ),
    )

    # BVAP consumes less energy per symbol than CNT (5% tolerance at the
    # far end of the sweep where the two models converge).
    for m in BOUNDS:
        assert rows[m]["bvap_energy"] <= rows[m]["cnt_energy"] * 1.05, m

    # Density: BVAP wins for small/medium m ...
    for m in (16, 64, 128, 256):
        assert rows[m]["bvap_density"] > rows[m]["cnt_density"], m
    # ... and CNT's flat counter area wins for large m (crossover).
    assert rows[2048]["cnt_density"] > rows[2048]["bvap_density"]
    assert rows[1024]["cnt_density"] > rows[1024]["bvap_density"]

    # Both designs beat CAMA, by margins that grow with m.
    bvap_density = [rows[m]["bvap_density"] for m in BOUNDS]
    assert all(d > 1.0 for d in bvap_density)
    assert bvap_density == sorted(bvap_density)
