"""Fixed-width bit vectors with the paper's 1-indexed convention.

A bit vector of width ``n`` represents a set of active counter values in
``{1, ..., n}`` (§1): ``v[i] = 1`` iff counter value ``i`` is active.  The
implementation stores the bits in a Python int — bit ``i`` of the paper maps
to int bit ``i - 1`` — so bitwise OR (the aggregation operator of NBVAs) is
a single machine operation.

The module-level helpers (:func:`shift`, :func:`set1`, ...) operate on raw
ints and are what the simulators use on their hot paths; the
:class:`BitVector` wrapper adds width checking and pretty printing for the
public API, examples, and tests.
"""

from __future__ import annotations

from typing import Iterable, List

from .._bits import popcount as _popcount


def width_mask(width: int) -> int:
    """Mask with the low ``width`` bits set."""
    return (1 << width) - 1


def set1(width: int) -> int:
    """The vector ``[1, 0, ..., 0]`` — counter value 1 active."""
    if width < 1:
        raise ValueError("width must be positive")
    return 1


def shift(value: int, width: int) -> int:
    """Shift by one position, dropping the bit at position ``width``.

    ``shft(v)[1] = 0`` and ``shft(v)[i] = v[i-1]`` (§2, Example 2.2).
    """
    return (value << 1) & width_mask(width)


def read_bit(value: int, position: int) -> int:
    """``r(n)``: the bit at 1-indexed ``position``."""
    if position < 1:
        raise ValueError("positions are 1-indexed")
    return value >> (position - 1) & 1


def read_range(value: int, high: int) -> int:
    """``r(1, n)``: 1 iff any of ``v[1..high]`` is set."""
    if high < 1:
        raise ValueError("positions are 1-indexed")
    return 1 if value & width_mask(high) else 0


def from_bits(bits: Iterable[int]) -> int:
    """Build a raw vector from bits listed lowest position first."""
    value = 0
    for index, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        value |= bit << index
    return value


def to_bits(value: int, width: int) -> List[int]:
    """Inverse of :func:`from_bits` with explicit width."""
    return [value >> i & 1 for i in range(width)]


class BitVector:
    """An immutable fixed-width bit vector.

    >>> v = BitVector.zeros(3).with_set1()
    >>> v.shifted().bits()
    [0, 1, 0]
    >>> (v | v.shifted())[1]
    1
    """

    __slots__ = ("value", "width")

    def __init__(self, value: int, width: int) -> None:
        if width < 1:
            raise ValueError("width must be positive")
        if value < 0 or value > width_mask(width):
            raise ValueError(f"value {value:#x} does not fit in width {width}")
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "width", width)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("BitVector is immutable")

    @classmethod
    def zeros(cls, width: int) -> "BitVector":
        return cls(0, width)

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitVector":
        bit_list = list(bits)
        return cls(from_bits(bit_list), len(bit_list))

    def with_set1(self) -> "BitVector":
        """The constant ``[1, 0, ..., 0]`` of the same width."""
        return BitVector(set1(self.width), self.width)

    def shifted(self) -> "BitVector":
        return BitVector(shift(self.value, self.width), self.width)

    def __or__(self, other: "BitVector") -> "BitVector":
        if self.width != other.width:
            raise ValueError(f"width mismatch: {self.width} vs {other.width}")
        return BitVector(self.value | other.value, self.width)

    def __getitem__(self, position: int) -> int:
        """1-indexed read ``v[i]`` as in the paper."""
        if not 1 <= position <= self.width:
            raise IndexError(f"position {position} not in [1, {self.width}]")
        return read_bit(self.value, position)

    def read_range(self, high: int) -> int:
        if not 1 <= high <= self.width:
            raise IndexError(f"position {high} not in [1, {self.width}]")
        return read_range(self.value, high)

    def is_zero(self) -> bool:
        return self.value == 0

    def popcount(self) -> int:
        return _popcount(self.value)

    def bits(self) -> List[int]:
        return to_bits(self.value, self.width)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BitVector)
            and self.value == other.value
            and self.width == other.width
        )

    def __hash__(self) -> int:
        return hash((self.value, self.width))

    def __repr__(self) -> str:
        return f"BitVector([{', '.join(str(b) for b in self.bits())}])"
