"""Automata models: NFA (Glushkov), NCA, NBVA, and AH-NBVA."""

from . import actions, bitvector
from .actions import (
    COPY,
    SET1,
    SHIFT,
    Action,
    Copy,
    ReadBit,
    ReadBitSet1,
    ReadRange,
    ReadRangeSet1,
    Set1,
    Shift,
    read_action,
    read_set1_action,
)
from .ah import AHNBVA, AHMatcher, AHState, to_action_homogeneous
from .bitvector import BitVector
from .glushkov import glushkov
from .nbva import NBVA, NBVAMatcher, Scope, State, Transition
from .optimize import prune, pruning_summary
from .nca import NCAMatcher
from .nfa import NFA, NFAMatcher

__all__ = [
    "AHMatcher",
    "AHNBVA",
    "AHState",
    "Action",
    "BitVector",
    "COPY",
    "Copy",
    "NBVA",
    "NBVAMatcher",
    "NCAMatcher",
    "NFA",
    "NFAMatcher",
    "ReadBit",
    "ReadBitSet1",
    "ReadRange",
    "ReadRangeSet1",
    "SET1",
    "SHIFT",
    "Scope",
    "Set1",
    "Shift",
    "State",
    "Transition",
    "actions",
    "bitvector",
    "glushkov",
    "prune",
    "pruning_summary",
    "read_action",
    "read_set1_action",
    "to_action_homogeneous",
]
