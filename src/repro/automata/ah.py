"""The Action-Homogeneous transformation (§4) and AH-NBVA simulation.

An NBVA is *action-homogeneous* (AH) when, for every control state, all
incoming transitions are labelled with the same action — the bit-vector
analogue of Glushkov homogeneity for character classes.  The AH property is
what lets BVAP attach one instruction to each BV-STE and aggregate incoming
vectors *before* executing the action (Fig. 3(c)); by linearity of the
actions this is equivalent to the naïve act-then-aggregate design
(Fig. 3(b)).

The transformation splits each offending state into one copy per distinct
incoming action; each copy receives the incoming transitions of its action
and inherits *all* outgoing transitions, the finalisation condition, and
(for the start-anywhere injection, which behaves like an incoming ``set1``)
the initial vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..regex.charclass import CharClass
from .actions import COPY, SET1, Action
from .nbva import NBVA, Scope
from .nfa import NFA


def injection_kind(width: int) -> Action:
    """The virtual incoming action realising the start-anywhere injection."""
    return SET1 if width > 1 else COPY


def incoming_action_kinds(nbva: NBVA, state: int) -> Set[Action]:
    """Distinct incoming actions of a state, counting initial injection."""
    kinds = {t.action for t in nbva.transitions if t.dst == state}
    if nbva.initial.get(state):
        kinds.add(injection_kind(nbva.states[state].width))
    return kinds


@dataclass
class AHState:
    """A state of an AH-NBVA: its predicate and its single action."""

    cc: CharClass
    action: Action
    width: int
    in_width: int = 1
    scope: Optional[int] = None
    origin: int = -1  # index of the NBVA state this copy came from

    def is_bv_ste(self) -> bool:
        """True iff this state occupies a BV slot in the hardware (§3).

        Counting states hold a live bit vector; read-destination states
        (e.g. STE4 in Fig. 3(c)) hold a read instruction and occupy a
        (gated) BV as well.
        """
        return self.width > 1 or self.action.reads_source


@dataclass
class AHNBVA:
    """An action-homogeneous NBVA.

    ``preds[q]`` lists the predecessor states of ``q``; the action lives on
    the state, so edges are bare.  ``injected`` states receive a constant
    activity-1 input every symbol (start-anywhere matching).
    """

    states: List[AHState]
    preds: List[List[int]]
    scopes: List[Scope] = field(default_factory=list)
    injected: Set[int] = field(default_factory=set)
    final: Dict[int, Action] = field(default_factory=dict)
    match_empty: bool = False

    @property
    def num_states(self) -> int:
        return len(self.states)

    def num_bv_stes(self) -> int:
        return sum(1 for s in self.states if s.is_bv_ste())

    def num_plain_stes(self) -> int:
        return self.num_states - self.num_bv_stes()

    def num_edges(self) -> int:
        return sum(len(p) for p in self.preds)

    def matcher(self) -> "AHMatcher":
        return AHMatcher(self)

    def match_ends(self, data: bytes) -> List[int]:
        return self.matcher().match_ends(data)


def to_action_homogeneous(nbva: NBVA) -> AHNBVA:
    """Transform an NBVA into an equivalent AH-NBVA (§4)."""
    incoming = nbva.incoming()

    # Decide the copies of each state: one per distinct incoming action.
    copy_ids: Dict[Tuple[int, Action], int] = {}
    states: List[AHState] = []
    injected: Set[int] = set()
    final: Dict[int, Action] = {}

    def add_copy(origin: int, kind: Action) -> int:
        key = (origin, kind)
        if key in copy_ids:
            return copy_ids[key]
        source = nbva.states[origin]
        index = len(states)
        states.append(
            AHState(
                cc=source.cc,
                action=kind,
                width=source.width,
                scope=source.scope,
                origin=origin,
            )
        )
        copy_ids[key] = index
        if origin in nbva.final:
            final[index] = nbva.final[origin]
        return index

    for origin, _ in enumerate(nbva.states):
        kinds = incoming_action_kinds(nbva, origin)
        if not kinds:
            # Unreachable state: keep a single inert copy for structure.
            kinds = {injection_kind(nbva.states[origin].width)}
        for kind in kinds:
            add_copy(origin, kind)

    for origin, injection in nbva.initial.items():
        if injection:
            kind = injection_kind(nbva.states[origin].width)
            injected.add(add_copy(origin, kind))

    # Each original edge (p -> q, a) becomes (p_b -> q_a) for every copy
    # p_b of p; copies inherit all outgoing transitions of their original.
    preds: List[List[int]] = [[] for _ in states]
    copies_of: Dict[int, List[int]] = {}
    for (origin, _), index in copy_ids.items():
        copies_of.setdefault(origin, []).append(index)
    for t in nbva.transitions:
        dst_copy = copy_ids[(t.dst, t.action)]
        for src_copy in copies_of[t.src]:
            if src_copy not in preds[dst_copy]:
                preds[dst_copy].append(src_copy)

    for index, state in enumerate(states):
        pred_widths = [states[p].width for p in preds[index]]
        state.in_width = max(pred_widths, default=1)

    return AHNBVA(
        states=states,
        preds=preds,
        scopes=list(nbva.scopes),
        injected=injected,
        final=final,
        match_empty=nbva.match_empty,
    )


def is_counter_free(ah: AHNBVA) -> bool:
    """True when no state carries a live bit vector.

    Every state is then a plain width-1 STE whose action preserves the
    single activity bit (``copy``/``set1`` both map 1 to 1), so the whole
    AH-NBVA is a homogeneous NFA in disguise — see :func:`to_nfa`.
    """
    return all(
        state.width == 1
        and not state.action.reads_source
        and state.action.apply(1, 1, 1) == 1
        for state in ah.states
    )


def to_nfa(ah: AHNBVA) -> NFA:
    """Project a counter-free AH-NBVA onto the equivalent homogeneous NFA.

    With every vector one bit wide, aggregation is plain bitwise OR and
    the per-state action is the identity on activity, so the AH step
    (gate by predicate, OR the predecessors plus the injection) *is* the
    two-phase NFA bitset step.  A final state reports iff its
    finalisation condition fires on an active width-1 vector.

    Raises ``ValueError`` when the automaton holds live bit vectors
    (use :func:`is_counter_free` to pre-check).
    """
    if not is_counter_free(ah):
        raise ValueError("AH-NBVA holds live bit vectors; cannot project")
    transitions: List[List[int]] = [[] for _ in ah.states]
    for dst, sources in enumerate(ah.preds):
        for src in sources:
            transitions[src].append(dst)
    final = {
        state
        for state, condition in ah.final.items()
        if condition.apply(1, 1, 1)
    }
    nfa = NFA(
        classes=[state.cc for state in ah.states],
        transitions=[sorted(set(dsts)) for dsts in transitions],
        initial=set(ah.injected),
        final=final,
    )
    nfa.match_empty = ah.match_empty  # type: ignore[attr-defined]
    return nfa


class AHMatcher:
    """Simulator implementing the BVAP order: aggregate, then act (§3)."""

    def __init__(self, ah: AHNBVA) -> None:
        self.ah = ah
        self.reset()

    def reset(self) -> None:
        self.vectors = [0] * self.ah.num_states

    def step(self, symbol: int) -> bool:
        ah = self.ah
        old = self.vectors
        new = [0] * len(old)
        for dst, state in enumerate(ah.states):
            if symbol not in state.cc:
                continue
            agg = 1 if dst in ah.injected else 0
            for src in ah.preds[dst]:
                agg |= old[src]
            if agg:
                new[dst] = state.action.apply(agg, state.in_width, state.width)
        self.vectors = new
        return self.matched()

    def matched(self) -> bool:
        for state, condition in self.ah.final.items():
            value = self.vectors[state]
            if value and condition.apply(value, self.ah.states[state].width, 1):
                return True
        return False

    def match_ends(self, data: bytes) -> List[int]:
        self.reset()
        out = []
        for index, symbol in enumerate(data):
            if self.step(symbol):
                out.append(index)
        return out

    def active_states(self) -> List[int]:
        return [q for q, v in enumerate(self.vectors) if v]

    def active_count(self) -> int:
        """Number of active states (telemetry occupancy accounting)."""
        return sum(1 for v in self.vectors if v)
