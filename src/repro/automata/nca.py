"""Nondeterministic Counter Automata (NCA) simulation (§2).

An NCA extends an NFA with counter registers; a counting state's
configuration is the *set* of counter values active at that state, because
nondeterministic execution may need several values simultaneously (Fig. 1).
An NBVA encodes exactly the characteristic function of that set, so an NCA
is derived mechanically from an NBVA by reading each bit-vector action as
its set-level counterpart:

====================  =========================================
NBVA action           NCA guard / assignment
====================  =========================================
``set1``              ``x := 1``
``copy``              ``x := x``
``shift``             ``x < n / x := x + 1``  (values past n die)
``r(c)``              guard ``x = c``
``r(1, s)``           guard ``x <= s``
``r(c).set1``         guard ``x = c`` then ``x := 1``
``r(1, s).set1``      guard ``x <= s`` then ``x := 1``
====================  =========================================

The simulator manipulates explicit sets of counter values; it exists as an
executable specification to cross-check the bit-vector engines (the paper's
Fig. 1 shows the two side by side) and to reproduce that figure's trace.
Plain states are width-1: their value set is ``{1}`` when active.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from .actions import (
    Action,
    Copy,
    ReadBit,
    ReadBitSet1,
    ReadRange,
    ReadRangeSet1,
    Set1,
    Shift,
)
from .nbva import NBVA


def apply_action_to_set(
    action: Action, values: Set[int], src_bound: int, dst_bound: int
) -> Set[int]:
    """The set-level counterpart of a bit-vector action."""
    if not values:
        return set()
    if isinstance(action, Copy):
        return set(values)
    if isinstance(action, Shift):
        return {value + 1 for value in values if value < dst_bound}
    if isinstance(action, Set1):
        return {1}
    if isinstance(action, ReadBit):
        return {1} if action.position in values else set()
    if isinstance(action, ReadRange):
        return {1} if any(value <= action.high for value in values) else set()
    if isinstance(action, ReadBitSet1):
        return {1} if action.position in values else set()
    if isinstance(action, ReadRangeSet1):
        return {1} if any(value <= action.high for value in values) else set()
    raise TypeError(f"unknown action: {action!r}")


def final_condition_holds(condition: Action, values: Set[int]) -> bool:
    """Evaluate a finalisation read over a set of counter values."""
    if isinstance(condition, (ReadBit, ReadBitSet1)):
        return condition.position in values
    if isinstance(condition, (ReadRange, ReadRangeSet1)):
        return any(value <= condition.high for value in values)
    raise TypeError(f"unsupported final condition: {condition!r}")


class NCAMatcher:
    """Set-based NCA simulator mirroring an NBVA state-for-state."""

    def __init__(self, nbva: NBVA) -> None:
        self.nbva = nbva
        self._incoming = nbva.incoming()
        self._bounds = [s.width for s in nbva.states]
        self._initial_sets = {
            state: _vector_to_set(vector) for state, vector in nbva.initial.items()
        }
        self.reset()

    def reset(self) -> None:
        self.values: List[Set[int]] = [set() for _ in self.nbva.states]

    def step(self, symbol: int) -> bool:
        nbva = self.nbva
        old = self.values
        new: List[Set[int]] = [set() for _ in old]
        for dst, state in enumerate(nbva.states):
            if symbol not in state.cc:
                continue
            agg: Set[int] = set(self._initial_sets.get(dst, ()))
            for t in self._incoming[dst]:
                agg |= apply_action_to_set(
                    t.action, old[t.src], self._bounds[t.src], self._bounds[dst]
                )
            new[dst] = agg
        self.values = new
        return self.matched()

    def matched(self) -> bool:
        for state, condition in self.nbva.final.items():
            if final_condition_holds(condition, self.values[state]):
                return True
        return False

    def match_ends(self, data: bytes) -> List[int]:
        self.reset()
        out = []
        for index, symbol in enumerate(data):
            if self.step(symbol):
                out.append(index)
        return out

    def active_states(self) -> List[int]:
        return [q for q, values in enumerate(self.values) if values]

    def active_count(self) -> int:
        """Number of active states (telemetry occupancy accounting)."""
        return sum(1 for values in self.values if values)

    def configuration(self) -> List[Tuple[int, FrozenSet[int]]]:
        """Active states with their counter-value sets, as in Fig. 1."""
        return [
            (state, frozenset(values))
            for state, values in enumerate(self.values)
            if values
        ]


def _vector_to_set(vector: int) -> Set[int]:
    values = set()
    position = 1
    while vector:
        if vector & 1:
            values.add(position)
        vector >>= 1
        position += 1
    return values
