"""Homogeneous (Glushkov-style) NFAs and their simulation.

A Glushkov NFA (§2) is ε-free and *homogeneous*: every transition entering a
state carries the same character class, so the class can be pushed onto the
state itself (the hardware's STE predicate, Fig. 2(b)).  States are dense
integers and state sets are represented as int bitsets, which makes a
simulation step two or three big-int operations.

These NFAs are the execution substrate of the baseline processors (AP, CA,
eAP, CAMA), which handle bounded repetitions by unfolding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from .._bits import popcount
from ..regex.charclass import ALPHABET_SIZE, CharClass


@dataclass
class NFA:
    """A homogeneous NFA with integer states.

    Attributes:
        classes: per-state character class (the STE predicate).
        transitions: per-state list of successor states.
        initial: states re-activated for start-anywhere matching.
        final: reporting states.
        boi: initial states armed *only at stream offset 0* (the ``^``
            start gate produced by anchor lowering).  Always a subset of
            ``initial``; empty for un-anchored automata.
        eoi: candidate-final states whose report is deferred until
            end-of-input finalisation (the ``$`` gate).  Disjoint from
            ``final`` — a state reports per-byte or at EOI, never both.
        adjust: final states that report ``end - 1`` — the variant
            consumed a one-byte ``\\b`` confirm byte past the real match
            end.  Disjoint from ``final`` and ``eoi``.
    """

    classes: List[CharClass]
    transitions: List[List[int]]
    initial: Set[int]
    final: Set[int]
    boi: Set[int] = field(default_factory=set)
    eoi: Set[int] = field(default_factory=set)
    adjust: Set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        count = len(self.classes)
        if len(self.transitions) != count:
            raise ValueError("transitions length must match state count")
        for src, dsts in enumerate(self.transitions):
            for dst in dsts:
                if not 0 <= dst < count:
                    raise ValueError(f"transition {src}->{dst} out of range")
        for state in self.initial | self.final | self.boi | self.eoi | self.adjust:
            if not 0 <= state < count:
                raise ValueError(f"state {state} out of range")
        if self.boi - self.initial:
            raise ValueError("boi gate states must be initial states")
        if (self.eoi | self.adjust) & self.final or self.eoi & self.adjust:
            raise ValueError("final/eoi/adjust state sets must be disjoint")

    @property
    def gated(self) -> bool:
        """True when anchor gates are present (positional semantics)."""
        return bool(self.boi or self.eoi or self.adjust)

    @property
    def num_states(self) -> int:
        return len(self.classes)

    def num_transitions(self) -> int:
        return sum(len(dsts) for dsts in self.transitions)

    def predecessors(self) -> List[List[int]]:
        preds: List[List[int]] = [[] for _ in range(self.num_states)]
        for src, dsts in enumerate(self.transitions):
            for dst in dsts:
                preds[dst].append(src)
        return preds

    def is_homogeneous(self) -> bool:
        """Always true by construction; verified for arbitrary instances."""
        return True

    def matcher(self) -> "NFAMatcher":
        return NFAMatcher(self)

    def match_ends(self, data: bytes) -> List[int]:
        """Indices ``i`` such that some match ends at ``data[i]`` (0-based).

        Start-anywhere, report-all semantics: this is what an AP-style
        reporting STE produces (§3).
        """
        return self.matcher().match_ends(data)


def union_nfas(parts: Sequence[NFA]) -> NFA:
    """Disjoint union of homogeneous NFAs (one pattern, many variants).

    States are renumbered by offsetting each part past its predecessors;
    gate sets are carried through.  The union matches whatever any part
    matches — used to assemble the gated variants of one anchored
    pattern into a single scan automaton.
    """
    classes: List[CharClass] = []
    transitions: List[List[int]] = []
    initial: Set[int] = set()
    final: Set[int] = set()
    boi: Set[int] = set()
    eoi: Set[int] = set()
    adjust: Set[int] = set()
    for part in parts:
        offset = len(classes)
        classes.extend(part.classes)
        transitions.extend(
            [dst + offset for dst in dsts] for dsts in part.transitions
        )
        initial |= {state + offset for state in part.initial}
        final |= {state + offset for state in part.final}
        boi |= {state + offset for state in part.boi}
        eoi |= {state + offset for state in part.eoi}
        adjust |= {state + offset for state in part.adjust}
    return NFA(classes, transitions, initial, final, boi, eoi, adjust)


class NFAMatcher:
    """Bitset-based simulator for a homogeneous NFA."""

    def __init__(self, nfa: NFA) -> None:
        self.nfa = nfa
        # symbol -> bitset of states whose class matches the symbol
        self._match_masks = _build_match_masks(nfa.classes)
        self._initial_mask = _to_mask(nfa.initial)
        self._final_mask = _to_mask(nfa.final)
        # successor mask per state (who becomes available when I am active)
        self._succ_masks = [_to_mask(dsts) for dsts in nfa.transitions]
        self.reset()

    def reset(self) -> None:
        self.active = 0

    def step(self, symbol: int) -> bool:
        """Consume one input symbol; True iff a match ends here.

        Implements the two-phase cycle of AP-style processors (§3): the
        available set is the union of successors of active states plus the
        always-available initial states; intersecting with the states whose
        predicate matches the symbol yields the new active set.
        """
        available = self._initial_mask
        active = self.active
        succ = self._succ_masks
        while active:
            low = active & -active
            available |= succ[low.bit_length() - 1]
            active ^= low
        self.active = available & self._match_masks[symbol]
        return bool(self.active & self._final_mask)

    def match_ends(self, data: bytes) -> List[int]:
        self.reset()
        out = []
        for index, symbol in enumerate(data):
            if self.step(symbol):
                out.append(index)
        return out

    def active_states(self) -> Set[int]:
        return _from_mask(self.active)

    def active_count(self) -> int:
        return popcount(self.active)


def _to_mask(states: Iterable[int]) -> int:
    mask = 0
    for state in states:
        mask |= 1 << state
    return mask


def _from_mask(mask: int) -> Set[int]:
    out = set()
    index = 0
    while mask:
        if mask & 1:
            out.add(index)
        mask >>= 1
        index += 1
    return out


def _build_match_masks(classes: Sequence[CharClass]) -> List[int]:
    masks = [0] * ALPHABET_SIZE
    for state, cc in enumerate(classes):
        bit = 1 << state
        for symbol in cc:
            masks[symbol] |= bit
    return masks


#: Public names for the bitset plumbing, reused by the fused scan engine
#: (``repro.matching.fused``) over its combined state space.
build_match_masks = _build_match_masks
states_to_mask = _to_mask
mask_to_states = _from_mask
