"""Bit-vector actions — the transition operations of NBVAs (§4).

The paper shows that this small set suffices for regexes::

    set1, shift, copy, r(n), r(1, n), r(n).set1, r(1, n).set1

Every action here is *linear* with respect to bitwise OR —
``f(v1 | v2) == f(v1) | f(v2)`` — which is the property (§3) that makes the
AH design (aggregate first, then act) equivalent to the naïve design (act
first, then aggregate).  ``tests/automata/test_actions.py`` property-checks
this for every action.

Each action maps a source vector of ``in_width`` bits to a destination
vector of ``out_width`` bits via :meth:`Action.apply`.  Plain (non-counting)
NFA states are modelled as width-1 vectors whose single bit is the state's
activity, so ordinary NFA edges are just ``Copy`` on width 1.
"""

from __future__ import annotations

from ..resilience.errors import CapacityError, UnsupportedFeatureError
from . import bitvector as bv


class Action:
    """Abstract linear operation from ``B^in_width`` to ``B^out_width``."""

    __slots__ = ()

    #: True when the action reads the source vector through the BVM Read
    #: step (``r(n)`` / ``r(1, n)`` families) — used by the hardware model.
    reads_source = False

    #: Mnemonic used in configuration files and traces.
    mnemonic = "?"

    def apply(self, value: int, in_width: int, out_width: int) -> int:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        return ()

    def __reduce__(self) -> tuple:
        # The immutability guard (__setattr__ raises) defeats the default
        # slot-state pickling; rebuild from the constructor arguments,
        # which _key() exposes for every action.
        return (type(self), self._key())

    def __repr__(self) -> str:
        return self.mnemonic


class Copy(Action):
    """``copy`` — the destination inherits the source vector unchanged."""

    __slots__ = ()
    mnemonic = "copy"

    def apply(self, value: int, in_width: int, out_width: int) -> int:
        if in_width != out_width:
            raise CapacityError(f"copy across widths {in_width} -> {out_width}")
        return value


class Shift(Action):
    """``shift`` — advance every active counter value by one (§2)."""

    __slots__ = ()
    mnemonic = "shift"

    def apply(self, value: int, in_width: int, out_width: int) -> int:
        if in_width != out_width:
            raise CapacityError(f"shift across widths {in_width} -> {out_width}")
        return bv.shift(value, out_width)


class Set1(Action):
    """``set1`` — start a new count at 1 when the source is active."""

    __slots__ = ()
    mnemonic = "set1"

    def apply(self, value: int, in_width: int, out_width: int) -> int:
        return bv.set1(out_width) if value else 0


class ReadBit(Action):
    """``r(n)`` — emit the bit at position ``n`` as a width-1 activity."""

    __slots__ = ("position",)
    reads_source = True

    def __init__(self, position: int) -> None:
        if position < 1:
            raise UnsupportedFeatureError("positions are 1-indexed")
        object.__setattr__(self, "position", position)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("actions are immutable")

    @property
    def mnemonic(self) -> str:  # type: ignore[override]
        return f"r({self.position})"

    def _key(self) -> tuple:
        return (self.position,)

    def apply(self, value: int, in_width: int, out_width: int) -> int:
        if self.position > in_width:
            raise CapacityError(f"r({self.position}) on width {in_width}")
        if out_width != 1:
            raise UnsupportedFeatureError("read actions produce a width-1 activity")
        return bv.read_bit(value, self.position)


class ReadRange(Action):
    """``r(1, n)`` — emit 1 iff any of the first ``n`` bits is set."""

    __slots__ = ("high",)
    reads_source = True

    def __init__(self, high: int) -> None:
        if high < 1:
            raise UnsupportedFeatureError("positions are 1-indexed")
        object.__setattr__(self, "high", high)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("actions are immutable")

    @property
    def mnemonic(self) -> str:  # type: ignore[override]
        return f"r(1,{self.high})"

    def _key(self) -> tuple:
        return (self.high,)

    def apply(self, value: int, in_width: int, out_width: int) -> int:
        if self.high > in_width:
            raise CapacityError(f"r(1,{self.high}) on width {in_width}")
        if out_width != 1:
            raise UnsupportedFeatureError("read actions produce a width-1 activity")
        return bv.read_range(value, self.high)


class ReadBitSet1(Action):
    """``r(n).set1`` — start a fresh count when the read succeeds (§4)."""

    __slots__ = ("position",)
    reads_source = True

    def __init__(self, position: int) -> None:
        if position < 1:
            raise UnsupportedFeatureError("positions are 1-indexed")
        object.__setattr__(self, "position", position)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("actions are immutable")

    @property
    def mnemonic(self) -> str:  # type: ignore[override]
        return f"r({self.position}).set1"

    def _key(self) -> tuple:
        return (self.position,)

    def apply(self, value: int, in_width: int, out_width: int) -> int:
        if self.position > in_width:
            raise CapacityError(f"r({self.position}) on width {in_width}")
        return bv.set1(out_width) if bv.read_bit(value, self.position) else 0


class ReadRangeSet1(Action):
    """``r(1, n).set1`` — fresh count when any of the first n bits is set."""

    __slots__ = ("high",)
    reads_source = True

    def __init__(self, high: int) -> None:
        if high < 1:
            raise UnsupportedFeatureError("positions are 1-indexed")
        object.__setattr__(self, "high", high)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("actions are immutable")

    @property
    def mnemonic(self) -> str:  # type: ignore[override]
        return f"r(1,{self.high}).set1"

    def _key(self) -> tuple:
        return (self.high,)

    def apply(self, value: int, in_width: int, out_width: int) -> int:
        if self.high > in_width:
            raise CapacityError(f"r(1,{self.high}) on width {in_width}")
        return bv.set1(out_width) if bv.read_range(value, self.high) else 0


COPY = Copy()
SHIFT = Shift()
SET1 = Set1()


def read_action(low: int, high: int) -> Action:
    """The exit-read for a counting block ``{low, high}`` (post-rewrite).

    Exact counts read a single bit, ranges read a prefix.
    """
    if low == high:
        return ReadBit(low)
    return ReadRange(high)


def read_set1_action(low: int, high: int) -> Action:
    if low == high:
        return ReadBitSet1(low)
    return ReadRangeSet1(high)
