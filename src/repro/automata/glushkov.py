"""Glushkov construction: regex AST → homogeneous ε-free NFA (§2).

The construction linearises the regex (one *position* per character-class
occurrence) and computes the classical ``nullable`` / ``first`` / ``last`` /
``follow`` sets.  The resulting automaton has exactly one state per
position, is ε-free, and is homogeneous — all incoming transitions of a
position carry that position's character class — which is the property
AP-style hardware exploits by storing the predicate in the STE.

Bounded repetitions must be removed (unfolded) before calling
:func:`glushkov`; this mirrors the baseline processors' compilation flow.
The counting-aware generalisation lives in ``repro.compiler.translate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from ..regex import ast
from ..regex.charclass import CharClass
from .nfa import NFA


@dataclass
class _Fragment:
    """Glushkov data for a subtree: nullability and boundary positions."""

    nullable: bool
    first: Set[int]
    last: Set[int]


def glushkov(node: ast.Regex) -> NFA:
    """Build the Glushkov NFA of a Repeat-free regex AST.

    Raises ``ValueError`` if a bounded repetition survives in the AST.

    The NFA's start-anywhere initial set is ``first`` and its reporting set
    is ``last``; a nullable regex matches the empty string, which AP-style
    reporting cannot express, so nullability is surfaced via the
    ``match_empty`` attribute set on the returned NFA.
    """
    positions: List[CharClass] = []
    follow: List[List[int]] = []

    def visit(sub: ast.Regex) -> _Fragment:
        if isinstance(sub, ast.Epsilon):
            return _Fragment(True, set(), set())
        if isinstance(sub, ast.Symbol):
            index = len(positions)
            positions.append(sub.cc)
            follow.append([])
            return _Fragment(False, {index}, {index})
        if isinstance(sub, ast.Concat):
            left = visit(sub.left)
            right = visit(sub.right)
            _link(follow, left.last, right.first)
            return _Fragment(
                left.nullable and right.nullable,
                left.first | (right.first if left.nullable else set()),
                right.last | (left.last if right.nullable else set()),
            )
        if isinstance(sub, ast.Alternation):
            left = visit(sub.left)
            right = visit(sub.right)
            return _Fragment(
                left.nullable or right.nullable,
                left.first | right.first,
                left.last | right.last,
            )
        if isinstance(sub, ast.Star):
            inner = visit(sub.inner)
            _link(follow, inner.last, inner.first)
            return _Fragment(True, inner.first, inner.last)
        if isinstance(sub, ast.Plus):
            inner = visit(sub.inner)
            _link(follow, inner.last, inner.first)
            return _Fragment(inner.nullable, inner.first, inner.last)
        if isinstance(sub, ast.Optional_):
            inner = visit(sub.inner)
            return _Fragment(True, inner.first, inner.last)
        if isinstance(sub, ast.Repeat):
            raise ValueError(
                "glushkov() requires an unfolded AST; "
                f"found bounded repetition {sub}"
            )
        raise TypeError(f"unknown node: {sub!r}")

    fragment = visit(node)
    nfa = NFA(
        classes=positions,
        transitions=[sorted(set(dsts)) for dsts in follow],
        initial=fragment.first,
        final=fragment.last,
    )
    nfa.match_empty = fragment.nullable  # type: ignore[attr-defined]
    return nfa


def _link(follow: List[List[int]], sources: Set[int], targets: Set[int]) -> None:
    for src in sources:
        follow[src].extend(targets)
