"""Nondeterministic Bit Vector Automata (NBVA) and their simulation (§2).

An NBVA state carries a bit vector of a fixed width; a transition
``(p, sigma, q, theta)`` applies the linear action ``theta`` to the source
vector, and vectors arriving at the same destination are aggregated with
bitwise OR.  Plain NFA states are modelled as width-1 vectors (the single
bit is the state's activity), which keeps one uniform semantics for the
whole automaton.

Our NBVAs are produced by a Glushkov-style translation
(``repro.compiler.translate``) and are therefore *character-homogeneous*:
every transition entering a state carries the state's own character class,
so the class is stored on the state and transitions carry only the action.

Matching semantics is the hardware's start-anywhere / report-all-ends:
initial injections are re-applied on every symbol and the automaton reports
each input index at which some final condition holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..regex.charclass import CharClass
from .actions import Action


@dataclass(frozen=True)
class Scope:
    """A counting block: the positions of one rewritten ``X{low,high}``."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ValueError(f"bad scope bounds {{{self.low},{self.high}}}")

    @property
    def width(self) -> int:
        """Bit-vector width needed to track this block's counter."""
        return self.high


@dataclass
class State:
    """One NBVA control state.

    ``width == 1`` states are plain (their vector is just an activity bit);
    wider states belong to a counting ``scope``.
    """

    cc: CharClass
    width: int = 1
    scope: Optional[int] = None  # index into NBVA.scopes

    def is_counting(self) -> bool:
        return self.width > 1


@dataclass
class Transition:
    src: int
    dst: int
    action: Action


@dataclass
class NBVA:
    """A nondeterministic bit vector automaton.

    Attributes:
        states: control states with their class/width/scope.
        transitions: action-labelled edges.
        scopes: counting-block metadata, indexed by ``State.scope``.
        initial: state -> injection vector, re-applied every symbol.
        final: state -> finalisation action (a read producing one bit).
    """

    states: List[State]
    transitions: List[Transition]
    scopes: List[Scope] = field(default_factory=list)
    initial: Dict[int, int] = field(default_factory=dict)
    final: Dict[int, Action] = field(default_factory=dict)
    match_empty: bool = False

    def __post_init__(self) -> None:
        count = len(self.states)
        for t in self.transitions:
            if not (0 <= t.src < count and 0 <= t.dst < count):
                raise ValueError(f"transition {t.src}->{t.dst} out of range")
        for state in list(self.initial) + list(self.final):
            if not 0 <= state < count:
                raise ValueError(f"state {state} out of range")

    @property
    def num_states(self) -> int:
        return len(self.states)

    def num_counting_states(self) -> int:
        return sum(1 for s in self.states if s.is_counting())

    def total_bv_bits(self) -> int:
        return sum(s.width for s in self.states if s.is_counting())

    def incoming(self) -> List[List[Transition]]:
        by_dst: List[List[Transition]] = [[] for _ in self.states]
        for t in self.transitions:
            by_dst[t.dst].append(t)
        return by_dst

    def outgoing(self) -> List[List[Transition]]:
        by_src: List[List[Transition]] = [[] for _ in self.states]
        for t in self.transitions:
            by_src[t.src].append(t)
        return by_src

    def is_action_homogeneous(self) -> bool:
        """True iff every state has at most one distinct incoming action
        (counting the initial injection as an incoming ``set1``/``copy``)."""
        from .ah import incoming_action_kinds  # local import to avoid cycle

        return all(
            len(incoming_action_kinds(self, state)) <= 1
            for state in range(self.num_states)
        )

    def matcher(self) -> "NBVAMatcher":
        return NBVAMatcher(self)

    def match_ends(self, data: bytes) -> List[int]:
        return self.matcher().match_ends(data)


class NBVAMatcher:
    """Symbol-at-a-time simulator for an NBVA."""

    def __init__(self, nbva: NBVA) -> None:
        self.nbva = nbva
        self._incoming = nbva.incoming()
        self._widths = [s.width for s in nbva.states]
        self._final = list(nbva.final.items())
        self.reset()

    def reset(self) -> None:
        self.vectors = [0] * self.nbva.num_states

    def step(self, symbol: int) -> bool:
        """Consume one symbol; True iff a match ends here."""
        nbva = self.nbva
        widths = self._widths
        old = self.vectors
        new = [0] * len(old)
        for dst, state in enumerate(nbva.states):
            if symbol not in state.cc:
                continue
            agg = nbva.initial.get(dst, 0)
            dst_width = widths[dst]
            for t in self._incoming[dst]:
                src_value = old[t.src]
                if src_value:
                    agg |= t.action.apply(src_value, widths[t.src], dst_width)
            new[dst] = agg
        self.vectors = new
        return self.matched()

    def matched(self) -> bool:
        widths = self._widths
        for state, condition in self._final:
            value = self.vectors[state]
            if value and condition.apply(value, widths[state], 1):
                return True
        return False

    def match_ends(self, data: bytes) -> List[int]:
        self.reset()
        out = []
        for index, symbol in enumerate(data):
            if self.step(symbol):
                out.append(index)
        return out

    def active_states(self) -> List[int]:
        return [q for q, v in enumerate(self.vectors) if v]

    def active_count(self) -> int:
        """Number of active states (telemetry occupancy accounting)."""
        return sum(1 for v in self.vectors if v)
