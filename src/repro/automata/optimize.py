"""AH-NBVA clean-up passes: dead-state elimination.

The translation and AH transformation can leave states that never
influence matching:

* states with an **unsatisfiable predicate** (an empty character class,
  e.g. from ``[^\\x00-\\xff]``-style contradictions);
* **unreachable** states — no activation path from an injected state;
* **useless** states — no path to any reporting state.

Each such state would still occupy an STE (and possibly a BV slot), so
pruning them before mapping saves hardware.  The pass preserves the
match stream exactly (tested property).
"""

from __future__ import annotations

from typing import Dict, List, Set

from .ah import AHNBVA, AHState


def prune(ah: AHNBVA) -> AHNBVA:
    """Remove dead states; returns a new, equivalent AH-NBVA."""
    keep = _live_states(ah)
    if len(keep) == ah.num_states:
        return ah
    remap: Dict[int, int] = {}
    states: List[AHState] = []
    for old_index in sorted(keep):
        remap[old_index] = len(states)
        states.append(ah.states[old_index])
    preds = [
        [remap[p] for p in ah.preds[old_index] if p in keep]
        for old_index in sorted(keep)
    ]
    return AHNBVA(
        states=states,
        preds=preds,
        scopes=list(ah.scopes),
        injected={remap[q] for q in ah.injected if q in keep},
        final={
            remap[q]: condition
            for q, condition in ah.final.items()
            if q in keep
        },
        match_empty=ah.match_empty,
    )


def _live_states(ah: AHNBVA) -> Set[int]:
    satisfiable = {
        q for q, state in enumerate(ah.states) if not state.cc.is_empty()
    }
    # Forward reachability from the injected states.
    successors: Dict[int, List[int]] = {q: [] for q in range(ah.num_states)}
    for dst, sources in enumerate(ah.preds):
        for src in sources:
            successors[src].append(dst)
    reachable: Set[int] = set()
    frontier = [q for q in ah.injected if q in satisfiable]
    while frontier:
        state = frontier.pop()
        if state in reachable:
            continue
        reachable.add(state)
        for nxt in successors[state]:
            if nxt in satisfiable and nxt not in reachable:
                frontier.append(nxt)

    # Backward co-reachability from the reporting states.
    useful: Set[int] = set()
    frontier = [q for q in ah.final if q in reachable]
    while frontier:
        state = frontier.pop()
        if state in useful:
            continue
        useful.add(state)
        for prev in ah.preds[state]:
            if prev in reachable and prev not in useful:
                frontier.append(prev)
    return useful


def pruning_summary(before: AHNBVA, after: AHNBVA) -> Dict[str, int]:
    """How much the pass saved."""
    return {
        "states_before": before.num_states,
        "states_after": after.num_states,
        "bv_stes_before": before.num_bv_stes(),
        "bv_stes_after": after.num_bv_stes(),
    }
