"""The Global Controller and its latency look-up table (§6, Fig. 9).

When the BVM of any tile is activated, the Global Controller stalls the
other tiles of the same array, because the Array Input Buffer broadcasts
with low bandwidth.  To find the stall length it consults an **8-entry
look-up table** in the Array Input Buffer that stores the maximum
bit-vector-processing latency of each tile (tiles are grouped in pairs,
16 tiles → 8 LUT entries), picks the activated tile with the longest
latency, and stalls the array for the cycles the input buffering cannot
hide.  The paper reports this dynamic-stall logic costs <1% of array
area/energy; it is treated as free here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from .specs import StallModel

LUT_ENTRIES = 8


@dataclass
class ArrayController:
    """Per-array dynamic stall logic with the 8-entry latency LUT."""

    tile_swap_words: Sequence[int]  # per tile in this array (up to 16)
    stall_model: StallModel

    def __post_init__(self) -> None:
        if len(self.tile_swap_words) > 2 * LUT_ENTRIES:
            raise ValueError(
                f"an array holds at most {2 * LUT_ENTRIES} tiles, got "
                f"{len(self.tile_swap_words)}"
            )
        # LUT entry per tile pair: the pair's worst-case latency.
        self.lut: List[int] = []
        words = list(self.tile_swap_words)
        for pair_start in range(0, len(words), 2):
            pair = words[pair_start : pair_start + 2]
            self.lut.append(
                self.stall_model.stall_cycles(max(pair, default=0))
            )
        self.stall_events = 0
        self.stall_cycles_total = 0

    def lut_entry(self, tile_in_array: int) -> int:
        return self.lut[tile_in_array // 2]

    def stall_for(self, activated_tiles: Iterable[int]) -> int:
        """Stall cycles for one symbol given the activated tiles
        (indices local to this array).  Zero when no BVM activated."""
        worst = 0
        any_activated = False
        for tile in activated_tiles:
            any_activated = True
            entry = self.lut_entry(tile)
            if entry > worst:
                worst = entry
        if any_activated:
            self.stall_events += 1
            self.stall_cycles_total += worst
        return worst


def build_controllers(
    tile_words: Sequence[int],
    tiles_per_array: int,
    stall_model: StallModel,
) -> List[ArrayController]:
    """One controller per array for a mapped rule set."""
    controllers = []
    for start in range(0, len(tile_words), tiles_per_array):
        controllers.append(
            ArrayController(
                tile_swap_words=tile_words[start : start + tiles_per_array],
                stall_model=stall_model,
            )
        )
    return controllers or [
        ArrayController(tile_swap_words=[], stall_model=stall_model)
    ]
