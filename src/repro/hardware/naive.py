"""The naïve bit-vector design — Fig. 3(b) and Table 1 (§3).

This is the strawman BVAP improves on: bit vectors are attached to STEs,
but actions live on *transitions*, so routing needs a PE (processing
element) at every crossing point of the switch network — the PE array
grows quadratically with the STEs per tile, which is what motivates the
action-homogeneous transformation.

Semantics (from §3 and Table 1):

* STE availability propagates through the ordinary state-transition
  crossbar — reads do **not** gate availability in this design;
* each transition's PE transforms the source's start-of-cycle vector
  (``set1``/``copy``/``shift``, and ``r(n)`` which forwards the vector only
  when bit *n* is set); results with the same destination are
  OR-aggregated into the destination's stored vector;
* a reporting STE fires when it is active **and** its stored vector has a
  '1' at the reporting bit *at the beginning of the cycle*.

The machine is built from the same NBVA the BVAP compiler produces and is
functionally equivalent to it (the tests check the match streams agree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..automata.actions import (
    Action,
    Copy,
    ReadBit,
    ReadBitSet1,
    ReadRange,
    ReadRangeSet1,
    Set1,
    Shift,
)
from ..automata.nbva import NBVA


@dataclass
class NaiveTraceRow:
    """One Table 1 row: activity, initial BVs, PE outputs, updated BVs."""

    symbol: int
    active: List[bool]
    bv_in: List[int]  # per state, start-of-cycle vector (0 if inactive)
    pe_outputs: List[Tuple[int, int, str, int]]  # (src, dst, op, value)
    bv_out: List[int]  # per state, aggregated next vector
    report: bool


class NaiveMachine:
    """Execute an NBVA with the naïve act-then-aggregate PE array."""

    def __init__(self, nbva: NBVA) -> None:
        self.nbva = nbva
        self.full_width = max(s.width for s in nbva.states)
        self._succ: Dict[int, List[int]] = {}
        for t in nbva.transitions:
            self._succ.setdefault(t.src, []).append(t.dst)
        self._report_masks = self._build_report_masks()
        self.reset()

    def _build_report_masks(self) -> Dict[int, int]:
        """Reporting bit masks per final state (Table 1's 'bv4[3]').

        Counting states check their own exit-read bit(s).  Plain reporting
        states check their stored vector for *any* set bit: the vector is
        the validity token forwarded by the incoming PEs (a failed ``r(n)``
        gate forwards all zeros), so non-zero means a genuinely completed
        path — exactly Table 1's "bv4 has '1' on the third bit" check,
        since the gated copy forwards the whole vector.
        """
        full = (1 << self.full_width) - 1
        masks: Dict[int, int] = {}
        for state, condition in self.nbva.final.items():
            if self.nbva.states[state].width > 1:
                masks[state] = _condition_mask(condition)
            else:
                masks[state] = full
        return masks

    def reset(self) -> None:
        self.available = set(self.nbva.initial)
        self.vectors = [0] * self.nbva.num_states

    def step(self, symbol: int) -> NaiveTraceRow:
        nbva = self.nbva
        active = [
            q in self.available and symbol in state.cc
            for q, state in enumerate(nbva.states)
        ]
        bv_in = [
            self.vectors[q] if active[q] else 0 for q in range(nbva.num_states)
        ]
        # Injected (initial) states behave as freshly activated: their
        # stored vector contributes an activity/set1 seed.
        for q in nbva.initial:
            if active[q]:
                bv_in[q] |= 1

        # Reporting uses start-of-cycle values (§3, Table 1's last row).
        report = any(
            active[state] and bv_in[state] & mask
            for state, mask in self._report_masks.items()
        )

        pe_outputs: List[Tuple[int, int, str, int]] = []
        bv_out = [0] * nbva.num_states
        next_available = set(nbva.initial)
        for t in nbva.transitions:
            if not active[t.src]:
                continue
            # The source's vector doubles as the validity token: a state
            # activated through a failed read gate holds all zeros and
            # contributes nothing downstream.
            op, value = _pe(t.action, bv_in[t.src], self.full_width)
            pe_outputs.append((t.src, t.dst, op, value))
            bv_out[t.dst] |= value
            next_available.add(t.dst)
        self.available = next_available
        self.vectors = bv_out
        return NaiveTraceRow(
            symbol=symbol,
            active=active,
            bv_in=bv_in,
            pe_outputs=pe_outputs,
            bv_out=bv_out,
            report=report,
        )

    def match_ends(self, data: bytes) -> List[int]:
        """End indices of matches (same stream as the NBVA engines)."""
        self.reset()
        out = []
        for index, symbol in enumerate(data):
            row = self.step(symbol)
            if row.report:
                out.append(index)
        return out

    # ------------------------------------------------------------------
    # Cost model (§3): one PE per crossing point.
    # ------------------------------------------------------------------

    def num_pes(self) -> int:
        """PEs required: one per transition crossing point."""
        return len(self.nbva.transitions)

    @staticmethod
    def pe_array_size(stes_per_tile: int) -> int:
        """Worst-case PE count for a fully connected tile (quadratic)."""
        return stes_per_tile * stes_per_tile


def _condition_mask(condition: Action) -> int:
    if isinstance(condition, (ReadBit, ReadBitSet1)):
        return 1 << (condition.position - 1)
    if isinstance(condition, (ReadRange, ReadRangeSet1)):
        return (1 << condition.high) - 1
    raise TypeError(f"unsupported final condition {condition!r}")


def _pe(action: Action, value: int, width: int) -> Tuple[str, int]:
    """One processing element: (mnemonic, output vector)."""
    if isinstance(action, Set1):
        return "set1", 1 if value else 0
    if isinstance(action, Copy):
        return "copy", value
    if isinstance(action, Shift):
        return "shift", (value << 1) & ((1 << width) - 1)
    if isinstance(action, ReadBit):
        hit = value >> (action.position - 1) & 1
        return f"r({action.position})", value if hit else 0
    if isinstance(action, ReadBitSet1):
        hit = value >> (action.position - 1) & 1
        return f"r({action.position}).set1", 1 if hit else 0
    if isinstance(action, ReadRange):
        hit = value & ((1 << action.high) - 1)
        return f"r(1,{action.high})", value if hit else 0
    if isinstance(action, ReadRangeSet1):
        hit = value & ((1 << action.high) - 1)
        return f"r(1,{action.high}).set1", 1 if hit else 0
    raise TypeError(f"unknown action: {action!r}")
