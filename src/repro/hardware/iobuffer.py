"""The two-level I/O buffer hierarchy of a BVAP bank (§6, Fig. 8).

Input path: DMA fills a 128-entry ping-pong **Bank Input Buffer**; a
polling arbiter serves four symbols at a time to each array's 8-entry
input FIFO; a FIFO requests new data whenever it holds fewer than four
symbols, and broadcasts one symbol per system cycle to its tiles unless
the Global Controller stalls the array for bit-vector processing.

Output path: each tile raises a report flag; the per-array 2-entry FIFO
collects (index) events and drains into the 64-entry bank output FIFO,
which DMAs out when full.  A full array FIFO stalls its array (§6 calls
this unlikely; the model makes it observable).

These components are a cycle-accurate queueing model driven by the
simulator's per-cycle schedule; they surface occupancancy/underrun/stall
statistics and enforce the §6 sizing rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple
from collections import deque

#: §6 sizing.
BANK_INPUT_ENTRIES = 128  # ping-pong buffer
ARRAY_FIFO_ENTRIES = 8
ARRAY_FIFO_REFILL_THRESHOLD = 4
BANK_SERVE_CHUNK = 4  # symbols per arbiter grant
ARRAY_OUTPUT_ENTRIES = 2
BANK_OUTPUT_ENTRIES = 64


@dataclass
class BankInputBuffer:
    """128-entry ping-pong input buffer filled by DMA.

    The ping-pong organisation hides DMA latency: one half serves the
    arrays while the other refills.  ``dma_latency`` is the cycle count
    to refill a half.
    """

    dma_latency: int = 32
    half: int = BANK_INPUT_ENTRIES // 2

    def __post_init__(self) -> None:
        self.available = 0  # symbols ready to serve
        self.pending_refill = 0  # cycles until the refilling half lands
        self.total_supplied = 0
        self.dma_transfers = 0
        self.source_remaining = 0

    def attach_source(self, total_symbols: int) -> None:
        self.source_remaining = total_symbols
        self.available = min(self.half, total_symbols)
        self.source_remaining -= self.available
        self.pending_refill = self.dma_latency if self.source_remaining else 0
        self.dma_transfers = 1 if self.available else 0

    def tick(self) -> None:
        """One system cycle: progress any in-flight DMA refill."""
        if self.pending_refill > 0:
            self.pending_refill -= 1
            if self.pending_refill == 0 and self.source_remaining > 0:
                chunk = min(self.half, self.source_remaining)
                self.available += chunk
                self.source_remaining -= chunk
                self.dma_transfers += 1
                if self.source_remaining > 0:
                    self.pending_refill = self.dma_latency

    def serve(self, count: int) -> int:
        """Grant up to ``count`` symbols to an array FIFO."""
        granted = min(count, self.available)
        self.available -= granted
        self.total_supplied += granted
        if (
            self.pending_refill == 0
            and self.source_remaining > 0
            and self.available <= self.half
        ):
            self.pending_refill = self.dma_latency
        return granted


@dataclass
class ArrayInputFIFO:
    """8-entry per-array FIFO broadcasting one symbol per unstalled cycle."""

    index: int

    def __post_init__(self) -> None:
        self.occupancy = 0
        self.underrun_cycles = 0
        self.broadcast_count = 0
        self.max_occupancy = 0

    @property
    def wants_refill(self) -> bool:
        return self.occupancy < ARRAY_FIFO_REFILL_THRESHOLD

    def refill(self, granted: int) -> None:
        if self.occupancy + granted > ARRAY_FIFO_ENTRIES:
            raise ValueError(
                f"array FIFO {self.index} overflow: "
                f"{self.occupancy} + {granted}"
            )
        self.occupancy += granted
        self.max_occupancy = max(self.max_occupancy, self.occupancy)

    def broadcast(self, stalled: bool) -> bool:
        """Attempt to broadcast one symbol; returns True on success."""
        if stalled:
            return False
        if self.occupancy == 0:
            self.underrun_cycles += 1
            return False
        self.occupancy -= 1
        self.broadcast_count += 1
        return True


@dataclass
class OutputPath:
    """Per-array 2-entry report FIFO draining into the 64-entry bank FIFO."""

    num_arrays: int

    def __post_init__(self) -> None:
        self.array_fifos = [0] * self.num_arrays
        self.bank_fifo = 0
        self.reports_out = 0
        self.dma_flushes = 0
        self.full_stalls = [0] * self.num_arrays

    def push(self, array: int, reports: int) -> bool:
        """Record match reports from an array this cycle.

        Returns False (stall the array) when its FIFO cannot take the
        reports — the §6 "full alert" to the Global Controller.
        """
        if self.array_fifos[array] + reports > ARRAY_OUTPUT_ENTRIES:
            self.full_stalls[array] += 1
            return False
        self.array_fifos[array] += reports
        return True

    def tick(self) -> None:
        """Drain one entry per array into the bank FIFO; DMA when full."""
        for array in range(self.num_arrays):
            if self.array_fifos[array] and self.bank_fifo < BANK_OUTPUT_ENTRIES:
                self.array_fifos[array] -= 1
                self.bank_fifo += 1
        if self.bank_fifo >= BANK_OUTPUT_ENTRIES:
            self.reports_out += self.bank_fifo
            self.bank_fifo = 0
            self.dma_flushes += 1

    def flush(self) -> None:
        self.reports_out += self.bank_fifo + sum(self.array_fifos)
        self.bank_fifo = 0
        self.array_fifos = [0] * self.num_arrays


@dataclass
class IOStatistics:
    """Aggregate statistics of an I/O replay."""

    cycles: int
    symbols_broadcast: int
    underrun_cycles: int
    dma_transfers: int
    output_dma_flushes: int
    output_full_stalls: int
    max_fifo_occupancy: int


def replay_io(
    symbol_count: int,
    stall_schedule: Sequence[int],
    report_schedule: Optional[Dict[int, int]] = None,
    num_arrays: int = 1,
    dma_latency: int = 32,
) -> IOStatistics:
    """Replay a simulation's schedule through the I/O hierarchy.

    Args:
        symbol_count: symbols the stream contains.
        stall_schedule: per-symbol extra stall cycles (from the Global
            Controller) for the observed array.
        report_schedule: symbol index -> number of match reports raised.
        num_arrays: arrays sharing the bank buffer.
        dma_latency: cycles for one input DMA half-refill.

    The replay drives one array in detail (the others contribute only
    arbiter load) and returns aggregate statistics.
    """
    reports = report_schedule or {}
    bank = BankInputBuffer(dma_latency=dma_latency)
    bank.attach_source(symbol_count * num_arrays)
    fifo = ArrayInputFIFO(index=0)
    output = OutputPath(num_arrays=num_arrays)

    consumed = 0
    stall_left = 0
    cycles = 0
    # Cap the replay to a generous bound to guarantee termination even
    # under pathological schedules.
    limit = (symbol_count + 1) * (dma_latency + 4) * 4
    while consumed < symbol_count and cycles < limit:
        cycles += 1
        bank.tick()
        output.tick()
        if fifo.wants_refill:
            fifo.refill(bank.serve(BANK_SERVE_CHUNK))
        stalled = stall_left > 0
        if stalled:
            stall_left -= 1
        if fifo.broadcast(stalled):
            raised = reports.get(consumed, 0)
            if raised and not output.push(0, raised):
                stall_left += 1  # output-full stall (§6)
            if consumed < len(stall_schedule):
                stall_left += stall_schedule[consumed]
            consumed += 1
    output.flush()
    return IOStatistics(
        cycles=cycles,
        symbols_broadcast=fifo.broadcast_count,
        underrun_cycles=fifo.underrun_cycles,
        dma_transfers=bank.dma_transfers,
        output_dma_flushes=output.dma_flushes,
        output_full_stalls=sum(output.full_stalls),
        max_fifo_occupancy=fifo.max_occupancy,
    )
