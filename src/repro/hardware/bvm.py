"""The Bit Vector Module (BVM): instruction set, timing, and energy (§5).

A BVM is a cluster of 48 SRAM-based Bit Vectors (BVs) plus a Multi-bit
Fully-connected CrossBar (MFCB, two 48×48 4-port switches processing 8 bits
per cycle) and a local controller.  Each BV holds one 64-bit vector in an
8×8 8T-SRAM array and executes one instruction from the small custom ISA
(Table 3).

The bit-vector-processing phase runs in two steps (Fig. 5):

* **Read** — read actions execute at the *source* BVs; only the 1-bit
  results route through the MFCB (saving routing energy), are OR-aggregated
  per destination, and deactivate BV-STEs whose reads failed.  Inactive BVs
  are reset in parallel.
* **Swap** — ``copy``/``shift``/``set1`` move whole vectors, word by word
  (semi-parallel routing, 8 bits per BV-clock cycle), through a 3-stage
  pipeline that absorbs the shift data hazard.  A *virtual* BV size below
  64 simply runs fewer Swap words (§5).

This module provides the instruction encoding used in configuration files
and the per-activation cycle/energy cost model used by the simulator.
Functional bit-vector semantics live in ``repro.automata``; the hardware
behaves identically by the linearity argument of §3.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..automata.actions import (
    Action,
    Copy,
    ReadBit,
    ReadBitSet1,
    ReadRange,
    ReadRangeSet1,
    Set1,
    Shift,
)
from . import circuits

#: MFCB datapath width: two 4-port cross-points process 8 bits/cycle (§5).
WORD_BITS = 8
#: Swap pipeline depth (§5: 3-cycle latency, hazard-free for shift).
SWAP_PIPELINE_FILL = 2
#: Read step: SRAM bit/bitline-OR read, then MFCB routing + aggregation.
READ_STEP_CYCLES = 2
#: Physical BV capacity.
HARDWARE_BV_BITS = 64


class Opcode(enum.Enum):
    """Table 3 — the BVAP instruction set."""

    NOP = 0
    SET1 = 1
    COPY = 2
    SHIFT = 3
    READ = 4  # r(n), n in the pointer field
    RALL = 5  # r(1, K)
    RHALF = 6  # r(1, K/2)
    RQUARTER = 7  # r(1, K/4)
    READ_SET1 = 8
    RALL_SET1 = 9
    RHALF_SET1 = 10
    RQUARTER_SET1 = 11


#: Pointer field width: addresses one bit of the 64-bit BV (§5 notes the
#: working example shrinks it to 2 bits for illustration; hardware has 6).
POINTER_BITS = 6


@dataclass(frozen=True)
class Instruction:
    """One BV's programmed instruction: opcode plus optional bit pointer.

    ``pointer`` is the 1-based bit position of ``r(n)``/``r(n).set1``;
    the 6-bit field stores ``pointer - 1``, addressing all 64 BV bits.
    """

    opcode: Opcode
    pointer: int = 0

    def __post_init__(self) -> None:
        needs_pointer = self.opcode in (Opcode.READ, Opcode.READ_SET1)
        if needs_pointer and not 1 <= self.pointer <= (1 << POINTER_BITS):
            raise ValueError(
                f"{self.opcode.name} pointer must be in "
                f"[1, {1 << POINTER_BITS}], got {self.pointer}"
            )
        if not needs_pointer and self.pointer != 0:
            raise ValueError(f"{self.opcode.name} takes no pointer")

    def encode(self) -> int:
        """Pack into the (4 + 6)-bit instruction word."""
        field = self.pointer - 1 if self.pointer else 0
        return (self.opcode.value << POINTER_BITS) | field

    @classmethod
    def decode(cls, word: int) -> "Instruction":
        opcode = Opcode(word >> POINTER_BITS)
        field = word & ((1 << POINTER_BITS) - 1)
        if opcode in (Opcode.READ, Opcode.READ_SET1):
            return cls(opcode, field + 1)
        return cls(opcode, 0)

    @property
    def is_read(self) -> bool:
        return self.opcode not in (
            Opcode.NOP,
            Opcode.SET1,
            Opcode.COPY,
            Opcode.SHIFT,
        )

    @property
    def is_swap(self) -> bool:
        """True if the instruction moves vector data in the Swap step."""
        return self.opcode in (Opcode.COPY, Opcode.SHIFT)

    @property
    def is_set1(self) -> bool:
        return self.opcode in (
            Opcode.SET1,
            Opcode.READ_SET1,
            Opcode.RALL_SET1,
            Opcode.RHALF_SET1,
            Opcode.RQUARTER_SET1,
        )


def instruction_for(action: Action, virtual_size: int) -> Instruction:
    """Map an AH-NBVA action to its instruction given the virtual BV size.

    Range reads must align with rAll/rHalf/rQuarter of the virtual size —
    the compiler's rewrite guarantees this (§4).
    """
    if isinstance(action, Set1):
        return Instruction(Opcode.SET1)
    if isinstance(action, Copy):
        return Instruction(Opcode.COPY)
    if isinstance(action, Shift):
        return Instruction(Opcode.SHIFT)
    if isinstance(action, ReadBit):
        return Instruction(Opcode.READ, action.position)
    if isinstance(action, ReadBitSet1):
        return Instruction(Opcode.READ_SET1, action.position)
    if isinstance(action, (ReadRange, ReadRangeSet1)):
        with_set1 = isinstance(action, ReadRangeSet1)
        if action.high == virtual_size:
            opcode = Opcode.RALL_SET1 if with_set1 else Opcode.RALL
        elif action.high * 2 == virtual_size:
            opcode = Opcode.RHALF_SET1 if with_set1 else Opcode.RHALF
        elif action.high * 4 == virtual_size:
            opcode = Opcode.RQUARTER_SET1 if with_set1 else Opcode.RQUARTER
        else:
            raise ValueError(
                f"range read r(1,{action.high}) incompatible with virtual "
                f"size {virtual_size}"
            )
        return Instruction(opcode)
    raise TypeError(f"unknown action: {action!r}")


def swap_words(virtual_size: int) -> int:
    """Words moved per Swap for a virtual BV size (§5 semi-parallel plan)."""
    if not 1 <= virtual_size <= HARDWARE_BV_BITS:
        raise ValueError(f"virtual size {virtual_size} out of range")
    return (virtual_size + WORD_BITS - 1) // WORD_BITS


@dataclass(frozen=True)
class BVMActivation:
    """Cost of one bit-vector-processing phase in a tile.

    ``bv_cycles`` are BVM-clock (5 GHz) cycles; energy is in picojoules.
    """

    bv_cycles: int
    energy_pj: float


def activation_cost(
    active_swap_words: Sequence[int],
    num_reads: int = 0,
    num_set1: int = 0,
    vdd: float = circuits.NOMINAL_VDD,
) -> BVMActivation:
    """Cycles and energy for one BVM activation.

    Args:
        active_swap_words: Swap word counts of the BVs executing
            copy/shift this phase (one entry per moving BV).
        num_reads: BVs executing a read this phase.
        num_set1: BVs sending only their set1 constant (power-gated, §5).
    """
    words = max(active_swap_words, default=0)
    cycles = 0
    if num_reads or num_set1 or words:
        cycles += READ_STEP_CYCLES  # read + reset happen even for swaps
    if words or num_set1:
        cycles += words + SWAP_PIPELINE_FILL

    bv = circuits.BIT_VECTOR_64
    mfcb = circuits.MFCB_4PORT_48x48
    energy = 0.0
    # Whole-vector moves: SRAM read+write per word, plus one MFCB access
    # per Swap phase whose energy scales with the routed word traffic.
    total_words = sum(active_swap_words)
    energy += bv.energy_pj(vdd=vdd) * (total_words / swap_words(HARDWARE_BV_BITS))
    if total_words:
        energy += mfcb.energy_pj(min(1.0, total_words / 48), vdd=vdd)
    # Reads: one SRAM access each plus a single-bit MFCB route.
    if num_reads:
        energy += num_reads * bv.energy_pj(vdd=vdd) / swap_words(HARDWARE_BV_BITS)
        energy += mfcb.energy_pj(min(1.0, num_reads / 48), vdd=vdd)
    # set1 senders are power-gated except the constant driver (§5).
    energy += 0.1 * num_set1 * bv.energy_pj(vdd=vdd) / swap_words(HARDWARE_BV_BITS)
    return BVMActivation(bv_cycles=cycles, energy_pj=energy)


def bvm_leakage_w(num_bvs: int = 48, vdd: float = circuits.NOMINAL_VDD) -> float:
    """Static power of one BVM (48 BVs + the MFCB pair)."""
    return (
        num_bvs * circuits.BIT_VECTOR_64.leakage_w(vdd)
        + 2 * circuits.MFCB_4PORT_48x48.leakage_w(vdd)
    )
