"""Execution-trace renderers for the paper's Table 1 and Table 2.

Both tables walk the regex ``a(Σa){3}b`` over the input ``abaaabab``:
Table 1 on the naïve per-transition PE design, Table 2 on the BVAP
(action-homogeneous) design.  These helpers produce the same rows
programmatically so the benchmarks can regenerate and check them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..automata.ah import AHNBVA
from ..automata.bitvector import to_bits
from ..automata.nbva import NBVA
from .activity import AHStepper, StepStats
from .naive import NaiveMachine


def bits_str(value: int, width: int) -> str:
    return "[" + ",".join(str(b) for b in to_bits(value, width)) + "]"


@dataclass
class NaiveTraceTable:
    """Table 1: per-symbol STE activity, PE outputs, and BV updates."""

    state_names: List[str]
    width: int
    rows: List[Dict[str, object]]

    def render(self) -> str:
        lines = []
        for row in self.rows:
            cells = [chr(row["symbol"])]
            cells += ["1" if a else "0" for a in row["active"]]
            cells += [bits_str(v, self.width) for v in row["bv_in"]]
            cells += [f"{op}={bits_str(v, self.width)}" for (_, _, op, v) in row["pes"]]
            cells += [bits_str(v, self.width) for v in row["bv_out"]]
            cells.append("report" if row["report"] else "")
            lines.append(" | ".join(cells))
        return "\n".join(lines)


def naive_trace(nbva: NBVA, data: bytes) -> NaiveTraceTable:
    machine = NaiveMachine(nbva)
    machine.reset()
    rows = []
    for symbol in data:
        row = machine.step(symbol)
        rows.append(
            {
                "symbol": symbol,
                "active": row.active,
                "bv_in": row.bv_in,
                "pes": row.pe_outputs,
                "bv_out": row.bv_out,
                "report": row.report,
            }
        )
    return NaiveTraceTable(
        state_names=[f"STE{i + 1}" for i in range(nbva.num_states)],
        width=machine.full_width,
        rows=rows,
    )


@dataclass
class AHTraceRow:
    """One Table 2 row."""

    symbol: int
    active: List[bool]  # STE activity (value != 0 after the step)
    bv_in: List[int]  # start-of-phase vectors (this step's new values)
    bv_out: List[int]  # bit-vector-processing outputs for the next cycle
    report: bool


def ah_trace(ah: AHNBVA, data: bytes) -> List[AHTraceRow]:
    """Execute an AH-NBVA recording Table 2's two vector views.

    ``bv_in`` is the paper's "bvi→" column (the vector of each active
    BV-STE at the start of the bit-vector-processing phase) and ``bv_out``
    is "→bvi" (the aggregated, action-transformed value written back for
    the next cycle, before the next symbol's match gating).
    """
    stepper = AHStepper(ah)
    stepper.reset()
    rows: List[AHTraceRow] = []
    for symbol in data:
        matched = stepper.step(symbol, StepStats())
        values = list(stepper.values)
        active = [v != 0 for v in values]
        # "→bvi": aggregate-then-act over the *current* values, i.e. what
        # the BVM writes back during this cycle (Fig. 5's Swap outputs).
        bv_out = [0] * ah.num_states
        for dst, state in enumerate(ah.states):
            agg = 1 if dst in ah.injected else 0
            for src in ah.preds[dst]:
                agg |= values[src]
            if agg:
                bv_out[dst] = state.action.apply(agg, state.in_width, state.width)
        rows.append(
            AHTraceRow(
                symbol=symbol,
                active=active,
                bv_in=values,
                bv_out=bv_out,
                report=matched,
            )
        )
    return rows
