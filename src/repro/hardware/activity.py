"""Fast activity-collecting steppers for the cycle-level simulators.

The simulators need, for every input symbol, the quantities that drive
timing and energy: how many STEs are active (switch/CAM activity), which
BV-STEs are active and what their instructions move (Swap words, reads,
set1 constants), and whether a reporting state fired.  These steppers are
specialised, allocation-light re-implementations of the functional
matchers in ``repro.automata``; the test suite checks they produce
bit-identical match streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..automata.actions import (
    Copy,
    ReadBit,
    ReadBitSet1,
    ReadRange,
    ReadRangeSet1,
    Set1,
    Shift,
)
from ..automata.ah import AHNBVA
from ..automata.nfa import NFA, NFAMatcher
from ..compiler.pipeline import swap_words as scope_swap_words
from ..compiler.pipeline import virtual_width
from .._bits import popcount
from ..regex.charclass import ALPHABET_SIZE

_KIND_COPY = 0
_KIND_SHIFT = 1
_KIND_SET1 = 2
_KIND_READ = 3


@dataclass
class StepStats:
    """Per-symbol activity of one automaton."""

    active_states: int = 0
    active_bv_states: int = 0
    #: Total set bits across active counting vectors — the number of STEs
    #: the same configuration would keep active after unfolding (used by
    #: the CNT model, whose ambiguous blocks *are* unfolded).
    active_bits: int = 0
    moving_words: int = 0  # total Swap words of active copy/shift BVs
    max_words: int = 0  # widest active moving BV (tile latency driver)
    reads: int = 0
    set1s: int = 0

    @property
    def bvm_activated(self) -> bool:
        return self.active_bv_states > 0


class AHStepper:
    """Activity-instrumented simulator for one AH-NBVA."""

    def __init__(self, ah: AHNBVA) -> None:
        self.ah = ah
        count = ah.num_states
        self._preds: List[Tuple[int, ...]] = [tuple(p) for p in ah.preds]
        self._kind = [0] * count
        self._mask = [0] * count  # shift width mask or read mask
        self._is_bv = [False] * count
        self._words = [0] * count
        self._injected = [q in ah.injected for q in range(count)]
        for q, state in enumerate(ah.states):
            action = state.action
            if isinstance(action, Copy):
                self._kind[q] = _KIND_COPY
            elif isinstance(action, Shift):
                self._kind[q] = _KIND_SHIFT
                self._mask[q] = (1 << state.width) - 1
            elif isinstance(action, Set1):
                self._kind[q] = _KIND_SET1
            elif isinstance(action, (ReadBit, ReadBitSet1)):
                self._kind[q] = _KIND_READ
                self._mask[q] = 1 << (action.position - 1)
            elif isinstance(action, (ReadRange, ReadRangeSet1)):
                self._kind[q] = _KIND_READ
                self._mask[q] = (1 << action.high) - 1
            else:
                raise TypeError(f"unknown action {action!r}")
            self._is_bv[q] = state.is_bv_ste()
            if state.scope is not None and self._kind[q] in (
                _KIND_COPY,
                _KIND_SHIFT,
            ):
                scope = ah.scopes[state.scope]
                self._words[q] = scope_swap_words(virtual_width(scope.high))
        # Final conditions as any-bit masks: r(c) -> single bit, r(1,s) ->
        # prefix, plain activity -> bit 1.
        self._final: List[Tuple[int, int]] = []
        for q, condition in ah.final.items():
            if isinstance(condition, (ReadBit, ReadBitSet1)):
                self._final.append((q, 1 << (condition.position - 1)))
            elif isinstance(condition, (ReadRange, ReadRangeSet1)):
                self._final.append((q, (1 << condition.high) - 1))
            else:
                raise TypeError(f"unsupported final condition {condition!r}")
        # Per-symbol list of states whose predicate matches.
        self._by_symbol: List[Tuple[int, ...]] = [()] * ALPHABET_SIZE
        buckets: List[List[int]] = [[] for _ in range(ALPHABET_SIZE)]
        for q, state in enumerate(ah.states):
            for symbol in state.cc:
                buckets[symbol].append(q)
        self._by_symbol = [tuple(b) for b in buckets]
        self.reset()

    def reset(self) -> None:
        self.values = [0] * self.ah.num_states

    def step(self, symbol: int, stats: StepStats) -> bool:
        """Advance one symbol, accumulating into ``stats``.

        Returns True iff this automaton reports a match at this symbol.
        ``stats`` is shared across automata within one symbol, so it only
        accumulates counts.
        """
        old = self.values
        new = [0] * len(old)
        kind = self._kind
        mask = self._mask
        preds = self._preds
        injected = self._injected
        is_bv = self._is_bv
        words = self._words
        for q in self._by_symbol[symbol]:
            agg = 1 if injected[q] else 0
            for p in preds[q]:
                agg |= old[p]
            if not agg:
                continue
            k = kind[q]
            if k == _KIND_COPY:
                value = agg
            elif k == _KIND_SHIFT:
                value = (agg << 1) & mask[q]
            elif k == _KIND_SET1:
                value = 1
            else:  # read families: emit 1 iff any masked bit is set
                value = 1 if agg & mask[q] else 0
            if not value:
                continue
            new[q] = value
            stats.active_states += 1
            if is_bv[q]:
                stats.active_bv_states += 1
                stats.active_bits += popcount(value)
                if k == _KIND_READ:
                    stats.reads += 1
                elif k == _KIND_SET1:
                    stats.set1s += 1
                else:
                    moved = words[q]
                    stats.moving_words += moved
                    if moved > stats.max_words:
                        stats.max_words = moved
        self.values = new
        for q, fmask in self._final:
            if new[q] & fmask:
                return True
        return False

    def match_ends(self, data: bytes) -> List[int]:
        """Match stream (for equivalence tests against AHMatcher)."""
        self.reset()
        out = []
        for index, symbol in enumerate(data):
            if self.step(symbol, StepStats()):
                out.append(index)
        return out


class NFAStepper:
    """Activity-instrumented wrapper over the bitset NFA matcher."""

    def __init__(self, nfa: NFA) -> None:
        self._matcher = NFAMatcher(nfa)

    def reset(self) -> None:
        self._matcher.reset()

    def step(self, symbol: int, stats: StepStats) -> bool:
        matched = self._matcher.step(symbol)
        stats.active_states += popcount(self._matcher.active)
        return matched

    def match_ends(self, data: bytes) -> List[int]:
        return self._matcher.match_ends(data)
