"""28nm circuit models — the paper's Table 4, reproduced as constants.

Every energy/delay/area/leakage figure used by the simulators comes from
this table (the paper derives them from SPICE on TSMC 28nm; we take the
published values verbatim).  Activity-dependent energies — the table gives
ranges like 1–14.2 pJ for the SRAM — are interpolated linearly with the
switching activity of the access, matching the paper's note that "the
energy of routing switches scales up with both the number of activated
wordlines and the number of '1' on OBLs".

Voltage scaling: dynamic energy scales with (V/V_nom)^2; BVAP-S runs its
state-matching/transition logic at 0.65 V instead of the nominal 0.9 V
(§8).
"""

from __future__ import annotations

from dataclasses import dataclass

NOMINAL_VDD = 0.9  # volts
BVAP_S_VDD = 0.65  # volts (§6/§8 streaming mode)

#: Clock frequencies (§8): the largest BVAP pipeline stage delay of
#: 449.1 ps sets the 2 GHz system clock; the BVM runs at 5 GHz.
BVAP_SYSTEM_CLOCK_HZ = 2.0e9
BVM_CLOCK_HZ = 5.0e9
#: CAMA's shorter global wire (26.1 ps vs 39.1 ps) lets it clock higher.
CAMA_CLOCK_HZ = 2.25e9
#: CA and eAP pay SRAM-read state matching plus a full-size crossbar.
CA_CLOCK_HZ = 1.8e9
EAP_CLOCK_HZ = 1.8e9


@dataclass(frozen=True)
class CircuitModel:
    """One row of Table 4."""

    name: str
    size: str
    energy_min_pj: float
    energy_max_pj: float
    delay_ps: float
    area_um2: float
    leakage_ua: float

    def energy_pj(self, activity: float = 1.0, vdd: float = NOMINAL_VDD) -> float:
        """Access energy at a switching activity in [0, 1]."""
        if not 0.0 <= activity <= 1.0:
            raise ValueError(f"activity must be in [0, 1], got {activity}")
        base = self.energy_min_pj + (self.energy_max_pj - self.energy_min_pj) * activity
        return base * (vdd / NOMINAL_VDD) ** 2

    def leakage_w(self, vdd: float = NOMINAL_VDD) -> float:
        """Static power in watts (I_leak × VDD)."""
        return self.leakage_ua * 1e-6 * vdd


SRAM_8T_128x128 = CircuitModel(
    name="8T SRAM",
    size="128x128",
    energy_min_pj=1.0,
    energy_max_pj=14.2,
    delay_ps=298.0,
    area_um2=5655.0,
    leakage_ua=57.0,
)

ROUTING_SWITCH_256 = CircuitModel(
    name="routing switch",
    size="256x256",
    energy_min_pj=2.0,
    energy_max_pj=55.0,
    delay_ps=410.0,
    area_um2=18153.0,
    leakage_ua=228.0,
)

CAM_8T_32x256 = CircuitModel(
    name="8T CAM",
    size="32x256",
    energy_min_pj=33.56,
    energy_max_pj=33.56,
    delay_ps=336.0,
    area_um2=7838.0,
    leakage_ua=28.5,
)

MFCB_4PORT_48x48 = CircuitModel(
    name="4-port SRAM routing switch",
    size="48x48",
    energy_min_pj=0.76,
    energy_max_pj=3.25,
    delay_ps=173.0,
    area_um2=1818.0,
    leakage_ua=25.0,
)

BIT_VECTOR_64 = CircuitModel(
    name="Bit Vector",
    size="64",
    energy_min_pj=1.37,
    energy_max_pj=1.37,
    delay_ps=178.0,
    area_um2=17.7,
    leakage_ua=0.56,
)

GLOBAL_WIRE_MM = CircuitModel(
    name="Global wire",
    size="1 mm",
    energy_min_pj=0.07,
    energy_max_pj=0.07,
    delay_ps=66.0,
    area_um2=50.0,
    leakage_ua=0.0,
)

TABLE4 = (
    SRAM_8T_128x128,
    ROUTING_SWITCH_256,
    CAM_8T_32x256,
    MFCB_4PORT_48x48,
    BIT_VECTOR_64,
    GLOBAL_WIRE_MM,
)


def scaled_switch(rows: int, cols: int) -> CircuitModel:
    """A routing switch scaled down from the 256×256 reference.

    Crossbar area and energy scale with the cross-point count; delay with
    the wire length (~linear in the dimension); leakage with area.
    """
    if rows > 256 or cols > 256:
        raise ValueError("reference switch is 256x256; cannot scale up")
    fraction = (rows * cols) / (256 * 256)
    dimension = max(rows, cols) / 256
    ref = ROUTING_SWITCH_256
    return CircuitModel(
        name=f"routing switch",
        size=f"{rows}x{cols}",
        energy_min_pj=ref.energy_min_pj * fraction,
        energy_max_pj=ref.energy_max_pj * fraction,
        delay_ps=ref.delay_ps * dimension,
        area_um2=ref.area_um2 * fraction,
        leakage_ua=ref.leakage_ua * fraction,
    )


#: CAMA's reduced crossbar: 128×128 (§6).
RCB_128x128 = scaled_switch(128, 128)

#: The paper reports the complete BVM at 4490 µm², "20% smaller than RRCB".
BVM_AREA_UM2 = 4490.0
