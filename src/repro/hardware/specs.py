"""Per-architecture tile models for CA, eAP, CAMA, and BVAP.

Each spec composes Table 4 circuit models into one 256-STE tile and
exposes the per-symbol energy terms the simulator charges:

* **CA** [37]: state matching reads four 128×128 8T-SRAM arrays (a full
  256-bit predicate row per symbol) and routes through a full 256×256
  crossbar (FCB).
* **eAP** [31]: the same SRAM matching, but a Reduced CrossBar exploiting
  transition sparsity (modelled as a half-size switch).
* **CAMA** [16]: an 8T CAM (32×256) replaces the SRAM matching — only the
  sub-banks addressed by the encoded symbol search, captured by the
  ``cam_bank_fraction`` — plus a 128×128 RCB.
* **BVAP** (this paper): a CAMA tile extended with one BVM (48 BVs + MFCB)
  and the extra buffering that makes the tile 1.5× a CAMA tile (§8).

Energies are linear in the tile's switching activity (fraction of active
STEs), matching Table 4's min–max ranges, so the simulator only needs the
per-symbol aggregate activity.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import bvm as bvm_mod
from . import circuits
from .circuits import (
    BVAP_SYSTEM_CLOCK_HZ,
    BVM_CLOCK_HZ,
    CA_CLOCK_HZ,
    CAMA_CLOCK_HZ,
    EAP_CLOCK_HZ,
    NOMINAL_VDD,
    CircuitModel,
    scaled_switch,
)

#: Fraction of CAM sub-banks searched per symbol (hierarchical search, [16]).
CAM_BANK_FRACTION = 0.125
#: Average SRAM readout activity for the matching phase of CA/eAP: the
#: wordline of the input symbol fires in every array; roughly half the
#: bitlines discharge.
SRAM_MATCH_ACTIVITY = 0.5
#: Tile periphery (buffers, control) as a fraction of the datapath area.
PERIPHERY_FRACTION = 0.06
#: Average global wire length charged per active cross-tile signal (mm).
WIRE_MM_PER_ACTIVE = 0.5

EAP_RCB = scaled_switch(256, 128)
CAMA_RCB = circuits.RCB_128x128


@dataclass(frozen=True)
class TileSpec:
    """One architecture's 256-STE tile: areas, leakage, energy terms."""

    name: str
    clock_hz: float
    match_area_um2: float
    switch: CircuitModel
    match_energy_min_pj: float
    match_energy_max_pj: float
    match_leakage_ua: float
    has_bvm: bool = False
    stes_per_tile: int = 256

    @property
    def datapath_area_um2(self) -> float:
        area = self.match_area_um2 + self.switch.area_um2
        if self.has_bvm:
            area += circuits.BVM_AREA_UM2
        return area

    @property
    def area_um2(self) -> float:
        return self.datapath_area_um2 * (1.0 + PERIPHERY_FRACTION)

    def leakage_w(self, vdd: float = NOMINAL_VDD) -> float:
        current_ua = self.match_leakage_ua + self.switch.leakage_ua
        power = current_ua * 1e-6 * vdd
        if self.has_bvm:
            power += bvm_mod.bvm_leakage_w(vdd=circuits.NOMINAL_VDD)
        return power

    def match_energy_pj(self, activity: float, vdd: float = NOMINAL_VDD) -> float:
        """State-matching energy for one symbol at an STE activity level."""
        span = self.match_energy_max_pj - self.match_energy_min_pj
        base = self.match_energy_min_pj + span * activity
        return base * (vdd / NOMINAL_VDD) ** 2

    def transition_energy_pj(self, activity: float, vdd: float = NOMINAL_VDD) -> float:
        """State-transition (crossbar) energy for one symbol."""
        return self.switch.energy_pj(activity, vdd=vdd)

    def symbol_energy_pj(self, activity: float, vdd: float = NOMINAL_VDD) -> float:
        return self.match_energy_pj(activity, vdd) + self.transition_energy_pj(
            activity, vdd
        )


CA_SPEC = TileSpec(
    name="CA",
    clock_hz=CA_CLOCK_HZ,
    match_area_um2=4 * circuits.SRAM_8T_128x128.area_um2,
    switch=circuits.ROUTING_SWITCH_256,
    match_energy_min_pj=4
    * circuits.SRAM_8T_128x128.energy_pj(SRAM_MATCH_ACTIVITY),
    match_energy_max_pj=4 * circuits.SRAM_8T_128x128.energy_pj(1.0),
    match_leakage_ua=4 * circuits.SRAM_8T_128x128.leakage_ua,
)

EAP_SPEC = TileSpec(
    name="eAP",
    clock_hz=EAP_CLOCK_HZ,
    match_area_um2=4 * circuits.SRAM_8T_128x128.area_um2,
    switch=EAP_RCB,
    match_energy_min_pj=4
    * circuits.SRAM_8T_128x128.energy_pj(SRAM_MATCH_ACTIVITY),
    match_energy_max_pj=4 * circuits.SRAM_8T_128x128.energy_pj(1.0),
    match_leakage_ua=4 * circuits.SRAM_8T_128x128.leakage_ua,
)

CAMA_SPEC = TileSpec(
    name="CAMA",
    clock_hz=CAMA_CLOCK_HZ,
    match_area_um2=circuits.CAM_8T_32x256.area_um2,
    switch=CAMA_RCB,
    match_energy_min_pj=circuits.CAM_8T_32x256.energy_pj() * CAM_BANK_FRACTION,
    match_energy_max_pj=circuits.CAM_8T_32x256.energy_pj()
    * (CAM_BANK_FRACTION + 0.25),
    match_leakage_ua=circuits.CAM_8T_32x256.leakage_ua,
)

BVAP_SPEC = TileSpec(
    name="BVAP",
    clock_hz=BVAP_SYSTEM_CLOCK_HZ,
    match_area_um2=circuits.CAM_8T_32x256.area_um2,
    switch=CAMA_RCB,
    match_energy_min_pj=CAMA_SPEC.match_energy_min_pj,
    match_energy_max_pj=CAMA_SPEC.match_energy_max_pj,
    match_leakage_ua=CAMA_SPEC.match_leakage_ua,
    has_bvm=True,
)


def wire_energy_pj(active_states: float) -> float:
    """Global-wire energy for routing active signals between tiles."""
    return circuits.GLOBAL_WIRE_MM.energy_pj() * WIRE_MM_PER_ACTIVE * active_states


@dataclass(frozen=True)
class StallModel:
    """Timing of the bit-vector-processing phase relative to the system
    clock (§6 Global Controller + Fig. 10)."""

    bv_clock_hz: float = BVM_CLOCK_HZ
    system_clock_hz: float = BVAP_SYSTEM_CLOCK_HZ
    #: System cycles hidden by the overlapped SM/ST pipeline and the
    #: two-level input buffering (§6, Fig. 10(a)).
    hidden_cycles: int = 3

    def bvm_latency_cycles(self, max_swap_words: int) -> int:
        """BVM-clock cycles for one activation of a tile's worst-case BV."""
        if max_swap_words <= 0:
            return bvm_mod.READ_STEP_CYCLES
        return (
            bvm_mod.READ_STEP_CYCLES
            + max_swap_words
            + bvm_mod.SWAP_PIPELINE_FILL
        )

    def stall_cycles(self, max_swap_words: int) -> int:
        """Extra *system* cycles the array stalls for one activation."""
        bv_cycles = self.bvm_latency_cycles(max_swap_words)
        ratio = self.bv_clock_hz / self.system_clock_hz
        sys_cycles = -(-bv_cycles // ratio)  # ceil for a float ratio
        return max(0, int(sys_cycles) - self.hidden_cycles)

    def streaming_clock_hz(self, max_swap_words: int) -> float:
        """BVAP-S system clock: bit-vector processing is the critical path
        every cycle (Fig. 10(b))."""
        bv_cycles = self.bvm_latency_cycles(max_swap_words)
        return self.bv_clock_hz / max(1, bv_cycles)
