"""Hardware models: circuits (Table 4), BVM, simulators, and baselines."""

from . import baselines, circuits
from .activity import AHStepper, NFAStepper, StepStats
from .bvm import Instruction, Opcode, instruction_for
from .controller import ArrayController, build_controllers
from .iobuffer import IOStatistics, replay_io
from .naive import NaiveMachine
from .structure import ArrayStructure, BankStructure, TileStructure, bank_for_mapping
from .tile import TileCapacityError, TileEngine
from .report import SimulationReport
from .simulator import (
    BaselineRuleset,
    BaselineSimulator,
    BVAPSimulator,
    SimOptions,
    compile_baseline,
    simulator_from_config,
)
from .specs import BVAP_SPEC, CA_SPEC, CAMA_SPEC, EAP_SPEC, StallModel, TileSpec

__all__ = [
    "AHStepper",
    "ArrayController",
    "ArrayStructure",
    "BVAPSimulator",
    "BVAP_SPEC",
    "BankStructure",
    "BaselineRuleset",
    "BaselineSimulator",
    "CAMA_SPEC",
    "CA_SPEC",
    "EAP_SPEC",
    "IOStatistics",
    "Instruction",
    "NFAStepper",
    "NaiveMachine",
    "Opcode",
    "SimOptions",
    "SimulationReport",
    "StallModel",
    "StepStats",
    "TileCapacityError",
    "TileEngine",
    "TileSpec",
    "TileStructure",
    "bank_for_mapping",
    "baselines",
    "build_controllers",
    "circuits",
    "compile_baseline",
    "instruction_for",
    "replay_io",
    "simulator_from_config",
]
