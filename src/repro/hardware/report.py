"""Simulation reports and the paper's evaluation metrics (§8).

The two headline metrics are *energy per symbol* (total energy / input
symbols) and *compute density* (throughput / area); the design-space
exploration additionally uses EDP (energy × delay) and the figure of merit

    FoM = total energy × area / throughput

where lower is better (§8, Design Space Exploration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class SimulationReport:
    """Outcome of simulating one architecture over one input stream."""

    architecture: str
    symbols: int
    system_cycles: int
    clock_hz: float
    dynamic_energy_j: float
    leakage_energy_j: float
    area_mm2: float
    matches: int = 0
    num_tiles: int = 0
    stall_cycles: int = 0
    bvm_activations: int = 0
    #: Free-form extras (e.g. ``match_events`` when collected, and the
    #: telemetry snapshot under ``"metrics"`` when metrics are enabled).
    notes: Dict[str, object] = field(default_factory=dict)

    @property
    def metrics_snapshot(self) -> Optional[Dict[str, object]]:
        """The telemetry snapshot captured at the end of the run, if the
        simulation ran with ``repro.telemetry`` metrics enabled."""
        snapshot = self.notes.get("metrics")
        return snapshot if isinstance(snapshot, dict) else None

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def time_s(self) -> float:
        return self.system_cycles / self.clock_hz

    @property
    def total_energy_j(self) -> float:
        return self.dynamic_energy_j + self.leakage_energy_j

    @property
    def energy_per_symbol_j(self) -> float:
        return self.total_energy_j / self.symbols if self.symbols else 0.0

    @property
    def energy_per_symbol_nj(self) -> float:
        return self.energy_per_symbol_j * 1e9

    @property
    def throughput_sym_per_s(self) -> float:
        return self.symbols / self.time_s if self.time_s else 0.0

    @property
    def throughput_gbps(self) -> float:
        """Input throughput in gigabits per second (one byte per symbol)."""
        return self.throughput_sym_per_s * 8 / 1e9

    @property
    def power_w(self) -> float:
        return self.total_energy_j / self.time_s if self.time_s else 0.0

    @property
    def compute_density_gbps_mm2(self) -> float:
        return self.throughput_gbps / self.area_mm2 if self.area_mm2 else 0.0

    @property
    def edp(self) -> float:
        """Energy-delay product (J·s)."""
        return self.total_energy_j * self.time_s

    @property
    def fom(self) -> float:
        """Figure of merit: energy × area / throughput (lower is better)."""
        if not self.throughput_gbps:
            return float("inf")
        return self.total_energy_j * self.area_mm2 / self.throughput_gbps

    def normalized_to(self, base: "SimulationReport") -> Dict[str, float]:
        """The six Fig. 14 metrics, normalised to another report."""

        def ratio(mine: float, theirs: float) -> float:
            return mine / theirs if theirs else float("inf")

        return {
            "area": ratio(self.area_mm2, base.area_mm2),
            "energy_per_symbol": ratio(
                self.energy_per_symbol_j, base.energy_per_symbol_j
            ),
            "power": ratio(self.power_w, base.power_w),
            "compute_density": ratio(
                self.compute_density_gbps_mm2, base.compute_density_gbps_mm2
            ),
            "throughput": ratio(self.throughput_gbps, base.throughput_gbps),
            "fom": ratio(self.fom, base.fom),
        }
