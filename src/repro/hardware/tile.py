"""Tile-level joint execution: one Active Vector for all mapped regexes.

The simulators in :mod:`repro.hardware.simulator` step each regex's
automaton separately and aggregate activity per tile.  Real hardware
does the opposite: a tile executes *all* its STEs at once — one 256-bit
Active Vector, one CAM lookup per symbol, one BVM pass — regardless of
which regex each STE belongs to.  :class:`TileEngine` implements that
organisation faithfully:

* the automata placed on the tile are concatenated into tile-local STE
  slots (BV-STEs claim BV slots in order);
* ``step`` performs the joint phases: match (one pass over the slots
  whose predicate matches the encoded symbol), transition + bit-vector
  processing (per-slot actions over the OR-aggregated inputs), and
  report collection per regex;
* occupancy is checked against the 256-STE / 48-BV budget.

The tests verify the joint execution is bit-identical to running the
per-regex engines — evidence the per-regex accounting in the simulator
is a faithful decomposition of the tile's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from .._bits import popcount
from ..automata.ah import AHNBVA
from ..regex.charclass import ALPHABET_SIZE
from .activity import AHStepper, StepStats


@dataclass
class TileOccupancy:
    stes: int
    bvs: int


class TileCapacityError(ValueError):
    """The automata exceed the tile's STE or BV budget."""


class TileEngine:
    """Execute every automaton mapped to one tile as a single machine."""

    def __init__(
        self,
        automata: Sequence[Tuple[int, AHNBVA]],
        stes_per_tile: int = 256,
        bvs_per_tile: int = 48,
        tile_index: Optional[int] = None,
    ) -> None:
        self.automata = list(automata)
        #: Tile index used to label telemetry instruments (optional).
        self.tile_index = tile_index
        # Tile-local slot assignment: states are packed in placement
        # order; BV-STEs additionally claim BV slots.
        self._slot_of: Dict[Tuple[int, int], int] = {}
        self._bv_slot_of: Dict[Tuple[int, int], int] = {}
        next_ste = 0
        next_bv = 0
        for regex_id, ah in self.automata:
            for state_index, state in enumerate(ah.states):
                self._slot_of[(regex_id, state_index)] = next_ste
                next_ste += 1
                if state.is_bv_ste():
                    self._bv_slot_of[(regex_id, state_index)] = next_bv
                    next_bv += 1
        if next_ste > stes_per_tile:
            raise TileCapacityError(
                f"{next_ste} STEs exceed the tile's {stes_per_tile}"
            )
        if next_bv > bvs_per_tile:
            raise TileCapacityError(
                f"{next_bv} BVs exceed the tile's {bvs_per_tile}"
            )
        self.occupancy = TileOccupancy(stes=next_ste, bvs=next_bv)
        # Joint execution delegates per-slot semantics to the verified
        # steppers while exposing one tile-wide active vector.
        self._steppers = [
            (regex_id, AHStepper(ah)) for regex_id, ah in self.automata
        ]
        self.reset()

    def reset(self) -> None:
        for _, stepper in self._steppers:
            stepper.reset()
        self.active_vector = 0  # tile-local bitset of active STEs

    def step(self, symbol: int) -> List[int]:
        """Process one symbol jointly; returns the regex ids reporting."""
        reports: List[int] = []
        active_vector = 0
        stats = StepStats()
        for regex_id, stepper in self._steppers:
            if stepper.step(symbol, stats):
                reports.append(regex_id)
            for state_index, value in enumerate(stepper.values):
                if value:
                    active_vector |= 1 << self._slot_of[(regex_id, state_index)]
        self.active_vector = active_vector
        self.last_stats = stats
        if telemetry.metrics_enabled():
            registry = telemetry.registry()
            labels = (
                {"tile": self.tile_index} if self.tile_index is not None else {}
            )
            registry.histogram("tile.occupancy", **labels).observe(
                self.active_count()
            )
            if reports:
                registry.counter("tile.reports", **labels).inc(len(reports))
        return reports

    def active_count(self) -> int:
        return popcount(self.active_vector)

    def active_slots(self) -> List[int]:
        out = []
        vector = self.active_vector
        slot = 0
        while vector:
            if vector & 1:
                out.append(slot)
            vector >>= 1
            slot += 1
        return out

    def slot_of(self, regex_id: int, state_index: int) -> int:
        return self._slot_of[(regex_id, state_index)]

    def bv_slot_of(self, regex_id: int, state_index: int) -> Optional[int]:
        return self._bv_slot_of.get((regex_id, state_index))

    def match_stream(self, data: bytes) -> List[Tuple[int, int]]:
        """(end index, regex id) events over a stream, from reset."""
        self.reset()
        out: List[Tuple[int, int]] = []
        for index, symbol in enumerate(data):
            for regex_id in self.step(symbol):
                out.append((index, regex_id))
        return out
