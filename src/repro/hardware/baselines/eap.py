"""eAP [31] — SRAM matching with a sparsity-exploiting Reduced CrossBar.

eAP keeps CA's SRAM-based state matching but halves the switch area by
exploiting the sparsity of real transition matrices (modelled here as a
256×128 reduced switch).
"""

from __future__ import annotations

from typing import Sequence

from ...compiler.mapping import ArchParams
from ..report import SimulationReport
from ..simulator import BaselineRuleset, BaselineSimulator, SimOptions, compile_baseline
from ..specs import EAP_SPEC


def simulate_eap(
    patterns: Sequence[str],
    data: bytes,
    options: SimOptions = SimOptions(),
    ruleset: BaselineRuleset = None,
) -> SimulationReport:
    """Compile (unfold + Glushkov + map) and simulate on eAP."""
    if ruleset is None:
        ruleset = compile_baseline(patterns, ArchParams(bvs_per_tile=0))
    return BaselineSimulator(EAP_SPEC, ruleset, options).run(data)
