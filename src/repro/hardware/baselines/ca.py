"""CA (Cache Automaton) [37] — SRAM-based processor with a full crossbar.

State matching reads a full 256-bit predicate row from four 128×128 8T
SRAM arrays per tile; state transitions use the Fully-connected CrossBar
whose 8T cross-points CA introduced.  Like all AP-style designs it unfolds
bounded repetitions.
"""

from __future__ import annotations

from typing import Sequence

from ...compiler.mapping import ArchParams
from ..report import SimulationReport
from ..simulator import BaselineRuleset, BaselineSimulator, SimOptions, compile_baseline
from ..specs import CA_SPEC


def simulate_ca(
    patterns: Sequence[str],
    data: bytes,
    options: SimOptions = SimOptions(),
    ruleset: BaselineRuleset = None,
) -> SimulationReport:
    """Compile (unfold + Glushkov + map) and simulate on CA."""
    if ruleset is None:
        ruleset = compile_baseline(patterns, ArchParams(bvs_per_tile=0))
    return BaselineSimulator(CA_SPEC, ruleset, options).run(data)
