"""CNT — CAMA extended with scalar counter elements (§8, Fig. 12).

The paper builds this strawman to show why plain counters (as in AP [10])
are not enough: a counter element holds a *single* counter value, so it can
only implement a bounded repetition that is **counter-unambiguous** — one
whose NCA never needs two counter values alive at the same control state
[17].  Ambiguous repetitions (e.g. ``a{64}`` reachable while already
counting ``a``s) must still be unfolded.

Ambiguity test (documented heuristic, sufficient for the paper's
micro-benchmarks): a repetition ``X{m,n}`` is ambiguous iff a new entry
can fire while a count is in flight, i.e. the character classes that
precede the block overlap the block body's first classes (a fresh entry
re-triggers mid-count), or the block starts the (start-anywhere) regex.

Hardware model: a counter element is a 14-bit register + comparator +
bound/configuration latches attached to an STE.  The paper gives no
Table 4 row for it; the constants below are standard-cell estimates for
28nm including the config/routing overhead such an element carries in an
AP-style tile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...compiler.mapping import ArchParams, AutomatonDemand, MappingError, map_automata
from ...compiler.pipeline import CompiledRegex, CompilerOptions, compile_ast
from ...regex import ast
from ...regex.charclass import CharClass
from ...regex.parser import parse
from ...regex.rewrite import unfold_repeat
from ..activity import AHStepper, StepStats
from ..report import SimulationReport
from ..simulator import SimOptions, UM2_PER_MM2
from ..specs import CAMA_SPEC, wire_energy_pj

#: Counter element circuit constants (14-bit counter + comparator +
#: configuration latches, 28nm standard cells).
COUNTER_AREA_UM2 = 450.0
COUNTER_ENERGY_PJ = 0.3  # per update
COUNTER_LEAKAGE_UA = 2.0


def _first_classes(node: ast.Regex) -> Set[CharClass]:
    if isinstance(node, ast.Epsilon):
        return set()
    if isinstance(node, ast.Symbol):
        return {node.cc}
    if isinstance(node, ast.Concat):
        out = _first_classes(node.left)
        if ast.nullable(node.left):
            out |= _first_classes(node.right)
        return out
    if isinstance(node, ast.Alternation):
        return _first_classes(node.left) | _first_classes(node.right)
    if isinstance(node, (ast.Star, ast.Plus, ast.Optional_, ast.Repeat)):
        return _first_classes(node.inner)
    raise TypeError(f"unknown node: {node!r}")


def _last_classes(node: ast.Regex) -> Set[CharClass]:
    if isinstance(node, ast.Epsilon):
        return set()
    if isinstance(node, ast.Symbol):
        return {node.cc}
    if isinstance(node, ast.Concat):
        out = _last_classes(node.right)
        if ast.nullable(node.right):
            out |= _last_classes(node.left)
        return out
    if isinstance(node, ast.Alternation):
        return _last_classes(node.left) | _last_classes(node.right)
    if isinstance(node, (ast.Star, ast.Plus, ast.Optional_, ast.Repeat)):
        return _last_classes(node.inner)
    raise TypeError(f"unknown node: {node!r}")


def classify_repeats(node: ast.Regex) -> List[Tuple[ast.Repeat, bool]]:
    """Each Repeat with its ambiguity verdict (True = counter-ambiguous)."""
    verdicts: List[Tuple[ast.Repeat, bool]] = []

    def visit(sub: ast.Regex, preceding: Set[CharClass], at_start: bool) -> None:
        if isinstance(sub, ast.Concat):
            visit(sub.left, preceding, at_start)
            left_last = _last_classes(sub.left)
            left_nullable = ast.nullable(sub.left)
            next_preceding = left_last | (preceding if left_nullable else set())
            visit(sub.right, next_preceding, at_start and left_nullable)
            return
        if isinstance(sub, ast.Alternation):
            visit(sub.left, preceding, at_start)
            visit(sub.right, preceding, at_start)
            return
        if isinstance(sub, (ast.Star, ast.Plus, ast.Optional_)):
            looped = preceding | _last_classes(sub.inner)
            visit(sub.inner, looped, at_start)
            return
        if isinstance(sub, ast.Repeat):
            body_first = _first_classes(sub.inner)
            ambiguous = at_start or any(
                p.overlaps(f) for p in preceding for f in body_first
            )
            verdicts.append((sub, ambiguous))
            visit(sub.inner, _last_classes(sub.inner), False)
            return
        # Epsilon / Symbol: nothing to do.

    visit(node, set(), True)
    return verdicts


@dataclass
class CNTRegex:
    """One pattern's CNT resource footprint plus its functional model."""

    compiled: CompiledRegex  # functional AH model (matching only)
    stes: int
    counters: int
    unfolded_ambiguous: int  # STEs spent unfolding ambiguous repeats


@dataclass
class CNTRuleset:
    regexes: List[CNTRegex]
    rejected: Dict[int, str] = field(default_factory=dict)

    @property
    def total_stes(self) -> int:
        return sum(r.stes for r in self.regexes)

    @property
    def total_counters(self) -> int:
        return sum(r.counters for r in self.regexes)


def _cnt_resources(node: ast.Regex) -> Tuple[int, int]:
    """(STEs, counters) for CNT: ambiguous repeats unfolded, unambiguous
    ones implemented with the body's states plus one counter."""
    ambiguity = {id(rep): amb for rep, amb in classify_repeats(node)}

    def stes(sub: ast.Regex) -> Tuple[int, int]:
        if isinstance(sub, ast.Symbol):
            return 1, 0
        if isinstance(sub, ast.Epsilon):
            return 0, 0
        if isinstance(sub, ast.Repeat):
            inner_stes, inner_counters = stes(sub.inner)
            bound = sub.high if sub.high is not None else sub.low + 1
            if ambiguity.get(id(sub), True) or inner_counters:
                return inner_stes * max(1, bound), inner_counters * max(1, bound)
            return inner_stes, inner_counters + 1
        total_s = 0
        total_c = 0
        for child in sub.children():
            s, c = stes(child)
            total_s += s
            total_c += c
        return total_s, total_c

    return stes(node)


def compile_cnt(
    patterns: Sequence[str],
    options: CompilerOptions = CompilerOptions(),
) -> CNTRuleset:
    """Compile patterns for the CNT design.

    Functional matching reuses the AH model (identical match semantics);
    hardware resources are the CNT footprint: unfold ambiguous repetitions,
    one counter element per unambiguous repetition.
    """
    regexes: List[CNTRegex] = []
    rejected: Dict[int, str] = {}
    for regex_id, pattern in enumerate(patterns):
        try:
            parsed = parse(pattern)
            compiled = compile_ast(parsed, pattern, regex_id, options)
            cnt_stes, counters = _cnt_resources(parsed)
            plain, _ = _cnt_resources(_strip_repeats(parsed))
            regexes.append(
                CNTRegex(
                    compiled=compiled,
                    stes=cnt_stes,
                    counters=counters,
                    unfolded_ambiguous=cnt_stes - plain,
                )
            )
        except (ValueError, MappingError) as error:
            rejected[regex_id] = str(error)
    return CNTRuleset(regexes=regexes, rejected=rejected)


def _strip_repeats(node: ast.Regex) -> ast.Regex:
    """The regex with every repetition replaced by one body copy (for the
    'how many STEs are counting overhead' statistic)."""
    if isinstance(node, (ast.Epsilon, ast.Symbol)):
        return node
    if isinstance(node, ast.Repeat):
        return _strip_repeats(node.inner)
    if isinstance(node, ast.Concat):
        return ast.concat(_strip_repeats(node.left), _strip_repeats(node.right))
    if isinstance(node, ast.Alternation):
        return ast.alternation(
            _strip_repeats(node.left), _strip_repeats(node.right)
        )
    if isinstance(node, ast.Star):
        return ast.star(_strip_repeats(node.inner))
    if isinstance(node, ast.Plus):
        return ast.plus(_strip_repeats(node.inner))
    if isinstance(node, ast.Optional_):
        return ast.optional(_strip_repeats(node.inner))
    raise TypeError(f"unknown node: {node!r}")


class CNTSimulator:
    """CAMA-style accounting over the CNT resource footprint."""

    def __init__(
        self, ruleset: CNTRuleset, options: SimOptions = SimOptions()
    ) -> None:
        self.ruleset = ruleset
        self.options = options
        self.steppers = [AHStepper(r.compiled.ah) for r in ruleset.regexes]
        arch = ArchParams(bvs_per_tile=0)
        demands = [
            AutomatonDemand(regex_id=i, plain_stes=r.stes, bv_stes=0)
            for i, r in enumerate(ruleset.regexes)
        ]
        self.mapping = map_automata(demands, arch)
        self.num_tiles = max(1, self.mapping.num_tiles)
        if options.prorate_area:
            used = max(1, ruleset.total_stes)
            self._ste_capacity = used
            self._energy_tiles = used / arch.stes_per_tile
        else:
            self._ste_capacity = self.num_tiles * arch.stes_per_tile
            self._energy_tiles = float(self.num_tiles)

    def area_mm2(self) -> float:
        counters_area = self.ruleset.total_counters * COUNTER_AREA_UM2
        if self.options.prorate_area:
            stes = self.ruleset.total_stes
            tile_fraction = stes / self.mapping.params.stes_per_tile
            return (
                CAMA_SPEC.area_um2 * tile_fraction + counters_area
            ) / UM2_PER_MM2
        return (
            self.num_tiles * CAMA_SPEC.area_um2 + counters_area
        ) / UM2_PER_MM2

    def leakage_w(self) -> float:
        tiles = self.num_tiles
        scale = 1.0
        if self.options.prorate_area:
            scale = self.ruleset.total_stes / self._ste_capacity
        return (
            tiles * CAMA_SPEC.leakage_w() * scale
            + self.ruleset.total_counters * COUNTER_LEAKAGE_UA * 1e-6 * 0.9
        )

    def run(self, data: bytes) -> SimulationReport:
        for stepper in self.steppers:
            stepper.reset()
        matches = 0
        activity_sum = 0.0
        active_sum = 0.0
        counter_updates = 0
        for symbol in data:
            stats = StepStats()
            for index, stepper in enumerate(self.steppers):
                before = stats.active_bv_states
                if stepper.step(symbol, stats):
                    matches += 1
                if stats.active_bv_states > before:
                    # A real CNT keeps one counter per block; approximate
                    # its activity with "any counting state active".
                    counter_updates += 1
            # Ambiguous blocks are *unfolded* on CNT, so every set bit of
            # the functional model's vectors is a live STE there.
            active = stats.active_states - stats.active_bv_states + stats.active_bits
            activity_sum += min(1.0, active / self._ste_capacity)
            active_sum += active

        symbols = len(data)
        spec = CAMA_SPEC
        dynamic_pj = self._energy_tiles * symbols * spec.symbol_energy_pj(0.0)
        span = spec.symbol_energy_pj(1.0) - spec.symbol_energy_pj(0.0)
        dynamic_pj += self._energy_tiles * span * activity_sum
        dynamic_pj += wire_energy_pj(active_sum)
        dynamic_pj += counter_updates * COUNTER_ENERGY_PJ

        time_s = symbols / spec.clock_hz
        return SimulationReport(
            architecture="CNT",
            symbols=symbols,
            system_cycles=symbols,
            clock_hz=spec.clock_hz,
            dynamic_energy_j=dynamic_pj * 1e-12,
            leakage_energy_j=self.leakage_w() * time_s,
            area_mm2=self.area_mm2(),
            matches=matches,
            num_tiles=self.num_tiles,
        )


def simulate_cnt(
    patterns: Sequence[str],
    data: bytes,
    options: SimOptions = SimOptions(),
) -> SimulationReport:
    return CNTSimulator(compile_cnt(patterns), options).run(data)
