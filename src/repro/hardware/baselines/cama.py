"""CAMA [16] — CAM-based in-memory automata processor (the paper's base).

CAMA matches states in an 8T CAM (only the sub-banks addressed by the
encoded symbol search) and routes transitions through a 128×128 Reduced
CrossBar.  Bounded repetitions must be unfolded, so its STE demand grows
linearly with the repetition bounds — the inefficiency BVAP removes.
"""

from __future__ import annotations

from typing import Sequence

from ...compiler.mapping import ArchParams
from ..report import SimulationReport
from ..simulator import BaselineRuleset, BaselineSimulator, SimOptions, compile_baseline
from ..specs import CAMA_SPEC


def simulate_cama(
    patterns: Sequence[str],
    data: bytes,
    options: SimOptions = SimOptions(),
    ruleset: BaselineRuleset = None,
) -> SimulationReport:
    """Compile (unfold + Glushkov + map) and simulate on CAMA."""
    if ruleset is None:
        ruleset = compile_baseline(patterns, _cama_arch())
    return BaselineSimulator(CAMA_SPEC, ruleset, options).run(data)


def _cama_arch() -> ArchParams:
    return ArchParams(bvs_per_tile=0)
