"""Baseline automata processors: CA, eAP, CAMA, and counter-based CNT."""

from .ca import simulate_ca
from .cama import simulate_cama
from .cnt import CNTSimulator, classify_repeats, compile_cnt, simulate_cnt
from .eap import simulate_eap

__all__ = [
    "CNTSimulator",
    "classify_repeats",
    "compile_cnt",
    "simulate_ca",
    "simulate_cama",
    "simulate_cnt",
    "simulate_eap",
]
