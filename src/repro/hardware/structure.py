"""Structural composition of the BVAP hierarchy (§6, Fig. 8).

Computes component-wise area and leakage breakdowns at tile, array, and
bank granularity:

* **tile** — CAM (state matching), RCB (state transition), BVM, local
  control/periphery; tiles are grouped in *pairs* that can reconfigure
  into a 128×128 FCB mode in which one CAM sub-array and one BVM are
  power-gated (§6);
* **array** — 16 tiles, the global state-transition switch, the 8-entry
  input FIFO, and the Global Controller (the paper reports the control
  logic at <1% of array area/energy);
* **bank** — 4 arrays, the 128-entry ping-pong input buffer, the
  64-entry output FIFO, and the DMA interface.

Used by the area-breakdown benchmark and by anyone sizing a deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from . import bvm as bvm_mod
from . import circuits
from .specs import BVAP_SPEC, CAMA_RCB

#: Buffer/periphery sizing estimates (28nm SRAM macro + control).
ARRAY_INPUT_FIFO_AREA_UM2 = 120.0
ARRAY_CONTROLLER_AREA_UM2 = 260.0
ARRAY_GLOBAL_SWITCH_AREA_UM2 = circuits.ROUTING_SWITCH_256.area_um2 / 2
BANK_INPUT_BUFFER_AREA_UM2 = 2600.0
BANK_OUTPUT_FIFO_AREA_UM2 = 1400.0
BANK_DMA_AREA_UM2 = 5200.0


@dataclass
class TileStructure:
    """One 256-STE tile with an optional power-gated (FCB-mode) half."""

    fcb_mode: bool = False  # paired-FCB mode: CAM half + BVM gated (§6)

    def area_breakdown_um2(self) -> Dict[str, float]:
        return {
            "cam": circuits.CAM_8T_32x256.area_um2,
            "rcb": CAMA_RCB.area_um2,
            "bvm": circuits.BVM_AREA_UM2,
            "periphery": (
                circuits.CAM_8T_32x256.area_um2
                + CAMA_RCB.area_um2
                + circuits.BVM_AREA_UM2
            )
            * 0.06,
        }

    def area_um2(self) -> float:
        return sum(self.area_breakdown_um2().values())

    def leakage_w(self) -> float:
        cam = circuits.CAM_8T_32x256.leakage_w()
        rcb = CAMA_RCB.leakage_w()
        bvm = bvm_mod.bvm_leakage_w()
        if self.fcb_mode:
            # One CAM sub-array and the BVM are power-gated (§6).
            return cam / 2 + rcb + 0.05 * bvm
        return cam + rcb + bvm


@dataclass
class ArrayStructure:
    """Sixteen tiles plus array-level interconnect and control."""

    tiles: List[TileStructure] = field(
        default_factory=lambda: [TileStructure() for _ in range(16)]
    )

    def __post_init__(self) -> None:
        if len(self.tiles) > 16:
            raise ValueError("an array holds at most 16 tiles")

    def area_breakdown_um2(self) -> Dict[str, float]:
        return {
            "tiles": sum(t.area_um2() for t in self.tiles),
            "global_switch": ARRAY_GLOBAL_SWITCH_AREA_UM2,
            "input_fifo": ARRAY_INPUT_FIFO_AREA_UM2,
            "controller": ARRAY_CONTROLLER_AREA_UM2,
        }

    def area_um2(self) -> float:
        return sum(self.area_breakdown_um2().values())

    def control_overhead_fraction(self) -> float:
        """§6 claims the dynamic-stall control logic is <1% of the array."""
        breakdown = self.area_breakdown_um2()
        return (breakdown["controller"] + breakdown["input_fifo"]) / self.area_um2()

    def leakage_w(self) -> float:
        switch = ARRAY_GLOBAL_SWITCH_AREA_UM2 / circuits.ROUTING_SWITCH_256.area_um2
        return (
            sum(t.leakage_w() for t in self.tiles)
            + circuits.ROUTING_SWITCH_256.leakage_w() * switch
        )


@dataclass
class BankStructure:
    """Four arrays plus the bank-level I/O (§6, Fig. 8)."""

    arrays: List[ArrayStructure] = field(
        default_factory=lambda: [ArrayStructure() for _ in range(4)]
    )

    def __post_init__(self) -> None:
        if len(self.arrays) > 4:
            raise ValueError("a bank holds at most 4 arrays")

    def area_breakdown_um2(self) -> Dict[str, float]:
        return {
            "arrays": sum(a.area_um2() for a in self.arrays),
            "bank_input_buffer": BANK_INPUT_BUFFER_AREA_UM2,
            "bank_output_fifo": BANK_OUTPUT_FIFO_AREA_UM2,
            "dma": BANK_DMA_AREA_UM2,
        }

    def area_mm2(self) -> float:
        return sum(self.area_breakdown_um2().values()) / 1e6

    def capacity(self) -> Dict[str, int]:
        """§6: 16,384 STEs per bank, 3,072 of them BV-STEs."""
        tiles = sum(len(a.tiles) for a in self.arrays)
        return {
            "tiles": tiles,
            "stes": tiles * 256,
            "bvs": tiles * 48,
            "max_repetition_bound_per_tile": 48 * 64,
        }


def bank_for_mapping(num_tiles: int, fcb_pairs: int = 0) -> BankStructure:
    """A bank populated with ``num_tiles`` tiles (``fcb_pairs`` tile
    pairs reconfigured to FCB mode)."""
    if num_tiles > 64:
        raise ValueError("a bank holds at most 64 tiles")
    tiles = [TileStructure() for _ in range(num_tiles)]
    for pair in range(min(fcb_pairs, num_tiles // 2)):
        tiles[2 * pair].fcb_mode = True
        tiles[2 * pair + 1].fcb_mode = True
    arrays = []
    for start in range(0, num_tiles, 16):
        arrays.append(ArrayStructure(tiles=tiles[start : start + 16]))
    return BankStructure(arrays=arrays or [ArrayStructure(tiles=[])])
