"""Deterministic fault injection for the cycle simulator (soft errors).

The energy/reliability-critical structures CAMA and the in-memory codesign
literature identify — the CAM match vectors, the BVM's SRAM bit vectors,
and the Active Vector / counter state — are modelled functionally by
:class:`repro.hardware.activity.AHStepper`.  This harness replays a
**golden** (fault-free) run of a compiled rule set over an input stream,
then re-runs it while injecting seeded bit flips into those structures,
and reports:

* the **first-divergence cycle** — the first symbol at which the faulty
  machine's architectural state (all per-state values of every automaton)
  differs from the golden run;
* the **match-set delta** — matches the faulty run missed and matches it
  spuriously reported.

Three fault classes, each with an independent per-cycle injection rate:

``cam``
    One state's CAM match-vector bit flips for one cycle: the state sees
    the current symbol as matching when it does not (or vice versa).
``bv``
    One stored bit of one BV-STE's bit vector flips (SRAM soft error).
``counter``
    One state's Active Vector bit (counter-state LSB) flips.

All randomness flows from one ``random.Random(seed)`` whose draw sequence
depends only on the spec and the input length, so a fixed seed replays
bit-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .errors import SimulationFaultError

FAULT_KINDS = ("cam", "bv", "counter")


@dataclass(frozen=True)
class FaultSpec:
    """Seeded fault-injection configuration."""

    seed: int = 0
    cam_rate: float = 0.0
    bv_rate: float = 0.0
    counter_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("cam_rate", "bv_rate", "counter_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise SimulationFaultError(
                    f"{name} must be within [0, 1], got {rate}"
                )

    def any_faults(self) -> bool:
        return bool(self.cam_rate or self.bv_rate or self.counter_rate)


@dataclass(frozen=True)
class InjectedFault:
    """One injected bit flip."""

    cycle: int
    kind: str  # one of FAULT_KINDS
    regex_index: int  # index into the rule set's automata
    state: int
    bit: int

    def to_json(self) -> Dict[str, Any]:
        return {
            "cycle": self.cycle,
            "kind": self.kind,
            "regex_index": self.regex_index,
            "state": self.state,
            "bit": self.bit,
        }


@dataclass
class FaultReport:
    """Outcome of one fault campaign (golden run vs faulty replay)."""

    spec: FaultSpec
    symbols: int
    injected: List[InjectedFault] = field(default_factory=list)
    first_divergence_cycle: Optional[int] = None
    golden_matches: List[Tuple[int, int]] = field(default_factory=list)
    faulty_matches: List[Tuple[int, int]] = field(default_factory=list)
    missed: List[Tuple[int, int]] = field(default_factory=list)
    spurious: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def diverged(self) -> bool:
        return self.first_divergence_cycle is not None

    def injected_by_kind(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in FAULT_KINDS}
        for fault in self.injected:
            counts[fault.kind] += 1
        return counts

    def to_json(self) -> Dict[str, Any]:
        return {
            "seed": self.spec.seed,
            "rates": {
                "cam": self.spec.cam_rate,
                "bv": self.spec.bv_rate,
                "counter": self.spec.counter_rate,
            },
            "symbols": self.symbols,
            "injected": [fault.to_json() for fault in self.injected],
            "injected_by_kind": self.injected_by_kind(),
            "first_divergence_cycle": self.first_divergence_cycle,
            "golden_matches": len(self.golden_matches),
            "faulty_matches": len(self.faulty_matches),
            "missed": [list(event) for event in self.missed],
            "spurious": [list(event) for event in self.spurious],
            "diverged": self.diverged,
        }


def _make_steppers(ruleset):
    """AH steppers plus their regex ids for anything shaped like a
    :class:`repro.compiler.pipeline.CompiledRuleset`."""
    # Imported here (not at module level) to keep ``repro.resilience``
    # importable from the bottom layers without a circular import.
    from ..hardware.activity import AHStepper

    steppers = [AHStepper(regex.ah) for regex in ruleset.regexes]
    ids = [regex.regex_id for regex in ruleset.regexes]
    if not steppers:
        raise SimulationFaultError("rule set has no compiled automata")
    return steppers, ids


def _digest(steppers: Sequence) -> int:
    """Hash of the full architectural state after one cycle.

    Integers hash by value in CPython, so this is stable across
    processes (``PYTHONHASHSEED`` only perturbs str/bytes hashing).
    """
    return hash(tuple(tuple(s.values) for s in steppers))


def _run(
    ruleset,
    data: bytes,
    spec: Optional[FaultSpec],
) -> Tuple[List[int], List[Tuple[int, int]], List[InjectedFault]]:
    """One replay; ``spec=None`` (or all-zero rates) is the golden run."""
    from ..hardware.activity import StepStats

    steppers, ids = _make_steppers(ruleset)
    bv_sites: List[Tuple[int, int, int]] = []  # (stepper, state, width)
    all_sites: List[Tuple[int, int]] = []
    for index, stepper in enumerate(steppers):
        for q, state in enumerate(stepper.ah.states):
            all_sites.append((index, q))
            if state.width > 1:
                bv_sites.append((index, q, state.width))

    inject = spec is not None and spec.any_faults()
    rng = random.Random(spec.seed) if spec is not None else None

    digests: List[int] = []
    matches: List[Tuple[int, int]] = []
    injected: List[InjectedFault] = []
    for cycle, symbol in enumerate(data):
        cam_patch = None  # (stepper, original CAM row) during this cycle
        if inject and rng.random() < spec.cam_rate:
            index, q = all_sites[rng.randrange(len(all_sites))]
            stepper = steppers[index]
            table = stepper._by_symbol
            original = table[symbol]
            if q in original:
                table[symbol] = tuple(x for x in original if x != q)
            else:
                table[symbol] = original + (q,)
            cam_patch = (stepper, original)
            injected.append(
                InjectedFault(cycle, "cam", index, q, symbol)
            )

        stats = StepStats()
        for index, stepper in enumerate(steppers):
            if stepper.step(symbol, stats):
                matches.append((cycle, ids[index]))

        if cam_patch is not None:  # transient fault: restore the CAM row
            stepper, original = cam_patch
            stepper._by_symbol[symbol] = original

        if inject and rng.random() < spec.bv_rate and bv_sites:
            index, q, width = bv_sites[rng.randrange(len(bv_sites))]
            bit = rng.randrange(width)
            steppers[index].values[q] ^= 1 << bit
            injected.append(InjectedFault(cycle, "bv", index, q, bit))
        if inject and rng.random() < spec.counter_rate:
            index, q = all_sites[rng.randrange(len(all_sites))]
            steppers[index].values[q] ^= 1
            injected.append(InjectedFault(cycle, "counter", index, q, 0))

        digests.append(_digest(steppers))
    return digests, matches, injected


def run_campaign(
    ruleset,
    data: bytes,
    spec: FaultSpec,
    verify_golden: bool = False,
) -> FaultReport:
    """Golden run, faulty replay, and divergence analysis.

    ``ruleset`` is a :class:`repro.compiler.pipeline.CompiledRuleset` (or
    any object with ``.regexes`` carrying ``.ah`` / ``.regex_id``).  With
    ``verify_golden`` the golden run is executed twice and any mismatch —
    which would invalidate the whole comparison — raises
    :class:`SimulationFaultError`.
    """
    golden_digests, golden_matches, _ = _run(ruleset, data, None)
    if verify_golden:
        replay_digests, replay_matches, _ = _run(ruleset, data, None)
        if replay_digests != golden_digests or replay_matches != golden_matches:
            raise SimulationFaultError(
                "golden run is nondeterministic; fault comparison is invalid"
            )
    faulty_digests, faulty_matches, injected = _run(ruleset, data, spec)

    first_divergence: Optional[int] = None
    for cycle, (gold, fault) in enumerate(zip(golden_digests, faulty_digests)):
        if gold != fault:
            first_divergence = cycle
            break

    golden_set = set(golden_matches)
    faulty_set = set(faulty_matches)
    report = FaultReport(
        spec=spec,
        symbols=len(data),
        injected=injected,
        first_divergence_cycle=first_divergence,
        golden_matches=golden_matches,
        faulty_matches=faulty_matches,
        missed=sorted(golden_set - faulty_set),
        spurious=sorted(faulty_set - golden_set),
    )
    if report.diverged:
        from ..telemetry import flight

        if flight.flight_enabled():
            flight.record(
                "fault_divergence",
                seed=spec.seed,
                first_divergence_cycle=first_divergence,
                injected=len(injected),
                missed=len(report.missed),
                spurious=len(report.spurious),
            )
            flight.auto_dump("fault-divergence")
    return report


# ---------------------------------------------------------------------------
# Process-level chaos campaigns (the sharded engine's supervision layer)
# ---------------------------------------------------------------------------

#: Process-level fault kinds ``ChaosCampaign`` can inject into live
#: sharded-scan workers (mapped onto
#: :meth:`repro.matching.sharded.ShardedScanner.inject_fault` modes).
CHAOS_KINDS = ("kill", "die", "stop", "corrupt", "slow")

_CHAOS_MODES = {
    "kill": "kill",  # SIGKILL from outside, no cooperation
    "die": "die",  # worker hard-exits before its next reply
    "stop": "stop",  # SIGSTOP: the OS-level hang (watchdog trip)
    "corrupt": "corrupt",  # one junk frame on the reply pipe
    "slow": "slow",  # sub-deadline stall (must be tolerated)
}


@dataclass(frozen=True)
class ChaosSpec:
    """Seeded process-level chaos configuration.

    The schedule (which chunk, which shard, which fault kind) is drawn
    from ``random.Random(seed)`` and depends only on the spec and the
    chunk count, so a fixed seed replays the same campaign — including
    the supervised recovery it provokes (backoff jitter flows from the
    scanner's own RNG, seeded with the same value).
    """

    seed: int = 0
    kinds: Tuple[str, ...] = ("kill", "stop")
    num_faults: int = 2
    shards: int = 2
    chunk_bytes: int = 1024
    max_restarts: int = 1
    checkpoint_chunks: int = 4
    recv_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        unknown = set(self.kinds) - set(CHAOS_KINDS)
        if unknown:
            raise SimulationFaultError(
                f"unknown chaos kinds {sorted(unknown)}; "
                f"choose from {CHAOS_KINDS}"
            )
        if not self.kinds:
            raise SimulationFaultError("kinds must name at least one fault")
        if self.num_faults < 0:
            raise SimulationFaultError("num_faults must be >= 0")
        if self.shards < 1:
            raise SimulationFaultError("shards must be >= 1")
        if self.chunk_bytes < 1:
            raise SimulationFaultError("chunk_bytes must be >= 1")
        if self.max_restarts < 0:
            raise SimulationFaultError("max_restarts must be >= 0")
        if self.checkpoint_chunks < 1:
            raise SimulationFaultError("checkpoint_chunks must be >= 1")
        if self.recv_timeout_s <= 0:
            raise SimulationFaultError("recv_timeout_s must be positive")


@dataclass(frozen=True)
class ChaosFault:
    """One scheduled process-level fault."""

    chunk: int
    shard: int
    kind: str

    def to_json(self) -> Dict[str, Any]:
        return {"chunk": self.chunk, "shard": self.shard, "kind": self.kind}


@dataclass
class ChaosReport:
    """Outcome of one chaos campaign: supervised scan vs. fused oracle."""

    spec: ChaosSpec
    symbols: int
    faults: List[ChaosFault] = field(default_factory=list)
    golden_matches: int = 0
    chaos_matches: int = 0
    #: Stream offset of the first mismatching event, None when the
    #: merged stream is byte-identical to the fault-free run.
    first_divergence: Optional[int] = None
    restarts: int = 0
    failovers: int = 0
    degraded: int = 0
    replayed_bytes: int = 0

    @property
    def diverged(self) -> bool:
        return self.first_divergence is not None

    def to_json(self) -> Dict[str, Any]:
        return {
            "seed": self.spec.seed,
            "kinds": list(self.spec.kinds),
            "shards": self.spec.shards,
            "symbols": self.symbols,
            "faults": [fault.to_json() for fault in self.faults],
            "golden_matches": self.golden_matches,
            "chaos_matches": self.chaos_matches,
            "first_divergence": self.first_divergence,
            "diverged": self.diverged,
            "restarts": self.restarts,
            "failovers": self.failovers,
            "degraded": self.degraded,
            "replayed_bytes": self.replayed_bytes,
        }


def chaos_schedule(spec: ChaosSpec, num_chunks: int, num_shards: int
                   ) -> List[ChaosFault]:
    """The campaign's seeded fault schedule, sorted by chunk."""
    rng = random.Random(spec.seed)
    faults = [
        ChaosFault(
            chunk=rng.randrange(num_chunks),
            shard=rng.randrange(num_shards),
            kind=spec.kinds[rng.randrange(len(spec.kinds))],
        )
        for _ in range(spec.num_faults)
    ]
    return sorted(faults, key=lambda f: (f.chunk, f.shard))


def run_chaos(compiled, data: bytes, spec: ChaosSpec) -> ChaosReport:
    """Run one seeded chaos campaign against a live supervised scan.

    ``compiled`` is a sequence of
    :class:`repro.compiler.pipeline.CompiledRegex`.  The oracle is the
    single-process fused engine over the same chunking; the chaos run is
    a :class:`~repro.matching.sharded.ShardedScanner` armed with a
    :class:`~repro.resilience.budget.RestartPolicy`, with the scheduled
    faults injected into its workers mid-stream.  The report's
    ``first_divergence`` stays ``None`` exactly when supervised recovery
    was lossless (no event missed, duplicated, or reordered).
    """
    from ..matching.fused import FusedMatcher, fuse_patterns
    from ..matching.sharded import ShardedScanner
    from .budget import RestartPolicy

    compiled = list(compiled)
    if not compiled:
        raise SimulationFaultError("chaos campaign needs compiled patterns")
    if not data:
        raise SimulationFaultError("chaos campaign needs input data")
    ids = [regex.regex_id for regex in compiled]
    step = spec.chunk_bytes
    chunks = [data[base : base + step] for base in range(0, len(data), step)]

    oracle = FusedMatcher(fuse_patterns(compiled))
    golden: List[Tuple[int, int]] = []
    pos = 0
    for chunk in chunks:
        golden.extend(
            (ids[slot], pos + end) for slot, end in oracle.feed(chunk)
        )
        pos += len(chunk)
    # End-of-input finalisation: anchored ($-gated) patterns hold their
    # candidate matches until the stream ends, so both the oracle and
    # the chaos run must be finalised for the comparison to cover them.
    golden.extend((ids[slot], pos + end) for slot, end in oracle.finish())

    policy = RestartPolicy(
        max_restarts=spec.max_restarts,
        backoff_base_s=0.01,
        backoff_cap_s=0.05,
        checkpoint_chunks=spec.checkpoint_chunks,
    )
    observed: List[Tuple[int, int]] = []
    with ShardedScanner(
        compiled,
        ids,
        spec.shards,
        chunk_bytes=spec.chunk_bytes,
        recv_timeout_s=spec.recv_timeout_s,
        restart_policy=policy,
        seed=spec.seed,
    ) as scanner:
        faults = chaos_schedule(spec, len(chunks), scanner.num_shards)
        by_chunk: Dict[int, List[ChaosFault]] = {}
        for fault in faults:
            by_chunk.setdefault(fault.chunk, []).append(fault)
        pos = 0
        for index, chunk in enumerate(chunks):
            for fault in by_chunk.get(index, ()):
                scanner.inject_fault(fault.shard, _CHAOS_MODES[fault.kind])
            observed.extend(
                (pid, pos + end) for pid, end in scanner.feed(chunk)
            )
            pos += len(chunk)
        observed.extend(
            (pid, pos + end) for pid, end in scanner.finish()
        )
        restarts = list(scanner.restarts)
        failovers = list(scanner.failovers)
        failures = list(scanner.failures)

    first_divergence: Optional[int] = None
    for gold, seen in zip(golden, observed):
        if gold != seen:
            first_divergence = min(gold[1], seen[1])
            break
    else:
        if len(golden) != len(observed):
            shorter = min(len(golden), len(observed))
            longer = golden if len(golden) > len(observed) else observed
            first_divergence = longer[shorter][1]

    report = ChaosReport(
        spec=spec,
        symbols=len(data),
        faults=faults,
        golden_matches=len(golden),
        chaos_matches=len(observed),
        first_divergence=first_divergence,
        restarts=len(restarts),
        failovers=len(failovers),
        degraded=len(failures),
        replayed_bytes=sum(r.replayed_bytes for r in restarts),
    )
    from ..telemetry import flight

    if flight.flight_enabled():
        flight.record(
            "chaos_campaign",
            seed=spec.seed,
            faults=[fault.to_json() for fault in faults],
            diverged=report.diverged,
            restarts=report.restarts,
            failovers=report.failovers,
            degraded=report.degraded,
        )
        if report.diverged:
            flight.auto_dump("chaos-divergence")
    return report


def format_chaos_report(report: ChaosReport) -> str:
    """Human-readable chaos summary (``repro faults --chaos``)."""
    injected = ", ".join(
        f"{fault.kind}@chunk{fault.chunk}/shard{fault.shard}"
        for fault in report.faults
    ) or "none"
    lines = [
        f"symbols          : {report.symbols}",
        f"seed             : {report.spec.seed}",
        f"shards           : {report.spec.shards}",
        f"injected faults  : {injected}",
        f"golden matches   : {report.golden_matches}",
        f"chaos matches    : {report.chaos_matches}",
        "stream parity    : "
        + (
            f"DIVERGED at offset {report.first_divergence}"
            if report.diverged
            else "byte-identical"
        ),
        f"restarts         : {report.restarts}",
        f"failovers        : {report.failovers}",
        f"degraded shards  : {report.degraded}",
        f"replayed bytes   : {report.replayed_bytes}",
    ]
    return "\n".join(lines)


def format_report(report: FaultReport) -> str:
    """Human-readable campaign summary (the ``faults`` CLI verb)."""
    by_kind = report.injected_by_kind()
    lines = [
        f"symbols          : {report.symbols}",
        f"seed             : {report.spec.seed}",
        "injected faults  : "
        + ", ".join(f"{kind}={by_kind[kind]}" for kind in FAULT_KINDS)
        + f" (total {len(report.injected)})",
        "first divergence : "
        + (
            f"cycle {report.first_divergence_cycle}"
            if report.diverged
            else "none"
        ),
        f"golden matches   : {len(report.golden_matches)}",
        f"faulty matches   : {len(report.faulty_matches)}",
        f"missed matches   : {len(report.missed)}",
        f"spurious matches : {len(report.spurious)}",
    ]
    return "\n".join(lines)
