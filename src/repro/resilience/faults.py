"""Deterministic fault injection for the cycle simulator (soft errors).

The energy/reliability-critical structures CAMA and the in-memory codesign
literature identify — the CAM match vectors, the BVM's SRAM bit vectors,
and the Active Vector / counter state — are modelled functionally by
:class:`repro.hardware.activity.AHStepper`.  This harness replays a
**golden** (fault-free) run of a compiled rule set over an input stream,
then re-runs it while injecting seeded bit flips into those structures,
and reports:

* the **first-divergence cycle** — the first symbol at which the faulty
  machine's architectural state (all per-state values of every automaton)
  differs from the golden run;
* the **match-set delta** — matches the faulty run missed and matches it
  spuriously reported.

Three fault classes, each with an independent per-cycle injection rate:

``cam``
    One state's CAM match-vector bit flips for one cycle: the state sees
    the current symbol as matching when it does not (or vice versa).
``bv``
    One stored bit of one BV-STE's bit vector flips (SRAM soft error).
``counter``
    One state's Active Vector bit (counter-state LSB) flips.

All randomness flows from one ``random.Random(seed)`` whose draw sequence
depends only on the spec and the input length, so a fixed seed replays
bit-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .errors import SimulationFaultError

FAULT_KINDS = ("cam", "bv", "counter")


@dataclass(frozen=True)
class FaultSpec:
    """Seeded fault-injection configuration."""

    seed: int = 0
    cam_rate: float = 0.0
    bv_rate: float = 0.0
    counter_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("cam_rate", "bv_rate", "counter_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise SimulationFaultError(
                    f"{name} must be within [0, 1], got {rate}"
                )

    def any_faults(self) -> bool:
        return bool(self.cam_rate or self.bv_rate or self.counter_rate)


@dataclass(frozen=True)
class InjectedFault:
    """One injected bit flip."""

    cycle: int
    kind: str  # one of FAULT_KINDS
    regex_index: int  # index into the rule set's automata
    state: int
    bit: int

    def to_json(self) -> Dict[str, Any]:
        return {
            "cycle": self.cycle,
            "kind": self.kind,
            "regex_index": self.regex_index,
            "state": self.state,
            "bit": self.bit,
        }


@dataclass
class FaultReport:
    """Outcome of one fault campaign (golden run vs faulty replay)."""

    spec: FaultSpec
    symbols: int
    injected: List[InjectedFault] = field(default_factory=list)
    first_divergence_cycle: Optional[int] = None
    golden_matches: List[Tuple[int, int]] = field(default_factory=list)
    faulty_matches: List[Tuple[int, int]] = field(default_factory=list)
    missed: List[Tuple[int, int]] = field(default_factory=list)
    spurious: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def diverged(self) -> bool:
        return self.first_divergence_cycle is not None

    def injected_by_kind(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in FAULT_KINDS}
        for fault in self.injected:
            counts[fault.kind] += 1
        return counts

    def to_json(self) -> Dict[str, Any]:
        return {
            "seed": self.spec.seed,
            "rates": {
                "cam": self.spec.cam_rate,
                "bv": self.spec.bv_rate,
                "counter": self.spec.counter_rate,
            },
            "symbols": self.symbols,
            "injected": [fault.to_json() for fault in self.injected],
            "injected_by_kind": self.injected_by_kind(),
            "first_divergence_cycle": self.first_divergence_cycle,
            "golden_matches": len(self.golden_matches),
            "faulty_matches": len(self.faulty_matches),
            "missed": [list(event) for event in self.missed],
            "spurious": [list(event) for event in self.spurious],
            "diverged": self.diverged,
        }


def _make_steppers(ruleset):
    """AH steppers plus their regex ids for anything shaped like a
    :class:`repro.compiler.pipeline.CompiledRuleset`."""
    # Imported here (not at module level) to keep ``repro.resilience``
    # importable from the bottom layers without a circular import.
    from ..hardware.activity import AHStepper

    steppers = [AHStepper(regex.ah) for regex in ruleset.regexes]
    ids = [regex.regex_id for regex in ruleset.regexes]
    if not steppers:
        raise SimulationFaultError("rule set has no compiled automata")
    return steppers, ids


def _digest(steppers: Sequence) -> int:
    """Hash of the full architectural state after one cycle.

    Integers hash by value in CPython, so this is stable across
    processes (``PYTHONHASHSEED`` only perturbs str/bytes hashing).
    """
    return hash(tuple(tuple(s.values) for s in steppers))


def _run(
    ruleset,
    data: bytes,
    spec: Optional[FaultSpec],
) -> Tuple[List[int], List[Tuple[int, int]], List[InjectedFault]]:
    """One replay; ``spec=None`` (or all-zero rates) is the golden run."""
    from ..hardware.activity import StepStats

    steppers, ids = _make_steppers(ruleset)
    bv_sites: List[Tuple[int, int, int]] = []  # (stepper, state, width)
    all_sites: List[Tuple[int, int]] = []
    for index, stepper in enumerate(steppers):
        for q, state in enumerate(stepper.ah.states):
            all_sites.append((index, q))
            if state.width > 1:
                bv_sites.append((index, q, state.width))

    inject = spec is not None and spec.any_faults()
    rng = random.Random(spec.seed) if spec is not None else None

    digests: List[int] = []
    matches: List[Tuple[int, int]] = []
    injected: List[InjectedFault] = []
    for cycle, symbol in enumerate(data):
        cam_patch = None  # (stepper, original CAM row) during this cycle
        if inject and rng.random() < spec.cam_rate:
            index, q = all_sites[rng.randrange(len(all_sites))]
            stepper = steppers[index]
            table = stepper._by_symbol
            original = table[symbol]
            if q in original:
                table[symbol] = tuple(x for x in original if x != q)
            else:
                table[symbol] = original + (q,)
            cam_patch = (stepper, original)
            injected.append(
                InjectedFault(cycle, "cam", index, q, symbol)
            )

        stats = StepStats()
        for index, stepper in enumerate(steppers):
            if stepper.step(symbol, stats):
                matches.append((cycle, ids[index]))

        if cam_patch is not None:  # transient fault: restore the CAM row
            stepper, original = cam_patch
            stepper._by_symbol[symbol] = original

        if inject and rng.random() < spec.bv_rate and bv_sites:
            index, q, width = bv_sites[rng.randrange(len(bv_sites))]
            bit = rng.randrange(width)
            steppers[index].values[q] ^= 1 << bit
            injected.append(InjectedFault(cycle, "bv", index, q, bit))
        if inject and rng.random() < spec.counter_rate:
            index, q = all_sites[rng.randrange(len(all_sites))]
            steppers[index].values[q] ^= 1
            injected.append(InjectedFault(cycle, "counter", index, q, 0))

        digests.append(_digest(steppers))
    return digests, matches, injected


def run_campaign(
    ruleset,
    data: bytes,
    spec: FaultSpec,
    verify_golden: bool = False,
) -> FaultReport:
    """Golden run, faulty replay, and divergence analysis.

    ``ruleset`` is a :class:`repro.compiler.pipeline.CompiledRuleset` (or
    any object with ``.regexes`` carrying ``.ah`` / ``.regex_id``).  With
    ``verify_golden`` the golden run is executed twice and any mismatch —
    which would invalidate the whole comparison — raises
    :class:`SimulationFaultError`.
    """
    golden_digests, golden_matches, _ = _run(ruleset, data, None)
    if verify_golden:
        replay_digests, replay_matches, _ = _run(ruleset, data, None)
        if replay_digests != golden_digests or replay_matches != golden_matches:
            raise SimulationFaultError(
                "golden run is nondeterministic; fault comparison is invalid"
            )
    faulty_digests, faulty_matches, injected = _run(ruleset, data, spec)

    first_divergence: Optional[int] = None
    for cycle, (gold, fault) in enumerate(zip(golden_digests, faulty_digests)):
        if gold != fault:
            first_divergence = cycle
            break

    golden_set = set(golden_matches)
    faulty_set = set(faulty_matches)
    report = FaultReport(
        spec=spec,
        symbols=len(data),
        injected=injected,
        first_divergence_cycle=first_divergence,
        golden_matches=golden_matches,
        faulty_matches=faulty_matches,
        missed=sorted(golden_set - faulty_set),
        spurious=sorted(faulty_set - golden_set),
    )
    if report.diverged:
        from ..telemetry import flight

        if flight.flight_enabled():
            flight.record(
                "fault_divergence",
                seed=spec.seed,
                first_divergence_cycle=first_divergence,
                injected=len(injected),
                missed=len(report.missed),
                spurious=len(report.spurious),
            )
            flight.auto_dump("fault-divergence")
    return report


def format_report(report: FaultReport) -> str:
    """Human-readable campaign summary (the ``faults`` CLI verb)."""
    by_kind = report.injected_by_kind()
    lines = [
        f"symbols          : {report.symbols}",
        f"seed             : {report.spec.seed}",
        "injected faults  : "
        + ", ".join(f"{kind}={by_kind[kind]}" for kind in FAULT_KINDS)
        + f" (total {len(report.injected)})",
        "first divergence : "
        + (
            f"cycle {report.first_divergence_cycle}"
            if report.diverged
            else "none"
        ),
        f"golden matches   : {len(report.golden_matches)}",
        f"faulty matches   : {len(report.faulty_matches)}",
        f"missed matches   : {len(report.missed)}",
        f"spurious matches : {len(report.spurious)}",
    ]
    return "\n".join(lines)
