"""Per-pattern fault-isolation reports for batch compilation.

:func:`repro.compiler.pipeline.compile_ruleset` and
:class:`repro.matching.PatternSet` (``on_error="quarantine"``) never let
one bad pattern abort a batch: each pattern gets a :class:`CompileReport`
recording whether it compiled, and if not, the structured error code,
the phase that failed, and the elapsed wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .errors import ReproError

STATUS_OK = "ok"
STATUS_QUARANTINED = "quarantined"
STATUS_DEGRADED = "degraded"


@dataclass
class CompileReport:
    """Outcome of compiling one pattern within a batch."""

    pattern_id: int
    pattern: str
    status: str = STATUS_OK
    error_code: Optional[str] = None
    error: Optional[str] = None
    phase: Optional[str] = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def quarantined(self) -> bool:
        return self.status == STATUS_QUARANTINED

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "pattern_id": self.pattern_id,
            "pattern": self.pattern,
            "status": self.status,
            "elapsed_s": self.elapsed_s,
        }
        if self.error_code is not None:
            out["error_code"] = self.error_code
        if self.error is not None:
            out["error"] = self.error
        if self.phase is not None:
            out["phase"] = self.phase
        return out


def report_from_error(
    pattern_id: int,
    pattern: str,
    error: Exception,
    elapsed_s: float = 0.0,
    default_phase: Optional[str] = None,
) -> CompileReport:
    """Build a quarantine report from a caught compile error."""
    code = error.code if isinstance(error, ReproError) else "E_REPRO"
    phase = getattr(error, "phase", None) or default_phase
    return CompileReport(
        pattern_id=pattern_id,
        pattern=pattern,
        status=STATUS_QUARANTINED,
        error_code=code,
        error=str(error).splitlines()[0] if str(error) else repr(error),
        phase=phase,
        elapsed_s=elapsed_s,
    )


@dataclass
class QuarantineSummary:
    """Roll-up over a batch's :class:`CompileReport` list."""

    reports: List[CompileReport] = field(default_factory=list)

    @property
    def compiled(self) -> int:
        return sum(1 for r in self.reports if r.ok)

    @property
    def quarantined(self) -> int:
        return sum(1 for r in self.reports if r.quarantined)

    def by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for report in self.reports:
            if report.error_code:
                counts[report.error_code] = counts.get(report.error_code, 0) + 1
        return counts


def summarize(reports: Sequence[CompileReport]) -> QuarantineSummary:
    return QuarantineSummary(reports=list(reports))
