"""Structured error taxonomy for the whole compile→map→scan→simulate stack.

Every failure the library raises deliberately derives from
:class:`ReproError` and carries a stable machine-readable ``code``:

==========================  ===============  =====================================
class                       code             raised by
==========================  ===============  =====================================
:class:`RegexSyntaxError`   ``E_SYNTAX``     :mod:`repro.regex.parser`
:class:`UnsupportedFeatureError` ``E_UNSUPPORTED`` parser (lookaround, backrefs,
                                             flags) and :mod:`repro.compiler.translate`
:class:`BudgetExceededError` ``E_BUDGET``    :mod:`repro.resilience.budget` checks
                                             in the rewrite/compile/scan paths
:class:`CapacityError`      ``E_CAPACITY``   :mod:`repro.compiler.mapping` tile and
                                             array overflow (``MappingError``)
:class:`SimulationFaultError` ``E_FAULT``    :mod:`repro.resilience.faults` and the
                                             cycle simulators
==========================  ===============  =====================================

:class:`ReproError` subclasses :class:`ValueError` so every pre-existing
``except ValueError`` site (and test) keeps working; new code should catch
``ReproError`` and dispatch on ``error.code``.

The taxonomy is defined here, below every other ``repro`` module, so any
layer can import it without cycles.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ReproError(ValueError):
    """Base class for every structured error raised by the library.

    Attributes:
        code: stable machine-readable error code (``E_*``).
        phase: compile/scan phase the error surfaced in, filled by the
            pipeline when it quarantines a pattern (``parse``, ``rewrite``,
            ``translate``, ``mapping``, ``scan``, ...).
    """

    code: str = "E_REPRO"

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message
        self.phase: Optional[str] = None

    def to_json(self) -> Dict[str, Any]:
        """A JSON-serialisable error object (the CLI's ``--json`` shape)."""
        out: Dict[str, Any] = {
            "code": self.code,
            "message": self.message,
        }
        if self.phase is not None:
            out["phase"] = self.phase
        return out


class RegexSyntaxError(ReproError):
    """Malformed regex syntax, with a caret diagnostic pointing at ``pos``.

    >>> err = RegexSyntaxError("unbalanced ')'", "ab)c", 3)
    >>> print(err)
    unbalanced ')' at position 3 in 'ab)c'
        ab)c
           ^
    """

    code = "E_SYNTAX"

    def __init__(self, message: str, pattern: str = "", pos: int = 0) -> None:
        # Raised without pattern context (e.g. an unsupported construct
        # detected far from the parser) the message stays plain.
        where = f" at position {pos} in {pattern!r}" if pattern else ""
        super().__init__(f"{message}{where}")
        self.reason = message
        self.pattern = pattern
        self.pos = pos

    def __str__(self) -> str:
        if not self.pattern:
            return self.message
        return f"{self.message}\n{self.caret_diagnostic()}"

    def caret_diagnostic(self, indent: int = 4) -> str:
        """The pattern with a ``^`` marker under the offending position."""
        pad = " " * indent
        # Clamp: pos may equal len(pattern) ("unexpected end of pattern").
        pos = min(max(self.pos, 0), len(self.pattern))
        return f"{pad}{self.pattern}\n{pad}{' ' * pos}^"

    def to_json(self) -> Dict[str, Any]:
        out = super().to_json()
        out["pattern"] = self.pattern
        out["pos"] = self.pos
        return out


class UnsupportedFeatureError(RegexSyntaxError):
    """A syntactically valid construct the engine deliberately rejects
    (backreferences, lookaround, unknown inline flags, ...)."""

    code = "E_UNSUPPORTED"


class BudgetExceededError(ReproError):
    """A configured resource budget (states, unfold size, cache bytes,
    wall-clock deadline) was exceeded; see :mod:`repro.resilience.budget`."""

    code = "E_BUDGET"

    def __init__(
        self,
        message: str,
        kind: str = "",
        limit: Optional[float] = None,
        actual: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.limit = limit
        self.actual = actual

    def to_json(self) -> Dict[str, Any]:
        out = super().to_json()
        if self.kind:
            out["kind"] = self.kind
        if self.limit is not None:
            out["limit"] = self.limit
        if self.actual is not None:
            out["actual"] = self.actual
        return out


class CapacityError(ReproError):
    """An automaton exceeds what the target hardware hierarchy can hold
    (tile/array STE or BV overflow during mapping)."""

    code = "E_CAPACITY"


class SimulationFaultError(ReproError):
    """The cycle simulator or the fault-injection harness was driven with
    an inconsistent configuration, or detected internal nondeterminism."""

    code = "E_FAULT"


#: code -> class, for decoding structured error objects.
ERROR_CODES = {
    cls.code: cls
    for cls in (
        ReproError,
        RegexSyntaxError,
        UnsupportedFeatureError,
        BudgetExceededError,
        CapacityError,
        SimulationFaultError,
    )
}
