"""Resource budgets threaded through compilation and scanning.

A :class:`Budget` is an immutable bundle of limits.  ``None`` disables a
limit; the default ``Budget()`` is fully unlimited, so the hot paths pay
nothing unless a caller opts in (the overhead guard tests enforce this).

Compile-time limits (checked at phase boundaries by
:mod:`repro.compiler.pipeline` and inside :mod:`repro.regex.rewrite`):

* ``max_states`` — AH-NBVA state count of one compiled pattern;
* ``max_unfold`` — symbols a single ``{m,n}`` unfolding may create;
* ``max_bv_width`` — widest virtual bit vector a pattern may demand.

Run-time limits (checked by the scan engines in
:mod:`repro.matching.engine` / :mod:`repro.matching.fused`):

* ``max_cache_bytes`` — lazy-DFA successor-cache footprint of the fused
  engine (estimated bytes, see :func:`repro.matching.fused.entry_bytes`);
  when set it also caps the fused engine's dense transition table;
* ``max_table_states`` — dense-DFA states the fused engine's
  table-driven inner loop may intern before falling back to bitset
  stepping.  ``0`` disables the table entirely (pure bitset stepping);
  ``None`` uses :data:`repro.matching.fused.DEFAULT_TABLE_STATES`;
* ``deadline_s`` — cooperative wall-clock deadline.  The clock starts
  when work starts (:meth:`Budget.start`) and is checked at compile phase
  boundaries and every ``check_bytes`` scanned bytes, so exceeding it
  raises :class:`~repro.resilience.errors.BudgetExceededError` promptly
  without a per-symbol timestamp in the hot loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from .errors import BudgetExceededError

#: Default deadline granularity for the scan loops (bytes between checks).
DEFAULT_CHECK_BYTES = 4096

#: Default supervised-restart backoff base/cap and checkpoint cadence.
DEFAULT_BACKOFF_BASE_S = 0.05
DEFAULT_BACKOFF_CAP_S = 2.0
DEFAULT_CHECKPOINT_CHUNKS = 8


@dataclass(frozen=True)
class RestartPolicy:
    """Supervised-restart parameters for the sharded scan workers.

    Attached to :class:`Budget` (``Budget(restart=RestartPolicy())``)
    and threaded through ``CompilerOptions`` to
    :class:`repro.matching.sharded.ShardedScanner`, which turns the
    degrade-only failure handling into a restart → failover → degrade
    state machine:

    * ``max_restarts`` — bounded retry: how many times one shard's
      worker may be restarted before its patterns fail over onto the
      surviving shards;
    * ``backoff_base_s`` / ``backoff_cap_s`` — exponential backoff
      between restart attempts (``base * 2**(attempt-1)``, capped);
    * ``jitter`` — symmetric fractional jitter on each backoff delay,
      drawn from the scanner's seeded RNG so campaigns stay replayable;
    * ``checkpoint_chunks`` — how often (in broadcast chunks) every
      live worker ships its activation snapshot back to the parent; the
      parent buffers at most this many tail chunks for replay.
    """

    max_restarts: int = 2
    backoff_base_s: float = DEFAULT_BACKOFF_BASE_S
    backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S
    jitter: float = 0.1
    checkpoint_chunks: int = DEFAULT_CHECKPOINT_CHUNKS

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("backoff_cap_s must be >= backoff_base_s")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.checkpoint_chunks < 1:
            raise ValueError("checkpoint_chunks must be >= 1")

    def backoff_s(self, attempt: int, rng=None) -> float:
        """Delay before restart ``attempt`` (1-based), jittered by ``rng``."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = min(self.backoff_cap_s, self.backoff_base_s * 2 ** (attempt - 1))
        if rng is not None and self.jitter:
            delay *= 1.0 + self.jitter * rng.uniform(-1.0, 1.0)
        return delay


@dataclass(frozen=True)
class Budget:
    """Immutable resource limits; ``None`` means unlimited."""

    max_states: Optional[int] = None
    max_unfold: Optional[int] = None
    max_bv_width: Optional[int] = None
    max_cache_bytes: Optional[int] = None
    deadline_s: Optional[float] = None
    check_bytes: int = DEFAULT_CHECK_BYTES
    max_table_states: Optional[int] = None
    #: Supervised-restart policy for the sharded engine's workers;
    #: ``None`` keeps the degrade-only behaviour (no checkpoints, no
    #: tail buffering — the hot path pays nothing).
    restart: Optional[RestartPolicy] = None

    def __post_init__(self) -> None:
        for name in ("max_states", "max_unfold", "max_bv_width",
                     "max_cache_bytes"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 or None, got {value}")
        # 0 is meaningful here: it disables the dense table outright.
        if self.max_table_states is not None and self.max_table_states < 0:
            raise ValueError(
                "max_table_states must be >= 0 or None, "
                f"got {self.max_table_states}"
            )
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ValueError("deadline_s must be >= 0 or None")
        if self.check_bytes < 1:
            raise ValueError("check_bytes must be >= 1")

    # ------------------------------------------------------------------

    def unlimited(self) -> bool:
        """True when every limit is disabled (the default)."""
        return (
            self.max_states is None
            and self.max_unfold is None
            and self.max_bv_width is None
            and self.max_cache_bytes is None
            and self.deadline_s is None
        )

    def start(self) -> "BudgetClock":
        """Start the cooperative deadline clock for one unit of work."""
        return BudgetClock(self)

    # -- compile-time checks -------------------------------------------

    def charge_states(self, states: int, pattern: str = "") -> None:
        if self.max_states is not None and states > self.max_states:
            where = f" for {pattern!r}" if pattern else ""
            raise BudgetExceededError(
                f"automaton needs {states} states{where}, exceeding "
                f"max_states={self.max_states}",
                kind="states",
                limit=self.max_states,
                actual=states,
            )

    def charge_bv_width(self, width: int, pattern: str = "") -> None:
        if self.max_bv_width is not None and width > self.max_bv_width:
            where = f" for {pattern!r}" if pattern else ""
            raise BudgetExceededError(
                f"bit vector of width {width}{where} exceeds "
                f"max_bv_width={self.max_bv_width}",
                kind="bv_width",
                limit=self.max_bv_width,
                actual=width,
            )


class BudgetClock:
    """The running side of a :class:`Budget`: a started deadline.

    Cheap to create; :meth:`check` is a no-op attribute test when no
    deadline is configured.
    """

    __slots__ = ("budget", "expiry")

    def __init__(self, budget: Budget) -> None:
        self.budget = budget
        self.expiry: Optional[float] = (
            time.monotonic() + budget.deadline_s
            if budget.deadline_s is not None
            else None
        )

    def expired(self) -> bool:
        return self.expiry is not None and time.monotonic() >= self.expiry

    def check(self, phase: str) -> None:
        """Raise :class:`BudgetExceededError` when the deadline passed."""
        if self.expiry is not None and time.monotonic() >= self.expiry:
            error = BudgetExceededError(
                f"deadline of {self.budget.deadline_s:g}s exceeded "
                f"during {phase}",
                kind="deadline",
                limit=self.budget.deadline_s,
            )
            error.phase = phase
            from ..telemetry import flight

            if flight.flight_enabled():
                flight.record(
                    "budget_exceeded",
                    phase=phase,
                    budget_kind="deadline",
                    limit=self.budget.deadline_s,
                )
            raise error
