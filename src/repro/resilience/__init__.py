"""Resilience layer: error taxonomy, resource budgets, fault isolation,
and fault injection.

Four pillars (see ``docs/robustness.md``):

* **Error taxonomy** (:mod:`repro.resilience.errors`) — every deliberate
  failure derives from :class:`ReproError` and carries a stable ``code``;
* **Resource budgets** (:mod:`repro.resilience.budget`) — opt-in limits
  on automaton size, ``{m,n}`` unfolding, BV width, lazy-DFA cache bytes,
  and a cooperative wall-clock deadline, threaded through
  ``compile_pattern``/``compile_ruleset`` and all five scan engines;
* **Fault isolation** (:mod:`repro.resilience.report`) — batch compiles
  quarantine bad patterns into per-pattern :class:`CompileReport` objects
  instead of aborting;
* **Fault injection** (:mod:`repro.resilience.faults`) — seeded bit flips
  in CAM match vectors, BVM bit vectors, and counter state, with golden
  replay and first-divergence reporting (CLI verb ``faults``);
* **Supervision** (:class:`RestartPolicy` + the chaos harness in
  :mod:`repro.resilience.faults`) — bounded restart-with-backoff and
  checkpointed recovery for the sharded scan workers, exercised by
  seeded process-level chaos campaigns (``repro faults --chaos``).
"""

from .budget import DEFAULT_CHECK_BYTES, Budget, BudgetClock, RestartPolicy
from .errors import (
    ERROR_CODES,
    BudgetExceededError,
    CapacityError,
    ReproError,
    RegexSyntaxError,
    SimulationFaultError,
    UnsupportedFeatureError,
)
from .report import (
    STATUS_DEGRADED,
    STATUS_OK,
    STATUS_QUARANTINED,
    CompileReport,
    QuarantineSummary,
    report_from_error,
    summarize,
)
from .faults import (
    CHAOS_KINDS,
    FAULT_KINDS,
    ChaosFault,
    ChaosReport,
    ChaosSpec,
    FaultReport,
    FaultSpec,
    InjectedFault,
    chaos_schedule,
    format_chaos_report,
    format_report,
    run_campaign,
    run_chaos,
)

__all__ = [
    "Budget",
    "BudgetClock",
    "BudgetExceededError",
    "CHAOS_KINDS",
    "CapacityError",
    "ChaosFault",
    "ChaosReport",
    "ChaosSpec",
    "CompileReport",
    "DEFAULT_CHECK_BYTES",
    "ERROR_CODES",
    "FAULT_KINDS",
    "FaultReport",
    "FaultSpec",
    "InjectedFault",
    "QuarantineSummary",
    "ReproError",
    "RegexSyntaxError",
    "RestartPolicy",
    "STATUS_DEGRADED",
    "STATUS_OK",
    "STATUS_QUARANTINED",
    "SimulationFaultError",
    "UnsupportedFeatureError",
    "chaos_schedule",
    "format_chaos_report",
    "format_report",
    "report_from_error",
    "run_campaign",
    "run_chaos",
    "summarize",
]
