"""Metrics primitives: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is a named collection of metric instruments.
Instruments are identified by a name plus optional labels
(``registry.counter("sim.tile.bvm_activations", tile=3)``); the same
(name, labels) pair always returns the same instrument, so call sites
can be stateless.  ``snapshot()`` renders everything to a plain
JSON-serialisable dict keyed by canonical names (``name{label=value}``).

The instruments deliberately avoid locks on the update path: under
CPython the ``+=`` on a counter is as atomic as the simulators need,
and the registry's creation path (the only structural mutation) is
guarded.  Hot loops are expected to gate on
``repro.telemetry.metrics_enabled()`` and skip instrumentation entirely
when it is off — that is the no-op fast path.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Default boundaries for active-state occupancy histograms: bucket ``i``
#: counts observations ``value <= bounds[i]`` (first matching bound); a
#: final implicit overflow bucket catches everything above the last bound.
OCCUPANCY_BUCKETS: Tuple[float, ...] = (
    0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
)

#: Default boundaries for microsecond latency histograms.
LATENCY_US_BUCKETS: Tuple[float, ...] = (
    10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 1_000_000,
)


def canonical_key(name: str, labels: Mapping[str, Any]) -> str:
    """``name`` or ``name{a=1,b=x}`` with label keys sorted."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Mapping[str, Any]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value (plus the running maximum, for occupancies)."""

    __slots__ = ("name", "labels", "value", "max_value")

    def __init__(self, name: str, labels: Mapping[str, Any]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value: float = 0.0
        self.max_value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def update_max(self, value: float) -> None:
        """Keep only the high-water mark (``value`` tracks it too)."""
        if value > self.max_value:
            self.max_value = value
            self.value = value


class Histogram:
    """Fixed-boundary histogram with count/sum/min/max.

    ``bounds`` are inclusive upper bucket edges; an implicit overflow
    bucket follows the last edge, so ``len(counts) == len(bounds) + 1``.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "sum",
                 "min", "max")

    def __init__(
        self,
        name: str,
        labels: Mapping[str, Any],
        bounds: Sequence[float] = OCCUPANCY_BUCKETS,
    ) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted: {bounds!r}")
        self.name = name
        self.labels = dict(labels)
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Get-or-create store of named instruments with one snapshot view."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors -------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = canonical_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(
                    key, Counter(name, labels)
                )
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = canonical_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(key, Gauge(name, labels))
        return instrument

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = OCCUPANCY_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        key = canonical_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    key, Histogram(name, labels, bounds)
                )
        return instrument

    # -- read side ------------------------------------------------------

    def get(self, name: str, **labels: Any) -> Optional[Any]:
        """Current value of a counter/gauge, or a histogram dict; None
        when the instrument was never touched."""
        key = canonical_key(name, labels)
        if key in self._counters:
            return self._counters[key].value
        if key in self._gauges:
            return self._gauges[key].value
        if key in self._histograms:
            return self._histograms[key].to_dict()
        return None

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serialisable view of every instrument."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {
                    k: {"value": g.value, "max": g.max_value}
                    for k, g in self._gauges.items()
                },
                "histograms": {
                    k: h.to_dict() for k, h in self._histograms.items()
                },
            }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Drop every instrument (tests and fresh CLI sessions)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
