"""Scan-path profiler: sampled attribution for the fused hot loop.

The fused engine advances every pattern with one big-int step per byte,
which makes the usual telemetry counters blind to *which* patterns and
*which* input regions burn the cycles — exactly the per-tile activity
attribution BVAP (§6/§8) and CAMA use to make their energy case in
hardware.  This module is the software lens for the same question:

* **per-pattern activation share** — how much of the combined active
  bitset each pattern keeps hot (the patterns that defeat the lazy-DFA
  cache and dominate the big-int work);
* **per-pattern time attribution** — sampled step time split across the
  patterns active during the step;
* **lazy-DFA cache hit ratio over time** — a bounded series of
  (offset, hits, misses) points showing warm-up and thrash;
* **active-state-density heatmap over input offsets** — which byte
  regions of the input light the automaton up;
* **per-byte-class stepping cost** — the 256 input symbols grouped into
  transition-equivalence classes (identical fused match masks), each
  with its sampled mean step cost.

Sampling happens every ``stride`` bytes, so the profiled loop does the
normal :meth:`~repro.matching.fused.FusedMatcher._advance` work plus a
clock read and an O(num_patterns) mask decomposition once per stride —
a few percent at the default stride of 64.  When no profiler is active
the engines never reach this module: the scan path pays only the single
``profiling_enabled()`` check it already shares with telemetry, and the
disabled-overhead guard covers it.

Typical use (the ``profile`` CLI verb wraps exactly this)::

    from repro.telemetry import profiler

    with profiler.profile_session(stride=64, input_len=len(data)) as prof:
        ps = PatternSet(patterns, engine="fused")
        ps.scan(data)
    profile = prof.finish(patterns={i: p for i, p in enumerate(patterns)})
    profile.write("profile.json")
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager

from .._bits import popcount
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Default sampling stride in bytes.  64 keeps the profiled loop within
#: a few percent of the plain loop while sampling a 16 KiB input 256
#: times — plenty for shares and heatmaps.
DEFAULT_STRIDE = 64

#: Default number of offset buckets in the activation heatmap.
DEFAULT_HEATMAP_BUCKETS = 64

#: Cache-ratio series points are decimated 2:1 whenever they exceed
#: this bound, so profiles stay small on huge inputs.
MAX_SERIES_POINTS = 512

PROFILE_VERSION = 1


def byte_class_ids(match_masks: Sequence[int]) -> Tuple[List[int], int]:
    """Group the 256 symbols into transition-equivalence classes.

    Two bytes belong to the same class iff they select the same fused
    match mask — they are indistinguishable to the automaton, so their
    stepping cost is pooled.  Returns ``(class_of_byte, num_classes)``
    with class ids assigned in first-appearance order.
    """
    ids: Dict[int, int] = {}
    out: List[int] = []
    for mask in match_masks:
        class_id = ids.get(mask)
        if class_id is None:
            class_id = ids[mask] = len(ids)
        out.append(class_id)
    return out, len(ids)


def _byte_ranges(values: Sequence[int], limit: int = 6) -> str:
    """Compact human label for a set of byte values (``"a-z,0-9"``)."""

    def show(b: int) -> str:
        if 0x21 <= b <= 0x7E:
            return chr(b)
        return f"\\x{b:02x}"

    ranges: List[Tuple[int, int]] = []
    for value in sorted(values):
        if ranges and value == ranges[-1][1] + 1:
            ranges[-1] = (ranges[-1][0], value)
        else:
            ranges.append((value, value))
    parts = [
        show(lo) if lo == hi else f"{show(lo)}-{show(hi)}"
        for lo, hi in ranges[:limit]
    ]
    if len(ranges) > limit:
        parts.append("...")
    return ",".join(parts)


@dataclass
class ScanProfile:
    """One profiling run, JSON-serialisable (the ``ScanProfile`` artifact).

    ``patterns`` rows are sorted by descending ``activation_share`` —
    the first row is the pattern that keeps the combined bitset hottest.
    ``activation_share`` and ``time_share`` each sum to ~1.0 whenever
    any state was ever active.
    """

    engine: str
    stride: int
    input_bytes: int
    samples: int
    wall_s: float
    patterns: List[Dict[str, Any]] = field(default_factory=list)
    cache: Dict[str, Any] = field(default_factory=dict)
    heatmap: Dict[str, Any] = field(default_factory=dict)
    byte_classes: List[Dict[str, Any]] = field(default_factory=list)
    stepping: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": PROFILE_VERSION,
            "artifact": "ScanProfile",
            "engine": self.engine,
            "stride": self.stride,
            "input_bytes": self.input_bytes,
            "samples": self.samples,
            "wall_s": self.wall_s,
            "patterns": self.patterns,
            "cache": self.cache,
            "heatmap": self.heatmap,
            "byte_classes": self.byte_classes,
            "stepping": self.stepping,
        }

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "ScanProfile":
        return cls(
            engine=obj.get("engine", "fused"),
            stride=obj["stride"],
            input_bytes=obj["input_bytes"],
            samples=obj["samples"],
            wall_s=obj.get("wall_s", 0.0),
            patterns=list(obj.get("patterns", [])),
            cache=dict(obj.get("cache", {})),
            heatmap=dict(obj.get("heatmap", {})),
            byte_classes=list(obj.get("byte_classes", [])),
            stepping=dict(obj.get("stepping", {})),
        )


def load_profile(path: str) -> ScanProfile:
    with open(path) as handle:
        return ScanProfile.from_json(json.load(handle))


class _Binding:
    """Per-matcher profiling state (one per fused automaton observed).

    The profiler can observe several matchers in one run — the inline
    sharded backend runs one fused matcher per shard over the same
    input — so per-pattern tallies key on *global* pattern ids while
    byte-class tables stay per binding (class ids are automaton-local).
    """

    __slots__ = (
        "automaton", "label", "slices", "slot_ids", "class_of_byte",
        "num_classes", "class_us", "class_samples", "offset",
        "last_hits", "last_misses", "last_table_s", "last_bitset_s",
        "last_table_steps", "last_bitset_steps", "last_skipped",
        "last_armed",
    )

    def __init__(self, matcher, slot_ids: Sequence[int], label: str) -> None:
        automaton = matcher.fused
        self.automaton = automaton
        self.label = label
        self.slices = [
            automaton.pattern_slice(slot)
            for slot in range(automaton.num_patterns)
        ]
        self.slot_ids = list(slot_ids)
        self.class_of_byte, self.num_classes = byte_class_ids(
            matcher._match_masks
        )
        self.class_us = [0.0] * self.num_classes
        self.class_samples = [0] * self.num_classes
        self.offset = 0
        self.last_hits = matcher.cache_hits
        self.last_misses = matcher.cache_misses
        self.last_table_s = getattr(matcher, "table_seconds", 0.0)
        self.last_bitset_s = getattr(matcher, "bitset_seconds", 0.0)
        self.last_table_steps = getattr(matcher, "table_steps", 0)
        self.last_bitset_steps = getattr(matcher, "bitset_steps", 0)
        self.last_skipped = getattr(matcher, "prefilter_skipped", 0)
        self.last_armed = getattr(matcher, "prefilter_armed", 0)


class ScanProfiler:
    """Collects sampled attribution while the engines feed through it.

    The engine-facing API is :meth:`feed` — a drop-in replacement for
    :meth:`FusedMatcher.feed` that samples every ``stride`` bytes — plus
    :meth:`bind` to register a matcher.  :meth:`finish` freezes the run
    into a :class:`ScanProfile`.
    """

    def __init__(
        self,
        stride: int = DEFAULT_STRIDE,
        input_len: Optional[int] = None,
        heatmap_buckets: int = DEFAULT_HEATMAP_BUCKETS,
    ) -> None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        if heatmap_buckets < 1:
            raise ValueError("heatmap_buckets must be >= 1")
        self.stride = stride
        if input_len:
            self.bucket_bytes = max(1, -(-input_len // heatmap_buckets))
        else:
            self.bucket_bytes = max(self.stride, 1) * 64
        self._lock = threading.Lock()
        self._bindings: Dict[int, _Binding] = {}
        # global pattern id -> [active_sum, time_us, peak, samples_active]
        self._pattern: Dict[int, List[float]] = {}
        self._heat_sum: List[float] = []
        self._heat_n: List[int] = []
        self._series: List[List[float]] = []  # [offset, hits, misses]
        self._series_every = 1
        self._series_countdown = 1
        self.samples = 0
        self.wall_s = 0.0
        self._idle_us = 0.0
        self._sampled_us = 0.0
        # Run-wide tier accounting, folded in from each matcher's own
        # counters (deltas per feed, so rebuilt matchers don't double).
        self._stepping: Dict[str, float] = {
            "table_s": 0.0,
            "bitset_s": 0.0,
            "steps_table": 0,
            "steps_bitset": 0,
            "skipped_bytes": 0,
            "armed_bytes": 0,
        }

    # -- engine-facing API ---------------------------------------------

    def bind(self, matcher, slot_ids: Sequence[int], label: str = "fused") -> _Binding:
        """Register ``matcher`` (idempotent; re-binds after a rebuild,
        e.g. a degradation re-fuse, preserving accumulated tallies)."""
        key = id(matcher.fused)
        binding = self._bindings.get(key)
        if binding is None or binding.automaton is not matcher.fused:
            with self._lock:
                binding = _Binding(matcher, slot_ids, label)
                self._bindings[key] = binding
        return binding

    def feed(self, matcher, data: bytes, slot_ids: Sequence[int],
             label: str = "fused") -> List[Tuple[int, int]]:
        """Profiled :meth:`FusedMatcher.feed`: identical match stream,
        sampled attribution on the side.

        The stretches *between* sampled bytes are delegated to
        ``matcher.feed`` so they take the matcher's real tier path
        (prefilter skip loop, dense table, or bitset stepping) and the
        profile's tier shares reflect production behaviour.  Only the
        sampled byte itself is stepped here — on anchor-free automata
        through the fully-armed ``matcher._advance`` (sound because
        arming start states at extra positions only adds partials that
        die or re-derive the same matches; NFA set semantics dedupe
        them), on anchored automata through a one-byte ``matcher.feed``
        (the gated path owns the offset-0 start step, seam dedup, and
        end-of-input candidate bookkeeping, and byte-at-a-time feeding
        is stream-exact by the streaming property) — so the match
        stream stays byte-identical to an unprofiled feed either way.

        Returns ``(slot, end)`` events exactly as ``matcher.feed`` does;
        the caller maps slots to global pattern ids as usual.
        """
        binding = self.bind(matcher, slot_ids, label)
        out: List[Tuple[int, int]] = []
        stride = self.stride
        clock = time.perf_counter
        gated = matcher.fused.anchored
        # Bytes until (and including) the next sampled byte; recomputed
        # from the persistent offset so sampling stays periodic across
        # chunk boundaries.
        countdown = stride - (binding.offset % stride)
        started = clock()
        n = len(data)
        pos = 0
        while pos < n:
            sample_at = pos + countdown - 1
            if sample_at >= n:
                for slot, end in matcher.feed(data[pos:]):
                    out.append((slot, pos + end))
                break
            if sample_at > pos:
                for slot, end in matcher.feed(data[pos:sample_at]):
                    out.append((slot, pos + end))
            symbol = data[sample_at]
            if gated:
                t0 = clock()
                events = matcher.feed(data[sample_at : sample_at + 1])
                step_us = (clock() - t0) * 1e6
                active = matcher.active
                # A \b confirm event carries end == -1 (the previous
                # byte); rebasing keeps that exact, -1 only surviving
                # when the seam is this profiled chunk's own start.
                for slot, end in events:
                    out.append((slot, sample_at + end))
            else:
                t0 = clock()
                active, report, report_adj = matcher._advance(
                    matcher.active, symbol
                )
                step_us = (clock() - t0) * 1e6
                matcher.active = active
                for slot in report:
                    out.append((slot, sample_at))
                for slot in report_adj:  # pragma: no cover - gated only
                    out.append((slot, sample_at - 1))
            self._sample(
                matcher, binding, active, symbol, step_us,
                binding.offset + sample_at,
            )
            pos = sample_at + 1
            countdown = stride
        binding.offset += n
        binding.last_hits = matcher.cache_hits
        binding.last_misses = matcher.cache_misses
        self._absorb_stepping(matcher, binding)
        self.wall_s += clock() - started
        return out

    def _absorb_stepping(self, matcher, binding: _Binding) -> None:
        """Fold the matcher's tier counters into the run-wide totals,
        as deltas since this binding's last feed."""
        table_s = getattr(matcher, "table_seconds", 0.0)
        bitset_s = getattr(matcher, "bitset_seconds", 0.0)
        table_steps = getattr(matcher, "table_steps", 0)
        bitset_steps = getattr(matcher, "bitset_steps", 0)
        skipped = getattr(matcher, "prefilter_skipped", 0)
        armed = getattr(matcher, "prefilter_armed", 0)
        with self._lock:
            step = self._stepping
            step["table_s"] += table_s - binding.last_table_s
            step["bitset_s"] += bitset_s - binding.last_bitset_s
            step["steps_table"] += table_steps - binding.last_table_steps
            step["steps_bitset"] += bitset_steps - binding.last_bitset_steps
            step["skipped_bytes"] += skipped - binding.last_skipped
            step["armed_bytes"] += armed - binding.last_armed
        binding.last_table_s = table_s
        binding.last_bitset_s = bitset_s
        binding.last_table_steps = table_steps
        binding.last_bitset_steps = bitset_steps
        binding.last_skipped = skipped
        binding.last_armed = armed

    # -- sampling -------------------------------------------------------

    def _sample(
        self, matcher, binding: _Binding, active: int, symbol: int,
        step_us: float, abs_offset: int,
    ) -> None:
        with self._lock:
            self.samples += 1
            self._sampled_us += step_us
            # Per-byte-class stepping cost (automaton-local classes).
            class_id = binding.class_of_byte[symbol]
            binding.class_us[class_id] += step_us
            binding.class_samples[class_id] += 1
            # Per-pattern activation and time attribution.
            total_active = 0
            widths: List[Tuple[int, int]] = []  # (pattern_id, width)
            for slot, (low, high) in enumerate(binding.slices):
                width = popcount((active >> low) & ((1 << (high - low)) - 1))
                if width:
                    total_active += width
                    widths.append((binding.slot_ids[slot], width))
            for pattern_id, width in widths:
                row = self._pattern.get(pattern_id)
                if row is None:
                    row = self._pattern[pattern_id] = [0.0, 0.0, 0.0, 0]
                row[0] += width
                row[1] += step_us * (width / total_active)
                if width > row[2]:
                    row[2] = width
                row[3] += 1
            if not widths:
                self._idle_us += step_us
            # Offset heatmap (offsets are per-binding; in the inline
            # sharded case every binding walks the same input, so the
            # buckets line up and densities add).
            bucket = abs_offset // self.bucket_bytes
            while bucket >= len(self._heat_sum):
                self._heat_sum.append(0.0)
                self._heat_n.append(0)
            self._heat_sum[bucket] += total_active
            self._heat_n[bucket] += 1
            # Cache-ratio series (decimated to stay bounded).
            self._series_countdown -= 1
            if self._series_countdown <= 0:
                self._series_countdown = self._series_every
                hits = sum(
                    b.last_hits for b in self._bindings.values()
                    if b is not binding
                ) + matcher.cache_hits
                misses = sum(
                    b.last_misses for b in self._bindings.values()
                    if b is not binding
                ) + matcher.cache_misses
                binding.last_hits = matcher.cache_hits
                binding.last_misses = matcher.cache_misses
                self._series.append(
                    [float(abs_offset), float(hits), float(misses)]
                )
                if len(self._series) > MAX_SERIES_POINTS:
                    self._series = self._series[::2]
                    self._series_every *= 2

    # -- finalisation ---------------------------------------------------

    def finish(
        self,
        patterns: Optional[Mapping[int, str]] = None,
        engine: str = "fused",
    ) -> ScanProfile:
        """Freeze the run into a :class:`ScanProfile`.

        ``patterns`` optionally maps pattern ids to their source text so
        the artifact is self-describing.  Patterns that were bound but
        never active still appear, with zero share.
        """
        with self._lock:
            known = set(self._pattern)
            for binding in self._bindings.values():
                known.update(binding.slot_ids)
            total_active = sum(row[0] for row in self._pattern.values())
            total_us = sum(row[1] for row in self._pattern.values())
            rows: List[Dict[str, Any]] = []
            for pattern_id in sorted(known):
                row = self._pattern.get(pattern_id, [0.0, 0.0, 0.0, 0])
                entry: Dict[str, Any] = {
                    "pattern_id": pattern_id,
                    "activation_share": (
                        row[0] / total_active if total_active else 0.0
                    ),
                    "time_share": row[1] / total_us if total_us else 0.0,
                    "sampled_time_us": round(row[1], 3),
                    "mean_active": row[0] / row[3] if row[3] else 0.0,
                    "peak_active": int(row[2]),
                    "samples_active": row[3],
                }
                if patterns is not None and pattern_id in patterns:
                    entry["pattern"] = patterns[pattern_id]
                rows.append(entry)
            rows.sort(key=lambda r: (-r["activation_share"], r["pattern_id"]))

            series = [
                {
                    "offset": int(offset),
                    "hits": int(hits),
                    "misses": int(misses),
                    "hit_ratio": (
                        hits / (hits + misses) if hits + misses else 0.0
                    ),
                }
                for offset, hits, misses in self._series
            ]
            hits = sum(
                b.last_hits for b in self._bindings.values()
            )
            misses = sum(
                b.last_misses for b in self._bindings.values()
            )
            cache = {
                "hits": hits,
                "misses": misses,
                "hit_ratio": hits / (hits + misses) if hits + misses else 0.0,
                "series": series,
            }

            density = [
                s / n if n else 0.0
                for s, n in zip(self._heat_sum, self._heat_n)
            ]
            heatmap = {"bucket_bytes": self.bucket_bytes, "density": density}

            classes: List[Dict[str, Any]] = []
            for binding in self._bindings.values():
                members: Dict[int, List[int]] = {}
                for byte, class_id in enumerate(binding.class_of_byte):
                    members.setdefault(class_id, []).append(byte)
                for class_id in range(binding.num_classes):
                    sampled = binding.class_samples[class_id]
                    if not sampled:
                        continue
                    total = binding.class_us[class_id]
                    classes.append(
                        {
                            "scope": binding.label,
                            "class_id": class_id,
                            "members": len(members[class_id]),
                            "example": _byte_ranges(members[class_id]),
                            "sampled": sampled,
                            "total_us": round(total, 3),
                            "mean_us": round(total / sampled, 4),
                        }
                    )
            classes.sort(key=lambda c: -c["total_us"])

            table_s = self._stepping["table_s"]
            bitset_s = self._stepping["bitset_s"]
            tier_total = table_s + bitset_s
            stepping = {
                "table_s": round(table_s, 6),
                "bitset_s": round(bitset_s, 6),
                "sampled_s": round(self._sampled_us / 1e6, 6),
                "table_share": table_s / tier_total if tier_total else 0.0,
                "bitset_share": bitset_s / tier_total if tier_total else 0.0,
                "steps_table": int(self._stepping["steps_table"]),
                "steps_bitset": int(self._stepping["steps_bitset"]),
                "skipped_bytes": int(self._stepping["skipped_bytes"]),
                "armed_bytes": int(self._stepping["armed_bytes"]),
            }

            input_bytes = max(
                (b.offset for b in self._bindings.values()), default=0
            )
            return ScanProfile(
                engine=engine,
                stride=self.stride,
                input_bytes=input_bytes,
                samples=self.samples,
                wall_s=round(self.wall_s, 6),
                patterns=rows,
                cache=cache,
                heatmap=heatmap,
                byte_classes=classes,
                stepping=stepping,
            )


# ---------------------------------------------------------------------------
# Module-global profiler (the facade the engines check)
# ---------------------------------------------------------------------------

_active: Optional[ScanProfiler] = None


def profiling_enabled() -> bool:
    """True when a profiler is active — the engine-side gate."""
    return _active is not None


def active_profiler() -> Optional[ScanProfiler]:
    return _active


def start_profile(
    stride: int = DEFAULT_STRIDE,
    input_len: Optional[int] = None,
    heatmap_buckets: int = DEFAULT_HEATMAP_BUCKETS,
) -> ScanProfiler:
    """Install a fresh global profiler and return it."""
    global _active
    _active = ScanProfiler(
        stride=stride, input_len=input_len, heatmap_buckets=heatmap_buckets
    )
    return _active


def stop_profile() -> Optional[ScanProfiler]:
    """Deactivate and return the current profiler (if any)."""
    global _active
    profiler, _active = _active, None
    return profiler


@contextmanager
def profile_session(
    stride: int = DEFAULT_STRIDE,
    input_len: Optional[int] = None,
    heatmap_buckets: int = DEFAULT_HEATMAP_BUCKETS,
) -> Iterator[ScanProfiler]:
    """Activate a profiler for a ``with`` block::

        with profiler.profile_session(stride=64) as prof:
            PatternSet(patterns, engine="fused").scan(data)
        profile = prof.finish()
    """
    profiler = start_profile(
        stride=stride, input_len=input_len, heatmap_buckets=heatmap_buckets
    )
    try:
        yield profiler
    finally:
        stop_profile()
