"""Zero-dependency observability for the compile→map→simulate stack.

The subsystem has three parts:

* a **span tracer** (:mod:`repro.telemetry.trace`) — nested, wall-clock
  timed spans with thread-local context and Chrome-trace / JSONL export;
* a **metrics registry** (:mod:`repro.telemetry.metrics`) — counters,
  gauges, and fixed-bucket histograms, snapshottable to JSON;
* **exporters** (:mod:`repro.telemetry.export`) — file writers the CLI
  uses for ``--trace-out`` / ``--metrics-out``.

Telemetry is **disabled by default** and costs nothing when off: the
instrumented call sites either receive the shared no-op
:data:`~repro.telemetry.trace.NULL_SPAN`, or branch away from metric
updates after one ``enabled()`` check per scan/run.

Typical use::

    from repro import telemetry

    with telemetry.session():                 # enable for one block
        ruleset = compile_ruleset(patterns)   # phases traced
        report = BVAPSimulator(ruleset).run(data)
        snap = telemetry.snapshot()           # counters + spans
        telemetry.export.write_chrome_trace("trace.json")

The same instrumentation is reachable from the CLI::

    python -m repro.cli simulate 'ab{100}c' -i input.bin \
        --trace-out trace.json --metrics-out metrics.json
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator

from . import export  # re-exported submodule
from . import flight  # re-exported submodule (flight recorder)
from . import profiler  # re-exported submodule (scan-path profiler)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_US_BUCKETS,
    MetricsRegistry,
    OCCUPANCY_BUCKETS,
    canonical_key,
)
from .trace import NULL_SPAN, SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_US_BUCKETS",
    "MetricsRegistry",
    "NULL_SPAN",
    "OCCUPANCY_BUCKETS",
    "SpanRecord",
    "Tracer",
    "canonical_key",
    "disable",
    "enable",
    "enabled",
    "export",
    "flight",
    "metrics_enabled",
    "profiler",
    "registry",
    "reset",
    "session",
    "snapshot",
    "span",
    "trace_enabled",
    "tracer",
]

_lock = threading.Lock()
_trace_on = False
_metrics_on = False
_tracer = Tracer()
_registry = MetricsRegistry()


def enable(trace: bool = True, metrics: bool = True) -> None:
    """Turn telemetry on (both facets by default)."""
    global _trace_on, _metrics_on
    with _lock:
        _trace_on = _trace_on or trace
        _metrics_on = _metrics_on or metrics


def disable() -> None:
    """Turn telemetry off; recorded data is kept until :func:`reset`."""
    global _trace_on, _metrics_on
    with _lock:
        _trace_on = False
        _metrics_on = False


def enabled() -> bool:
    """True when either tracing or metrics collection is on."""
    return _trace_on or _metrics_on


def trace_enabled() -> bool:
    return _trace_on


def metrics_enabled() -> bool:
    return _metrics_on


def tracer() -> Tracer:
    """The global tracer (always present; only fed while enabled)."""
    return _tracer


def registry() -> MetricsRegistry:
    """The global metrics registry."""
    return _registry


def span(name: str, category: str = "", **args: Any):
    """A live span when tracing is on, else the shared no-op span."""
    if _trace_on:
        return _tracer.span(name, category, **args)
    return NULL_SPAN


def counter(name: str, **labels: Any) -> Counter:
    return _registry.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    return _registry.gauge(name, **labels)


def histogram(name: str, bounds=OCCUPANCY_BUCKETS, **labels: Any) -> Histogram:
    return _registry.histogram(name, bounds, **labels)


def snapshot() -> Dict[str, Any]:
    """Combined JSON-serialisable snapshot: metrics plus span summary."""
    snap = _registry.snapshot()
    snap["spans"] = _tracer.summary()
    return snap


def reset() -> None:
    """Clear all recorded spans and metrics (the switches are untouched)."""
    _tracer.clear()
    _registry.reset()


@contextmanager
def session(
    trace: bool = True, metrics: bool = True, fresh: bool = True
) -> Iterator[None]:
    """Enable telemetry for a ``with`` block, restoring the previous
    switches afterwards.  ``fresh`` clears previously recorded data so
    the block's snapshot stands alone."""
    global _trace_on, _metrics_on
    with _lock:
        previous = (_trace_on, _metrics_on)
        _trace_on = _trace_on or trace
        _metrics_on = _metrics_on or metrics
    if fresh:
        reset()
    try:
        yield
    finally:
        with _lock:
            _trace_on, _metrics_on = previous
