"""Flight recorder: a bounded ring buffer of recent engine events.

When a scan fails — a :class:`~repro.resilience.errors.ReproError`, a
shard worker dying mid-stream, a fault-injection campaign diverging —
the metrics snapshot says *how much* happened but not *what the engine
was doing right before*.  The flight recorder closes that gap the way
an aircraft recorder does: a fixed-size ring of the most recent engine
events (scan chunk closures, match summaries, degradation and
quarantine decisions, shard failures, budget transitions) plus the last
engine-state snapshot, dumped to a deterministic JSON *postmortem* the
moment something goes wrong.

Design rules, mirrored from the rest of :mod:`repro.telemetry`:

* **off by default, one check when off** — every producer call site
  gates on :func:`flight_enabled` (a module-global boolean read), so
  the disabled hot path costs nothing beyond the check it already pays
  for metrics;
* **bounded** — the ring holds :data:`DEFAULT_CAPACITY` events
  (``collections.deque(maxlen=...)``); recording never allocates beyond
  it, so the recorder is safe to leave on in long-running scans;
* **deterministic** — event payloads carry only deterministic engine
  facts; wall-clock values live in the dedicated keys listed in
  :data:`TIMING_KEYS` so two identical failing runs produce
  byte-identical postmortems once those keys are stripped (a test
  enforces this).

Typical wiring (the CLI's ``--flight-dir`` does all of this)::

    from repro.telemetry import flight

    flight.enable(dump_dir="flight-dumps")
    try:
        matches = pattern_set.scan(data)
    except ReproError as error:
        path = flight.auto_dump("scan_error", error=error)
        ...

The sharded orchestrator and the fault-injection harness call
:func:`auto_dump` themselves on shard failure / divergence, so with a
dump dir configured every failure leaves a postmortem behind without
any caller cooperation.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

#: Ring capacity: enough to cover the tail of a large scan (every chunk
#: closure plus the failure cascade) while keeping dumps small.
DEFAULT_CAPACITY = 256

#: JSON keys whose values are wall-clock readings and therefore exempt
#: from the byte-identical determinism contract.  Everything else in a
#: postmortem must be reproducible run-to-run.
TIMING_KEYS = ("wall_s", "dumped_at_s", "elapsed_s", "busy_s")

#: Postmortem document version, bumped on shape changes.
POSTMORTEM_VERSION = 1

#: Default cap on ``flight-*.json`` files kept per dump directory.  A
#: crash-looping worker (or a long chaos campaign) dumps a postmortem
#: per failure; without a cap the dump dir grows without bound.  Oldest
#: files rotate out first; ``None`` disables rotation.
DEFAULT_MAX_DUMPS = 64


def strip_timing(obj: Any) -> Any:
    """A deep copy of ``obj`` with every :data:`TIMING_KEYS` key removed.

    The determinism tests (and any tooling that diffs postmortems)
    compare ``strip_timing(dump_a) == strip_timing(dump_b)``.
    """
    if isinstance(obj, dict):
        return {
            key: strip_timing(value)
            for key, value in obj.items()
            if key not in TIMING_KEYS
        }
    if isinstance(obj, list):
        return [strip_timing(item) for item in obj]
    return obj


class FlightRecorder:
    """Bounded event ring with deterministic postmortem dumps.

    Producers call :meth:`record` (one event) and :meth:`note_state`
    (overwrite the "last known engine state" slot); consumers call
    :meth:`postmortem` for the document or :meth:`dump` to write it.
    All methods are thread-safe; the ring is shared across engines in
    one process, which is exactly what a postmortem wants (compile,
    scan, and resilience events interleaved in causal order).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        dump_dir: Optional[str] = None,
        max_dumps: Optional[int] = DEFAULT_MAX_DUMPS,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_dumps is not None and max_dumps < 1:
            raise ValueError("max_dumps must be >= 1 or None")
        self.capacity = capacity
        self.dump_dir = dump_dir
        self.max_dumps = max_dumps
        self._lock = threading.Lock()
        self._events: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self._seq = 0
        self._dump_seq = 0
        self._last_state: Optional[Dict[str, Any]] = None

    # -- producer side --------------------------------------------------

    def record(self, kind: str, **fields: Any) -> None:
        """Append one event to the ring.

        ``fields`` must be JSON-serialisable and deterministic; put
        wall-clock values only under keys in :data:`TIMING_KEYS`.
        """
        with self._lock:
            self._seq += 1
            event = {"seq": self._seq, "kind": kind, "wall_s": time.time()}
            event.update(fields)
            self._events.append(event)

    def note_state(self, **state: Any) -> None:
        """Overwrite the last-engine-state snapshot (not a ring event).

        Called at chunk boundaries so the postmortem always carries the
        most recent activation/cache picture even when the ring has
        rolled over.
        """
        with self._lock:
            self._last_state = dict(state)

    # -- consumer side --------------------------------------------------

    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(e) for e in self._events]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._seq = 0
            self._dump_seq = 0
            self._last_state = None

    def postmortem(
        self, reason: str, error: Optional[BaseException] = None
    ) -> Dict[str, Any]:
        """The deterministic postmortem document (JSON-serialisable)."""
        with self._lock:
            events = [dict(e) for e in self._events]
            last_state = dict(self._last_state) if self._last_state else None
            total = self._seq
        error_obj: Optional[Dict[str, Any]] = None
        if error is not None:
            to_json = getattr(error, "to_json", None)
            if callable(to_json):
                error_obj = to_json()
            else:
                error_obj = {
                    "code": "E_UNSTRUCTURED",
                    "type": type(error).__name__,
                    "message": str(error),
                }
        return {
            "version": POSTMORTEM_VERSION,
            "reason": reason,
            "error": error_obj,
            "capacity": self.capacity,
            "events_recorded": total,
            "events": events,
            "last_engine_state": last_state,
            "dumped_at_s": time.time(),
        }

    def dump(
        self,
        reason: str,
        error: Optional[BaseException] = None,
        path: Optional[str] = None,
    ) -> str:
        """Write the postmortem to ``path`` (default: a numbered file in
        :attr:`dump_dir`) and return the path written."""
        if path is None:
            if self.dump_dir is None:
                raise ValueError("no dump path and no dump_dir configured")
            os.makedirs(self.dump_dir, exist_ok=True)
            with self._lock:
                self._dump_seq += 1
                index = self._dump_seq
            safe = "".join(
                c if c.isalnum() or c in "-_" else "_" for c in reason
            )
            path = os.path.join(
                self.dump_dir, f"flight-{safe}-{index:03d}.json"
            )
        document = self.postmortem(reason, error)
        with open(path, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        if self.dump_dir is not None:
            self._rotate_dumps()
        return path

    def _rotate_dumps(self) -> None:
        """Delete the oldest ``flight-*.json`` files beyond the cap.

        Age is modification time with filename as the tiebreaker, so
        rotation is deterministic even when a burst of dumps lands
        within one timestamp granule.  Unreadable or already-deleted
        files are skipped — rotation is best-effort housekeeping and
        must never turn a successful dump into a failure.
        """
        if self.max_dumps is None:
            return
        try:
            names = [
                name
                for name in os.listdir(self.dump_dir)
                if name.startswith("flight-") and name.endswith(".json")
            ]
        except OSError:
            return
        if len(names) <= self.max_dumps:
            return
        def age(name: str):
            try:
                mtime = os.path.getmtime(os.path.join(self.dump_dir, name))
            except OSError:
                mtime = 0.0
            return (mtime, name)
        names.sort(key=age)
        for name in names[: len(names) - self.max_dumps]:
            try:
                os.remove(os.path.join(self.dump_dir, name))
            except OSError:
                pass


# ---------------------------------------------------------------------------
# Module-global recorder (the facade the engines talk to)
# ---------------------------------------------------------------------------

_lock = threading.Lock()
_enabled = False
_recorder = FlightRecorder()


def enable(
    dump_dir: Optional[str] = None,
    capacity: int = DEFAULT_CAPACITY,
    max_dumps: Optional[int] = DEFAULT_MAX_DUMPS,
) -> FlightRecorder:
    """Turn the flight recorder on (fresh ring) and return it.

    ``dump_dir`` arms :func:`auto_dump`: failure paths that call it will
    leave a postmortem file there without any further configuration.
    At most ``max_dumps`` ``flight-*.json`` files are kept per dump
    directory (oldest rotate out first; ``None`` disables rotation).
    """
    global _enabled, _recorder
    with _lock:
        _recorder = FlightRecorder(
            capacity=capacity, dump_dir=dump_dir, max_dumps=max_dumps
        )
        _enabled = True
        return _recorder


def disable() -> None:
    """Turn the flight recorder off; the ring keeps its events."""
    global _enabled
    with _lock:
        _enabled = False


def flight_enabled() -> bool:
    """True when the recorder is armed — the producer-side gate."""
    return _enabled


def recorder() -> FlightRecorder:
    """The current global recorder (always present; fed while enabled)."""
    return _recorder


def record(kind: str, **fields: Any) -> None:
    """Record one event iff the recorder is enabled (producer helper)."""
    if _enabled:
        _recorder.record(kind, **fields)


def note_state(**state: Any) -> None:
    """Update the last-engine-state snapshot iff enabled."""
    if _enabled:
        _recorder.note_state(**state)


def auto_dump(
    reason: str, error: Optional[BaseException] = None
) -> Optional[str]:
    """Dump a postmortem if the recorder is enabled *and* has a dump
    dir; returns the path written, or None when not armed for dumping.

    This is the one call failure paths make unconditionally (after their
    own ``flight_enabled()`` gate): whether a file appears is purely a
    configuration question.
    """
    if not _enabled or _recorder.dump_dir is None:
        return None
    return _recorder.dump(reason, error)
