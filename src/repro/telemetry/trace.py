"""Span-based tracing with thread-local nesting.

A :class:`Tracer` records *spans* — named intervals with wall-clock
start/duration, per-thread nesting (parent ids), and free-form ``args``.
Spans are opened with the context manager returned by
:meth:`Tracer.span`; when the global tracing switch is off the public
facade (:mod:`repro.telemetry`) hands out the shared :data:`NULL_SPAN`
instead, so disabled call sites cost one attribute lookup and nothing
else.

Two export formats are supported:

* **JSONL** — one JSON object per completed span, with absolute
  timestamps (epoch seconds), convenient for ad-hoc ``jq`` analysis;
* **Chrome trace-event** — the ``chrome://tracing`` / Perfetto format:
  a ``{"traceEvents": [...]}`` document of ``"ph": "X"`` complete
  events with microsecond ``ts``/``dur``.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Process id reported in Chrome trace events (the model is single-process).
TRACE_PID = 1


@dataclass
class SpanRecord:
    """One completed span."""

    name: str
    category: str
    start_us: float  # relative to the tracer's epoch
    duration_us: float
    thread_id: int
    span_id: int
    parent_id: Optional[int]
    args: Dict[str, Any] = field(default_factory=dict)

    def to_chrome_event(self) -> Dict[str, Any]:
        """A trace-event "complete" (``ph: X``) event."""
        event: Dict[str, Any] = {
            "name": self.name,
            "cat": self.category or "repro",
            "ph": "X",
            "ts": self.start_us,
            "dur": self.duration_us,
            "pid": TRACE_PID,
            "tid": self.thread_id,
        }
        args = dict(self.args)
        args["span_id"] = self.span_id
        if self.parent_id is not None:
            args["parent_id"] = self.parent_id
        event["args"] = args
        return event

    def to_json_obj(self, epoch_s: float) -> Dict[str, Any]:
        """A JSONL-friendly object with absolute timestamps."""
        return {
            "name": self.name,
            "cat": self.category or "repro",
            "start_s": epoch_s + self.start_us * 1e-6,
            "duration_us": self.duration_us,
            "tid": self.thread_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "args": self.args,
        }


class _NullSpan:
    """Do-nothing span: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **args: Any) -> "_NullSpan":
        return self


#: Shared no-op span handed out whenever tracing is disabled.
NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager recording one span into its tracer."""

    __slots__ = ("_tracer", "name", "category", "args", "span_id",
                 "parent_id", "_start")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self.span_id = tracer._new_id()
        self.parent_id: Optional[int] = None
        self._start = 0.0

    def set(self, **args: Any) -> "_LiveSpan":
        """Attach additional args mid-span (e.g. a result size)."""
        self.args.update(args)
        return self

    def __enter__(self) -> "_LiveSpan":
        stack = self._tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        self._start = self._tracer._clock()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = self._tracer._clock()
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._record(self, self._start, end)
        return False


class Tracer:
    """Collects spans; thread-safe appends, thread-local nesting."""

    def __init__(self) -> None:
        self._clock = time.perf_counter
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._local = threading.local()
        self._ids = itertools.count(1)
        #: Wall-clock epoch matching perf-counter zero, for JSONL export.
        self.epoch_s = time.time()
        self._epoch_perf = self._clock()

    # -- internals ------------------------------------------------------

    def _new_id(self) -> int:
        return next(self._ids)

    def _stack(self) -> List[_LiveSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, span: _LiveSpan, start: float, end: float) -> None:
        record = SpanRecord(
            name=span.name,
            category=span.category,
            start_us=(start - self._epoch_perf) * 1e6,
            duration_us=(end - start) * 1e6,
            thread_id=threading.get_ident() & 0xFFFF,
            span_id=span.span_id,
            parent_id=span.parent_id,
            args=span.args,
        )
        with self._lock:
            self._records.append(record)

    # -- public API -----------------------------------------------------

    def span(self, name: str, category: str = "", **args: Any) -> _LiveSpan:
        """Open a span; use as ``with tracer.span("rewrite", regex_id=3):``."""
        return _LiveSpan(self, name, category, args)

    def records(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name aggregate: count, total/max duration (µs).

        This is the "spans" section of a metrics snapshot — it makes
        per-phase compile timing available without loading a trace file.
        """
        out: Dict[str, Dict[str, float]] = {}
        for record in self.records():
            agg = out.setdefault(
                record.name, {"count": 0, "total_us": 0.0, "max_us": 0.0}
            )
            agg["count"] += 1
            agg["total_us"] += record.duration_us
            if record.duration_us > agg["max_us"]:
                agg["max_us"] = record.duration_us
        return out

    # -- exporters ------------------------------------------------------

    def to_chrome(self) -> Dict[str, Any]:
        """The full ``chrome://tracing`` document."""
        return {
            "traceEvents": [r.to_chrome_event() for r in self.records()],
            "displayTimeUnit": "ms",
            "otherData": {"epoch_unix_s": self.epoch_s},
        }

    def to_jsonl(self) -> str:
        """One JSON object per line, absolute timestamps."""
        return "\n".join(
            json.dumps(r.to_json_obj(self.epoch_s), sort_keys=True)
            for r in self.records()
        )
