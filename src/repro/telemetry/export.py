"""File exporters for traces and metrics snapshots, plus live export.

These helpers write the global tracer/registry (or explicitly passed
ones) to disk in the formats the CLI exposes:

* :func:`write_chrome_trace` — ``chrome://tracing`` / Perfetto JSON;
* :func:`write_jsonl_trace` — one span object per line;
* :func:`write_metrics` — the combined metrics snapshot (counters,
  gauges, histograms, and the per-span summary), as JSON or as
  Prometheus text exposition format (:func:`to_prometheus`);
* :class:`MetricsServer` — an opt-in stdlib ``http.server`` endpoint
  serving the live snapshot at ``/metrics`` (Prometheus text) and
  ``/metrics.json``, the first brick of the always-on scan service.
"""

from __future__ import annotations

import json
import re
import threading
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .trace import Tracer

TRACE_FORMATS = ("chrome", "jsonl")

METRICS_FORMATS = ("json", "prometheus")

#: Prefix applied to every exported Prometheus metric name.
PROM_NAMESPACE = "repro"


def _default_tracer(tracer: Optional[Tracer]) -> Tracer:
    if tracer is not None:
        return tracer
    from . import tracer as global_tracer

    return global_tracer()


def write_chrome_trace(path: str, tracer: Optional[Tracer] = None) -> None:
    """Write the Chrome trace-event document (open via chrome://tracing
    or https://ui.perfetto.dev)."""
    document = _default_tracer(tracer).to_chrome()
    with open(path, "w") as handle:
        json.dump(document, handle)
        handle.write("\n")


def write_jsonl_trace(path: str, tracer: Optional[Tracer] = None) -> None:
    """Write one JSON object per completed span."""
    text = _default_tracer(tracer).to_jsonl()
    with open(path, "w") as handle:
        handle.write(text)
        if text:
            handle.write("\n")


def write_trace(
    path: str, fmt: str = "chrome", tracer: Optional[Tracer] = None
) -> None:
    """Dispatch on ``fmt`` (one of :data:`TRACE_FORMATS`)."""
    if fmt == "chrome":
        write_chrome_trace(path, tracer)
    elif fmt == "jsonl":
        write_jsonl_trace(path, tracer)
    else:
        raise ValueError(f"trace format must be one of {TRACE_FORMATS}, got {fmt!r}")


def write_metrics(
    path: str,
    snapshot: Optional[Dict[str, Any]] = None,
    fmt: str = "json",
) -> None:
    """Write a metrics snapshot (defaults to the live global snapshot)
    in one of :data:`METRICS_FORMATS`."""
    if fmt not in METRICS_FORMATS:
        raise ValueError(
            f"metrics format must be one of {METRICS_FORMATS}, got {fmt!r}"
        )
    if snapshot is None:
        from . import snapshot as global_snapshot

        snapshot = global_snapshot()
    with open(path, "w") as handle:
        if fmt == "prometheus":
            handle.write(to_prometheus(snapshot))
        else:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")


# ---------------------------------------------------------------------------
# Prometheus text exposition format
# ---------------------------------------------------------------------------

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """``engine.fused.cache_hits`` -> ``repro_engine_fused_cache_hits``."""
    return f"{PROM_NAMESPACE}_{_NAME_SANITIZER.sub('_', name)}"


def _parse_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a canonical registry key (``name{a=1,b=x}``) into parts."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key[:-1].partition("{")
    labels: Dict[str, str] = {}
    for pair in inner.split(","):
        if not pair:
            continue
        label, _, value = pair.partition("=")
        labels[label] = value
    return name, labels


def _prom_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    escaped = ",".join(
        f'{_NAME_SANITIZER.sub("_", k)}="'
        + str(v).replace("\\", "\\\\").replace('"', '\\"')
        + '"'
        for k, v in sorted(labels.items())
    )
    return "{" + escaped + "}"


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _PromWriter:
    """Accumulates samples grouped per metric family, TYPE line first."""

    def __init__(self) -> None:
        self._families: "Dict[str, Tuple[str, List[str]]]" = {}
        self._order: List[str] = []

    def sample(
        self,
        family: str,
        prom_type: str,
        labels: Mapping[str, str],
        value: float,
    ) -> None:
        if family not in self._families:
            self._families[family] = (prom_type, [])
            self._order.append(family)
        self._families[family][1].append(
            f"{family}{_prom_labels(labels)} {_prom_value(value)}"
        )

    def render(self) -> str:
        lines: List[str] = []
        for family in self._order:
            prom_type, samples = self._families[family]
            lines.append(f"# TYPE {family} {prom_type}")
            lines.extend(samples)
        out = "\n".join(lines)
        return out + "\n" if out else ""


def to_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a metrics snapshot as Prometheus text exposition format.

    Mapping rules:

    * counters -> ``repro_<name>_total`` counter families, labels
      preserved;
    * gauges -> ``repro_<name>`` plus a ``repro_<name>_max`` gauge for
      the tracked high-water mark;
    * histograms -> native Prometheus histograms (cumulative
      ``_bucket{le=...}`` series ending in ``+Inf``, plus ``_sum`` and
      ``_count``) — the registry's bounds are inclusive upper edges,
      which is exactly Prometheus's ``le`` contract;
    * the span summary -> ``repro_span_count`` / ``repro_span_total_us``
      / ``repro_span_max_us`` families labelled by span name.
    """
    writer = _PromWriter()
    for key, value in sorted(snapshot.get("counters", {}).items()):
        name, labels = _parse_key(key)
        writer.sample(f"{_prom_name(name)}_total", "counter", labels, value)
    for key, gauge in sorted(snapshot.get("gauges", {}).items()):
        name, labels = _parse_key(key)
        writer.sample(_prom_name(name), "gauge", labels, gauge["value"])
        writer.sample(
            f"{_prom_name(name)}_max", "gauge", labels, gauge["max"]
        )
    for key, hist in sorted(snapshot.get("histograms", {}).items()):
        name, labels = _parse_key(key)
        family = _prom_name(name)
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += count
            bucket_labels = dict(labels)
            bucket_labels["le"] = _prom_value(float(bound))
            writer.sample(
                f"{family}_bucket", "histogram", bucket_labels, cumulative
            )
        bucket_labels = dict(labels)
        bucket_labels["le"] = "+Inf"
        writer.sample(
            f"{family}_bucket", "histogram", bucket_labels, hist["count"]
        )
        writer.sample(f"{family}_sum", "histogram", labels, hist["sum"])
        writer.sample(f"{family}_count", "histogram", labels, hist["count"])
    for span_name, agg in sorted(snapshot.get("spans", {}).items()):
        labels = {"span": span_name}
        writer.sample(
            f"{PROM_NAMESPACE}_span_count", "gauge", labels, agg["count"]
        )
        writer.sample(
            f"{PROM_NAMESPACE}_span_total_us", "gauge", labels,
            agg["total_us"],
        )
        writer.sample(
            f"{PROM_NAMESPACE}_span_max_us", "gauge", labels, agg["max_us"]
        )
    return writer.render()


# ---------------------------------------------------------------------------
# Live metrics endpoint
# ---------------------------------------------------------------------------


class MetricsServer:
    """Opt-in HTTP endpoint serving the live global snapshot.

    Serves ``GET /metrics`` (Prometheus text format) and
    ``GET /metrics.json`` (the JSON snapshot) from a daemon thread —
    a scrape during a long scan sees the counters mid-flight.  Bind
    ``port=0`` to let the OS pick (the bound port is on :attr:`port`
    after :meth:`start`).  This is deliberately tiny: the first brick
    of the ``repro.service`` daemon, not a web framework.
    """

    def __init__(self, port: int = 9464, host: str = "127.0.0.1") -> None:
        self._requested = (host, port)
        self._httpd = None
        self._thread: Optional[threading.Thread] = None
        self.port: Optional[int] = None

    def start(self) -> "MetricsServer":
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        class Handler(BaseHTTPRequestHandler):
            def do_GET(handler) -> None:  # noqa: N805 - stdlib handler
                from . import snapshot as global_snapshot

                if handler.path.split("?")[0] == "/metrics":
                    body = to_prometheus(global_snapshot()).encode()
                    content_type = "text/plain; version=0.0.4; charset=utf-8"
                elif handler.path.split("?")[0] == "/metrics.json":
                    body = (
                        json.dumps(global_snapshot(), sort_keys=True) + "\n"
                    ).encode()
                    content_type = "application/json"
                else:
                    handler.send_error(404, "try /metrics or /metrics.json")
                    return
                handler.send_response(200)
                handler.send_header("Content-Type", content_type)
                handler.send_header("Content-Length", str(len(body)))
                handler.end_headers()
                handler.wfile.write(body)

            def log_message(handler, *args: Any) -> None:
                pass  # no per-scrape stderr noise

        self._httpd = ThreadingHTTPServer(self._requested, Handler)
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


def load_metrics(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)


def load_chrome_trace(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)
