"""File exporters for traces and metrics snapshots.

These helpers write the global tracer/registry (or explicitly passed
ones) to disk in the formats the CLI exposes:

* :func:`write_chrome_trace` — ``chrome://tracing`` / Perfetto JSON;
* :func:`write_jsonl_trace` — one span object per line;
* :func:`write_metrics` — the combined metrics snapshot (counters,
  gauges, histograms, and the per-span summary).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from .trace import Tracer

TRACE_FORMATS = ("chrome", "jsonl")


def _default_tracer(tracer: Optional[Tracer]) -> Tracer:
    if tracer is not None:
        return tracer
    from . import tracer as global_tracer

    return global_tracer()


def write_chrome_trace(path: str, tracer: Optional[Tracer] = None) -> None:
    """Write the Chrome trace-event document (open via chrome://tracing
    or https://ui.perfetto.dev)."""
    document = _default_tracer(tracer).to_chrome()
    with open(path, "w") as handle:
        json.dump(document, handle)
        handle.write("\n")


def write_jsonl_trace(path: str, tracer: Optional[Tracer] = None) -> None:
    """Write one JSON object per completed span."""
    text = _default_tracer(tracer).to_jsonl()
    with open(path, "w") as handle:
        handle.write(text)
        if text:
            handle.write("\n")


def write_trace(
    path: str, fmt: str = "chrome", tracer: Optional[Tracer] = None
) -> None:
    """Dispatch on ``fmt`` (one of :data:`TRACE_FORMATS`)."""
    if fmt == "chrome":
        write_chrome_trace(path, tracer)
    elif fmt == "jsonl":
        write_jsonl_trace(path, tracer)
    else:
        raise ValueError(f"trace format must be one of {TRACE_FORMATS}, got {fmt!r}")


def write_metrics(
    path: str, snapshot: Optional[Dict[str, Any]] = None
) -> None:
    """Write a metrics snapshot (defaults to the live global snapshot)."""
    if snapshot is None:
        from . import snapshot as global_snapshot

        snapshot = global_snapshot()
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_metrics(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)


def load_chrome_trace(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)
