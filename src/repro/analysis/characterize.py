"""Rule-set characterisation — the paper's motivating statistics (§1).

Over its combined benchmark collection the paper reports that *bounded
repetition appears in 37% of the regexes and accounts for 85% of all NFA
states after unfolding*, and that the average regex contributes ~16
plain STEs (§8, RegexLib analysis).  This module computes those numbers
for any pattern collection so the synthetic corpora can be validated
against them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..regex import ast as ast_mod
from ..regex.parser import parse
from ..regex.rewrite import unfold_all


@dataclass
class RulesetCharacterization:
    """Aggregate statistics of one pattern collection."""

    total_patterns: int
    parse_failures: int
    counting_patterns: int  # patterns with bounded repetition
    total_unfolded_states: int
    counting_unfolded_states: int  # states contributed by repetitions
    plain_states: int
    bound_histogram: Dict[str, int]  # bucket label -> count

    @property
    def counting_fraction(self) -> float:
        """Fraction of regexes using bounded repetition (paper: 0.37)."""
        usable = self.total_patterns - self.parse_failures
        return self.counting_patterns / usable if usable else 0.0

    @property
    def counting_state_fraction(self) -> float:
        """Fraction of unfolded NFA states from repetitions (paper: 0.85)."""
        if not self.total_unfolded_states:
            return 0.0
        return self.counting_unfolded_states / self.total_unfolded_states

    @property
    def mean_plain_states(self) -> float:
        usable = self.total_patterns - self.parse_failures
        return self.plain_states / usable if usable else 0.0


_BUCKETS: Tuple[Tuple[str, int, Optional[int]], ...] = (
    ("2-4", 2, 4),
    ("5-16", 5, 16),
    ("17-64", 17, 64),
    ("65-256", 65, 256),
    ("257-1024", 257, 1024),
    (">1024", 1025, None),
)


def _bucket(bound: int) -> Optional[str]:
    for label, lo, hi in _BUCKETS:
        if bound >= lo and (hi is None or bound <= hi):
            return label
    return None


def characterize(patterns: Sequence[str]) -> RulesetCharacterization:
    """Compute the §1 statistics for a pattern collection."""
    failures = 0
    counting_patterns = 0
    total_states = 0
    counting_states = 0
    plain_states = 0
    histogram: Dict[str, int] = {label: 0 for label, _, _ in _BUCKETS}

    for pattern in patterns:
        try:
            node = parse(pattern)
        except ValueError:
            failures += 1
            continue
        unfolded = ast_mod.symbol_count(unfold_all(node))
        plain = ast_mod.symbol_count(_strip_counting(node))
        total_states += unfolded
        plain_states += plain
        has_counting = False
        for sub in node.walk():
            if isinstance(sub, ast_mod.Repeat):
                bound = sub.high if sub.high is not None else sub.low
                label = _bucket(bound)
                if label is not None:
                    histogram[label] += 1
                if bound > 1:
                    has_counting = True
        if has_counting:
            counting_patterns += 1
            counting_states += unfolded - plain

    return RulesetCharacterization(
        total_patterns=len(patterns),
        parse_failures=failures,
        counting_patterns=counting_patterns,
        total_unfolded_states=total_states,
        counting_unfolded_states=counting_states,
        plain_states=plain_states,
        bound_histogram=histogram,
    )


def _strip_counting(node: ast_mod.Regex) -> ast_mod.Regex:
    """The regex with each bounded repetition reduced to one body copy —
    its footprint if counting were free."""
    if isinstance(node, (ast_mod.Epsilon, ast_mod.Symbol)):
        return node
    if isinstance(node, ast_mod.Repeat):
        return _strip_counting(node.inner)
    if isinstance(node, ast_mod.Concat):
        return ast_mod.concat(
            _strip_counting(node.left), _strip_counting(node.right)
        )
    if isinstance(node, ast_mod.Alternation):
        return ast_mod.alternation(
            _strip_counting(node.left), _strip_counting(node.right)
        )
    if isinstance(node, ast_mod.Star):
        return ast_mod.star(_strip_counting(node.inner))
    if isinstance(node, ast_mod.Plus):
        return ast_mod.plus(_strip_counting(node.inner))
    if isinstance(node, ast_mod.Optional_):
        return ast_mod.optional(_strip_counting(node.inner))
    raise TypeError(f"unknown node: {node!r}")
