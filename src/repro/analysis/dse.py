"""Design-space exploration over (bv_size, unfold_threshold, reduce) — §8.

For each parameter combination the dataset is compiled and simulated on
BVAP; compute density, EDP, and the figure of merit are normalised to a
CAMA run of the same dataset and input.  ``best_by_fom`` reproduces the
Table 5 selection of per-dataset optimal parameters.  The optional
``reduce_levels`` axis sweeps the ``compiler.reduce`` quotient pass
(default: the standard level only, keeping the grid Fig.-13 shaped).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..compiler.pipeline import CompilerOptions, compile_ruleset
from ..compiler.reduce import DEFAULT_REDUCE_LEVEL
from ..hardware.report import SimulationReport
from ..hardware.simulator import (
    BaselineSimulator,
    BVAPSimulator,
    SimOptions,
    compile_baseline,
)
from ..hardware.specs import CAMA_SPEC
from ..workloads.datasets import PROFILES, load_dataset
from ..workloads.inputs import dataset_stream

DEFAULT_BV_SIZES = (16, 32, 64)
DEFAULT_UNFOLD_THRESHOLDS = (4, 8, 12)


@dataclass
class DSEPoint:
    """One (bv_size, unfold_th) evaluation, normalised to CAMA."""

    dataset: str
    bv_size: int
    unfold_threshold: int
    report: SimulationReport
    baseline: SimulationReport
    reduce_level: int = DEFAULT_REDUCE_LEVEL

    @property
    def compute_density_norm(self) -> float:
        return (
            self.report.compute_density_gbps_mm2
            / self.baseline.compute_density_gbps_mm2
        )

    @property
    def edp_norm(self) -> float:
        return self.report.edp / self.baseline.edp

    @property
    def fom_norm(self) -> float:
        return self.report.fom / self.baseline.fom


@dataclass
class DSEResult:
    dataset: str
    points: List[DSEPoint] = field(default_factory=list)

    def best_by_fom(self) -> DSEPoint:
        return min(self.points, key=lambda p: p.fom_norm)

    def best_by_density(self) -> DSEPoint:
        return max(self.points, key=lambda p: p.compute_density_norm)

    def best_by_edp(self) -> DSEPoint:
        return min(self.points, key=lambda p: p.edp_norm)

    def grid(self, metric: str) -> Dict[Tuple[int, int], float]:
        """(bv_size, unfold_th) -> normalised metric value."""
        attr = {
            "compute_density": "compute_density_norm",
            "edp": "edp_norm",
            "fom": "fom_norm",
        }[metric]
        return {
            (p.bv_size, p.unfold_threshold): getattr(p, attr)
            for p in self.points
        }


def explore_dataset(
    dataset: str,
    regex_count: int = 30,
    input_length: int = 2000,
    seed: int = 0,
    bv_sizes: Sequence[int] = DEFAULT_BV_SIZES,
    unfold_thresholds: Sequence[int] = DEFAULT_UNFOLD_THRESHOLDS,
    patterns: Optional[Sequence[str]] = None,
    data: Optional[bytes] = None,
    reduce_levels: Sequence[int] = (DEFAULT_REDUCE_LEVEL,),
) -> DSEResult:
    """Sweep the compiler knobs on one dataset (Fig. 13)."""
    if patterns is None:
        patterns = load_dataset(dataset, regex_count, seed)
    if data is None:
        rng = random.Random(seed + 1)
        data = dataset_stream(
            patterns, rng, input_length, PROFILES[dataset].literal_pool
        )

    baseline_ruleset = compile_baseline(patterns)
    baseline = BaselineSimulator(CAMA_SPEC, baseline_ruleset).run(data)

    result = DSEResult(dataset=dataset)
    for bv_size in bv_sizes:
        for unfold_th in unfold_thresholds:
            for reduce_level in reduce_levels:
                options = CompilerOptions(
                    bv_size=bv_size,
                    unfold_threshold=unfold_th,
                    reduce_level=reduce_level,
                )
                ruleset = compile_ruleset(patterns, options)
                report = BVAPSimulator(ruleset).run(data)
                result.points.append(
                    DSEPoint(
                        dataset=dataset,
                        bv_size=bv_size,
                        unfold_threshold=unfold_th,
                        report=report,
                        baseline=baseline,
                        reduce_level=reduce_level,
                    )
                )
    return result


def best_parameters(
    datasets: Sequence[str],
    regex_count: int = 30,
    input_length: int = 2000,
    seed: int = 0,
) -> Dict[str, Tuple[int, int]]:
    """Table 5: per-dataset (bv_size, unfold_th) minimising the FoM."""
    out: Dict[str, Tuple[int, int]] = {}
    for dataset in datasets:
        result = explore_dataset(dataset, regex_count, input_length, seed)
        best = result.best_by_fom()
        out[dataset] = (best.bv_size, best.unfold_threshold)
    return out
