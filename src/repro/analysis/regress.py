"""Noise-aware comparison of two ``BENCH_scan.json`` perf records.

Single-shot throughput comparisons are dominated by machine noise: CI
runners share cores, thermal throttling skews one cell, and a 16 KiB
scan finishes in microseconds.  This comparator is the regression gate's
answer:

* cells are matched **by shape** — ``(num_patterns, input_bytes,
  match_rate)``, with ``match_rate=None`` for the classic grid — never
  by position, so reordered or extended grids still compare; the
  ``match_rate_grid`` section (fused tier variants) joins the same
  pool;
* per engine, every matched cell contributes a throughput ratio
  (new / old), and the engine's verdict is the **median** ratio — one
  noisy cell cannot fail the gate, a real slowdown shifts every cell;
* an engine regresses only when its median throughput dropped by more
  than ``threshold`` (default 30%, deliberately loose for shared CI
  hardware);
* the ``reduction`` cell joins the verdict as two pseudo-engines:
  ``reduction-states`` (the reduced fused state count — growth past the
  threshold fails, so a weakened ``compiler.reduce`` pass is caught) and
  ``reduction-scan`` (the reduced fused throughput);
* the anchored ``workloads`` cells (per-record profile scans from the
  ruleset importer) join as ``workload-<tier>`` pseudo-engines, one per
  fused stepping tier, pooling every matched ``(workload, match_rate,
  num_patterns)`` cell.

The module doubles as the CI entry point::

    python -m repro.analysis.regress BENCH_scan.json new.json \
        --threshold 0.30

exits 1 when any compared engine regressed, 2 when either record is
missing/unreadable, 0 otherwise — see ``.github/workflows/ci.yml``.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Default tolerated median throughput drop (fraction) before the gate
#: fails.  Loose on purpose: CI boxes are noisy and the bench cells are
#: short; real regressions (an accidental per-byte allocation, a lost
#: cache) blow well past 30%.
DEFAULT_THRESHOLD = 0.30


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


#: Cell-shape key: ``match_rate`` is ``None`` for classic grid cells so
#: legacy records (no match-rate axis) keep comparing unchanged.
_Shape = Tuple[int, int, Optional[float]]


def _cells_by_shape(record: Mapping[str, Any]) -> Dict[_Shape, Mapping[str, Any]]:
    out: Dict[_Shape, Mapping[str, Any]] = {}
    for cell in record.get("grid", []):
        key = (int(cell["num_patterns"]), int(cell["input_bytes"]), None)
        out[key] = cell  # last wins; records keep one cell per shape
    for cell in record.get("match_rate_grid", []):
        key = (
            int(cell["num_patterns"]),
            int(cell["input_bytes"]),
            float(cell["match_rate"]),
        )
        out[key] = cell
    return out


def _shape_order(key: _Shape) -> Tuple[int, int, float]:
    return (key[0], key[1], -1.0 if key[2] is None else key[2])


def _throughput(cell: Mapping[str, Any], engine: str) -> Optional[float]:
    timing = cell.get("timings", {}).get(engine)
    if timing is None:
        return None
    value = timing.get("throughput_mbps")
    if value is None or value <= 0 or value == float("inf"):
        return None
    return float(value)


@dataclass
class EngineComparison:
    """One engine's verdict across every matched grid cell."""

    engine: str
    cells: int
    median_ratio: float  # new / old throughput; 1.0 = unchanged
    min_ratio: float
    max_ratio: float
    regressed: bool
    ratios: List[float] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "cells": self.cells,
            "median_ratio": round(self.median_ratio, 4),
            "min_ratio": round(self.min_ratio, 4),
            "max_ratio": round(self.max_ratio, 4),
            "regressed": self.regressed,
        }


@dataclass
class RegressionReport:
    """Outcome of comparing a new perf record against a baseline."""

    threshold: float
    engines: List[EngineComparison] = field(default_factory=list)
    matched_cells: int = 0
    unmatched_old: int = 0
    unmatched_new: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[EngineComparison]:
        return [e for e in self.engines if e.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_json(self) -> Dict[str, Any]:
        return {
            "threshold": self.threshold,
            "matched_cells": self.matched_cells,
            "unmatched_old": self.unmatched_old,
            "unmatched_new": self.unmatched_new,
            "engines": [e.to_json() for e in self.engines],
            "regressed": [e.engine for e in self.regressions],
            "ok": self.ok,
            "notes": list(self.notes),
        }


def compare_records(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    engines: Optional[Sequence[str]] = None,
) -> RegressionReport:
    """Compare two :func:`repro.matching.bench.bench_grid` records.

    ``engines`` restricts the comparison (default: every engine present
    in both records).  Cells appearing in only one record are counted
    but never judged; an engine with no matched cells is skipped with a
    note rather than failed, so a grid reshape cannot masquerade as a
    regression.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    report = RegressionReport(threshold=threshold)
    old_cells = _cells_by_shape(old)
    new_cells = _cells_by_shape(new)
    shared = sorted(set(old_cells) & set(new_cells), key=_shape_order)
    report.matched_cells = len(shared)
    report.unmatched_old = len(old_cells) - len(shared)
    report.unmatched_new = len(new_cells) - len(shared)
    if not shared:
        report.notes.append("no grid cells in common; nothing compared")
        return report
    if engines is None:
        # Engines listed by both records, plus any pseudo-engine that
        # appears in matched cell timings on both sides (the fused tier
        # variants of the match-rate axis are not in ``engines``).
        names = set(old.get("engines", [])) & set(new.get("engines", []))
        names |= {
            name
            for key in shared
            for name in old_cells[key].get("timings", {})
            if name in new_cells[key].get("timings", {})
        }
        engines = sorted(names)
    for engine in engines:
        ratios: List[float] = []
        for key in shared:
            before = _throughput(old_cells[key], engine)
            after = _throughput(new_cells[key], engine)
            if before is None or after is None:
                continue
            ratios.append(after / before)
        if not ratios:
            report.notes.append(f"engine {engine!r}: no comparable cells")
            continue
        median = _median(ratios)
        report.engines.append(
            EngineComparison(
                engine=engine,
                cells=len(ratios),
                median_ratio=median,
                min_ratio=min(ratios),
                max_ratio=max(ratios),
                regressed=median < 1.0 - threshold,
                ratios=ratios,
            )
        )
    _compare_reduction(old, new, threshold, report)
    _compare_workloads(old, new, threshold, report)
    return report


def _compare_reduction(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    threshold: float,
    report: RegressionReport,
) -> None:
    """Gate the ``reduction`` cell (reduced-vs-unreduced fused scan).

    Two pseudo-engines join the verdict table when both records carry a
    same-shape ``reduction`` section:

    * ``reduction-states`` — ratio is old/new reduced fused-state count,
      so a shrinking reduction (more surviving states) reads as a drop
      and fails past the threshold;
    * ``reduction-scan`` — the reduced fused throughput ratio, same
      median semantics as the real engines (single cell, so the median
      is the cell).
    """
    old_cell = old.get("reduction")
    new_cell = new.get("reduction")
    if not old_cell or not new_cell:
        if old_cell or new_cell:
            report.notes.append(
                "reduction cell present in only one record; not compared"
            )
        return
    if (
        old_cell.get("num_patterns") != new_cell.get("num_patterns")
        or old_cell.get("reduce_level") != new_cell.get("reduce_level")
    ):
        report.notes.append(
            "reduction cells have different shapes; not compared"
        )
        return
    report.matched_cells += 1
    comparisons = []
    old_states = old_cell.get("reduced", {}).get("fused_states")
    new_states = new_cell.get("reduced", {}).get("fused_states")
    if old_states and new_states:
        comparisons.append(("reduction-states", old_states / new_states))
    old_tp = old_cell.get("reduced", {}).get("throughput_mbps")
    new_tp = new_cell.get("reduced", {}).get("throughput_mbps")
    if old_tp and new_tp:
        comparisons.append(("reduction-scan", new_tp / old_tp))
    for name, ratio in comparisons:
        report.engines.append(
            EngineComparison(
                engine=name,
                cells=1,
                median_ratio=ratio,
                min_ratio=ratio,
                max_ratio=ratio,
                regressed=ratio < 1.0 - threshold,
                ratios=[ratio],
            )
        )


def _compare_workloads(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    threshold: float,
    report: RegressionReport,
) -> None:
    """Gate the anchored ``workloads`` cells (per-record profile scans).

    Workload cells are matched by ``(workload, match_rate,
    num_patterns)`` — the record count and byte total are generator
    details that legitimately drift.  Each fused tier joins the verdict
    table as one ``workload-<tier>`` pseudo-engine whose ratios pool
    every matched cell, so a single noisy profile cannot fail the gate
    but an anchored-path slowdown (a broken start gate, a prefilter that
    stopped arming) shifts the median.
    """
    old_cells = {
        (c["workload"], float(c["match_rate"]), int(c["num_patterns"])): c
        for c in old.get("workloads", [])
    }
    new_cells = {
        (c["workload"], float(c["match_rate"]), int(c["num_patterns"])): c
        for c in new.get("workloads", [])
    }
    if not old_cells or not new_cells:
        if old_cells or new_cells:
            report.notes.append(
                "workload cells present in only one record; not compared"
            )
        return
    shared = sorted(set(old_cells) & set(new_cells))
    if not shared:
        report.notes.append("no workload cells in common; nothing compared")
        return
    report.matched_cells += len(shared)
    tiers = sorted(
        {
            name
            for key in shared
            for name in old_cells[key].get("timings", {})
            if name in new_cells[key].get("timings", {})
        }
    )
    for tier in tiers:
        ratios = []
        for key in shared:
            before = _throughput(old_cells[key], tier)
            after = _throughput(new_cells[key], tier)
            if before is None or after is None:
                continue
            ratios.append(after / before)
        if not ratios:
            continue
        median = _median(ratios)
        report.engines.append(
            EngineComparison(
                engine=f"workload-{tier}",
                cells=len(ratios),
                median_ratio=median,
                min_ratio=min(ratios),
                max_ratio=max(ratios),
                regressed=median < 1.0 - threshold,
                ratios=ratios,
            )
        )


def format_regression(report: RegressionReport) -> str:
    """Human-readable table of a :class:`RegressionReport`."""
    from .report import format_table

    rows = [
        [
            comparison.engine,
            comparison.cells,
            f"{comparison.median_ratio:.2f}x",
            f"{comparison.min_ratio:.2f}x",
            f"{comparison.max_ratio:.2f}x",
            "REGRESSED" if comparison.regressed else "ok",
        ]
        for comparison in report.engines
    ]
    lines = [
        format_table(
            ["engine", "cells", "median", "min", "max", "verdict"], rows
        )
    ]
    lines.append(
        f"{report.matched_cells} matched cells; threshold: median drop "
        f"> {report.threshold:.0%} fails"
    )
    for note in report.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def _load(path: str) -> Optional[Dict[str, Any]]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.regress",
        description="noise-aware comparison of two BENCH_scan.json records",
    )
    parser.add_argument("old", help="baseline record (committed)")
    parser.add_argument("new", help="candidate record (fresh run)")
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="tolerated median throughput drop (default 0.30)",
    )
    parser.add_argument(
        "--engines", default=None,
        help="comma-separated engine subset (default: engines in both)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="json_mode",
        help="emit the report as JSON instead of a table",
    )
    args = parser.parse_args(argv)
    old = _load(args.old)
    new = _load(args.new)
    if old is None or new is None:
        missing = args.old if old is None else args.new
        print(f"error: cannot read record {missing!r}", file=sys.stderr)
        return 2
    engines = (
        [e.strip() for e in args.engines.split(",") if e.strip()]
        if args.engines
        else None
    )
    report = compare_records(
        old, new, threshold=args.threshold, engines=engines
    )
    if args.json_mode:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(format_regression(report))
    if not report.ok:
        print(
            "regression: "
            + ", ".join(
                f"{e.engine} median {e.median_ratio:.2f}x"
                for e in report.regressions
            ),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
