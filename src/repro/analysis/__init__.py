"""Evaluation drivers: metrics, design-space exploration, reporting."""

from .characterize import RulesetCharacterization, characterize
from .compare import ALL_ARCHITECTURES, compare_architectures, normalized_comparison
from .figures import dse_to_csv, normalized_to_csv, reports_to_csv, sweep_to_csv
from .dse import (
    DEFAULT_BV_SIZES,
    DEFAULT_UNFOLD_THRESHOLDS,
    DSEPoint,
    DSEResult,
    best_parameters,
    explore_dataset,
)
from .metrics import (
    LOWER_IS_BETTER,
    METRIC_NAMES,
    average_normalized,
    geometric_mean,
    improvement_factor,
    normalized_metrics,
    savings_percent,
)
from .regress import (
    DEFAULT_THRESHOLD,
    EngineComparison,
    RegressionReport,
    compare_records,
    format_regression,
)
from .report import (
    format_table,
    join_profile_metrics,
    join_report_metrics,
    metrics_summary_table,
    normalized_table,
    profile_summary_table,
    span_summary_table,
)

__all__ = [
    "DEFAULT_BV_SIZES",
    "DEFAULT_THRESHOLD",
    "DEFAULT_UNFOLD_THRESHOLDS",
    "DSEPoint",
    "DSEResult",
    "EngineComparison",
    "RegressionReport",
    "compare_records",
    "format_regression",
    "LOWER_IS_BETTER",
    "ALL_ARCHITECTURES",
    "METRIC_NAMES",
    "RulesetCharacterization",
    "average_normalized",
    "characterize",
    "compare_architectures",
    "best_parameters",
    "dse_to_csv",
    "explore_dataset",
    "format_table",
    "geometric_mean",
    "improvement_factor",
    "join_profile_metrics",
    "join_report_metrics",
    "metrics_summary_table",
    "normalized_comparison",
    "normalized_metrics",
    "normalized_table",
    "normalized_to_csv",
    "profile_summary_table",
    "reports_to_csv",
    "span_summary_table",
    "sweep_to_csv",
    "savings_percent",
]
