"""Plain-text table rendering for benchmark output, plus helpers that
join telemetry snapshots with the paper's evaluation metrics."""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """A simple aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(value) for value in row] for row in rows
    ]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append(
            "  ".join(value.rjust(width) for value, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def normalized_table(
    per_arch: Mapping[str, Mapping[str, float]], metrics: Sequence[str]
) -> str:
    """Architectures × metrics table of normalised values (Fig. 14)."""
    headers = ["architecture"] + list(metrics)
    rows = [
        [arch] + [values[m] for m in metrics] for arch, values in per_arch.items()
    ]
    return format_table(headers, rows)


# ----------------------------------------------------------------------
# Telemetry snapshot rendering / joining
# ----------------------------------------------------------------------


def span_summary_table(snapshot: Mapping[str, Any]) -> str:
    """Per-span table (count, total/mean/max µs) from a telemetry
    snapshot's ``spans`` section — the per-phase compile breakdown."""
    spans = snapshot.get("spans", {})
    headers = ["span", "count", "total_us", "mean_us", "max_us"]
    rows = []
    for name in sorted(spans, key=lambda n: -spans[n]["total_us"]):
        agg = spans[name]
        count = agg["count"]
        rows.append(
            [
                name,
                count,
                agg["total_us"],
                agg["total_us"] / count if count else 0.0,
                agg["max_us"],
            ]
        )
    return format_table(headers, rows)


def metrics_summary_table(snapshot: Mapping[str, Any]) -> str:
    """Counters and gauges of a telemetry snapshot as one table."""
    rows: List[List[object]] = []
    for key in sorted(snapshot.get("counters", {})):
        rows.append([key, "counter", snapshot["counters"][key]])
    for key in sorted(snapshot.get("gauges", {})):
        rows.append([key, "gauge", snapshot["gauges"][key]["value"]])
    for key in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][key]
        rows.append([key, "histogram", f"n={hist['count']} mean={hist['mean']:.2f}"])
    return format_table(["metric", "kind", "value"], rows)


def profile_summary_table(profile: Mapping[str, Any], top: int = 10) -> str:
    """The "find your hottest pattern" view of a ``ScanProfile``.

    Renders the top ``top`` patterns by activation share (who keeps the
    combined bitset hot) next to their sampled time share, followed by a
    one-line cache summary and the costliest byte classes.
    """
    rows: List[List[object]] = []
    for entry in profile.get("patterns", [])[:top]:
        pattern = entry.get("pattern", "")
        if len(pattern) > 40:
            pattern = pattern[:37] + "..."
        rows.append(
            [
                entry["pattern_id"],
                f"{entry['activation_share']:.1%}",
                f"{entry['time_share']:.1%}",
                f"{entry['mean_active']:.1f}",
                entry["peak_active"],
                pattern,
            ]
        )
    lines = [
        format_table(
            ["pattern", "activation", "time", "mean_act", "peak", "source"],
            rows,
        )
    ]
    cache = profile.get("cache", {})
    if cache:
        lines.append(
            f"lazy-DFA cache: {cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses "
            f"({cache.get('hit_ratio', 0.0):.1%} hit ratio, "
            f"{len(cache.get('series', []))} series points)"
        )
    stepping = profile.get("stepping", {})
    if stepping.get("steps_table") or stepping.get("steps_bitset"):
        lines.append(
            f"stepping tiers: table {stepping.get('table_share', 0.0):.1%} "
            f"({stepping.get('steps_table', 0)} bytes) / "
            f"bitset {stepping.get('bitset_share', 0.0):.1%} "
            f"({stepping.get('steps_bitset', 0)} bytes), "
            f"{stepping.get('skipped_bytes', 0)} prefilter-skipped"
        )
    classes = profile.get("byte_classes", [])
    if classes:
        worst = classes[0]
        lines.append(
            f"costliest byte class: {worst['example']!r} "
            f"({worst['members']} bytes, mean {worst['mean_us']:.2f}us/step "
            f"over {worst['sampled']} samples)"
        )
    heatmap = profile.get("heatmap", {})
    density = heatmap.get("density", [])
    if density:
        peak = max(range(len(density)), key=lambda i: density[i])
        bucket = heatmap.get("bucket_bytes", 0)
        lines.append(
            f"hottest input region: offsets {peak * bucket}-"
            f"{(peak + 1) * bucket} (mean {density[peak]:.1f} active states)"
        )
    return "\n".join(lines)


def join_profile_metrics(
    profile: Mapping[str, Any], snapshot: Mapping[str, Any]
) -> Dict[str, object]:
    """Flatten a ``ScanProfile`` and a telemetry snapshot into one flat
    dict keyed like :func:`join_report_metrics` — the analysis join for
    correlating per-pattern attribution with the run's counters (cache
    hit rates, shard occupancy, symbols scanned)."""
    out: Dict[str, object] = {
        "engine": profile.get("engine"),
        "stride": profile.get("stride"),
        "input_bytes": profile.get("input_bytes"),
        "samples": profile.get("samples"),
    }
    for entry in profile.get("patterns", []):
        prefix = f"profile.pattern.{entry['pattern_id']}"
        out[f"{prefix}.activation_share"] = entry["activation_share"]
        out[f"{prefix}.time_share"] = entry["time_share"]
        out[f"{prefix}.peak_active"] = entry["peak_active"]
    cache = profile.get("cache", {})
    out["profile.cache.hits"] = cache.get("hits", 0)
    out["profile.cache.misses"] = cache.get("misses", 0)
    out["profile.cache.hit_ratio"] = cache.get("hit_ratio", 0.0)
    for key, value in snapshot.get("counters", {}).items():
        out[f"telemetry.{key}"] = value
    for key, value in snapshot.get("gauges", {}).items():
        out[f"telemetry.{key}"] = value["value"]
    for name, agg in snapshot.get("spans", {}).items():
        out[f"telemetry.span.{name}.total_us"] = agg["total_us"]
    return out


def join_report_metrics(report: "Any") -> Dict[str, object]:
    """Flatten a :class:`~repro.hardware.report.SimulationReport` and the
    telemetry snapshot it carries (``notes["metrics"]``) into one flat
    dict, so evaluation scripts can correlate the paper's figures
    (energy/symbol, compute density, …) with per-event accounting
    (per-tile BVM activations, per-array stalls, occupancy)."""
    out: Dict[str, object] = {
        "architecture": report.architecture,
        "symbols": report.symbols,
        "matches": report.matches,
        "system_cycles": report.system_cycles,
        "stall_cycles": report.stall_cycles,
        "bvm_activations": report.bvm_activations,
        "area_mm2": report.area_mm2,
        "energy_per_symbol_nj": report.energy_per_symbol_nj,
        "throughput_gbps": report.throughput_gbps,
        "compute_density_gbps_mm2": report.compute_density_gbps_mm2,
        "power_w": report.power_w,
        "edp": report.edp,
        "fom": report.fom,
    }
    snapshot = report.metrics_snapshot
    if snapshot:
        for key, value in snapshot.get("counters", {}).items():
            out[f"telemetry.{key}"] = value
        for key, value in snapshot.get("gauges", {}).items():
            out[f"telemetry.{key}"] = value["value"]
        for key, hist in snapshot.get("histograms", {}).items():
            out[f"telemetry.{key}.count"] = hist["count"]
            out[f"telemetry.{key}.mean"] = hist["mean"]
            out[f"telemetry.{key}.max"] = hist["max"]
        for name, agg in snapshot.get("spans", {}).items():
            out[f"telemetry.span.{name}.total_us"] = agg["total_us"]
    return out
