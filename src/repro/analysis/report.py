"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """A simple aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(value) for value in row] for row in rows
    ]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append(
            "  ".join(value.rjust(width) for value, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def normalized_table(
    per_arch: Mapping[str, Mapping[str, float]], metrics: Sequence[str]
) -> str:
    """Architectures × metrics table of normalised values (Fig. 14)."""
    headers = ["architecture"] + list(metrics)
    rows = [
        [arch] + [values[m] for m in metrics] for arch, values in per_arch.items()
    ]
    return format_table(headers, rows)
