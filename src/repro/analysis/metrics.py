"""Aggregation helpers over simulation reports (§8)."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence

from ..hardware.report import SimulationReport

METRIC_NAMES = (
    "area",
    "energy_per_symbol",
    "power",
    "compute_density",
    "throughput",
    "fom",
)

#: Metrics where lower is better (the rest are higher-is-better).
LOWER_IS_BETTER = ("area", "energy_per_symbol", "power", "fom")


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geometric mean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalized_metrics(
    report: SimulationReport, base: SimulationReport
) -> Dict[str, float]:
    """The six Fig. 14 metrics of ``report`` normalised to ``base``."""
    return report.normalized_to(base)


def average_normalized(
    per_dataset: Mapping[str, Mapping[str, float]]
) -> Dict[str, float]:
    """Geometric mean of each normalised metric across datasets."""
    out: Dict[str, float] = {}
    for metric in METRIC_NAMES:
        out[metric] = geometric_mean(
            [metrics[metric] for metrics in per_dataset.values()]
        )
    return out


def savings_percent(ratio: float) -> float:
    """A normalised ratio expressed as percentage saved (lower-is-better
    metrics): 0.33 → 67%."""
    return (1.0 - ratio) * 100.0


def improvement_factor(ratio: float) -> float:
    """A lower-is-better ratio expressed as an improvement factor:
    0.25 → 4x better."""
    if ratio <= 0:
        return float("inf")
    return 1.0 / ratio
