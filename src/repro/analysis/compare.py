"""Head-to-head architecture comparison (the Fig. 14 driver).

Compiles one rule set for BVAP (bit vectors) and for the unfolding
baselines, runs every requested architecture over the same input, and
returns the reports plus CA-normalised metric tables.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..compiler.pipeline import CompilerOptions, compile_ruleset
from ..hardware.report import SimulationReport
from ..hardware.simulator import (
    BaselineRuleset,
    BaselineSimulator,
    BVAPSimulator,
    SimOptions,
    compile_baseline,
)
from ..hardware.specs import CA_SPEC, CAMA_SPEC, EAP_SPEC
from .metrics import METRIC_NAMES

ALL_ARCHITECTURES = ("CA", "eAP", "CAMA", "BVAP", "BVAP-S")


def compare_architectures(
    patterns: Sequence[str],
    data: bytes,
    options: CompilerOptions = CompilerOptions(),
    sim_options: SimOptions = SimOptions(),
    architectures: Sequence[str] = ALL_ARCHITECTURES,
) -> Dict[str, SimulationReport]:
    """Simulate the rule set on each architecture over the same input."""
    unknown = set(architectures) - set(ALL_ARCHITECTURES)
    if unknown:
        raise ValueError(f"unknown architectures: {sorted(unknown)}")

    reports: Dict[str, SimulationReport] = {}
    bvap_ruleset = None
    baseline_ruleset: Optional[BaselineRuleset] = None
    specs = {"CA": CA_SPEC, "eAP": EAP_SPEC, "CAMA": CAMA_SPEC}

    for arch in architectures:
        if arch in ("BVAP", "BVAP-S"):
            if bvap_ruleset is None:
                bvap_ruleset = compile_ruleset(patterns, options)
            simulator = BVAPSimulator(
                bvap_ruleset,
                streaming=arch == "BVAP-S",
                options=sim_options,
            )
            reports[arch] = simulator.run(data)
        else:
            if baseline_ruleset is None:
                baseline_ruleset = compile_baseline(patterns)
            reports[arch] = BaselineSimulator(
                specs[arch], baseline_ruleset, options=sim_options
            ).run(data)
    return reports


def normalized_comparison(
    reports: Dict[str, SimulationReport], base: str = "CA"
) -> Dict[str, Dict[str, float]]:
    """Each architecture's six Fig. 14 metrics normalised to ``base``."""
    if base not in reports:
        raise KeyError(f"base architecture {base!r} not in reports")
    reference = reports[base]
    return {
        arch: report.normalized_to(reference)
        for arch, report in reports.items()
    }
