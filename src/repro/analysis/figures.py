"""CSV export of figure data for external plotting.

The benchmark harness writes human-readable tables to
``benchmarks/results``; these helpers produce machine-readable CSV from
the same objects so the paper's figures can be re-plotted with any tool.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Mapping, Sequence

from ..hardware.report import SimulationReport
from .dse import DSEResult
from .metrics import METRIC_NAMES


def reports_to_csv(
    reports: Mapping[str, SimulationReport], path: str = None
) -> str:
    """One row per architecture with the absolute evaluation metrics."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "architecture",
            "symbols",
            "matches",
            "tiles",
            "area_mm2",
            "energy_per_symbol_nj",
            "throughput_gbps",
            "compute_density_gbps_mm2",
            "power_w",
            "edp",
            "fom",
        ]
    )
    for arch, report in reports.items():
        writer.writerow(
            [
                arch,
                report.symbols,
                report.matches,
                report.num_tiles,
                report.area_mm2,
                report.energy_per_symbol_nj,
                report.throughput_gbps,
                report.compute_density_gbps_mm2,
                report.power_w,
                report.edp,
                report.fom,
            ]
        )
    return _finish(buffer, path)


def normalized_to_csv(
    per_arch: Mapping[str, Mapping[str, float]], path: str = None
) -> str:
    """Fig. 14-style normalised metrics, one row per architecture."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["architecture"] + list(METRIC_NAMES))
    for arch, metrics in per_arch.items():
        writer.writerow([arch] + [metrics[name] for name in METRIC_NAMES])
    return _finish(buffer, path)


def dse_to_csv(result: DSEResult, path: str = None) -> str:
    """Fig. 13 grid: one row per (bv_size, unfold_th) point."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "dataset",
            "bv_size",
            "unfold_threshold",
            "compute_density_vs_cama",
            "edp_vs_cama",
            "fom_vs_cama",
        ]
    )
    for point in result.points:
        writer.writerow(
            [
                point.dataset,
                point.bv_size,
                point.unfold_threshold,
                point.compute_density_norm,
                point.edp_norm,
                point.fom_norm,
            ]
        )
    return _finish(buffer, path)


def sweep_to_csv(
    rows: Sequence[Mapping[str, object]], path: str = None
) -> str:
    """Generic sweep export (micro-benchmarks): list of dict rows."""
    if not rows:
        raise ValueError("no rows to export")
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return _finish(buffer, path)


def _finish(buffer: io.StringIO, path: str) -> str:
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", newline="") as handle:
            handle.write(text)
    return text
