"""BVAP reproduction: bit-vector automata processing for regexes with
bounded repetitions (ASPLOS 2024).

The package is organised by layer:

* :mod:`repro.regex` — PCRE-subset parser, character classes, and the §7
  rewrite rules (unfolding, bound splitting);
* :mod:`repro.automata` — NFA (Glushkov), NCA, NBVA, and the
  action-homogeneous transformation;
* :mod:`repro.compiler` — regex → AH-NBVA translation, symbol encoding,
  tile mapping, and JSON hardware configurations;
* :mod:`repro.matching` — the high-level :class:`~repro.matching.PatternSet`
  API and the brute-force consistency oracle;
* :mod:`repro.hardware` — Table 4 circuit models, the BVM, and the
  cycle-level simulators for BVAP, BVAP-S, CA, eAP, CAMA, and CNT;
* :mod:`repro.workloads` — synthetic dataset and input generators;
* :mod:`repro.analysis` — metrics, design-space exploration, reporting;
* :mod:`repro.resilience` — error taxonomy, resource budgets, per-pattern
  fault isolation, and the fault-injection harness.

Quickstart::

    from repro import PatternSet
    matches = PatternSet(["ab{100}c"]).scan(data)
"""

from . import telemetry
from .compiler import CompilerOptions, compile_pattern, compile_ruleset
from .matching import DegradationPolicy, Match, PatternSet
from .resilience import (
    Budget,
    BudgetExceededError,
    CapacityError,
    CompileReport,
    ReproError,
    RegexSyntaxError,
    SimulationFaultError,
    UnsupportedFeatureError,
)

__version__ = "1.2.0"

__all__ = [
    "Budget",
    "BudgetExceededError",
    "CapacityError",
    "CompileReport",
    "CompilerOptions",
    "DegradationPolicy",
    "Match",
    "PatternSet",
    "ReproError",
    "RegexSyntaxError",
    "SimulationFaultError",
    "UnsupportedFeatureError",
    "compile_pattern",
    "compile_ruleset",
    "telemetry",
    "__version__",
]
