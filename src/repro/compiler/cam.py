"""CAM row generation — CAMA's nibble-product encoding ([16], §5/§6).

CAMA stores each STE's predicate in a 32-bit CAM row: the input byte is
split into its low and high nibbles, each one-hot over 16 bits, and the
row holds a 16-bit mask per nibble.  A row matches byte ``b`` iff

    low_mask[b & 0xF] == 1  and  high_mask[b >> 4] == 1

i.e. a single row represents exactly a *product* class
``L × H = {b : low(b) in L, high(b) in H}``.  Arbitrary character
classes decompose into several product rows; the decomposition below
groups high nibbles by their low-nibble sets, which yields the minimum
number of product rows for the class (one row per distinct non-empty
low-set).

This is why the Table 4 CAM is 32×256: 32 bits per row, 256 rows per
tile; STEs whose class needs multiple rows consume extra rows, which
:func:`rows_for_ruleset` surfaces as CAM pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..regex.charclass import CharClass
from ..resilience.errors import CapacityError, UnsupportedFeatureError

NIBBLE_BITS = 16


@dataclass(frozen=True)
class CamRow:
    """One 32-bit CAM row: a product of low- and high-nibble sets."""

    low_mask: int  # 16 bits, one per low-nibble value
    high_mask: int  # 16 bits, one per high-nibble value

    def __post_init__(self) -> None:
        if not 0 < self.low_mask < (1 << NIBBLE_BITS):
            raise CapacityError(f"low mask out of range: {self.low_mask:#x}")
        if not 0 < self.high_mask < (1 << NIBBLE_BITS):
            raise CapacityError(f"high mask out of range: {self.high_mask:#x}")

    def matches(self, byte: int) -> bool:
        return bool(
            self.low_mask >> (byte & 0xF) & 1
            and self.high_mask >> (byte >> 4) & 1
        )

    def to_class(self) -> CharClass:
        mask = 0
        for high in range(16):
            if not self.high_mask >> high & 1:
                continue
            for low in range(16):
                if self.low_mask >> low & 1:
                    mask |= 1 << ((high << 4) | low)
        return CharClass(mask)

    def encode(self) -> int:
        """The packed 32-bit row image."""
        return (self.high_mask << NIBBLE_BITS) | self.low_mask

    @classmethod
    def decode(cls, word: int) -> "CamRow":
        return cls(
            low_mask=word & ((1 << NIBBLE_BITS) - 1),
            high_mask=word >> NIBBLE_BITS,
        )


def encode_class(cc: CharClass) -> List[CamRow]:
    """Decompose a character class into product CAM rows.

    Groups high nibbles by their exact low-nibble sets; each group forms
    one row, which is the minimal product-row decomposition.
    """
    if cc.is_empty():
        raise UnsupportedFeatureError("cannot encode the empty class")
    low_sets: Dict[int, int] = {}  # low-nibble mask -> high-nibble mask
    for high in range(16):
        low_mask = 0
        base = high << 4
        for low in range(16):
            if (base | low) in cc:
                low_mask |= 1 << low
        if low_mask:
            low_sets[low_mask] = low_sets.get(low_mask, 0) | (1 << high)
    return [
        CamRow(low_mask=low_mask, high_mask=high_mask)
        for low_mask, high_mask in sorted(low_sets.items())
    ]


def decode_rows(rows: Iterable[CamRow]) -> CharClass:
    """Inverse of :func:`encode_class` (union of the product rows)."""
    out = CharClass.empty()
    for row in rows:
        out = out | row.to_class()
    return out


def rows_for_class(cc: CharClass) -> int:
    return len(encode_class(cc))


def rows_for_ruleset(classes: Iterable[CharClass]) -> Tuple[int, int]:
    """(STE count, CAM rows needed) — multi-row classes add CAM pressure."""
    stes = 0
    rows = 0
    for cc in classes:
        stes += 1
        rows += rows_for_class(cc)
    return stes, rows
