"""Regex → NBVA translation (§3, §4).

This is a Glushkov-style construction generalised to *counting scopes*: a
supported bounded repetition ``X{m,n}`` (see
:func:`repro.regex.rewrite.is_supported_repeat`) is not unfolded — its
positions are linearised once and carry a bit vector of width ``n``.  The
automaton's state space is therefore linear in the size of the regex, the
key succinctness property of the paper.

Action assignment follows the paper's examples (Fig. 2(e), §4):

* edges created *inside* a scope's body stay within one iteration → ``copy``
* the scope's own iteration loop-back (last(X) → first(X)) → ``shift``
* an edge entering a scope from outside starts a count → ``set1``
* an edge leaving a scope is guarded by the exit read — ``r(c)`` for an
  exact count, ``r(1, s)`` for a range — and becomes ``r(·).set1`` when it
  enters another scope directly.

The resulting NBVA is character-homogeneous (classes live on states) but
generally *not* action-homogeneous; apply
:func:`repro.automata.ah.to_action_homogeneous` for the hardware form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..automata.actions import (
    COPY,
    SET1,
    SHIFT,
    Action,
    read_action,
    read_set1_action,
)
from ..automata.nbva import NBVA, Scope, State, Transition
from ..regex import ast
from ..regex.rewrite import RewriteParams, is_supported_repeat
from ..resilience.errors import ReproError


class TranslationError(ReproError):
    """Raised when the AST contains an unsupported bounded repetition."""

    code = "E_UNSUPPORTED"


@dataclass
class _Fragment:
    nullable: bool
    first: Set[int]
    last: Set[int]


def translate(node: ast.Regex, params: RewriteParams = RewriteParams()) -> NBVA:
    """Translate a rewritten regex AST into an NBVA.

    Every ``Repeat`` node in ``node`` must already be in hardware-supported
    form (run :func:`repro.regex.rewrite.rewrite` first); otherwise
    :class:`TranslationError` is raised.
    """
    states: List[State] = []
    scopes: List[Scope] = []
    edges: Set[Tuple[int, int, Action]] = set()

    def exit_read(scope_id: int) -> Action:
        scope = scopes[scope_id]
        return read_action(scope.low, scope.high)

    def link(sources: Set[int], targets: Set[int], inside: Optional[int]) -> None:
        """Create follow edges with the scope-rule action assignment."""
        for src in sources:
            for dst in targets:
                edges.add((src, dst, _edge_action(src, dst, inside)))

    def _edge_action(src: int, dst: int, inside: Optional[int]) -> Action:
        if inside is not None:
            # Within one iteration of a scope's body: counters unchanged.
            return COPY
        src_scope = states[src].scope
        dst_scope = states[dst].scope
        if src_scope is None and dst_scope is None:
            return COPY
        if src_scope is None:
            return SET1
        if dst_scope is None:
            return exit_read(src_scope)
        # Leaving one scope and entering another (possibly the same one
        # through an outer construct): the exit read gates a fresh count.
        scope = scopes[src_scope]
        return read_set1_action(scope.low, scope.high)

    def visit(sub: ast.Regex, scope_id: Optional[int]) -> _Fragment:
        if isinstance(sub, ast.Epsilon):
            return _Fragment(True, set(), set())
        if isinstance(sub, ast.Symbol):
            index = len(states)
            width = scopes[scope_id].width if scope_id is not None else 1
            states.append(State(cc=sub.cc, width=width, scope=scope_id))
            return _Fragment(False, {index}, {index})
        if isinstance(sub, ast.Concat):
            left = visit(sub.left, scope_id)
            right = visit(sub.right, scope_id)
            link(left.last, right.first, scope_id)
            return _Fragment(
                left.nullable and right.nullable,
                left.first | (right.first if left.nullable else set()),
                right.last | (left.last if right.nullable else set()),
            )
        if isinstance(sub, ast.Alternation):
            left = visit(sub.left, scope_id)
            right = visit(sub.right, scope_id)
            return _Fragment(
                left.nullable or right.nullable,
                left.first | right.first,
                left.last | right.last,
            )
        if isinstance(sub, ast.Star):
            inner = visit(sub.inner, scope_id)
            link(inner.last, inner.first, scope_id)
            return _Fragment(True, inner.first, inner.last)
        if isinstance(sub, ast.Plus):
            inner = visit(sub.inner, scope_id)
            link(inner.last, inner.first, scope_id)
            return _Fragment(inner.nullable, inner.first, inner.last)
        if isinstance(sub, ast.Optional_):
            inner = visit(sub.inner, scope_id)
            return _Fragment(True, inner.first, inner.last)
        if isinstance(sub, ast.Repeat):
            if scope_id is not None:
                raise TranslationError(
                    f"nested counting block {sub} (rewrite should flatten it)"
                )
            if not is_supported_repeat(sub, params):
                raise TranslationError(
                    f"unsupported bounded repetition {sub}; "
                    "run repro.regex.rewrite.rewrite first"
                )
            new_scope = len(scopes)
            scopes.append(Scope(low=sub.low, high=sub.high))
            inner = visit(sub.inner, new_scope)
            # Iteration boundary: advance every in-flight count.
            for src in inner.last:
                for dst in inner.first:
                    edges.add((src, dst, SHIFT))
            return _Fragment(sub.low == 0, inner.first, inner.last)
        raise TypeError(f"unknown node: {sub!r}")

    fragment = visit(node, None)

    transitions = [Transition(src, dst, action) for src, dst, action in sorted(
        edges, key=lambda e: (e[0], e[1], repr(e[2]))
    )]
    initial = {index: 1 for index in fragment.first}
    final = {}
    for index in fragment.last:
        scope_id = states[index].scope
        if scope_id is None:
            final[index] = read_action(1, 1)  # "v[1] = 1": plain activity
        else:
            final[index] = exit_read(scope_id)

    return NBVA(
        states=states,
        transitions=transitions,
        scopes=scopes,
        initial=initial,
        final=final,
        match_empty=fragment.nullable,
    )
