"""Symbol encoding schema (§7 step 2, after CAMA [16]).

CAMA reduces CAM memory by not matching raw bytes: the 256-byte alphabet is
partitioned into equivalence classes induced by the rule set's character
classes (two bytes are equivalent iff exactly the same character classes
contain them), and each equivalence class receives a code.  An STE then
stores the (usually tiny) set of codes of its predicate instead of a
256-bit predicate row.

The partition is computed by the standard mask-refinement algorithm over
the 256-bit class masks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from ..regex.charclass import ALPHABET_SIZE, CharClass


@dataclass(frozen=True)
class EncodingSchema:
    """Byte → code mapping plus the inverse code → byte-mask table."""

    code_of_byte: Tuple[int, ...]  # length 256
    group_masks: Tuple[int, ...]  # per code, 256-bit mask of member bytes

    @property
    def num_codes(self) -> int:
        return len(self.group_masks)

    @property
    def code_bits(self) -> int:
        """Bits needed to transmit one encoded symbol."""
        return max(1, (self.num_codes - 1).bit_length())

    def encode_byte(self, byte: int) -> int:
        return self.code_of_byte[byte]

    def encode(self, data: bytes) -> List[int]:
        code_of = self.code_of_byte
        return [code_of[b] for b in data]

    def encode_class(self, cc: CharClass) -> FrozenSet[int]:
        """The codes whose byte groups intersect the class.

        For classes drawn from the schema's generating set, each group is
        either fully inside or fully outside the class, so membership of
        one representative byte decides the group.
        """
        codes = set()
        for code, mask in enumerate(self.group_masks):
            if mask & cc.mask:
                codes.add(code)
        return frozenset(codes)

    def is_exact_for(self, cc: CharClass) -> bool:
        """True iff the class is a union of whole encoding groups."""
        union = 0
        for code, mask in enumerate(self.group_masks):
            if mask & cc.mask:
                union |= mask
        return union == cc.mask


def build_encoding(classes: Iterable[CharClass]) -> EncodingSchema:
    """Partition the alphabet by the given character classes.

    The resulting number of codes equals the number of distinct
    intersection cells, bounded by ``min(256, 2**len(classes))``.
    """
    full = CharClass.any().mask
    # The partition depends only on the *set* of distinct masks: refining
    # by the same mask twice is a no-op, and rule sets reuse a handful of
    # classes across hundreds of states, so dedup first.
    seen = set()
    masks: List[int] = []
    for cc in classes:
        mask = cc.mask
        if mask not in seen and mask != 0 and mask != full:
            seen.add(mask)
            masks.append(mask)
    groups: List[int] = [full]
    for mask in masks:
        refined: List[int] = []
        for group in groups:
            inside = group & mask
            outside = group & ~mask
            if inside:
                refined.append(inside)
            if outside:
                refined.append(outside)
        groups = refined
        if len(groups) >= ALPHABET_SIZE:
            break  # fully refined: every byte is its own group
    # Deterministic code order: by smallest member byte.
    groups.sort(key=_lowest_bit)
    code_of_byte = [0] * ALPHABET_SIZE
    for code, mask in enumerate(groups):
        remaining = mask
        while remaining:
            low = remaining & -remaining
            code_of_byte[low.bit_length() - 1] = code
            remaining ^= low
    return EncodingSchema(tuple(code_of_byte), tuple(groups))


def _lowest_bit(mask: int) -> int:
    return (mask & -mask).bit_length()
