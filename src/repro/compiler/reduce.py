"""Position-automaton reduction: follow/left quotients over the AH-NBVA.

Glushkov position automata are famously larger than necessary; Gouveia,
Moreira and Reis (*Small NFAs from Regular Expressions*, PAPERS.md) show
they shrink substantially under **follow equivalence** and the classical
left-/right-invariant quotients.  This pass applies both to the AH-NBVA
produced by :func:`repro.compiler.translate.translate` +
:func:`repro.automata.ah.to_action_homogeneous`, composed with the
dead-state elimination in :func:`repro.automata.optimize.prune`:

* **follow (right) merges** — a forward-bisimulation quotient: states
  with the same predicate, action, width, reporting behaviour, and
  block-equivalent successor sets are merged, unioning their incoming
  edges and injection flags;
* **left merges** — a backward-bisimulation quotient: states with the
  same predicate, action, width, injection flag, reporting behaviour,
  and block-equivalent predecessor sets are merged, unioning their
  outgoing edges.

Both quotients are *exactly* match-stream preserving — not just
language-preserving — because every NBVA action is linear with respect
to bitwise OR (``f(a | b) == f(a) | f(b)``, see
``repro.automata.actions``): the merged state's vector is provably the
OR of its members' vectors (follow merges) or their common value (left
merges) at every step, so aggregation downstream sees exactly the bits
it saw before.

**Counter scopes are merge barriers.**  Only *plain* states — width 1,
non-reading action, no counting scope — are merge candidates; every
counting state (and every read-exit state) keeps its own identity, so
bounded-repetition semantics are untouched and states in distinct
``ah.scopes`` can never merge.  Counter-free projections
(:func:`repro.automata.ah.is_counter_free`) therefore reduce fully,
while counting automata reduce their plain regions only.

``reduce_level`` semantics (the :class:`CompilerOptions` knob):

* ``0`` — reduction off: dead-state pruning only (the pre-pass
  behaviour, bit-for-bit);
* ``1`` — pruning + follow (right) merges, iterated to a fixpoint;
* ``2`` — pruning + follow + left merges, iterated to a fixpoint
  (the default).

:func:`reduce_nfa` applies the same two quotients (plus
reachable/co-reachable pruning) to a plain homogeneous NFA — the
unfolded-Glushkov scan path that the fused software engine executes for
counting patterns (see :func:`repro.compiler.pipeline.build_scan_nfa`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..automata.ah import AHNBVA, AHState
from ..automata.nfa import NFA
from ..automata.optimize import prune

#: The default (and maximum) reduction level.
DEFAULT_REDUCE_LEVEL = 2

#: Valid values of the ``reduce_level`` knob.
REDUCE_LEVELS = (0, 1, 2)


def _empty_summary(ah: AHNBVA, level: int) -> Dict[str, int]:
    return {
        "level": level,
        "states_before": ah.num_states,
        "states_after": ah.num_states,
        "bv_stes_before": ah.num_bv_stes(),
        "bv_stes_after": ah.num_bv_stes(),
        "edges_before": ah.num_edges(),
        "edges_after": ah.num_edges(),
        "pruned": 0,
        "merged_follow": 0,
        "merged_left": 0,
        "passes": 0,
    }


def reduce_ah(
    ah: AHNBVA, level: int = DEFAULT_REDUCE_LEVEL
) -> Tuple[AHNBVA, Dict[str, int]]:
    """Reduce an AH-NBVA; returns ``(reduced, summary)``.

    The summary folds the :func:`~repro.automata.optimize.pruning_summary`
    counts and the per-rule merge counts into one structure::

        {"level", "states_before", "states_after",
         "bv_stes_before", "bv_stes_after", "edges_before", "edges_after",
         "pruned", "merged_follow", "merged_left", "passes"}
    """
    if level not in REDUCE_LEVELS:
        raise ValueError(f"reduce_level must be one of {REDUCE_LEVELS}")
    summary = _empty_summary(ah, level)
    current = ah
    changed = True
    while changed:
        changed = False
        summary["passes"] += 1
        pruned = prune(current)
        if pruned.num_states != current.num_states:
            summary["pruned"] += current.num_states - pruned.num_states
            changed = True
        current = pruned
        if level >= 1:
            partition = _ah_partition(current, backward=False)
            if len(partition) != current.num_states:
                summary["merged_follow"] += current.num_states - len(partition)
                current = _ah_quotient(current, partition)
                changed = True
        if level >= 2:
            partition = _ah_partition(current, backward=True)
            if len(partition) != current.num_states:
                summary["merged_left"] += current.num_states - len(partition)
                current = _ah_quotient(current, partition)
                changed = True
    summary["states_after"] = current.num_states
    summary["bv_stes_after"] = current.num_bv_stes()
    summary["edges_after"] = current.num_edges()
    return current, summary


# -- partition refinement ----------------------------------------------


def _refine(
    seeds: List[object], adjacency: List[List[int]], frozen: Sequence[bool]
) -> List[List[int]]:
    """Coarsest partition refining ``seeds`` and stable under ``adjacency``.

    ``seeds[q]`` is the initial signature of state ``q``; ``frozen[q]``
    states are forced into singleton blocks (they are never merge
    candidates, but still participate as refinement context).  Two
    non-frozen states stay together only while they share a seed and
    their adjacent states fall into the same set of blocks — i.e. the
    quotient is a bisimulation with respect to ``adjacency``.
    """
    count = len(seeds)
    block_of = [0] * count
    groups: Dict[object, List[int]] = {}
    for q in range(count):
        key = ("frozen", q) if frozen[q] else ("seed", seeds[q])
        groups.setdefault(key, []).append(q)
    for block_id, members in enumerate(groups.values()):
        for q in members:
            block_of[q] = block_id
    num_blocks = len(groups)
    while True:
        refined: Dict[Tuple[int, frozenset], List[int]] = {}
        for q in range(count):
            signature = (
                block_of[q],
                frozenset(block_of[n] for n in adjacency[q]),
            )
            refined.setdefault(signature, []).append(q)
        if len(refined) == num_blocks:
            blocks = list(refined.values())
            blocks.sort(key=min)
            return blocks
        num_blocks = len(refined)
        for block_id, members in enumerate(refined.values()):
            for q in members:
                block_of[q] = block_id


def _successors(ah: AHNBVA) -> List[List[int]]:
    succs: List[List[int]] = [[] for _ in range(ah.num_states)]
    for dst, sources in enumerate(ah.preds):
        for src in sources:
            succs[src].append(dst)
    return succs


def _mergeable(state: AHState) -> bool:
    """Merge candidates are the plain states only.

    Counting states (``width > 1``), read-exit states
    (``action.reads_source``), and anything attached to a counter scope
    stay in singleton blocks — the counter-scope merge barrier.
    """
    return (
        state.width == 1
        and not state.action.reads_source
        and state.scope is None
    )


def _final_effect(ah: AHNBVA, q: int) -> Optional[int]:
    """Reporting behaviour of a plain state: fires-on-active, or None."""
    condition = ah.final.get(q)
    if condition is None:
        return None
    return 1 if condition.apply(1, 1, 1) else 0


def _ah_partition(ah: AHNBVA, backward: bool) -> List[List[int]]:
    frozen = [not _mergeable(state) for state in ah.states]
    seeds: List[object] = []
    for q, state in enumerate(ah.states):
        if frozen[q]:
            seeds.append(None)  # singleton block; the seed is unused
            continue
        seed = [state.cc, state.action, state.width, state.in_width,
                _final_effect(ah, q)]
        if backward:
            # Injection behaves like an incoming edge: left-equivalent
            # states must agree on it so their vectors stay identical.
            seed.append(q in ah.injected)
        seeds.append(tuple(seed))
    adjacency = list(ah.preds) if backward else _successors(ah)
    return _refine(seeds, adjacency, frozen)


def _ah_quotient(ah: AHNBVA, blocks: List[List[int]]) -> AHNBVA:
    """Rebuild the AH-NBVA with each block collapsed to one state."""
    block_of = [0] * ah.num_states
    for block_id, members in enumerate(blocks):
        for q in members:
            block_of[q] = block_id

    states: List[AHState] = []
    preds: List[List[int]] = []
    injected: Set[int] = set()
    final: Dict[int, object] = {}
    for block_id, members in enumerate(blocks):
        rep = ah.states[members[0]]
        merged_preds = sorted(
            {block_of[p] for q in members for p in ah.preds[q]}
        )
        states.append(
            AHState(
                cc=rep.cc,
                action=rep.action,
                width=rep.width,
                scope=rep.scope,
                origin=rep.origin,
            )
        )
        preds.append(merged_preds)
        if any(q in ah.injected for q in members):
            injected.add(block_id)
        for q in members:
            if q in ah.final:
                final[block_id] = ah.final[q]
                break
    for block_id, state in enumerate(states):
        pred_widths = [states[p].width for p in preds[block_id]]
        state.in_width = max(pred_widths, default=1)
    return AHNBVA(
        states=states,
        preds=preds,
        scopes=list(ah.scopes),
        injected=injected,
        final=final,  # type: ignore[arg-type]
        match_empty=ah.match_empty,
    )


# -- plain-NFA reduction (the unfolded scan path) ----------------------


def reduce_nfa(nfa: NFA, level: int = DEFAULT_REDUCE_LEVEL) -> NFA:
    """Apply the same quotients to a plain homogeneous NFA.

    Used by :func:`repro.compiler.pipeline.build_scan_nfa` on the
    fully unfolded Glushkov automaton of counting patterns, so the fused
    engine's combined bitset (and each ``pattern_slice``) narrows for
    those patterns too.  ``match_empty`` (set dynamically by
    :func:`repro.automata.ah.to_nfa`) is preserved when present.
    """
    if level not in REDUCE_LEVELS:
        raise ValueError(f"reduce_level must be one of {REDUCE_LEVELS}")
    current = _prune_nfa(nfa)
    if level >= 1:
        changed = True
        while changed:
            changed = False
            partition = _nfa_partition(current, backward=False)
            if len(partition) != current.num_states:
                current = _nfa_quotient(current, partition)
                changed = True
            if level >= 2:
                partition = _nfa_partition(current, backward=True)
                if len(partition) != current.num_states:
                    current = _nfa_quotient(current, partition)
                    changed = True
    _carry_match_empty(nfa, current)
    return current


def _prune_nfa(nfa: NFA) -> NFA:
    """Drop states that are unreachable or cannot reach a final state."""
    reachable: Set[int] = set()
    frontier = [q for q in nfa.initial if not nfa.classes[q].is_empty()]
    while frontier:
        q = frontier.pop()
        if q in reachable:
            continue
        reachable.add(q)
        for nxt in nfa.transitions[q]:
            if nxt not in reachable and not nfa.classes[nxt].is_empty():
                frontier.append(nxt)
    preds = nfa.predecessors()
    useful: Set[int] = set()
    frontier = [q for q in nfa.final if q in reachable]
    while frontier:
        q = frontier.pop()
        if q in useful:
            continue
        useful.add(q)
        for prev in preds[q]:
            if prev in reachable and prev not in useful:
                frontier.append(prev)
    if len(useful) == nfa.num_states:
        return nfa
    remap = {old: new for new, old in enumerate(sorted(useful))}
    pruned = NFA(
        classes=[nfa.classes[q] for q in sorted(useful)],
        transitions=[
            sorted(remap[d] for d in nfa.transitions[q] if d in useful)
            for q in sorted(useful)
        ],
        initial={remap[q] for q in nfa.initial if q in useful},
        final={remap[q] for q in nfa.final if q in useful},
    )
    _carry_match_empty(nfa, pruned)
    return pruned


def _nfa_partition(nfa: NFA, backward: bool) -> List[List[int]]:
    frozen = [False] * nfa.num_states
    seeds: List[object] = []
    for q in range(nfa.num_states):
        seed = [nfa.classes[q]]
        if backward:
            seed.append(q in nfa.initial)
        else:
            seed.append(q in nfa.final)
        seeds.append(tuple(seed))
    adjacency = nfa.predecessors() if backward else nfa.transitions
    return _refine(seeds, adjacency, frozen)


def _nfa_quotient(nfa: NFA, blocks: List[List[int]]) -> NFA:
    block_of = [0] * nfa.num_states
    for block_id, members in enumerate(blocks):
        for q in members:
            block_of[q] = block_id
    quotient = NFA(
        classes=[nfa.classes[members[0]] for members in blocks],
        transitions=[
            sorted({block_of[d] for q in members for d in nfa.transitions[q]})
            for members in blocks
        ],
        initial={block_of[q] for q in nfa.initial},
        final={block_of[q] for q in nfa.final},
    )
    _carry_match_empty(nfa, quotient)
    return quotient


def _carry_match_empty(source: NFA, target: NFA) -> None:
    if target is source:
        return
    match_empty = getattr(source, "match_empty", None)
    if match_empty is not None:
        target.match_empty = match_empty  # type: ignore[attr-defined]
