"""Greedy mapping of compiled automata onto the BVAP hierarchy (§6, §8).

The hierarchy is bank → 4 arrays → 16 tiles → 256 STEs + 48 BVs.  Two
hardware constraints shape the mapping:

* ``copy``/``shift`` bit-vector routing happens inside a tile's MFCB, so a
  *counting scope* (a BV cluster exchanging whole vectors) must stay within
  one tile — scopes are at most 64 bits wide post-rewrite, so this always
  holds.  Chains of scopes communicate through ``r(.).set1`` reads, which
  travel through the Active Vector like ordinary state transitions and may
  therefore cross tiles (this is how ``url=.{8000}`` fits in 270 STEs, §3).
* The state-transition global switch spans one array, so one regex may use
  at most 16 x 256 = 4096 STEs (the per-regex limit the paper quotes for
  AP-style designs) and 16 x 48 BVs.

The mapper is the greedy first-fit-decreasing scheme the paper adopts from
CAMA: automata are placed in decreasing order of BV demand, each into the
first tile that still has room; large automata spill plain STEs and BV
clusters into sibling tiles of the same array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..resilience.errors import CapacityError


@dataclass(frozen=True)
class ArchParams:
    """Capacity parameters of the processor hierarchy (§6)."""

    stes_per_tile: int = 256
    bvs_per_tile: int = 48
    tiles_per_array: int = 16
    arrays_per_bank: int = 4
    hardware_bv_bits: int = 64

    @property
    def stes_per_array(self) -> int:
        return self.stes_per_tile * self.tiles_per_array

    @property
    def bvs_per_array(self) -> int:
        return self.bvs_per_tile * self.tiles_per_array

    @property
    def stes_per_bank(self) -> int:
        return self.stes_per_array * self.arrays_per_bank

    @property
    def bvs_per_bank(self) -> int:
        return self.bvs_per_array * self.arrays_per_bank

    @property
    def max_tile_repetition_bound(self) -> int:
        """Largest repetition bound one tile's BVM can track (§6: 3072)."""
        return self.bvs_per_tile * self.hardware_bv_bits


@dataclass(frozen=True)
class AutomatonDemand:
    """Resource demand of one compiled automaton."""

    regex_id: int
    plain_stes: int
    bv_stes: int
    #: Swap-step words of the widest virtual BV (drives tile BVM latency).
    max_swap_words: int = 0

    @property
    def total_stes(self) -> int:
        return self.plain_stes + self.bv_stes


class MappingError(CapacityError):
    """An automaton exceeds what the hardware can hold (``E_CAPACITY``)."""


@dataclass
class Tile:
    index: int
    stes_used: int = 0
    bvs_used: int = 0
    regex_ids: List[int] = field(default_factory=list)
    max_swap_words: int = 0

    def bvm_active(self) -> bool:
        return self.bvs_used > 0


@dataclass
class MappingResult:
    """Placement of a rule set onto tiles/arrays/banks plus utilisation."""

    params: ArchParams
    tiles: List[Tile]
    placements: Dict[int, List[int]]  # regex id -> tile indexes

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    @property
    def num_arrays(self) -> int:
        per = self.params.tiles_per_array
        return (self.num_tiles + per - 1) // per

    @property
    def num_banks(self) -> int:
        per = self.params.arrays_per_bank
        return (self.num_arrays + per - 1) // per

    def ste_utilization(self) -> float:
        capacity = self.num_tiles * self.params.stes_per_tile
        used = sum(t.stes_used for t in self.tiles)
        return used / capacity if capacity else 0.0

    def bv_utilization(self) -> float:
        capacity = self.num_tiles * self.params.bvs_per_tile
        used = sum(t.bvs_used for t in self.tiles)
        return used / capacity if capacity else 0.0

    def tiles_of_array(self, array_index: int) -> List[Tile]:
        per = self.params.tiles_per_array
        return self.tiles[array_index * per : (array_index + 1) * per]


def map_automata(
    demands: Sequence[AutomatonDemand], params: ArchParams = ArchParams()
) -> MappingResult:
    """Place automata onto tiles with greedy first-fit-decreasing.

    Raises :class:`MappingError` for automata that violate the per-regex
    array limits; the caller decides whether to partially unfold or drop
    such regexes (§6).
    """
    for demand in demands:
        if demand.total_stes > params.stes_per_array:
            raise MappingError(
                f"regex {demand.regex_id} needs {demand.total_stes} STEs; "
                f"an array has {params.stes_per_array}"
            )
        if demand.bv_stes > params.bvs_per_array:
            raise MappingError(
                f"regex {demand.regex_id} needs {demand.bv_stes} BVs; "
                f"an array has {params.bvs_per_array}"
            )

    tiles: List[Tile] = []
    placements: Dict[int, List[int]] = {}

    def new_tile() -> Tile:
        tile = Tile(index=len(tiles))
        tiles.append(tile)
        return tile

    ordered = sorted(demands, key=lambda d: (d.bv_stes, d.total_stes), reverse=True)
    for demand in ordered:
        if (
            demand.total_stes <= params.stes_per_tile
            and demand.bv_stes <= params.bvs_per_tile
        ):
            home = _find_home_tile(tiles, demand, params)
            if home is None:
                home = new_tile()
            home.stes_used += demand.total_stes
            home.bvs_used += demand.bv_stes
            home.max_swap_words = max(home.max_swap_words, demand.max_swap_words)
            home.regex_ids.append(demand.regex_id)
            placements[demand.regex_id] = [home.index]
            continue
        placements[demand.regex_id] = _place_large(
            tiles, new_tile, demand, params
        )

    return MappingResult(params=params, tiles=tiles, placements=placements)


def _find_home_tile(
    tiles: List[Tile], demand: AutomatonDemand, params: ArchParams
) -> Optional[Tile]:
    """First existing tile with room for the whole (small) automaton."""
    for tile in tiles:
        if (
            tile.bvs_used + demand.bv_stes <= params.bvs_per_tile
            and tile.stes_used + demand.total_stes <= params.stes_per_tile
        ):
            return tile
    return None


def _place_large(
    tiles: List[Tile], new_tile, demand: AutomatonDemand, params: ArchParams
) -> List[int]:
    """Spill a multi-tile automaton across one array's tiles."""
    array = _find_host_array(tiles, demand, params)
    if array is None:
        while len(tiles) % params.tiles_per_array != 0:
            new_tile()  # pad: large automata start at an array boundary
        array = len(tiles) // params.tiles_per_array

    used_tiles: List[int] = []
    ste_left = demand.total_stes
    bv_left = demand.bv_stes
    index = array * params.tiles_per_array
    end = index + params.tiles_per_array
    while (ste_left > 0 or bv_left > 0) and index < end:
        tile = tiles[index] if index < len(tiles) else new_tile()
        ste_take = min(ste_left, params.stes_per_tile - tile.stes_used)
        bv_take = min(bv_left, params.bvs_per_tile - tile.bvs_used)
        if ste_take or bv_take:
            tile.stes_used += ste_take
            tile.bvs_used += bv_take
            ste_left -= ste_take
            bv_left -= bv_take
            if bv_take:
                tile.max_swap_words = max(
                    tile.max_swap_words, demand.max_swap_words
                )
            tile.regex_ids.append(demand.regex_id)
            used_tiles.append(tile.index)
        index += 1
    if ste_left > 0 or bv_left > 0:
        raise MappingError(
            f"regex {demand.regex_id} does not fit in array {array}"
        )
    return used_tiles


def _find_host_array(
    tiles: List[Tile], demand: AutomatonDemand, params: ArchParams
) -> Optional[int]:
    num_arrays = (len(tiles) + params.tiles_per_array - 1) // params.tiles_per_array
    per = params.tiles_per_array
    for array in range(num_arrays):
        members = tiles[array * per : (array + 1) * per]
        # Only the trailing (incomplete) array can still grow new tiles.
        can_grow = array == num_arrays - 1 and len(members) < per
        ste_slack = sum(params.stes_per_tile - t.stes_used for t in members)
        bv_slack = sum(params.bvs_per_tile - t.bvs_used for t in members)
        if can_grow:
            missing = per - len(members)
            ste_slack += missing * params.stes_per_tile
            bv_slack += missing * params.bvs_per_tile
        if ste_slack >= demand.total_stes and bv_slack >= demand.bv_stes:
            return array
    return None
