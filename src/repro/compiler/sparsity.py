"""Transition-sparsity analysis for RCB/FCB tile reconfiguration (§6).

Tiles are grouped in pairs that can reconfigure between two modes:

* **RCB mode** (default) — each tile runs its own 128×128 Reduced
  CrossBar, which suffices for the sparse transition matrices typical of
  compiled rule sets;
* **FCB mode** — the pair fuses into one 128×128 *fully connected*
  crossbar spanning both tiles (one CAM sub-array and one BVM power-gate)
  for regexes whose transition structure is too dense for an RCB.

A Reduced CrossBar works by time-multiplexing / compacting a sparse
switch matrix; following eAP [31], a tile is RCB-compatible while each
state's fan-in stays within a small budget and the total crossing-point
count stays below the reduced switch's capacity.  This module scores
compiled automata and decides the FCB pairs for a mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..automata.ah import AHNBVA

#: RCB capacity model: a 128x128 reduced switch serving 256 STEs keeps
#: half a crossing point per STE pair, i.e. a quarter of the full 256x256
#: matrix; fan-in above this budget forces FCB mode.
RCB_MAX_MEAN_FANIN = 8.0
RCB_MAX_SINGLE_FANIN = 64


@dataclass(frozen=True)
class SparsityProfile:
    """Transition-density statistics of one automaton."""

    states: int
    edges: int
    max_fanin: int

    @property
    def mean_fanin(self) -> float:
        return self.edges / self.states if self.states else 0.0

    @property
    def density(self) -> float:
        """Fraction of the full crossbar's crossing points used."""
        if not self.states:
            return 0.0
        return self.edges / (self.states * self.states)

    @property
    def needs_fcb(self) -> bool:
        return (
            self.mean_fanin > RCB_MAX_MEAN_FANIN
            or self.max_fanin > RCB_MAX_SINGLE_FANIN
        )


def profile_automaton(ah: AHNBVA) -> SparsityProfile:
    fanins = [len(p) for p in ah.preds]
    return SparsityProfile(
        states=ah.num_states,
        edges=sum(fanins),
        max_fanin=max(fanins, default=0),
    )


def decide_fcb_tiles(
    profiles_by_tile: Dict[int, List[SparsityProfile]]
) -> List[int]:
    """Tiles whose automata need FCB mode (their pair reconfigures).

    ``profiles_by_tile`` maps tile index to the profiles of the automata
    placed there.
    """
    return sorted(
        tile
        for tile, profiles in profiles_by_tile.items()
        if any(profile.needs_fcb for profile in profiles)
    )


def fcb_pairs_for_ruleset(ruleset) -> List[int]:
    """Pair indices (tile_index // 2) that must run in FCB mode."""
    by_tile: Dict[int, List[SparsityProfile]] = {}
    for regex in ruleset.regexes:
        profile = profile_automaton(regex.ah)
        for tile in ruleset.mapping.placements[regex.regex_id]:
            by_tile.setdefault(tile, []).append(profile)
    tiles = decide_fcb_tiles(by_tile)
    return sorted({tile // 2 for tile in tiles})
