"""JSON hardware-configuration files (§7 step 5).

The compiler's output is a JSON document describing, for each regex, its
AH-NBVA (states with predicates and actions, edges, injection, reporting)
together with the symbol-encoding schema and the tile mapping.  The
simulator (and, in the paper, the physical BVAP) is programmed from this
file; :func:`load_config` reconstructs the automata so a configuration can
round-trip through disk.
"""

from __future__ import annotations

import json
import re as _re
from typing import Any, Dict, List

from ..automata.actions import (
    COPY,
    SET1,
    SHIFT,
    Action,
    ReadBit,
    ReadBitSet1,
    ReadRange,
    ReadRangeSet1,
)
from ..automata.ah import AHNBVA, AHState
from ..automata.nbva import Scope
from ..regex.charclass import CharClass
from ..resilience.errors import UnsupportedFeatureError
from .encoding import EncodingSchema
from .mapping import ArchParams, MappingResult, Tile
from .pipeline import CompiledRuleset

FORMAT_VERSION = 2

_READ_RE = _re.compile(r"^r\((?:1,)?(\d+)\)(\.set1)?$")


def action_to_mnemonic(action: Action) -> str:
    return action.mnemonic


def action_from_mnemonic(text: str) -> Action:
    if text == "copy":
        return COPY
    if text == "shift":
        return SHIFT
    if text == "set1":
        return SET1
    match = _READ_RE.match(text)
    if match:
        value = int(match.group(1))
        is_range = text.startswith("r(1,")
        has_set1 = match.group(2) is not None
        if is_range:
            return ReadRangeSet1(value) if has_set1 else ReadRange(value)
        return ReadBitSet1(value) if has_set1 else ReadBit(value)
    raise UnsupportedFeatureError(f"unknown action mnemonic: {text!r}")


def _cc_to_json(cc: CharClass) -> str:
    return format(cc.mask, "x")


def _cc_from_json(text: str) -> CharClass:
    return CharClass(int(text, 16))


def _ah_to_json(ah: AHNBVA) -> Dict[str, Any]:
    return {
        "states": [
            {
                "cc": _cc_to_json(state.cc),
                "action": action_to_mnemonic(state.action),
                "width": state.width,
                "in_width": state.in_width,
                "scope": state.scope,
                "origin": state.origin,
            }
            for state in ah.states
        ],
        "preds": ah.preds,
        "scopes": [{"low": s.low, "high": s.high} for s in ah.scopes],
        "injected": sorted(ah.injected),
        "final": {
            str(state): action_to_mnemonic(cond) for state, cond in ah.final.items()
        },
        "match_empty": ah.match_empty,
    }


def _ah_from_json(doc: Dict[str, Any]) -> AHNBVA:
    states = [
        AHState(
            cc=_cc_from_json(s["cc"]),
            action=action_from_mnemonic(s["action"]),
            width=s["width"],
            in_width=s["in_width"],
            scope=s["scope"],
            origin=s["origin"],
        )
        for s in doc["states"]
    ]
    return AHNBVA(
        states=states,
        preds=[list(p) for p in doc["preds"]],
        scopes=[Scope(s["low"], s["high"]) for s in doc["scopes"]],
        injected=set(doc["injected"]),
        final={
            int(state): action_from_mnemonic(text)
            for state, text in doc["final"].items()
        },
        match_empty=doc["match_empty"],
    )


def ruleset_to_config(ruleset: CompiledRuleset) -> Dict[str, Any]:
    """Serialise a compiled rule set to a JSON-ready dict."""
    return {
        "format_version": FORMAT_VERSION,
        "options": {
            "bv_size": ruleset.options.bv_size,
            "unfold_threshold": ruleset.options.unfold_threshold,
            "arch": {
                "stes_per_tile": ruleset.options.arch.stes_per_tile,
                "bvs_per_tile": ruleset.options.arch.bvs_per_tile,
                "tiles_per_array": ruleset.options.arch.tiles_per_array,
                "arrays_per_bank": ruleset.options.arch.arrays_per_bank,
                "hardware_bv_bits": ruleset.options.arch.hardware_bv_bits,
            },
        },
        "encoding": {
            "group_masks": [format(m, "x") for m in ruleset.encoding.group_masks],
        },
        "regexes": [
            {
                "regex_id": regex.regex_id,
                "pattern": regex.pattern,
                "rewritten": str(regex.rewritten),
                "automaton": _ah_to_json(regex.ah),
                "unfolded_states": regex.unfolded_states,
            }
            for regex in ruleset.regexes
        ],
        "mapping": {
            "tiles": [
                {
                    "index": tile.index,
                    "stes_used": tile.stes_used,
                    "bvs_used": tile.bvs_used,
                    "regex_ids": tile.regex_ids,
                    "max_swap_words": tile.max_swap_words,
                }
                for tile in ruleset.mapping.tiles
            ],
            "placements": {
                str(rid): tiles for rid, tiles in ruleset.mapping.placements.items()
            },
        },
        "rejected": {str(rid): why for rid, why in ruleset.rejected.items()},
    }


def dump_config(ruleset: CompiledRuleset, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(ruleset_to_config(ruleset), handle, indent=1)


class LoadedConfig:
    """A configuration reconstructed from JSON — enough to program the
    simulator: automata, encoding, mapping, and per-regex metadata."""

    def __init__(self, doc: Dict[str, Any]) -> None:
        if doc.get("format_version") != FORMAT_VERSION:
            raise UnsupportedFeatureError(
                f"unsupported config version {doc.get('format_version')!r}"
            )
        arch_doc = doc["options"]["arch"]
        self.arch = ArchParams(
            stes_per_tile=arch_doc["stes_per_tile"],
            bvs_per_tile=arch_doc["bvs_per_tile"],
            tiles_per_array=arch_doc["tiles_per_array"],
            arrays_per_bank=arch_doc["arrays_per_bank"],
            hardware_bv_bits=arch_doc["hardware_bv_bits"],
        )
        self.bv_size = doc["options"]["bv_size"]
        self.unfold_threshold = doc["options"]["unfold_threshold"]
        group_masks = tuple(int(m, 16) for m in doc["encoding"]["group_masks"])
        code_of_byte = [0] * 256
        for code, mask in enumerate(group_masks):
            remaining = mask
            while remaining:
                low = remaining & -remaining
                code_of_byte[low.bit_length() - 1] = code
                remaining ^= low
        self.encoding = EncodingSchema(tuple(code_of_byte), group_masks)
        self.patterns: List[str] = []
        self.automata: List[AHNBVA] = []
        self.regex_ids: List[int] = []
        for entry in doc["regexes"]:
            self.regex_ids.append(entry["regex_id"])
            self.patterns.append(entry["pattern"])
            self.automata.append(_ah_from_json(entry["automaton"]))
        tiles = [
            Tile(
                index=t["index"],
                stes_used=t["stes_used"],
                bvs_used=t["bvs_used"],
                regex_ids=list(t["regex_ids"]),
                max_swap_words=t["max_swap_words"],
            )
            for t in doc["mapping"]["tiles"]
        ]
        placements = {
            int(rid): list(tile_ids)
            for rid, tile_ids in doc["mapping"]["placements"].items()
        }
        self.mapping = MappingResult(
            params=self.arch, tiles=tiles, placements=placements
        )
        self.rejected = {int(rid): why for rid, why in doc["rejected"].items()}


def load_config(path: str) -> LoadedConfig:
    with open(path) as handle:
        return LoadedConfig(json.load(handle))
