"""Compile-time required-literal extraction for scan prefiltering.

The fused scan engine (:mod:`repro.matching.fused`) can skip the
automaton over stretches of input that provably contain no match — but
only for patterns that *require* some literal byte string to appear in
every match.  This module derives that guarantee from the parsed AST.

The contract is a :class:`PatternLiterals` bundle of
:class:`LiteralHint`\\ s ``(literal, pre)`` meaning:

    every match of the pattern contains at least one of the hint
    literals, starting at most ``pre`` bytes after the match start.

That "pre" bound is what lets the matcher arm the pattern's start
states only inside ``[occurrence - pre, occurrence]`` windows around
each literal occurrence (see ``docs/matching.md``).  Soundness rules:

* a nullable subtree requires nothing (the empty match has no bytes);
* ``X{0,n}``, ``X*``, ``X?`` contribute **no** required literal, even
  when ``X`` is a literal — the repetition may match zero times;
* ``X{m,n}`` with ``m >= 1`` and ``X+`` require whatever ``X`` requires
  (the first iteration starts at offset 0);
* alternations require literals only when *both* branches do;
* a literal inside ``Concat(left, right)`` shifts its ``pre`` by the
  *maximum* match length of ``left`` — unbounded lefts (``.*lit``)
  therefore disqualify the right-hand literal.

Truncating a required literal to a prefix is always sound (a superset
of positions is armed), which keeps ``bytes.find`` probes short.

Extraction is intentionally conservative: ``extract_literals`` returns
``None`` whenever no *useful* guarantee exists (literals too short, too
many alternatives, or an unbounded ``pre``), and the engine keeps such
patterns always-on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from ..regex.ast import (
    Alternation,
    Anchor,
    Concat,
    Epsilon,
    Optional_,
    Plus,
    Regex,
    Repeat,
    Star,
    Symbol,
    nullable,
)

__all__ = [
    "LiteralHint",
    "PatternLiterals",
    "extract_literals",
    "max_match_len",
    "MIN_LITERAL_LEN",
    "MAX_LITERAL_LEN",
    "MAX_LITERAL_ALTS",
    "MAX_PREFIX_DISTANCE",
]

#: Literals shorter than this are useless as filters (single bytes fire
#: roughly every ``256/size`` input bytes) and disqualify the pattern.
MIN_LITERAL_LEN = 2
#: Required literals are truncated to this many bytes before matching;
#: longer probes buy nothing once the false-positive rate is tiny.
MAX_LITERAL_LEN = 16
#: Maximum number of distinct hint literals per pattern; more than this
#: and the per-chunk ``bytes.find`` sweep stops paying for itself.
MAX_LITERAL_ALTS = 8
#: Maximum allowed ``pre`` (arming window) per hint.  Patterns whose
#: literal can sit arbitrarily far into the match stay always-on.
MAX_PREFIX_DISTANCE = 256

#: Character classes wider than this are not expanded into literal
#: alternatives during exact-language computation.
_EXACT_CLASS_LIMIT = 4
#: Caps on the exact-literal-language helper: alternative count and
#: total byte length per alternative.
_EXACT_MAX_ALTS = 16
_EXACT_MAX_LEN = 64


@dataclass(frozen=True)
class LiteralHint:
    """One required literal: occurs in every match, starting at most
    ``pre`` bytes after the match start."""

    literal: bytes
    pre: int


@dataclass(frozen=True)
class PatternLiterals:
    """The prefilter contract for one pattern (see module docstring)."""

    hints: Tuple[LiteralHint, ...]

    @property
    def max_literal_len(self) -> int:
        return max(len(hint.literal) for hint in self.hints)

    @property
    def max_reach(self) -> int:
        """Widest ``pre + len(literal)`` over the hints — how far past a
        match start the latest required byte can sit."""
        return max(hint.pre + len(hint.literal) for hint in self.hints)


# ----------------------------------------------------------------------
# Maximum match length (None = unbounded)


def max_match_len(node: Regex) -> Optional[int]:
    """Longest possible match of ``node`` in bytes, ``None`` if unbounded."""
    return _max_len(node, {})


def _max_len(node: Regex, memo: Dict[Regex, Optional[int]]) -> Optional[int]:
    if node in memo:
        return memo[node]
    result: Optional[int]
    if isinstance(node, Epsilon):
        result = 0
    elif isinstance(node, Anchor):
        # Zero-width, but anchor lowering may prepend/append one byte to
        # a ``\b`` variant; budgeting 1 keeps shifted ``pre`` windows
        # sound when hints are derived from the pre-lowering AST.
        result = 1 if node.kind == Anchor.WORD else 0
    elif isinstance(node, Symbol):
        result = 1
    elif isinstance(node, Concat):
        left = _max_len(node.left, memo)
        right = _max_len(node.right, memo)
        result = None if left is None or right is None else left + right
    elif isinstance(node, Alternation):
        left = _max_len(node.left, memo)
        right = _max_len(node.right, memo)
        result = None if left is None or right is None else max(left, right)
    elif isinstance(node, Optional_):
        result = _max_len(node.inner, memo)
    elif isinstance(node, (Star, Plus)):
        inner = _max_len(node.inner, memo)
        result = 0 if inner == 0 else None
    elif isinstance(node, Repeat):
        inner = _max_len(node.inner, memo)
        if inner == 0:
            result = 0
        elif node.high is None or inner is None:
            result = None
        else:
            result = inner * node.high
    else:  # pragma: no cover - future node kinds stay conservative
        result = None
    memo[node] = result
    return result


# ----------------------------------------------------------------------
# Exact literal language (None when not a small finite set of literals)


def _exact(
    node: Regex, memo: Dict[Regex, Optional[FrozenSet[bytes]]]
) -> Optional[FrozenSet[bytes]]:
    """The complete match language of ``node`` as a small set of byte
    strings, or ``None`` when it is not exactly such a set (within the
    ``_EXACT_*`` caps).  Used to join literal runs — ``literal("abc")``
    parses to a Concat tree of single-byte symbols — and to turn small
    alternations of literals into hint alternatives."""
    if node in memo:
        return memo[node]
    result: Optional[FrozenSet[bytes]] = None
    if isinstance(node, Epsilon):
        result = frozenset((b"",))
    elif isinstance(node, Anchor):
        # ``^``/``$`` only constrain position: treating them as the empty
        # string keeps the literal join sound.  ``\b`` lowering can add a
        # neighbouring byte, so it contributes no exact language.
        if node.kind != Anchor.WORD:
            result = frozenset((b"",))
    elif isinstance(node, Symbol):
        if node.cc.size() <= _EXACT_CLASS_LIMIT:
            result = frozenset(bytes((byte,)) for byte in node.cc)
    elif isinstance(node, Concat):
        left = _exact(node.left, memo)
        right = _exact(node.right, memo) if left is not None else None
        if left is not None and right is not None:
            joined = set()
            for a in left:
                for b in right:
                    if len(a) + len(b) > _EXACT_MAX_LEN:
                        joined = None
                        break
                    joined.add(a + b)
                if joined is None or len(joined) > _EXACT_MAX_ALTS:
                    joined = None
                    break
            result = frozenset(joined) if joined is not None else None
    elif isinstance(node, Alternation):
        left = _exact(node.left, memo)
        right = _exact(node.right, memo) if left is not None else None
        if left is not None and right is not None:
            union = left | right
            result = union if len(union) <= _EXACT_MAX_ALTS else None
    elif isinstance(node, Optional_):
        inner = _exact(node.inner, memo)
        if inner is not None and len(inner) + 1 <= _EXACT_MAX_ALTS:
            result = inner | {b""}
    elif isinstance(node, Repeat) and node.high is not None:
        inner = _exact(node.inner, memo)
        if inner is not None:
            tiers = frozenset((b"",))
            language = set() if node.low > 0 else {b""}
            ok = True
            for count in range(1, node.high + 1):
                joined = set()
                for a in tiers:
                    for b in inner:
                        if len(a) + len(b) > _EXACT_MAX_LEN:
                            ok = False
                            break
                        joined.add(a + b)
                    if not ok or len(joined) > _EXACT_MAX_ALTS:
                        ok = False
                        break
                if not ok:
                    break
                tiers = frozenset(joined)
                if count >= node.low:
                    language |= tiers
                if len(language) > _EXACT_MAX_ALTS:
                    ok = False
                    break
            result = frozenset(language) if ok else None
    # Star / Plus: infinite languages, stay None.
    memo[node] = result
    return result


# ----------------------------------------------------------------------
# Required-literal alternatives


def _required(
    node: Regex,
    memo: Dict[Regex, Optional[Tuple[Tuple[bytes, int], ...]]],
    exact_memo: Dict[Regex, Optional[FrozenSet[bytes]]],
    len_memo: Dict[Regex, Optional[int]],
) -> Optional[Tuple[Tuple[bytes, int], ...]]:
    """A tuple of ``(literal, pre)`` alternatives such that every match
    of ``node`` contains one of the literals starting at most ``pre``
    bytes after the match start — or ``None`` when no finite guarantee
    exists."""
    if node in memo:
        return memo[node]
    result: Optional[Tuple[Tuple[bytes, int], ...]] = None
    if nullable(node):
        # The empty match contains no literal at all.
        memo[node] = None
        return None

    candidates = []
    exact = _exact(node, exact_memo)
    if exact and all(exact):
        candidates.append(tuple((lit, 0) for lit in sorted(exact)))

    if isinstance(node, Concat):
        left = _required(node.left, memo, exact_memo, len_memo)
        if left is not None:
            candidates.append(left)
        left_max = _max_len(node.left, len_memo)
        if left_max is not None:
            right = _required(node.right, memo, exact_memo, len_memo)
            if right is not None:
                candidates.append(
                    tuple((lit, pre + left_max) for lit, pre in right)
                )
    elif isinstance(node, Alternation):
        left = _required(node.left, memo, exact_memo, len_memo)
        right = (
            _required(node.right, memo, exact_memo, len_memo)
            if left is not None
            else None
        )
        if left is not None and right is not None:
            merged: Dict[bytes, int] = {}
            for lit, pre in left + right:
                prev = merged.get(lit)
                if prev is None or pre > prev:
                    merged[lit] = pre
            candidates.append(tuple(sorted(merged.items())))
    elif isinstance(node, Plus):
        inner = _required(node.inner, memo, exact_memo, len_memo)
        if inner is not None:
            candidates.append(inner)
    elif isinstance(node, Repeat) and node.low >= 1:
        # The first of the >= 1 mandatory iterations starts at offset 0.
        inner = _required(node.inner, memo, exact_memo, len_memo)
        if inner is not None:
            candidates.append(inner)
    # Star / Optional_ / Repeat{0,n} are nullable and returned above;
    # Symbol and Epsilon are covered by the exact-language candidate.

    if candidates:
        result = max(candidates, key=_candidate_score)
    memo[node] = result
    return result


def _candidate_score(
    candidate: Tuple[Tuple[bytes, int], ...]
) -> Tuple[int, int, int]:
    """Prefer longer literals, then fewer alternatives, then tighter
    arming windows."""
    shortest = min(len(lit) for lit, _ in candidate)
    widest_pre = max(pre for _, pre in candidate)
    return (shortest, -len(candidate), -widest_pre)


# ----------------------------------------------------------------------
# Public entry point


def extract_literals(
    node: Regex,
    *,
    min_len: int = MIN_LITERAL_LEN,
    max_len: int = MAX_LITERAL_LEN,
    max_alts: int = MAX_LITERAL_ALTS,
    max_pre: int = MAX_PREFIX_DISTANCE,
) -> Optional[PatternLiterals]:
    """Derive the prefilter contract for one parsed pattern.

    Returns ``None`` when the pattern has no usable required literal —
    the engine then keeps its start states always armed.
    """
    required = _required(node, {}, {}, {})
    if required is None:
        return None
    # Truncation to a prefix is sound; merge duplicates on the widest pre.
    merged: Dict[bytes, int] = {}
    for literal, pre in required:
        prefix = literal[:max_len]
        prev = merged.get(prefix)
        if prev is None or pre > prev:
            merged[prefix] = pre
    if len(merged) > max_alts:
        return None
    for literal, pre in merged.items():
        if len(literal) < min_len or pre > max_pre:
            return None
    hints = tuple(
        LiteralHint(literal, pre)
        for literal, pre in sorted(
            merged.items(), key=lambda item: (-len(item[0]), item[0])
        )
    )
    return PatternLiterals(hints)
