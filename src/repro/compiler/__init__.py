"""Regex-to-hardware compiler (§7): translation, encoding, mapping, config."""

from .cam import CamRow, decode_rows, encode_class, rows_for_class, rows_for_ruleset
from .config import (
    LoadedConfig,
    action_from_mnemonic,
    action_to_mnemonic,
    dump_config,
    load_config,
    ruleset_to_config,
)
from .encoding import EncodingSchema, build_encoding
from .mapping import (
    ArchParams,
    AutomatonDemand,
    MappingError,
    MappingResult,
    Tile,
    map_automata,
)
from .sparsity import (
    SparsityProfile,
    decide_fcb_tiles,
    fcb_pairs_for_ruleset,
    profile_automaton,
)
from .pipeline import (
    CompiledRegex,
    CompiledRuleset,
    CompilerOptions,
    build_scan_nfa,
    build_unfolded_nfa,
    compile_ast,
    compile_pattern,
    compile_ruleset,
    swap_words,
    virtual_width,
)
from .reduce import (
    DEFAULT_REDUCE_LEVEL,
    REDUCE_LEVELS,
    reduce_ah,
    reduce_nfa,
)
from .translate import TranslationError, translate

__all__ = [
    "ArchParams",
    "AutomatonDemand",
    "CamRow",
    "CompiledRegex",
    "CompiledRuleset",
    "CompilerOptions",
    "DEFAULT_REDUCE_LEVEL",
    "REDUCE_LEVELS",
    "build_scan_nfa",
    "decode_rows",
    "encode_class",
    "rows_for_class",
    "rows_for_ruleset",
    "EncodingSchema",
    "LoadedConfig",
    "MappingError",
    "MappingResult",
    "SparsityProfile",
    "Tile",
    "TranslationError",
    "action_from_mnemonic",
    "action_to_mnemonic",
    "build_encoding",
    "build_unfolded_nfa",
    "compile_ast",
    "compile_pattern",
    "compile_ruleset",
    "decide_fcb_tiles",
    "dump_config",
    "fcb_pairs_for_ruleset",
    "load_config",
    "map_automata",
    "profile_automaton",
    "reduce_ah",
    "reduce_nfa",
    "ruleset_to_config",
    "swap_words",
    "translate",
    "virtual_width",
]
