"""Content-addressed compile cache for :class:`~repro.compiler.pipeline.CompiledRegex`.

The five-step pipeline (§7) is deterministic: the same pattern text under
the same :class:`~repro.compiler.pipeline.CompilerOptions` always yields
the same AH-NBVA.  That makes compilation memoisable — exactly what
Hyperscan's precompiled pattern databases and Cicero's compilation-reuse
argument exploit (PAPERS.md) — so a process serving a large Snort or
ClamAV ruleset need not redo parse→rewrite→Glushkov→AH work on every
start.

Cache key
---------

``sha256(code_version · options_fingerprint · pattern)``:

* **pattern text** — the exact source string;
* **options fingerprint** (:func:`options_fingerprint`) — every
  :class:`CompilerOptions` knob that can change the compiled artifact:
  ``bv_size``, ``unfold_threshold``, ``reduce_level`` (a reduced and an
  unreduced automaton are different artifacts and must never cross-hit),
  all :class:`ArchParams` capacities, and the compile-time budget limits
  (``max_states`` / ``max_unfold`` / ``max_bv_width``).  Runtime-only
  knobs (deadline, scan-cache bytes, dense-table states) are
  deliberately excluded — they never alter the artifact;
* **code version** (:func:`code_version`) — a digest over the source of
  every package that determines compiler output (``repro.regex``,
  ``repro.automata``, ``repro.compiler``), so editing any compiler pass
  invalidates the whole cache automatically.  The prefilter literal
  extractor (``repro.compiler.prefilter``) lives in the versioned tree:
  its per-pattern ``literals`` ride inside the cached
  :class:`CompiledRegex`, and any change to the extraction rules rolls
  the digest and recompiles them.

Layers
------

:class:`CompileCache` stacks two layers:

* an **in-memory LRU** (``max_entries``), shared by every lookup in the
  process;
* an optional **on-disk store** (``cache_dir``): one pickle per entry at
  ``<cache_dir>/<key[:2]>/<key>.pkl``, written atomically (temp file +
  ``os.replace``), evicted oldest-access-first once the directory
  exceeds ``max_disk_bytes``.  Loads are corruption-tolerant: a
  truncated, unreadable, or stale pickle is deleted and reported as a
  miss, so a damaged cache can only ever cost a recompile.

Telemetry (when metrics are enabled): ``compile.cache.hits``,
``compile.cache.misses``, ``compile.cache.disk_hits``,
``compile.cache.corrupt``, ``compile.cache.evictions``.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .. import telemetry

log = logging.getLogger("repro.compiler.cache")

#: Default bound on the in-memory layer (entries, not bytes: compiled
#: automata for rule-set patterns are small, a few kB each).
DEFAULT_MAX_ENTRIES = 4096

#: Default size cap for the on-disk store.
DEFAULT_MAX_DISK_BYTES = 256 << 20

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Packages whose source determines compiler output; editing any file in
#: them must invalidate every cached artifact.
_VERSIONED_PACKAGES = ("regex", "automata", "compiler")

_code_version: Optional[str] = None


def code_version() -> str:
    """Digest of the compiler-relevant source tree (computed once).

    Hashing the actual module files (names + bytes, sorted) means a
    cache produced by one checkout is never served to another: any edit
    to the parser, the rewriter, the translators, or the mapper changes
    the digest and therefore every cache key.
    """
    global _code_version
    if _code_version is None:
        digest = hashlib.sha256()
        root = Path(__file__).resolve().parent.parent
        for package in _VERSIONED_PACKAGES:
            for path in sorted((root / package).glob("*.py")):
                digest.update(path.name.encode())
                try:
                    digest.update(path.read_bytes())
                except OSError:  # pragma: no cover - unreadable source
                    continue
        _code_version = digest.hexdigest()[:16]
    return _code_version


def options_fingerprint(options: Any) -> str:
    """Stable text encoding of the artifact-relevant compiler knobs."""
    arch = options.arch
    budget = options.budget
    return repr((
        # Anchor-semantics marker: ^/$/\b used to be stripped at parse
        # time, so an anchored pattern compiled to the same artifact as
        # its plain form.  Now they lower to positional gates and the
        # artifact carries an AnchorInfo; the marker keeps artifacts
        # from the two regimes apart even under a pinned code version.
        "anchors-v1",
        options.bv_size,
        options.unfold_threshold,
        # The reduction level changes the compiled automaton itself, so a
        # reduced artifact must never be served to a --no-reduce compile
        # (or vice versa).  getattr keeps old pickled options readable.
        getattr(options, "reduce_level", 0),
        arch.stes_per_tile,
        arch.bvs_per_tile,
        arch.tiles_per_array,
        arch.arrays_per_bank,
        arch.hardware_bv_bits,
        budget.max_states,
        budget.max_unfold,
        budget.max_bv_width,
    ))


def cache_key(pattern: str, options: Any, version: Optional[str] = None) -> str:
    """The content address of one (pattern, options, code) compile."""
    digest = hashlib.sha256()
    digest.update((version or code_version()).encode())
    digest.update(b"\x00")
    digest.update(options_fingerprint(options).encode())
    digest.update(b"\x00")
    digest.update(pattern.encode("utf-8", "surrogatepass"))
    return digest.hexdigest()


class CompileCache:
    """Two-layer (memory + optional disk) compile cache.

    Thread-safe; one instance can back every ``compile_ruleset`` /
    ``PatternSet`` in a process.  Entries are stored with a normalised
    ``regex_id`` and re-badged on the way out, so the same pattern text
    hits regardless of its position in a batch.

    Args:
        cache_dir: directory of the on-disk layer; ``None`` keeps the
            cache purely in-memory.
        max_entries: in-memory LRU bound.
        max_disk_bytes: on-disk footprint cap (oldest-access eviction).
        version: code-version override (tests); defaults to
            :func:`code_version`.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_disk_bytes: int = DEFAULT_MAX_DISK_BYTES,
        version: Optional[str] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_disk_bytes < 1:
            raise ValueError("max_disk_bytes must be >= 1")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_entries = max_entries
        self.max_disk_bytes = max_disk_bytes
        self.version = version or code_version()
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        self._disk_bytes: Optional[int] = None  # scanned lazily
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.corrupt = 0
        self.evictions = 0
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    # -- key plumbing --------------------------------------------------

    def key_for(self, pattern: str, options: Any) -> str:
        return cache_key(pattern, options, self.version)

    def _path_for(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / key[:2] / f"{key}.pkl"

    # -- lookup --------------------------------------------------------

    def get(self, pattern: str, options: Any, regex_id: int = 0) -> Any:
        """The cached :class:`CompiledRegex`, re-badged to ``regex_id``,
        or ``None`` on a miss."""
        key = self.key_for(pattern, options)
        with self._lock:
            compiled = self._memory.get(key)
            if compiled is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                self._count("compile.cache.hits")
                return self._badge(compiled, regex_id)
            compiled = self._disk_get(key)
            if compiled is not None:
                self._memory_put(key, compiled)
                self.hits += 1
                self.disk_hits += 1
                self._count("compile.cache.hits")
                self._count("compile.cache.disk_hits")
                return self._badge(compiled, regex_id)
            self.misses += 1
            self._count("compile.cache.misses")
            return None

    def put(self, pattern: str, options: Any, compiled: Any) -> None:
        """Store one successful compile in both layers."""
        key = self.key_for(pattern, options)
        with self._lock:
            self._memory_put(key, compiled)
            if self.cache_dir is not None:
                self._disk_put(key, compiled)

    @staticmethod
    def _badge(compiled: Any, regex_id: int) -> Any:
        if compiled.regex_id == regex_id:
            return compiled
        import dataclasses

        return dataclasses.replace(compiled, regex_id=regex_id)

    # -- in-memory layer -----------------------------------------------

    def _memory_put(self, key: str, compiled: Any) -> None:
        self._memory[key] = compiled
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)
            self.evictions += 1
            self._count("compile.cache.evictions")

    # -- on-disk layer -------------------------------------------------

    def _disk_get(self, key: str) -> Any:
        if self.cache_dir is None:
            return None
        path = self._path_for(key)
        try:
            payload = path.read_bytes()
        except OSError:
            return None
        try:
            stored_version, compiled = pickle.loads(payload)
            if stored_version != self.version:
                raise ValueError("stale cache entry")
        except Exception as error:  # corrupt/stale/unpicklable: recompile
            self.corrupt += 1
            self._count("compile.cache.corrupt")
            log.warning("dropping unreadable cache entry %s (%s)", path, error)
            self._unlink(path)
            return None
        self._touch(path)
        return compiled

    def _disk_put(self, key: str, compiled: Any) -> None:
        path = self._path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = pickle.dumps((self.version, compiled), _PICKLE_PROTOCOL)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp, path)  # atomic: readers never see partials
            except BaseException:
                self._unlink(Path(tmp))
                raise
        except (OSError, pickle.PicklingError) as error:
            log.warning("compile cache write failed for %s (%s)", path, error)
            return
        if self._disk_bytes is None:
            self._disk_bytes = self._scan_disk_bytes()
        else:
            self._disk_bytes += len(payload)
        if self._disk_bytes > self.max_disk_bytes:
            self._evict_disk()

    def _evict_disk(self) -> None:
        """Drop oldest-access entries until the store fits the cap."""
        entries: List[Tuple[float, int, Path]] = []
        for path in self.cache_dir.glob("*/*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        total = sum(size for _mtime, size, _path in entries)
        for _mtime, size, path in entries:
            if total <= self.max_disk_bytes:
                break
            self._unlink(path)
            total -= size
            self.evictions += 1
            self._count("compile.cache.evictions")
        self._disk_bytes = total

    def _scan_disk_bytes(self) -> int:
        total = 0
        for path in self.cache_dir.glob("*/*.pkl"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh the access stamp the disk LRU sorts on."""
        try:
            os.utime(path, None)
        except OSError:
            pass

    @staticmethod
    def _unlink(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # -- maintenance / introspection -----------------------------------

    def clear(self, disk: bool = True) -> None:
        """Empty the memory layer (and the disk layer unless ``disk=False``)."""
        with self._lock:
            self._memory.clear()
            if disk and self.cache_dir is not None:
                for path in self.cache_dir.glob("*/*.pkl"):
                    self._unlink(path)
                self._disk_bytes = 0

    def cache_info(self) -> Dict[str, Any]:
        with self._lock:
            disk_bytes = (
                self._scan_disk_bytes() if self.cache_dir is not None else 0
            )
            return {
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "corrupt": self.corrupt,
                "evictions": self.evictions,
                "entries": len(self._memory),
                "max_entries": self.max_entries,
                "disk_bytes": disk_bytes,
                "max_disk_bytes": self.max_disk_bytes,
                "cache_dir": str(self.cache_dir) if self.cache_dir else None,
                "version": self.version,
            }

    @staticmethod
    def _count(name: str) -> None:
        if telemetry.metrics_enabled():
            telemetry.registry().counter(name).inc()
