"""End-to-end regex-to-hardware compilation (§7).

The pipeline follows the paper's five steps:

1. parse the regex (unfolding of bounds <= 2 is subsumed by step 3);
2. analyse the character classes and build the symbol encoding schema;
3. rewrite: unfold small repetitions, split large ones (Examples 7.1/7.2);
4. construct the NBVA and transform it into an AH-NBVA;
5. emit a JSON configuration describing the automata and their mapping
   (``repro.compiler.config``).

The result objects also carry the statistics the evaluation needs: STE and
BV-STE counts, virtual BV widths and their Swap-word counts, and the
unfolded baseline size for CAMA/CA/eAP comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import telemetry
from ..automata.ah import AHNBVA, is_counter_free, to_action_homogeneous
from ..automata.ah import to_nfa as ah_to_nfa
from ..automata.optimize import prune
from ..automata.glushkov import glushkov
from ..automata.nbva import NBVA
from ..automata.nfa import NFA
from ..regex import ast as ast_mod
from ..regex.parser import parse
from ..regex.rewrite import VIRTUAL_SIZES, RewriteParams, rewrite, unfold_all
from .encoding import EncodingSchema, build_encoding
from .mapping import ArchParams, AutomatonDemand, MappingError, MappingResult, map_automata
from .translate import translate


@dataclass(frozen=True)
class CompilerOptions:
    """All user-facing compiler knobs."""

    bv_size: int = 64
    unfold_threshold: int = 4
    arch: ArchParams = ArchParams()

    def __post_init__(self) -> None:
        self.rewrite_params  # validate bv_size / threshold eagerly

    @property
    def rewrite_params(self) -> RewriteParams:
        return RewriteParams(
            bv_size=self.bv_size, unfold_threshold=self.unfold_threshold
        )


def virtual_width(scope_high: int) -> int:
    """Smallest realisable virtual BV size covering a scope (§5)."""
    for size in VIRTUAL_SIZES:
        if size >= scope_high:
            return size
    raise ValueError(f"scope bound {scope_high} exceeds the hardware BV")


def swap_words(virtual_size: int, word_bits: int = 8) -> int:
    """Swap-step word count for a virtual BV (§5 semi-parallel routing)."""
    return (virtual_size + word_bits - 1) // word_bits


@dataclass
class CompiledRegex:
    """One regex compiled through the whole pipeline."""

    regex_id: int
    pattern: str
    parsed: ast_mod.Regex
    rewritten: ast_mod.Regex
    nbva: NBVA
    ah: AHNBVA
    #: Size of the Glushkov NFA of the fully unfolded regex (the footprint
    #: on unfolding-based baselines); None if unfolding would exceed `cap`.
    unfolded_states: Optional[int] = None

    @property
    def num_stes(self) -> int:
        return self.ah.num_states

    @property
    def num_bv_stes(self) -> int:
        return self.ah.num_bv_stes()

    @property
    def num_plain_stes(self) -> int:
        return self.ah.num_plain_stes()

    def virtual_widths(self) -> List[int]:
        return [virtual_width(scope.high) for scope in self.ah.scopes]

    def max_swap_words(self) -> int:
        widths = self.virtual_widths()
        return max((swap_words(w) for w in widths), default=0)

    def demand(self) -> AutomatonDemand:
        return AutomatonDemand(
            regex_id=self.regex_id,
            plain_stes=self.num_plain_stes,
            bv_stes=self.num_bv_stes,
            max_swap_words=self.max_swap_words(),
        )


@dataclass
class CompiledRuleset:
    """A full rule set compiled and mapped onto the hardware."""

    options: CompilerOptions
    regexes: List[CompiledRegex]
    encoding: EncodingSchema
    mapping: MappingResult
    #: Patterns rejected by the mapper (too large even after rewriting).
    rejected: Dict[int, str] = field(default_factory=dict)

    @property
    def num_stes(self) -> int:
        return sum(r.num_stes for r in self.regexes)

    @property
    def num_bv_stes(self) -> int:
        return sum(r.num_bv_stes for r in self.regexes)

    def bv_ste_ratio(self) -> float:
        total = self.num_stes
        return self.num_bv_stes / total if total else 0.0


def compile_pattern(
    pattern: str,
    regex_id: int = 0,
    options: CompilerOptions = CompilerOptions(),
    unfolded_cap: int = 200_000,
) -> CompiledRegex:
    """Compile one pattern string into its AH-NBVA."""
    with telemetry.span("compile.parse", "compile", regex_id=regex_id):
        parsed = parse(pattern)
    return compile_ast(parsed, pattern, regex_id, options, unfolded_cap)


def compile_ast(
    parsed: ast_mod.Regex,
    pattern: str,
    regex_id: int = 0,
    options: CompilerOptions = CompilerOptions(),
    unfolded_cap: int = 200_000,
    force_unfold: bool = False,
) -> CompiledRegex:
    """Compile an already-parsed AST (used by the workload generators).

    ``force_unfold`` compiles with every bounded repetition unfolded —
    the §6 fallback for regexes whose bit-vector demand exceeds the
    hardware ("unsupported regexes can be executed via partial
    unfolding").
    """
    params = options.rewrite_params
    with telemetry.span("compile.rewrite", "compile", regex_id=regex_id):
        rewritten = (
            unfold_all(parsed) if force_unfold else rewrite(parsed, params)
        )
    with telemetry.span("compile.translate", "compile", regex_id=regex_id) as sp:
        nbva = translate(rewritten, params)
        ah = prune(to_action_homogeneous(nbva))
        sp.set(states=ah.num_states, bv_stes=ah.num_bv_stes())
    unfolded_states = _unfolded_size(parsed, unfolded_cap)
    return CompiledRegex(
        regex_id=regex_id,
        pattern=pattern,
        parsed=parsed,
        rewritten=rewritten,
        nbva=nbva,
        ah=ah,
        unfolded_states=unfolded_states,
    )


def compile_ruleset(
    patterns: Sequence[str],
    options: CompilerOptions = CompilerOptions(),
) -> CompiledRuleset:
    """Compile and map a whole rule set; oversized regexes are recorded in
    ``rejected`` rather than aborting the compilation (§6)."""
    with telemetry.span("compile.ruleset", "compile", patterns=len(patterns)):
        compiled: List[CompiledRegex] = []
        rejected: Dict[int, str] = {}
        for regex_id, pattern in enumerate(patterns):
            try:
                compiled.append(compile_pattern(pattern, regex_id, options))
            except (ValueError, MappingError) as error:
                rejected[regex_id] = str(error)

        classes = [
            state.cc for regex in compiled for state in regex.ah.states
        ]
        with telemetry.span("compile.encode", "compile", classes=len(classes)):
            encoding = build_encoding(classes)

        demands = []
        mappable = []
        for regex in compiled:
            demand = regex.demand()
            if demand.bv_stes > options.arch.bvs_per_array:
                # §6 fallback: more BVs than an array holds — re-compile
                # with the repetitions unfolded into plain STEs.
                unfolded = _try_unfold_fallback(regex, options)
                if unfolded is not None:
                    regex = unfolded
                    demand = regex.demand()
            if (
                demand.total_stes > options.arch.stes_per_array
                or demand.bv_stes > options.arch.bvs_per_array
            ):
                rejected[regex.regex_id] = (
                    f"automaton too large: {demand.total_stes} STEs / "
                    f"{demand.bv_stes} BVs"
                )
                continue
            demands.append(demand)
            mappable.append(regex)
        with telemetry.span("compile.map", "compile", automata=len(demands)) as sp:
            mapping = map_automata(demands, options.arch)
            sp.set(tiles=mapping.num_tiles, arrays=mapping.num_arrays)

    if telemetry.metrics_enabled():
        registry = telemetry.registry()
        registry.counter("compile.patterns").inc(len(patterns))
        registry.counter("compile.compiled").inc(len(mappable))
        registry.counter("compile.rejected").inc(len(rejected))
        registry.gauge("compile.tiles").set(mapping.num_tiles)
        registry.gauge("compile.stes").set(
            sum(r.num_stes for r in mappable)
        )
        registry.gauge("compile.bv_stes").set(
            sum(r.num_bv_stes for r in mappable)
        )

    return CompiledRuleset(
        options=options,
        regexes=mappable,
        encoding=encoding,
        mapping=mapping,
        rejected=rejected,
    )


def _try_unfold_fallback(
    regex: CompiledRegex, options: CompilerOptions
) -> Optional[CompiledRegex]:
    """Re-compile with full unfolding when that fits the hardware."""
    if (
        regex.unfolded_states is None
        or regex.unfolded_states > options.arch.stes_per_array
    ):
        return None
    return compile_ast(
        regex.parsed,
        regex.pattern,
        regex.regex_id,
        options,
        force_unfold=True,
    )


def _unfolded_size(parsed: ast_mod.Regex, cap: int) -> Optional[int]:
    """Glushkov size after full unfolding, or None when it would exceed cap.

    The symbol count of the unfolded AST *is* the Glushkov state count, so
    the NFA itself need not be built for large regexes.
    """
    estimated = _unfolded_symbols(parsed)
    if estimated > cap:
        return None
    return estimated


def _unfolded_symbols(node: ast_mod.Regex) -> int:
    if isinstance(node, ast_mod.Symbol):
        return 1
    if isinstance(node, ast_mod.Repeat):
        inner = _unfolded_symbols(node.inner)
        bound = node.high if node.high is not None else node.low + 1
        return inner * max(bound, 1)
    return sum(_unfolded_symbols(child) for child in node.children())


def build_unfolded_nfa(parsed: ast_mod.Regex) -> NFA:
    """The baseline processors' automaton: unfold, then Glushkov (§2)."""
    return glushkov(unfold_all(parsed))


def build_scan_nfa(compiled: CompiledRegex) -> NFA:
    """The per-pattern NFA the fused software engine executes.

    Counter-free patterns reuse the pruned AH-NBVA state graph directly
    (it is already minimised by :func:`repro.automata.optimize.prune`);
    patterns that kept live bit vectors after rewriting fall back to the
    fully unfolded Glushkov NFA, which exists for every supported regex.
    """
    if is_counter_free(compiled.ah):
        try:
            return ah_to_nfa(compiled.ah)
        except ValueError:  # malformed finalisation; unfold instead
            pass
    return build_unfolded_nfa(compiled.parsed)
