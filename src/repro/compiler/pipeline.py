"""End-to-end regex-to-hardware compilation (§7).

The pipeline follows the paper's five steps:

1. parse the regex (unfolding of bounds <= 2 is subsumed by step 3);
2. analyse the character classes and build the symbol encoding schema;
3. rewrite: unfold small repetitions, split large ones (Examples 7.1/7.2);
4. construct the NBVA and transform it into an AH-NBVA;
5. emit a JSON configuration describing the automata and their mapping
   (``repro.compiler.config``).

The result objects also carry the statistics the evaluation needs: STE and
BV-STE counts, virtual BV widths and their Swap-word counts, and the
unfolded baseline size for CAMA/CA/eAP comparisons.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from .. import telemetry
from ..automata.ah import AHNBVA, is_counter_free, to_action_homogeneous
from ..automata.ah import to_nfa as ah_to_nfa
from ..automata.glushkov import glushkov
from ..automata.nbva import NBVA
from ..automata.nfa import NFA, union_nfas
from ..regex import ast as ast_mod
from ..regex.anchors import Variant, lower_anchors
from ..regex.charclass import CharClass
from ..regex.parser import parse
from ..regex.rewrite import (
    DEFAULT_MAX_UNFOLD,
    VIRTUAL_SIZES,
    RewriteParams,
    rewrite,
    unfold_all,
)
from ..resilience.budget import Budget, BudgetClock
from ..resilience.errors import CapacityError, ReproError
from ..resilience.report import CompileReport, report_from_error

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids a hard import
    from .cache import CompileCache
from .encoding import EncodingSchema, build_encoding
from .prefilter import PatternLiterals, extract_literals
from .mapping import ArchParams, AutomatonDemand, MappingError, MappingResult, map_automata
from .reduce import DEFAULT_REDUCE_LEVEL, REDUCE_LEVELS, reduce_ah, reduce_nfa
from .translate import translate


@dataclass(frozen=True)
class CompilerOptions:
    """All user-facing compiler knobs."""

    bv_size: int = 64
    unfold_threshold: int = 4
    arch: ArchParams = ArchParams()
    #: Resource budget enforced at phase boundaries (default: unlimited).
    budget: Budget = Budget()
    #: Automaton reduction level (``compiler.reduce``): 0 disables the
    #: pass (dead-state pruning only), 1 adds follow (right) merges, 2
    #: (the default) adds left merges as well.
    reduce_level: int = DEFAULT_REDUCE_LEVEL

    def __post_init__(self) -> None:
        self.rewrite_params  # validate bv_size / threshold eagerly
        if self.reduce_level not in REDUCE_LEVELS:
            raise ValueError(
                f"reduce_level must be one of {REDUCE_LEVELS}, "
                f"got {self.reduce_level!r}"
            )

    @property
    def rewrite_params(self) -> RewriteParams:
        max_unfold = (
            self.budget.max_unfold
            if self.budget.max_unfold is not None
            else DEFAULT_MAX_UNFOLD
        )
        return RewriteParams(
            bv_size=self.bv_size,
            unfold_threshold=self.unfold_threshold,
            max_unfold=max_unfold,
        )


def virtual_width(scope_high: int) -> int:
    """Smallest realisable virtual BV size covering a scope (§5)."""
    for size in VIRTUAL_SIZES:
        if size >= scope_high:
            return size
    raise CapacityError(f"scope bound {scope_high} exceeds the hardware BV")


def swap_words(virtual_size: int, word_bits: int = 8) -> int:
    """Swap-step word count for a virtual BV (§5 semi-parallel routing)."""
    return (virtual_size + word_bits - 1) // word_bits


@dataclass
class AnchorInfo:
    """Anchor-lowering artifacts attached to a compiled pattern.

    ``source`` is the parsed AST *with* its positional assertions;
    ``variants`` are the gated anchor-free alternatives produced by
    :func:`repro.regex.anchors.lower_anchors`; ``scan_nfa`` is their
    assembled union with per-state ``boi``/``eoi``/``adjust`` gates —
    the automaton the fused scan engine executes for this pattern.
    A pattern whose anchors are unsatisfiable (``a$b``) has zero
    variants and a never-matching one-state ``scan_nfa``.
    """

    source: ast_mod.Regex
    variants: Tuple[Variant, ...]
    scan_nfa: NFA


@dataclass
class CompiledRegex:
    """One regex compiled through the whole pipeline."""

    regex_id: int
    pattern: str
    parsed: ast_mod.Regex
    rewritten: ast_mod.Regex
    nbva: NBVA
    ah: AHNBVA
    #: Size of the Glushkov NFA of the fully unfolded regex (the footprint
    #: on unfolding-based baselines); None if unfolding would exceed `cap`.
    unfolded_states: Optional[int] = None
    #: Required-literal prefilter contract (see repro.compiler.prefilter);
    #: None when the pattern has no usable required literal and must stay
    #: always-on in the fused scan engine.
    literals: Optional[PatternLiterals] = None
    #: What the ``compiler.reduce`` pass saved (states/BV-STEs/edges
    #: before and after, pruned and merged counts per rule, and the
    #: ``reduce_level`` it ran at); None only on artifacts produced
    #: before the pass existed.
    reduction: Optional[Dict[str, int]] = None
    #: Anchor-lowering artifacts (:class:`AnchorInfo`); None for
    #: un-anchored patterns.  When set, ``parsed`` holds the anchor-free
    #: union of the variant cores (so literal extraction, cost models
    #: and demand statistics keep working) and the fused engine executes
    #: ``anchors.scan_nfa`` instead of re-deriving an automaton.
    anchors: Optional[AnchorInfo] = None

    @property
    def reduction_summary(self) -> Dict[str, int]:
        """The reduction pass's savings (empty dict when unavailable)."""
        return dict(self.reduction) if self.reduction else {}

    @property
    def num_stes(self) -> int:
        return self.ah.num_states

    @property
    def num_bv_stes(self) -> int:
        return self.ah.num_bv_stes()

    @property
    def num_plain_stes(self) -> int:
        return self.ah.num_plain_stes()

    def virtual_widths(self) -> List[int]:
        return [virtual_width(scope.high) for scope in self.ah.scopes]

    def max_swap_words(self) -> int:
        widths = self.virtual_widths()
        return max((swap_words(w) for w in widths), default=0)

    def demand(self) -> AutomatonDemand:
        return AutomatonDemand(
            regex_id=self.regex_id,
            plain_stes=self.num_plain_stes,
            bv_stes=self.num_bv_stes,
            max_swap_words=self.max_swap_words(),
        )


@dataclass
class CompiledRuleset:
    """A full rule set compiled and mapped onto the hardware."""

    options: CompilerOptions
    regexes: List[CompiledRegex]
    encoding: EncodingSchema
    mapping: MappingResult
    #: Patterns rejected by the mapper (too large even after rewriting).
    rejected: Dict[int, str] = field(default_factory=dict)
    #: Per-pattern fault-isolation reports, one per input pattern in
    #: order (status, error code, failing phase, elapsed seconds).
    reports: List[CompileReport] = field(default_factory=list)

    @property
    def quarantined(self) -> Dict[int, CompileReport]:
        """Quarantine reports keyed by pattern id."""
        return {r.pattern_id: r for r in self.reports if r.quarantined}

    @property
    def num_stes(self) -> int:
        return sum(r.num_stes for r in self.regexes)

    @property
    def num_bv_stes(self) -> int:
        return sum(r.num_bv_stes for r in self.regexes)

    def bv_ste_ratio(self) -> float:
        total = self.num_stes
        return self.num_bv_stes / total if total else 0.0


def _tag_phase(error: Exception, phase: str) -> None:
    """Record the failing compile phase on a structured error (once)."""
    if isinstance(error, ReproError) and error.phase is None:
        error.phase = phase


def compile_pattern(
    pattern: str,
    regex_id: int = 0,
    options: CompilerOptions = CompilerOptions(),
    unfolded_cap: int = 200_000,
    clock: Optional[BudgetClock] = None,
) -> CompiledRegex:
    """Compile one pattern string into its AH-NBVA.

    ``options.budget`` is enforced at every phase boundary; ``clock`` lets
    batch callers share one running deadline across patterns.
    """
    clock = clock if clock is not None else options.budget.start()
    try:
        with telemetry.span("compile.parse", "compile", regex_id=regex_id):
            parsed = parse(pattern)
        clock.check("parse")
    except ReproError as error:
        _tag_phase(error, "parse")
        raise
    return compile_ast(parsed, pattern, regex_id, options, unfolded_cap,
                       clock=clock)


def compile_ast(
    parsed: ast_mod.Regex,
    pattern: str,
    regex_id: int = 0,
    options: CompilerOptions = CompilerOptions(),
    unfolded_cap: int = 200_000,
    force_unfold: bool = False,
    clock: Optional[BudgetClock] = None,
) -> CompiledRegex:
    """Compile an already-parsed AST (used by the workload generators).

    ``force_unfold`` compiles with every bounded repetition unfolded —
    the §6 fallback for regexes whose bit-vector demand exceeds the
    hardware ("unsupported regexes can be executed via partial
    unfolding").

    Anchored ASTs are lowered first (:mod:`repro.regex.anchors`) and
    compiled through :func:`_compile_anchored`; unsupported anchor
    placements raise :class:`UnsupportedFeatureError` here, which the
    fault-isolation wrappers quarantine as ``E_UNSUPPORTED``.
    """
    params = options.rewrite_params
    budget = options.budget
    clock = clock if clock is not None else budget.start()
    try:
        lowered = lower_anchors(parsed, pattern)
        clock.check("lower")
    except ReproError as error:
        _tag_phase(error, "lower")
        raise
    if lowered is not None:
        return _compile_anchored(
            parsed, lowered, pattern, regex_id, options, unfolded_cap,
            force_unfold, clock,
        )
    try:
        with telemetry.span("compile.rewrite", "compile", regex_id=regex_id):
            rewritten = (
                unfold_all(parsed, params.max_unfold)
                if force_unfold
                else rewrite(parsed, params)
            )
        clock.check("rewrite")
    except ReproError as error:
        _tag_phase(error, "rewrite")
        raise
    try:
        with telemetry.span(
            "compile.translate", "compile", regex_id=regex_id
        ) as sp:
            nbva = translate(rewritten, params)
            ah = to_action_homogeneous(nbva)
            sp.set(states=ah.num_states, bv_stes=ah.num_bv_stes())
        clock.check("translate")
    except ReproError as error:
        _tag_phase(error, "translate")
        raise
    try:
        with telemetry.span(
            "compile.reduce", "compile", regex_id=regex_id
        ) as sp:
            ah, reduction = reduce_ah(ah, level=options.reduce_level)
            removed = reduction["states_before"] - reduction["states_after"]
            sp.set(states=ah.num_states, removed=removed)
        if removed and telemetry.metrics_enabled():
            telemetry.registry().counter(
                "compile.reduce.states_removed"
            ).inc(removed)
        budget.charge_states(ah.num_states, pattern)
        for scope in ah.scopes:
            budget.charge_bv_width(scope.high, pattern)
        clock.check("reduce")
    except ReproError as error:
        _tag_phase(error, "reduce")
        raise
    unfolded_states = _unfolded_size(parsed, unfolded_cap)
    return CompiledRegex(
        regex_id=regex_id,
        pattern=pattern,
        parsed=parsed,
        rewritten=rewritten,
        nbva=nbva,
        ah=ah,
        unfolded_states=unfolded_states,
        literals=extract_literals(parsed),
        reduction=reduction,
    )


def _gate_nfa(nfa: NFA, variant: Variant) -> NFA:
    """Attach one variant's positional gates to its reduced core NFA."""
    boi = set(nfa.initial) if variant.boi else set()
    if variant.eoi:
        return NFA(nfa.classes, nfa.transitions, nfa.initial, set(),
                   boi, set(nfa.final), set())
    if variant.adjust:
        return NFA(nfa.classes, nfa.transitions, nfa.initial, set(),
                   boi, set(), set(nfa.final))
    return NFA(nfa.classes, nfa.transitions, nfa.initial, set(nfa.final),
               boi, set(), set())


#: Anchor-free core whose language is empty — what an unsatisfiable
#: anchored pattern (``a$b``) compiles to: a real automaton that can
#: never report, not a silently-rewritten one.
_EMPTY_CORE = ast_mod.Symbol(CharClass.empty())


def _compile_anchored(
    parsed: ast_mod.Regex,
    variants: Tuple[Variant, ...],
    pattern: str,
    regex_id: int,
    options: CompilerOptions,
    unfolded_cap: int,
    force_unfold: bool,
    clock: BudgetClock,
) -> CompiledRegex:
    """Compile a pattern whose AST carried positional assertions.

    The anchor-free *union* of the variant cores runs through the
    normal pipeline — that is what sizing, mapping, literal extraction
    and the cost models see.  The executable artifact is the gated
    union NFA: each variant core is unfolded, Glushkov-translated and
    reduced independently, its gates are attached post-reduce (gates
    are uniform within one variant, so reduction cannot merge states
    with different positional semantics), and the parts are unioned.
    """
    if variants:
        union = variants[0].core
        for variant in variants[1:]:
            union = ast_mod.alternation(union, variant.core)
    else:
        union = _EMPTY_CORE
    compiled = compile_ast(
        union, pattern, regex_id, options, unfolded_cap,
        force_unfold=force_unfold, clock=clock,
    )
    level = (compiled.reduction or {}).get("level", 0)
    try:
        with telemetry.span(
            "compile.anchor", "compile", regex_id=regex_id,
            variants=len(variants),
        ):
            parts = []
            for variant in variants:
                nfa = build_unfolded_nfa(variant.core)
                if level:
                    nfa = reduce_nfa(nfa, level=level)
                parts.append(_gate_nfa(nfa, variant))
            scan_nfa = (
                union_nfas(parts)
                if parts
                else NFA([CharClass.empty()], [[]], {0}, set())
            )
        options.budget.charge_states(scan_nfa.num_states, pattern)
        clock.check("anchor")
    except ReproError as error:
        _tag_phase(error, "anchor")
        raise
    compiled.anchors = AnchorInfo(
        source=parsed, variants=variants, scan_nfa=scan_nfa
    )
    return compiled


def compile_pattern_isolated(
    pattern: str,
    regex_id: int = 0,
    options: CompilerOptions = CompilerOptions(),
    clock: Optional[BudgetClock] = None,
    cache: "Optional[CompileCache]" = None,
) -> Tuple[Optional[CompiledRegex], CompileReport]:
    """Compile one pattern, converting failures into a quarantine report.

    The shared fault-isolation primitive under :func:`compile_ruleset`
    and :class:`repro.matching.PatternSet`: a malformed, unsupported,
    budget-busting, or oversized pattern yields ``(None, report)``
    instead of raising.  Only a batch-wide deadline expiry
    (``kind == "deadline"``) propagates, since nothing compiled after it
    could succeed either.  When ``cache`` is given, a hit skips the
    pipeline entirely and a successful compile is stored back.
    """
    started = time.perf_counter()
    if cache is not None:
        hit = cache.get(pattern, options, regex_id)
        if hit is not None:
            return hit, CompileReport(
                pattern_id=regex_id,
                pattern=pattern,
                elapsed_s=time.perf_counter() - started,
            )
    try:
        compiled = compile_pattern(pattern, regex_id, options, clock=clock)
    except ReproError as error:
        if getattr(error, "kind", None) == "deadline":
            raise  # batch-wide budget: nothing later can succeed
        return None, report_from_error(
            regex_id, pattern, error, elapsed_s=time.perf_counter() - started
        )
    except ValueError as error:
        return None, report_from_error(
            regex_id, pattern, error, elapsed_s=time.perf_counter() - started
        )
    if cache is not None:
        cache.put(pattern, options, compiled)
    return compiled, CompileReport(
        pattern_id=regex_id,
        pattern=pattern,
        elapsed_s=time.perf_counter() - started,
    )


# Per-worker compiler options, installed by the pool initializer so job
# payloads stay small (one (id, pattern) tuple per task).
_WORKER_OPTIONS: Optional[CompilerOptions] = None


def _parallel_init(options: CompilerOptions) -> None:
    global _WORKER_OPTIONS
    _WORKER_OPTIONS = options


def _parallel_compile(
    job: Tuple[int, str],
) -> Tuple[int, Optional[CompiledRegex], CompileReport]:
    regex_id, pattern = job
    compiled, report = compile_pattern_isolated(
        pattern, regex_id, _WORKER_OPTIONS
    )
    return regex_id, compiled, report


def _pool_context() -> multiprocessing.context.BaseContext:
    # Fork keeps worker start-up cheap and inherits the imported compiler;
    # platforms without it (Windows, some macOS configs) spawn instead.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return multiprocessing.get_context()


def _compile_batch(
    patterns: Sequence[str],
    options: CompilerOptions,
    clock: BudgetClock,
    cache: "Optional[CompileCache]",
    jobs: int,
) -> Tuple[List[CompiledRegex], Dict[int, str], List[CompileReport]]:
    """Compile every pattern (serially or on a process pool), preserving
    input order in the outputs."""
    slots: List[Optional[CompiledRegex]] = [None] * len(patterns)
    reports: List[Optional[CompileReport]] = [None] * len(patterns)

    pending: List[Tuple[int, str]] = []
    for regex_id, pattern in enumerate(patterns):
        if cache is not None:
            hit = cache.get(pattern, options, regex_id)
            if hit is not None:
                slots[regex_id] = hit
                reports[regex_id] = CompileReport(
                    pattern_id=regex_id, pattern=pattern
                )
                continue
        pending.append((regex_id, pattern))

    workers = min(jobs, len(pending))
    if workers > 1:
        # Workers compile with the deadline stripped: the batch-wide
        # deadline is enforced here in the parent, which can time out a
        # straggler without a clock race across processes.
        worker_options = dataclasses.replace(
            options,
            budget=dataclasses.replace(options.budget, deadline_s=None),
        )
        if telemetry.metrics_enabled():
            telemetry.registry().gauge("compile.parallel.workers").set(workers)
        with _pool_context().Pool(
            processes=workers,
            initializer=_parallel_init,
            initargs=(worker_options,),
        ) as pool:
            results = pool.imap(_parallel_compile, pending)
            for _ in pending:
                try:
                    if clock.expiry is not None:
                        remaining = clock.expiry - time.monotonic()
                        if remaining <= 0:
                            clock.check("compile")
                        regex_id, compiled, report = results.next(
                            timeout=remaining
                        )
                    else:
                        regex_id, compiled, report = next(results)
                except multiprocessing.TimeoutError:
                    pool.terminate()
                    clock.check("compile")  # raises: expiry has passed
                slots[regex_id] = compiled
                reports[regex_id] = report
                if compiled is not None and cache is not None:
                    cache.put(patterns[regex_id], options, compiled)
    else:
        # Cache lookups already happened above; compile misses directly
        # and store the results, so each pattern costs one get + one put.
        for regex_id, pattern in pending:
            compiled, report = compile_pattern_isolated(
                pattern, regex_id, options, clock=clock
            )
            slots[regex_id] = compiled
            reports[regex_id] = report
            if compiled is not None and cache is not None:
                cache.put(pattern, options, compiled)

    compiled_list = [regex for regex in slots if regex is not None]
    final_reports = [report for report in reports if report is not None]
    rejected = {
        report.pattern_id: report.error or ""
        for report in final_reports
        if report.quarantined
    }
    return compiled_list, rejected, final_reports


def compile_ruleset(
    patterns: Sequence[str],
    options: CompilerOptions = CompilerOptions(),
    cache: "Optional[CompileCache]" = None,
    jobs: int = 1,
) -> CompiledRuleset:
    """Compile and map a whole rule set with per-pattern fault isolation.

    A malformed, unsupported, budget-busting, or oversized pattern never
    aborts the batch: it is quarantined into its
    :class:`~repro.resilience.report.CompileReport` (``reports``; the
    legacy ``rejected`` dict mirrors the messages) and the remaining
    patterns compile normally (§6).  Only a batch-wide budget deadline
    (``options.budget.deadline_s``) aborts the whole call, since an
    expired deadline would starve every later pattern anyway.

    ``cache`` short-circuits per-pattern compilation through a
    :class:`repro.compiler.cache.CompileCache`; ``jobs > 1`` compiles
    cache misses on a process pool (deterministic output order, same
    quarantine semantics, deadline still enforced batch-wide).
    """
    clock = options.budget.start()
    with telemetry.span("compile.ruleset", "compile", patterns=len(patterns)):
        compiled, rejected, reports = _compile_batch(
            patterns, options, clock, cache, jobs
        )

        classes = [
            state.cc for regex in compiled for state in regex.ah.states
        ]
        with telemetry.span("compile.encode", "compile", classes=len(classes)):
            encoding = build_encoding(classes)
        clock.check("encode")

        by_id = {report.pattern_id: report for report in reports}
        demands = []
        mappable = []
        for regex in compiled:
            demand = regex.demand()
            if demand.bv_stes > options.arch.bvs_per_array:
                # §6 fallback: more BVs than an array holds — re-compile
                # with the repetitions unfolded into plain STEs.
                unfolded = _try_unfold_fallback(regex, options)
                if unfolded is not None:
                    regex = unfolded
                    demand = regex.demand()
            if (
                demand.total_stes > options.arch.stes_per_array
                or demand.bv_stes > options.arch.bvs_per_array
            ):
                message = (
                    f"automaton too large: {demand.total_stes} STEs / "
                    f"{demand.bv_stes} BVs"
                )
                rejected[regex.regex_id] = message
                report = by_id[regex.regex_id]
                report.status = "quarantined"
                report.error_code = "E_CAPACITY"
                report.error = message
                report.phase = "mapping"
                continue
            demands.append(demand)
            mappable.append(regex)
        with telemetry.span("compile.map", "compile", automata=len(demands)) as sp:
            mapping = map_automata(demands, options.arch)
            sp.set(tiles=mapping.num_tiles, arrays=mapping.num_arrays)
        clock.check("map")

    quarantined = sum(1 for report in reports if report.quarantined)
    if telemetry.metrics_enabled():
        registry = telemetry.registry()
        registry.counter("compile.patterns").inc(len(patterns))
        registry.counter("compile.compiled").inc(len(mappable))
        registry.counter("compile.rejected").inc(len(rejected))
        registry.counter("compile.quarantined").inc(quarantined)
        registry.gauge("compile.tiles").set(mapping.num_tiles)
        registry.gauge("compile.stes").set(
            sum(r.num_stes for r in mappable)
        )
        registry.gauge("compile.bv_stes").set(
            sum(r.num_bv_stes for r in mappable)
        )

    return CompiledRuleset(
        options=options,
        regexes=mappable,
        encoding=encoding,
        mapping=mapping,
        rejected=rejected,
        reports=reports,
    )


def _try_unfold_fallback(
    regex: CompiledRegex, options: CompilerOptions
) -> Optional[CompiledRegex]:
    """Re-compile with full unfolding when that fits the hardware."""
    if (
        regex.unfolded_states is None
        or regex.unfolded_states > options.arch.stes_per_array
    ):
        return None
    try:
        unfolded = compile_ast(
            regex.parsed,
            regex.pattern,
            regex.regex_id,
            options,
            force_unfold=True,
        )
    except ReproError:
        # The unfolding itself blew a budget — no fallback available; the
        # caller will quarantine the original automaton on size instead.
        return None
    # Anchored patterns recompile from the anchor-free union core, so
    # the gated artifacts must be carried over (the scan NFA is already
    # per-variant unfolded and does not change under force_unfold).
    unfolded.anchors = regex.anchors
    return unfolded


def _unfolded_size(parsed: ast_mod.Regex, cap: int) -> Optional[int]:
    """Glushkov size after full unfolding, or None when it would exceed cap.

    The symbol count of the unfolded AST *is* the Glushkov state count, so
    the NFA itself need not be built for large regexes.
    """
    estimated = _unfolded_symbols(parsed)
    if estimated > cap:
        return None
    return estimated


def _unfolded_symbols(node: ast_mod.Regex) -> int:
    if isinstance(node, ast_mod.Symbol):
        return 1
    if isinstance(node, ast_mod.Repeat):
        inner = _unfolded_symbols(node.inner)
        bound = node.high if node.high is not None else node.low + 1
        return inner * max(bound, 1)
    return sum(_unfolded_symbols(child) for child in node.children())


def build_unfolded_nfa(parsed: ast_mod.Regex) -> NFA:
    """The baseline processors' automaton: unfold, then Glushkov (§2)."""
    return glushkov(unfold_all(parsed))


def build_scan_nfa(compiled: CompiledRegex) -> NFA:
    """The per-pattern NFA the fused software engine executes.

    Counter-free patterns reuse the reduced AH-NBVA state graph directly
    (pruned and quotient-merged by :mod:`repro.compiler.reduce`);
    patterns that kept live bit vectors after rewriting fall back to the
    fully unfolded Glushkov NFA, which exists for every supported regex
    and is reduced by the same quotients at the level the pattern was
    compiled with, so ``pattern_slice`` narrows on that path too.

    Anchored patterns short-circuit to the gated union NFA assembled at
    compile time — the AH-NBVA/unfolded paths would re-derive an
    automaton for the *un-gated* union core and lose the positional
    semantics.
    """
    if compiled.anchors is not None:
        return compiled.anchors.scan_nfa
    if is_counter_free(compiled.ah):
        try:
            return ah_to_nfa(compiled.ah)
        except ValueError:  # malformed finalisation; unfold instead
            pass
    nfa = build_unfolded_nfa(compiled.parsed)
    level = (compiled.reduction or {}).get("level", 0)
    if level:
        nfa = reduce_nfa(nfa, level=level)
    return nfa
