"""Command-line interface: compile, scan, simulate, trace, and generate.

Usage::

    python -m repro.cli compile  PATTERNS... -o config.json
    python -m repro.cli scan     PATTERNS... -i input.bin
    python -m repro.cli profile  PATTERNS... -i input.bin --profile-out p.json
    python -m repro.cli simulate PATTERNS... -i input.bin --arch BVAP
    python -m repro.cli trace    PATTERNS... -i input.bin --trace-out t.json
    python -m repro.cli dataset  Snort -n 20

``PATTERNS...`` are PCRE-subset regexes, or ``@file`` to read one pattern
per line from a file.

Every verb accepts ``--trace-out`` / ``--metrics-out`` (with
``--metrics-format json|prometheus``) to capture the telemetry of the
run, ``--serve-metrics PORT`` for a live ``/metrics`` endpoint,
``--flight-dir DIR`` to arm the flight recorder (failures leave a JSON
postmortem), ``--seed`` for reproducible randomness, and ``-v`` for
debug logging.
"""

from __future__ import annotations

import argparse
import json
import logging
import random
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence

from . import telemetry
from .telemetry import flight as flight_recorder
from .telemetry import profiler as scan_profiler
from .compiler import (
    DEFAULT_REDUCE_LEVEL,
    REDUCE_LEVELS,
    CompilerOptions,
    compile_ruleset,
    dump_config,
)
from .hardware.report import SimulationReport
from .hardware.simulator import (
    BaselineSimulator,
    BVAPSimulator,
    compile_baseline,
)
from .hardware.specs import CA_SPEC, CAMA_SPEC, EAP_SPEC
from .matching import DEFAULT_TABLE_STATES, ENGINES, PatternSet
from .resilience import (
    Budget,
    ChaosSpec,
    FaultSpec,
    ReproError,
    RestartPolicy,
    format_chaos_report,
    format_report,
    run_campaign,
    run_chaos,
)
from .telemetry.export import (
    METRICS_FORMATS,
    MetricsServer,
    TRACE_FORMATS,
    write_metrics,
    write_trace,
)
from .workloads import DATASET_NAMES, PROFILES, dataset_stream, load_dataset

log = logging.getLogger("repro.cli")

ARCH_CHOICES = ("BVAP", "BVAP-S", "CAMA", "eAP", "CA")

#: One consistent format for every repro logger (-v switches the level).
LOG_FORMAT = "%(levelname)s %(name)s: %(message)s"


def configure_logging(verbose: bool = False) -> None:
    """Configure stdlib logging for the CLI (idempotent; rebinds the
    handler to the current stderr so redirected streams are honoured)."""
    logging.basicConfig(
        level=logging.DEBUG if verbose else logging.INFO,
        format=LOG_FORMAT,
        force=True,
    )


def _load_patterns(
    arguments: Sequence[str], fmt: str = "pcre"
) -> List[str]:
    patterns: List[str] = []
    for argument in arguments:
        if argument.startswith("@"):
            with open(argument[1:]) as handle:
                patterns.extend(
                    line.rstrip("\n") for line in handle if line.strip()
                )
        else:
            patterns.append(argument)
    if fmt == "prosite":
        from .workloads.prosite import prosite_to_pcre

        patterns = [prosite_to_pcre(p) for p in patterns]
    elif fmt == "snort":
        from .workloads.snort import rules_to_patterns

        patterns = rules_to_patterns(patterns)
    if not patterns:
        raise SystemExit("no patterns given")
    return patterns


def _read_input(path: Optional[str]) -> bytes:
    if path is None or path == "-":
        return sys.stdin.buffer.read()
    with open(path, "rb") as handle:
        return handle.read()


def _restart_policy(args: argparse.Namespace) -> Optional[RestartPolicy]:
    """``--max-restarts`` arms supervised recovery for sharded scans."""
    max_restarts = getattr(args, "max_restarts", None)
    if max_restarts is None:
        return None
    kwargs = {"max_restarts": max_restarts}
    checkpoint_chunks = getattr(args, "checkpoint_chunks", None)
    if checkpoint_chunks is not None:
        kwargs["checkpoint_chunks"] = checkpoint_chunks
    return RestartPolicy(**kwargs)


def _budget(args: argparse.Namespace) -> Budget:
    return Budget(
        max_states=getattr(args, "max_states", None),
        max_unfold=getattr(args, "max_unfold", None),
        max_bv_width=getattr(args, "max_bv_width", None),
        max_cache_bytes=getattr(args, "max_cache_bytes", None),
        max_table_states=getattr(args, "table_states", None),
        deadline_s=getattr(args, "deadline", None),
        restart=_restart_policy(args),
    )


def _reduce_level(args: argparse.Namespace) -> int:
    if getattr(args, "no_reduce", False):
        return 0
    return getattr(args, "reduce_level", DEFAULT_REDUCE_LEVEL)


def _compiler_options(args: argparse.Namespace) -> CompilerOptions:
    return CompilerOptions(
        bv_size=args.bv_size,
        unfold_threshold=args.unfold_threshold,
        reduce_level=_reduce_level(args),
        budget=_budget(args),
    )


def _compile_cache(args: argparse.Namespace):
    """The on-disk compile cache when ``--cache-dir`` was given."""
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None:
        return None
    from .compiler.cache import CompileCache

    return CompileCache(cache_dir=cache_dir)


def _jobs(args: argparse.Namespace) -> int:
    return getattr(args, "jobs", None) or 1


@contextmanager
def _telemetry_session(args: argparse.Namespace) -> Iterator[None]:
    """Enable telemetry for one command when the args ask for exports;
    the trace/metrics files are written after the command body.

    ``--flight-dir`` additionally arms the flight recorder (bounded ring
    of engine events, auto-dumped on any failure), and
    ``--serve-metrics`` keeps a live ``/metrics`` endpoint up for the
    duration of the command.
    """
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    serve_port = getattr(args, "serve_metrics", None)
    flight_dir = getattr(args, "flight_dir", None)
    if flight_dir is not None:
        flight_recorder.enable(dump_dir=flight_dir)
    if not (trace_out or metrics_out or serve_port is not None):
        yield
        return
    server: Optional[MetricsServer] = None
    with telemetry.session():
        if serve_port is not None:
            server = MetricsServer(port=serve_port).start()
            log.info(
                "serving live metrics on http://127.0.0.1:%d/metrics",
                server.port,
            )
        try:
            yield
        finally:
            if server is not None:
                server.stop()
        if trace_out:
            write_trace(trace_out, getattr(args, "trace_format", "chrome"))
            log.info("wrote trace -> %s", trace_out)
        if metrics_out:
            fmt = getattr(args, "metrics_format", "json")
            write_metrics(metrics_out, fmt=fmt)
            log.info("wrote metrics (%s) -> %s", fmt, metrics_out)


def _warn_quarantined(ruleset) -> None:
    """One structured warning per quarantined/rejected pattern."""
    for pattern_id, report in sorted(ruleset.quarantined.items()):
        log.warning(
            "rejected pattern %d [%s in %s]: %s",
            pattern_id,
            report.error_code,
            report.phase or "compile",
            report.error,
        )


def cmd_compile(args: argparse.Namespace) -> int:
    patterns = _load_patterns(args.patterns, args.fmt)
    ruleset = compile_ruleset(
        patterns,
        _compiler_options(args),
        cache=_compile_cache(args),
        jobs=_jobs(args),
    )
    _warn_quarantined(ruleset)
    dump_config(ruleset, args.output)
    quarantined = ruleset.quarantined
    suffix = f", {len(quarantined)} quarantined" if quarantined else ""
    print(
        f"compiled {len(ruleset.regexes)} patterns -> {args.output}  "
        f"({ruleset.num_stes} STEs, {ruleset.num_bv_stes} BV-STEs, "
        f"{ruleset.mapping.num_tiles} tiles{suffix})"
    )
    if getattr(args, "json_mode", False):
        print(json.dumps({"reports": [r.to_json() for r in ruleset.reports]}))
    return 0


def cmd_scan(args: argparse.Namespace) -> int:
    patterns = _load_patterns(args.patterns, args.fmt)
    data = _read_input(args.input)
    matcher = PatternSet(
        patterns,
        options=_compiler_options(args),
        engine=args.engine,
        on_error="quarantine" if args.quarantine else "raise",
        shards=getattr(args, "shards", None),
        cache=_compile_cache(args),
        prefilter=not getattr(args, "no_prefilter", False),
    )
    with matcher:
        for pattern_id, report in sorted(matcher.quarantined.items()):
            log.warning(
                "rejected pattern %d [%s in %s]: %s",
                pattern_id,
                report.error_code,
                report.phase or "compile",
                report.error,
            )
        matches = matcher.scan(data)
        for match in matches:
            print(f"{match.end}\t{patterns[match.pattern_id]}")
        for failure in matcher.shard_failures:
            log.warning(
                "shard %d degraded (%s); patterns %s unreported",
                failure.shard,
                failure.reason,
                list(failure.pattern_ids),
            )
        log.info("%d matches in %d bytes", len(matches), len(data))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Time the scan engines on one workload cell; optionally dump JSON."""
    from .matching import bench as bench_mod

    engines = (
        list(ENGINES)
        if args.engines == "all"
        else [e.strip() for e in args.engines.split(",") if e.strip()]
    )
    for engine in engines:
        if engine not in ENGINES:
            raise SystemExit(f"unknown engine {engine!r}; choose from {ENGINES}")
    if args.patterns:
        patterns = _load_patterns(args.patterns, args.fmt)
    else:
        patterns = load_dataset(args.dataset, args.num_patterns, args.seed)
    if args.input:
        data = _read_input(args.input)
    else:
        data = dataset_stream(
            patterns,
            random.Random(args.seed),
            args.input_size,
            PROFILES[args.dataset].literal_pool,
        )
    cell = bench_mod.bench_cell(
        patterns, data, engines, _compiler_options(args), args.repeats,
        shards=args.shards,
        prefilter=not getattr(args, "no_prefilter", False),
    )
    record = {
        "benchmark": "fused_scan",
        "profile": args.dataset if not args.patterns else None,
        "seed": args.seed,
        "repeats": args.repeats,
        "engines": engines,
        "baseline_engine": bench_mod.BASELINE_ENGINE,
        "grid": [cell],
    }
    if not args.patterns and (
        getattr(args, "cache_dir", None) is not None or _jobs(args) > 1
    ):
        record["compile_cache"] = bench_mod.bench_compile_cache(
            args.dataset,
            len(patterns),
            _compiler_options(args),
            args.repeats,
            args.seed,
            cache_dir=args.cache_dir,
            jobs=_jobs(args),
        )
    print(bench_mod.format_grid(record))
    if args.json_out:
        bench_mod.write_record(record, args.json_out)
        log.info("wrote bench record -> %s", args.json_out)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile the fused scan path and emit a ``ScanProfile`` artifact.

    Runs the scan with the sampling profiler active (stride-sampled
    per-pattern activation/time attribution, cache-ratio series, offset
    heatmap, byte-class costs), writes the JSON artifact, and prints the
    "hottest pattern" summary table.
    """
    if args.patterns:
        patterns = _load_patterns(args.patterns, args.fmt)
    else:
        patterns = load_dataset(args.dataset, args.num_patterns, args.seed)
    if args.input:
        data = _read_input(args.input)
    else:
        data = dataset_stream(
            patterns,
            random.Random(args.seed),
            args.input_size,
            PROFILES[args.dataset].literal_pool,
        )
    matcher = PatternSet(
        patterns,
        options=_compiler_options(args),
        engine=args.engine,
        on_error="quarantine" if args.quarantine else "raise",
        shards=getattr(args, "shards", None),
        # The profiler instruments in-process matchers; the sharded
        # engine is profiled through its inline backend (one fused
        # binding per shard, merged by global pattern id).
        shard_backend="inline",
        cache=_compile_cache(args),
        prefilter=not getattr(args, "no_prefilter", False),
    )
    with matcher:
        for pattern_id, report in sorted(matcher.quarantined.items()):
            log.warning(
                "rejected pattern %d [%s in %s]: %s",
                pattern_id,
                report.error_code,
                report.phase or "compile",
                report.error,
            )
        with scan_profiler.profile_session(
            stride=args.stride,
            input_len=len(data),
            heatmap_buckets=args.heatmap_buckets,
        ) as prof:
            matches = matcher.scan(data)
        profile = prof.finish(
            patterns={i: p for i, p in enumerate(patterns)},
            engine=args.engine,
        )
    profile.write(args.profile_out)
    log.info("wrote profile -> %s", args.profile_out)
    from .analysis.report import profile_summary_table

    print(profile_summary_table(profile.to_json()))
    log.info(
        "%d matches in %d bytes (%d samples at stride %d)",
        len(matches),
        len(data),
        profile.samples,
        profile.stride,
    )
    return 0


def _run_simulation(args: argparse.Namespace) -> SimulationReport:
    """Shared compile+simulate flow of the simulate and trace verbs."""
    data = _read_input(args.input)
    if args.config:
        if args.arch not in ("BVAP", "BVAP-S"):
            raise SystemExit("--config only programs BVAP / BVAP-S")
        from .hardware.simulator import simulator_from_config

        return simulator_from_config(
            args.config, streaming=args.arch == "BVAP-S"
        ).run(data)
    if args.arch in ("BVAP", "BVAP-S"):
        patterns = _load_patterns(args.patterns, args.fmt)
        ruleset = compile_ruleset(
            patterns,
            _compiler_options(args),
            cache=_compile_cache(args),
            jobs=_jobs(args),
        )
        _warn_quarantined(ruleset)
        simulator = BVAPSimulator(ruleset, streaming=args.arch == "BVAP-S")
        return simulator.run(data)
    patterns = _load_patterns(args.patterns, args.fmt)
    spec = {"CAMA": CAMA_SPEC, "eAP": EAP_SPEC, "CA": CA_SPEC}[args.arch]
    return BaselineSimulator(spec, compile_baseline(patterns)).run(data)


def _print_report(report: SimulationReport) -> None:
    print(f"architecture     : {report.architecture}")
    print(f"symbols          : {report.symbols}")
    print(f"matches          : {report.matches}")
    print(f"tiles            : {report.num_tiles}")
    print(f"area             : {report.area_mm2:.4f} mm2")
    print(f"energy/symbol    : {report.energy_per_symbol_nj * 1e3:.3f} pJ")
    print(f"throughput       : {report.throughput_gbps:.2f} Gbps")
    print(f"compute density  : {report.compute_density_gbps_mm2:.1f} Gbps/mm2")
    print(f"power            : {report.power_w * 1e3:.2f} mW")
    print(f"FoM              : {report.fom:.3e} mJ*mm2/Gbps")


def cmd_simulate(args: argparse.Namespace) -> int:
    report = _run_simulation(args)
    _print_report(report)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Simulate with telemetry always on and print the span breakdown.

    ``--trace-out`` defaults to ``trace.json`` here; the session wrapper
    in :func:`main` does the actual export.
    """
    report = _run_simulation(args)
    _print_report(report)
    from .analysis.report import span_summary_table

    print()
    print(span_summary_table(telemetry.snapshot()))
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Run a seeded fault-injection campaign against the cycle simulator.

    Replays a golden (fault-free) run next to a faulty one and reports
    the first cycle where the architectural state diverges plus the
    missed/spurious matches.  Exit status 1 when ``--expect-divergence``
    was given but the injected faults were all masked.
    """
    patterns = _load_patterns(args.patterns, args.fmt)
    ruleset = compile_ruleset(
        patterns,
        _compiler_options(args),
        cache=_compile_cache(args),
        jobs=_jobs(args),
    )
    _warn_quarantined(ruleset)
    if args.input:
        data = _read_input(args.input)
    else:
        data = dataset_stream(
            patterns,
            random.Random(args.seed),
            args.input_size,
            PROFILES[args.dataset].literal_pool,
        )
    if args.chaos:
        return _run_chaos_campaign(args, ruleset, data)
    spec = FaultSpec(
        seed=args.seed,
        cam_rate=args.cam_rate,
        bv_rate=args.bv_rate,
        counter_rate=args.counter_rate,
    )
    report = run_campaign(ruleset, data, spec)
    if getattr(args, "json_mode", False):
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(format_report(report))
    log.info(
        "%d faults injected, %s",
        len(report.injected),
        f"diverged at cycle {report.first_divergence_cycle}"
        if report.diverged
        else "no architectural divergence",
    )
    if args.expect_divergence and not report.diverged:
        log.error("expected divergence but the faults were all masked")
        return 1
    return 0


def _run_chaos_campaign(args: argparse.Namespace, ruleset, data: bytes) -> int:
    """``faults --chaos``: seeded process-level faults against a live
    sharded scan, asserting stream parity with a fault-free oracle."""
    kinds = tuple(
        kind.strip() for kind in args.chaos_kinds.split(",") if kind.strip()
    )
    spec = ChaosSpec(
        seed=args.seed,
        kinds=kinds,
        num_faults=args.chaos_faults,
        shards=args.shards,
        chunk_bytes=args.chunk_bytes,
        max_restarts=(
            args.max_restarts if args.max_restarts is not None else 1
        ),
        checkpoint_chunks=(
            args.checkpoint_chunks if args.checkpoint_chunks is not None else 4
        ),
    )
    report = run_chaos(ruleset.regexes, data, spec)
    if getattr(args, "json_mode", False):
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(format_chaos_report(report))
    if report.diverged:
        log.error(
            "chaos campaign diverged at stream offset %d",
            report.first_divergence,
        )
        return 1
    log.info(
        "%d chaos faults injected, %d restarts, %d failovers, "
        "stream byte-identical",
        len(report.faults),
        report.restarts,
        report.failovers,
    )
    return 0


def cmd_dataset(args: argparse.Namespace) -> int:
    patterns = load_dataset(args.name, args.count, args.seed)
    for pattern in patterns:
        print(pattern)
    if args.stream:
        data = dataset_stream(
            patterns,
            random.Random(args.seed),
            args.stream,
            PROFILES[args.name].literal_pool,
        )
        with open(args.stream_output, "wb") as handle:
            handle.write(data)
        log.info(
            "wrote %d input bytes -> %s", len(data), args.stream_output
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="BVAP compiler / matcher / simulator"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common_flags(
        p: argparse.ArgumentParser, json_flag: bool = True
    ) -> None:
        p.add_argument("-v", "--verbose", action="store_true",
                       help="debug-level logging")
        p.add_argument("--seed", type=int, default=0,
                       help="seed for every random choice (reproducible runs)")
        p.add_argument("--trace-out", default=None, dest="trace_out",
                       help="write a telemetry trace of this run")
        p.add_argument("--trace-format", default="chrome",
                       dest="trace_format", choices=TRACE_FORMATS,
                       help="trace file format (chrome://tracing or JSONL)")
        p.add_argument("--metrics-out", default=None, dest="metrics_out",
                       help="write the metrics snapshot of this run")
        p.add_argument("--metrics-format", default="json",
                       dest="metrics_format", choices=METRICS_FORMATS,
                       help="metrics file format (JSON snapshot or "
                            "Prometheus text exposition)")
        p.add_argument("--serve-metrics", type=int, default=None,
                       dest="serve_metrics", metavar="PORT",
                       help="serve live metrics at "
                            "http://127.0.0.1:PORT/metrics for the "
                            "duration of the command (0 = ephemeral port)")
        p.add_argument("--flight-dir", default=None, dest="flight_dir",
                       help="arm the flight recorder; failures dump a "
                            "JSON postmortem into this directory")
        if json_flag:
            # bench keeps its historical `--json PATH` spelling instead.
            p.add_argument("--json", action="store_true", dest="json_mode",
                           help="machine-readable output; errors become "
                                "structured JSON objects")

    def add_compiler_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--bv-size", type=int, default=64, dest="bv_size",
                       choices=(8, 16, 32, 64))
        p.add_argument("--unfold-threshold", type=int, default=4,
                       dest="unfold_threshold")
        p.add_argument("--reduce-level", type=int,
                       default=DEFAULT_REDUCE_LEVEL, dest="reduce_level",
                       choices=REDUCE_LEVELS,
                       help="automaton reduction: 0 = prune only, 1 = + "
                            "follow merges, 2 = + left merges (default)")
        p.add_argument("--no-reduce", action="store_true", dest="no_reduce",
                       help="shorthand for --reduce-level 0")
        p.add_argument("--format", default="pcre", dest="fmt",
                       choices=("pcre", "prosite", "snort"),
                       help="pattern syntax of PATTERNS/@files")
        p.add_argument("--max-states", type=int, default=None,
                       dest="max_states",
                       help="budget: AH-NBVA states per pattern")
        p.add_argument("--max-unfold", type=int, default=None,
                       dest="max_unfold",
                       help="budget: symbols one {m,n} unfolding may create")
        p.add_argument("--max-bv-width", type=int, default=None,
                       dest="max_bv_width",
                       help="budget: widest virtual bit vector per pattern")
        p.add_argument("--max-cache-bytes", type=int, default=None,
                       dest="max_cache_bytes",
                       help="budget: fused-engine lazy-DFA cache bytes "
                            "(also caps the dense transition table)")
        p.add_argument("--table-states", type=int, default=None,
                       dest="table_states",
                       help="budget: dense-table states for the fused "
                            "engine (0 disables the table tier; default "
                            f"{DEFAULT_TABLE_STATES})")
        p.add_argument("--deadline", type=float, default=None,
                       dest="deadline",
                       help="budget: cooperative wall-clock deadline (s)")
        p.add_argument("--max-restarts", type=int, default=None,
                       dest="max_restarts",
                       help="supervise sharded scan workers: restart a "
                            "dead shard up to N times (with backoff) "
                            "before re-fusing its patterns elsewhere")
        p.add_argument("--checkpoint-chunks", type=int, default=None,
                       dest="checkpoint_chunks",
                       help="snapshot shard state every N chunks for "
                            "checkpointed recovery (with --max-restarts; "
                            "default 8)")
        p.add_argument("--cache-dir", default=None, dest="cache_dir",
                       help="on-disk compile cache directory (content-"
                            "addressed; reused across runs)")
        p.add_argument("--jobs", type=int, default=1,
                       help="parallel compile workers for rule sets "
                            "(default 1 = serial)")

    p_compile = sub.add_parser("compile", help="emit a JSON hardware config")
    p_compile.add_argument("patterns", nargs="+")
    p_compile.add_argument("-o", "--output", default="bvap_config.json")
    add_compiler_flags(p_compile)
    add_common_flags(p_compile)
    p_compile.set_defaults(func=cmd_compile)

    p_scan = sub.add_parser("scan", help="match patterns over input bytes")
    p_scan.add_argument("patterns", nargs="+")
    p_scan.add_argument("-i", "--input", default="-",
                        help="input file ('-' = stdin)")
    p_scan.add_argument("--engine", default="ah", choices=ENGINES)
    p_scan.add_argument("--shards", type=int, default=None,
                        help="worker processes for --engine sharded "
                             "(default: one per CPU core)")
    p_scan.add_argument("--quarantine", action="store_true",
                        help="isolate bad patterns instead of aborting")
    p_scan.add_argument("--no-prefilter", action="store_true",
                        dest="no_prefilter",
                        help="disable the fused engine's literal prefilter")
    add_compiler_flags(p_scan)
    add_common_flags(p_scan)
    p_scan.set_defaults(func=cmd_scan)

    p_profile = sub.add_parser(
        "profile",
        help="profile the fused scan path (ScanProfile artifact)",
    )
    p_profile.add_argument("patterns", nargs="*",
                           help="patterns/@files; omitted = --dataset rules")
    p_profile.add_argument("-i", "--input", default=None,
                           help="input file; omitted = synthetic stream")
    p_profile.add_argument("--dataset", default="RegexLib",
                           choices=DATASET_NAMES,
                           help="profile for generated patterns/input")
    p_profile.add_argument("--num-patterns", type=int, default=16,
                           dest="num_patterns")
    p_profile.add_argument("--input-size", type=int, default=16384,
                           dest="input_size")
    p_profile.add_argument("--engine", default="fused",
                           choices=("fused", "sharded"),
                           help="scan engine to profile (sharded uses the "
                                "inline backend: one binding per shard)")
    p_profile.add_argument("--shards", type=int, default=None,
                           help="shard count for --engine sharded")
    p_profile.add_argument("--stride", type=int, default=64,
                           help="bytes between profiler samples")
    p_profile.add_argument("--heatmap-buckets", type=int, default=64,
                           dest="heatmap_buckets",
                           help="offset buckets in the activation heatmap")
    p_profile.add_argument("--profile-out", default="profile.json",
                           dest="profile_out",
                           help="where to write the ScanProfile JSON")
    p_profile.add_argument("--quarantine", action="store_true",
                           help="isolate bad patterns instead of aborting")
    p_profile.add_argument("--no-prefilter", action="store_true",
                           dest="no_prefilter",
                           help="disable the fused engine's literal "
                                "prefilter")
    add_compiler_flags(p_profile)
    add_common_flags(p_profile)
    p_profile.set_defaults(func=cmd_profile)

    p_bench = sub.add_parser(
        "bench", help="time the scan engines (fused vs per-pattern)"
    )
    p_bench.add_argument("patterns", nargs="*",
                         help="patterns/@files; omitted = --dataset rules")
    p_bench.add_argument("-i", "--input", default=None,
                         help="input file; omitted = synthetic stream")
    p_bench.add_argument("--dataset", default="RegexLib",
                         choices=DATASET_NAMES,
                         help="profile for generated patterns/input")
    p_bench.add_argument("--num-patterns", type=int, default=16,
                         dest="num_patterns")
    p_bench.add_argument("--input-size", type=int, default=16384,
                         dest="input_size")
    p_bench.add_argument("--engines", default="fused,nfa,ah",
                         help="comma-separated engine list, or 'all'")
    p_bench.add_argument("--shards", type=int, default=None,
                         help="worker processes when timing the sharded "
                              "engine (default: one per CPU core)")
    p_bench.add_argument("--repeats", type=int, default=3)
    p_bench.add_argument("--no-prefilter", action="store_true",
                         dest="no_prefilter",
                         help="disable the fused engine's literal prefilter")
    p_bench.add_argument("--json", default=None, dest="json_out",
                         help="also write the record as JSON")
    add_compiler_flags(p_bench)
    add_common_flags(p_bench, json_flag=False)
    p_bench.set_defaults(func=cmd_bench, json_mode=False)

    def add_simulate_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("patterns", nargs="*")
        p.add_argument("-i", "--input", default="-")
        p.add_argument("--arch", default="BVAP", choices=ARCH_CHOICES)
        p.add_argument("--config", default=None,
                       help="program the simulator from a JSON config "
                            "instead of compiling PATTERNS")
        add_compiler_flags(p)
        add_common_flags(p)

    p_sim = sub.add_parser("simulate", help="cycle-level simulation")
    add_simulate_args(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_trace = sub.add_parser(
        "trace",
        help="simulate with telemetry on; write trace + span breakdown",
    )
    add_simulate_args(p_trace)
    p_trace.set_defaults(func=cmd_trace, trace_out="trace.json")

    p_faults = sub.add_parser(
        "faults",
        help="seeded fault-injection campaign on the cycle simulator",
    )
    p_faults.add_argument("patterns", nargs="+")
    p_faults.add_argument("-i", "--input", default=None,
                          help="input file; omitted = synthetic stream")
    p_faults.add_argument("--dataset", default="RegexLib",
                          choices=DATASET_NAMES,
                          help="profile for the synthetic input stream")
    p_faults.add_argument("--input-size", type=int, default=4096,
                          dest="input_size",
                          help="bytes of synthetic input when no -i")
    p_faults.add_argument("--cam-rate", type=float, default=0.0,
                          dest="cam_rate",
                          help="per-cycle CAM match-vector bit-flip rate")
    p_faults.add_argument("--bv-rate", type=float, default=0.0,
                          dest="bv_rate",
                          help="per-cycle BVM bit-vector bit-flip rate")
    p_faults.add_argument("--counter-rate", type=float, default=0.0,
                          dest="counter_rate",
                          help="per-cycle Active Vector bit-flip rate")
    p_faults.add_argument("--chaos", action="store_true",
                          help="process-level chaos campaign against a "
                               "live sharded scan (kill/hang workers) "
                               "instead of simulator bit flips; exit 1 "
                               "on stream divergence")
    p_faults.add_argument("--chaos-kinds", default="kill,stop",
                          dest="chaos_kinds",
                          help="comma list of chaos fault kinds "
                               "(kill, die, stop, corrupt, slow)")
    p_faults.add_argument("--chaos-faults", type=int, default=2,
                          dest="chaos_faults",
                          help="number of faults to inject per campaign")
    p_faults.add_argument("--shards", type=int, default=2,
                          help="worker shards for the chaos scan")
    p_faults.add_argument("--chunk-bytes", type=int, default=1024,
                          dest="chunk_bytes",
                          help="streaming chunk size for the chaos scan")
    p_faults.add_argument("--expect-divergence", action="store_true",
                          dest="expect_divergence",
                          help="exit 1 when the faults were all masked")
    add_compiler_flags(p_faults)
    add_common_flags(p_faults)
    p_faults.set_defaults(func=cmd_faults)

    p_data = sub.add_parser("dataset", help="generate a synthetic dataset")
    p_data.add_argument("name", choices=DATASET_NAMES)
    p_data.add_argument("-n", "--count", type=int, default=20)
    p_data.add_argument("--stream", type=int, default=0,
                        help="also generate this many input bytes")
    p_data.add_argument("--stream-output", default="stream.bin")
    add_common_flags(p_data)
    p_data.set_defaults(func=cmd_dataset)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(getattr(args, "verbose", False))
    seed = getattr(args, "seed", None)
    if seed is not None:
        # One root seed for anything that reaches for the global RNG; the
        # dataset/input generators additionally derive their own
        # random.Random(seed) streams from it.
        random.seed(seed)
    try:
        with _telemetry_session(args):
            return args.func(args)
    except ReproError as error:
        # Structured failure: syntax errors carry a caret diagnostic in
        # str(); --json swaps both for one machine-readable object.
        dump_path = flight_recorder.auto_dump("cli-error", error)
        if dump_path is not None:
            log.error("flight postmortem -> %s", dump_path)
        if getattr(args, "json_mode", False):
            print(json.dumps({"error": error.to_json()}))
        else:
            print(f"error[{error.code}]: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
