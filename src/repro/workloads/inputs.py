"""Synthetic input streams with controlled activity (§8).

Two kinds of streams are needed:

* the micro-benchmarks (Fig. 11/12) control the *bit-vector activation
  ratio* α directly — the fraction of input symbols that keep the counting
  block's STEs firing — via a Bernoulli choice between a hot and a cold
  symbol;
* the real-world benchmarks draw background bytes from the dataset's
  alphabet and *plant* fragments of actual rule matches so the match rate
  and STE activity resemble production traffic (the paper notes match
  rates are typically below 10% and α rarely exceeds 10%).
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..regex import ast as ast_mod
from ..regex.generate import random_match
from ..regex.parser import parse


def alpha_stream(
    rng: random.Random,
    length: int,
    alpha: float,
    hot: int = ord("a"),
    cold: int = ord("b"),
) -> bytes:
    """Bernoulli stream: ``hot`` with probability alpha, else ``cold``."""
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    return bytes(hot if rng.random() < alpha else cold for _ in range(length))


def activation_stream(
    rng: random.Random,
    length: int,
    alpha: float,
    prefix: bytes,
    body: bytes,
    cold: int = ord("z"),
) -> bytes:
    """A burst stream holding the BV activation ratio near ``alpha``.

    Fig. 11's micro-benchmark regex is ``r . a{n}`` with ``r = a^16``; its
    counting block only activates after the full prefix matches and stays
    active while the body keeps matching.  The stream therefore emits
    bursts ``prefix + body`` separated by cold gaps sized so that body
    symbols (the ones during which BV-STEs are active) are an ``alpha``
    fraction of the stream.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    burst = prefix + body
    gap = max(0, int(round(len(body) / alpha)) - len(burst))
    out = bytearray()
    while len(out) < length:
        out.extend(burst)
        for _ in range(gap):
            out.append(cold)
    return bytes(out[:length])


def background_bytes(rng: random.Random, length: int, alphabet: bytes) -> bytes:
    return bytes(rng.choice(alphabet) for _ in range(length))


def dataset_stream(
    patterns: Sequence[str],
    rng: random.Random,
    length: int,
    alphabet: str,
    plant_rate: float = 0.0005,
    truncate_prob: float = 0.9,
    max_unbounded: int = 2,
) -> bytes:
    """Background bytes with planted (often partial) rule matches.

    ``plant_rate`` is the per-position probability of starting a planted
    fragment; ``truncate_prob`` cuts fragments short, which exercises the
    counting machinery without completing the match.  The defaults keep
    the bit-vector activation ratio in the single-digit percent range the
    paper reports for production traffic (match rate < 10%, alpha rarely
    above 10%) — note that entering one ``.{n}`` gap keeps its BV chain
    live for ~n symbols, so plants must be rare.
    """
    parsed: List[ast_mod.Regex] = []
    for pattern in patterns:
        try:
            parsed.append(parse(pattern))
        except ValueError:
            continue
    pool = alphabet.encode("latin-1")
    out = bytearray()
    while len(out) < length:
        if parsed and rng.random() < plant_rate:
            node = rng.choice(parsed)
            try:
                fragment = random_match(node, rng, max_unbounded)
            except ValueError:
                fragment = b""
            if fragment and rng.random() < truncate_prob:
                fragment = fragment[: rng.randint(1, len(fragment))]
            out.extend(fragment)
        else:
            out.append(rng.choice(pool))
    return bytes(out[:length])


def match_rate_stream(
    patterns: Sequence[str],
    rng: random.Random,
    length: int,
    alphabet: str,
    rate: float,
    max_unbounded: int = 2,
) -> bytes:
    """Background bytes with *complete* planted matches at ``rate``.

    The match-rate axis of the scan benchmarks: ``rate`` is the
    per-position probability of planting a full rule match (never
    truncated), so ``rate=0.0`` is pure background — the prefilter's
    best case — while ``rate=0.5`` keeps the automaton continuously
    busy.  Uses :func:`dataset_stream` with truncation disabled.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    return dataset_stream(
        patterns,
        rng,
        length,
        alphabet,
        plant_rate=rate,
        truncate_prob=0.0,
        max_unbounded=max_unbounded,
    )
