"""The seven benchmark dataset profiles (§8, Datasets).

Each profile captures what the paper reports about the corresponding real
rule set:

* **Snort / Suricata** — network-intrusion rules: ASCII payload literals
  interleaved with large ``.{n}`` gaps (bounds into the thousands; the
  optimal design point is bv_size 64 with a high unfold threshold).
* **Prosite** — protein motifs over the 20-letter amino-acid alphabet with
  many *small* bounded repetitions (``x(2,5)``-style gaps); best served by
  bv_size 16.
* **ClamAV / YARA** — malware byte signatures: hex-ish literals with
  medium-to-large jumps (``{100}``–``{2000}``).
* **SpamAssassin** — e-mail text rules, mostly literal words; only ~5% of
  STEs are BV-STEs.
* **RegexLib** — community regexes (emails, phones, URLs): moderate
  counting with small bounds; the paper measures an average of 16 plain
  STEs per regex here.  Community authors write alternations unfactored
  (``(http|https)``, ``(jpg|jpeg|gif)``), so a share of segments are
  shared-affix groups — the redundancy the ``compiler.reduce`` pass
  removes.

Bounds are capped so the unfolded automata still fit one array (4096
STEs), keeping every regex runnable on the CA/eAP/CAMA baselines for the
head-to-head comparisons (Fig. 13/14).
"""

from __future__ import annotations

from typing import Dict, List

from .generator import DatasetProfile, generate_dataset

_WORDY = "abcdefghijklmnopqrstuvwxyz"
_AMINO = "ACDEFGHIKLMNPQRSTVWY"
_HEXISH = "0123456789abcdef"

SNORT = DatasetProfile(
    name="Snort",
    literal_pool=_WORDY + "/=_",
    class_tokens=("[a-z]", "[0-9]", "\\w", "[a-f0-9]"),
    counting_prob=0.45,
    blocks=(1, 2),
    bound_range=(8, 1600),
    bound_kind_weights=(0.55, 0.35, 0.1),
    run_length=(8, 22),
    segments=(2, 3),
    dot_body_prob=0.7,
)

SURICATA = DatasetProfile(
    name="Suricata",
    literal_pool=_WORDY + ".:/",
    class_tokens=("[a-z]", "[0-9]", "\\d", "[^ ]"),
    counting_prob=0.42,
    blocks=(1, 2),
    bound_range=(8, 1200),
    bound_kind_weights=(0.5, 0.4, 0.1),
    run_length=(8, 20),
    segments=(2, 3),
    dot_body_prob=0.65,
)

PROSITE = DatasetProfile(
    name="Prosite",
    literal_pool=_AMINO,
    class_tokens=(
        "[LIVM]",
        "[KRH]",
        "[DE]",
        "[FYW]",
        "[AG]",
        "[ST]",
    ),
    counting_prob=0.75,
    blocks=(1, 3),
    bound_range=(2, 24),
    bound_kind_weights=(0.45, 0.5, 0.05),
    run_length=(2, 8),
    dot_body_prob=0.55,
    segments=(1, 2),
)

CLAMAV = DatasetProfile(
    name="ClamAV",
    literal_pool=_HEXISH,
    class_tokens=("[0-9a-f]", "[0-4]", "[89ab]"),
    counting_prob=0.5,
    blocks=(1, 1),
    bound_range=(32, 2000),
    bound_kind_weights=(0.7, 0.25, 0.05),
    run_length=(10, 26),
    segments=(2, 3),
    dot_body_prob=0.8,
)

YARA = DatasetProfile(
    name="YARA",
    literal_pool=_HEXISH + "_",
    class_tokens=("[0-9a-f]", "\\w", "[0-9]"),
    counting_prob=0.4,
    blocks=(1, 2),
    bound_range=(16, 1000),
    bound_kind_weights=(0.6, 0.3, 0.1),
    run_length=(8, 22),
    segments=(2, 3),
    dot_body_prob=0.7,
)

SPAMASSASSIN = DatasetProfile(
    name="SpamAssassin",
    literal_pool=_WORDY + " ",
    class_tokens=("[a-z]", "\\d", "\\s", "[a-z0-9]"),
    counting_prob=0.18,
    blocks=(1, 1),
    bound_range=(4, 120),
    bound_kind_weights=(0.35, 0.55, 0.1),
    run_length=(6, 20),
    segments=(2, 4),
    dot_body_prob=0.4,
)

REGEXLIB = DatasetProfile(
    name="RegexLib",
    literal_pool=_WORDY + "@.-",
    class_tokens=("[a-z]", "[0-9]", "\\w", "\\d", "[a-z0-9]"),
    counting_prob=0.37,
    blocks=(1, 2),
    bound_range=(2, 60),
    bound_kind_weights=(0.4, 0.5, 0.1),
    run_length=(3, 10),
    segments=(2, 3),
    dot_body_prob=0.35,
    shared_affix_prob=0.2,
)

PROFILES: Dict[str, DatasetProfile] = {
    profile.name: profile
    for profile in (SNORT, SURICATA, PROSITE, CLAMAV, YARA, SPAMASSASSIN, REGEXLIB)
}

DATASET_NAMES = tuple(PROFILES)


def load_dataset(name: str, count: int = 50, seed: int = 0) -> List[str]:
    """Generate the named synthetic dataset (deterministic in ``seed``)."""
    if name not in PROFILES:
        raise KeyError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    return generate_dataset(PROFILES[name], count, seed)
