"""Snort/Suricata rule-file import with quarantine, plus workload profiles.

Two layers on top of :mod:`repro.workloads.snort`'s option extractors:

* :func:`import_ruleset` / :func:`import_rules` — parse a rule file into
  :class:`ImportedRule` records (pattern text, ``sid``, ``msg``, source
  line), then compile every extracted pattern through
  :func:`repro.compiler.pipeline.compile_pattern_isolated` so malformed
  PCRE (``E_SYNTAX``), unsupported constructs like backreferences or
  ``(?m)`` line anchors (``E_UNSUPPORTED``), and budget-busting rules
  (``E_BUDGET`` / ``E_CAPACITY``) are *quarantined* with structured
  reports instead of aborting the import.  The survivors are ready for
  :class:`repro.matching.PatternSet`.

* :data:`WORKLOAD_PROFILES` — three real-traffic-shaped workloads
  (log-scanning, IDS, PII redaction) pairing anchored rule sets with
  per-record input generators.  ``^`` is a *stream* anchor (it fires at
  offset 0 only, there is no multiline mode), so these workloads scan
  record-by-record — one log line / HTTP request / document per scan —
  exactly how an anchored ruleset is deployed against framed traffic.

PCRE flag handling: lowercase flags the parser understands (``i``,
``s``, ``m``, ``x``) are folded in as a ``(?…)`` prefix — note ``m``
deliberately survives so the compiler can quarantine multiline anchors
rather than silently mis-anchoring them.  Snort's uppercase buffer
modifiers (``R``, ``U``, ``P``, …) select *which* buffer the regex runs
against; they do not change the regex language, so they are dropped.
"""

from __future__ import annotations

import random
import re as _re
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from ..compiler import CompilerOptions
from ..compiler.pipeline import compile_pattern_isolated
from ..resilience.report import CompileReport, QuarantineSummary
from .snort import content_to_pcre

__all__ = [
    "ImportedRule",
    "ImportedRuleset",
    "WORKLOAD_PROFILES",
    "WorkloadProfile",
    "import_rules",
    "import_ruleset",
    "parse_rule_lines",
    "workload_records",
]

_PCRE_OPTION = _re.compile(r'pcre:\s*"(?P<body>/.*?/(?P<flags>[a-zA-Z]*))"')
_CONTENT_OPTION = _re.compile(r'content:\s*"(?P<body>(?:[^"\\]|\\.)*)"')
_SID_OPTION = _re.compile(r"\bsid:\s*(?P<sid>\d+)\s*;")
_MSG_OPTION = _re.compile(r'\bmsg:\s*"(?P<msg>[^"]*)"')

#: Lowercase PCRE flags the compiler's parser understands.  Everything
#: else (Snort buffer modifiers, PCRE flags outside the subset) is
#: dropped from the folded prefix.
_FOLDABLE_FLAGS = "ismx"


# ----------------------------------------------------------------------
# Rule-file parsing


@dataclass(frozen=True)
class ImportedRule:
    """One pattern extracted from a rule file, with its rule metadata."""

    pattern: str
    sid: Optional[int] = None
    msg: Optional[str] = None
    lineno: int = 0
    source: str = "pcre"  # "pcre" or "content"
    raw: str = ""

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "pattern": self.pattern,
            "lineno": self.lineno,
            "source": self.source,
        }
        if self.sid is not None:
            out["sid"] = self.sid
        if self.msg is not None:
            out["msg"] = self.msg
        return out


def _fold_flags(pattern: str, flags: str) -> str:
    kept = "".join(
        flag for flag in _FOLDABLE_FLAGS if flag in flags
    )
    return f"(?{kept}){pattern}" if kept else pattern


def parse_rule_lines(
    lines: Iterable[str], include_contents: bool = True
) -> List[ImportedRule]:
    """Extract every pattern from a rule file's lines, with metadata.

    Comment (``#``) and blank lines are skipped.  Each ``pcre`` option
    yields one :class:`ImportedRule` with its flags folded into the
    pattern; with ``include_contents`` each ``content`` option yields a
    literal-regex rule as well.
    """
    rules: List[ImportedRule] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        sid_match = _SID_OPTION.search(line)
        sid = int(sid_match.group("sid")) if sid_match else None
        msg_match = _MSG_OPTION.search(line)
        msg = msg_match.group("msg") if msg_match else None
        for match in _PCRE_OPTION.finditer(line):
            body = match.group("body")
            pattern = _fold_flags(
                body[1 : body.rfind("/")], match.group("flags")
            )
            rules.append(
                ImportedRule(
                    pattern=pattern,
                    sid=sid,
                    msg=msg,
                    lineno=lineno,
                    source="pcre",
                    raw=line,
                )
            )
        if include_contents:
            for match in _CONTENT_OPTION.finditer(line):
                try:
                    literal = content_to_pcre(match.group("body"))
                except ValueError:
                    continue  # malformed hex span: not a pattern at all
                rules.append(
                    ImportedRule(
                        pattern=literal,
                        sid=sid,
                        msg=msg,
                        lineno=lineno,
                        source="content",
                        raw=line,
                    )
                )
    return rules


# ----------------------------------------------------------------------
# Compilation with quarantine


@dataclass
class ImportedRuleset:
    """The outcome of importing one rule file.

    ``rules[i]`` pairs with ``reports[i]`` (``pattern_id == i``); the
    compiled artifacts of the survivors are in ``compiled`` keyed by the
    same index.  ``accepted_patterns`` is what a
    :class:`~repro.matching.PatternSet` should be built from.
    """

    rules: List[ImportedRule] = field(default_factory=list)
    reports: List[CompileReport] = field(default_factory=list)
    compiled: Dict[int, Any] = field(default_factory=dict)

    @property
    def summary(self) -> QuarantineSummary:
        return QuarantineSummary(reports=list(self.reports))

    @property
    def accepted(self) -> List[ImportedRule]:
        return [
            self.rules[report.pattern_id]
            for report in self.reports
            if report.ok
        ]

    @property
    def accepted_patterns(self) -> List[str]:
        return [rule.pattern for rule in self.accepted]

    @property
    def quarantined(self) -> List[CompileReport]:
        return [report for report in self.reports if not report.ok]

    def to_json(self) -> Dict[str, Any]:
        summary = self.summary
        return {
            "rules": [rule.to_json() for rule in self.rules],
            "reports": [report.to_json() for report in self.reports],
            "compiled": summary.compiled,
            "quarantined": summary.quarantined,
            "by_code": summary.by_code(),
        }


def import_rules(
    lines: Iterable[str],
    options: CompilerOptions = CompilerOptions(),
    include_contents: bool = True,
    cache: Optional[Any] = None,
) -> ImportedRuleset:
    """Parse rule lines and compile every extracted pattern, quarantining
    the ones the compiler rejects."""
    rules = parse_rule_lines(lines, include_contents=include_contents)
    out = ImportedRuleset(rules=rules)
    for index, rule in enumerate(rules):
        compiled, report = compile_pattern_isolated(
            rule.pattern, index, options, cache=cache
        )
        out.reports.append(report)
        if compiled is not None:
            out.compiled[index] = compiled
    return out


def import_ruleset(
    path: str,
    options: CompilerOptions = CompilerOptions(),
    include_contents: bool = True,
    cache: Optional[Any] = None,
) -> ImportedRuleset:
    """:func:`import_rules` over a rule file on disk."""
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        return import_rules(
            handle,
            options=options,
            include_contents=include_contents,
            cache=cache,
        )


# ----------------------------------------------------------------------
# Real-traffic workload profiles (per-record scanning)


@dataclass(frozen=True)
class WorkloadProfile:
    """An anchored rule set plus a per-record traffic generator.

    ``record(rng, match)`` produces one framed input record — a log
    line, an HTTP request line, a document fragment — that matches at
    least one of ``patterns`` when ``match`` is True and none otherwise.
    Anchored scanning is per-record (``^`` means offset 0 of the record,
    ``$`` means its end), so benchmarks drive one ``scan()`` per record.
    """

    name: str
    description: str
    patterns: Tuple[str, ...]
    record: Callable[[random.Random, bool], bytes]

    def records(
        self, rng: random.Random, count: int, match_rate: float = 0.0
    ) -> List[bytes]:
        """``count`` records, a ``match_rate`` fraction of them matching."""
        if not 0.0 <= match_rate <= 1.0:
            raise ValueError(f"match_rate must be in [0, 1], got {match_rate}")
        return [
            self.record(rng, rng.random() < match_rate) for _ in range(count)
        ]

    def ruleset_lines(self) -> List[str]:
        """The profile's patterns rendered as Snort-style rule lines
        (round-trippable through :func:`import_rules`)."""
        out = [f"# workload profile: {self.name}"]
        for index, pattern in enumerate(self.patterns):
            body = pattern
            flags = ""
            if body.startswith("(?i)"):
                body, flags = body[4:], "i"
            body = body.replace('"', '\\"')
            out.append(
                f'alert tcp any any -> any any (msg:"{self.name} rule '
                f'{index}"; pcre:"/{body}/{flags}"; sid:{1000 + index}; '
                f"rev:1;)"
            )
        return out


_LOG_COMPONENTS = (
    "request served", "cache warmed", "heartbeat ok", "user login",
    "queue drained", "config reloaded", "worker started",
)
_LOG_ERRORS = (
    "ERROR disk quota exceeded on volume",
    "ERROR upstream returned status 502 for",
    "WARN retry budget exhausted for",
)


def _log_record(rng: random.Random, match: bool) -> bytes:
    """One log line.  Matching lines start with an ERROR/WARN tag or a
    bare ISO timestamp, or end with the timeout suffix."""
    detail = rng.choice(_LOG_COMPONENTS)
    if match:
        kind = rng.randrange(3)
        if kind == 0:
            line = f"{rng.choice(_LOG_ERRORS)} shard{rng.randrange(16)}"
        elif kind == 1:
            line = (
                f"2026-{rng.randrange(1, 13):02d}-{rng.randrange(1, 29):02d} "
                f"{rng.randrange(24):02d}:{rng.randrange(60):02d}:"
                f"{rng.randrange(60):02d} INFO {detail}"
            )
        else:
            line = f"INFO {detail}: connection timed out"
    else:
        line = f"INFO {detail} in {rng.randrange(1, 900)}ms"
    return line.encode("latin-1")


_IDS_PATHS = (
    "/index.html", "/style.css", "/api/v2/items", "/favicon.ico",
    "/images/logo.png", "/search?q=widgets",
)
_IDS_ATTACKS = (
    "GET /admin/config HTTP/1.1",
    "POST /login.php HTTP/1.1",
    "GET /static/../../etc/passwd HTTP/1.1",
    "GET /download/cmd.exe",
)


def _ids_record(rng: random.Random, match: bool) -> bytes:
    """One HTTP request line."""
    if match:
        line = rng.choice(_IDS_ATTACKS)
    else:
        method = rng.choice(("GET", "HEAD"))
        line = f"{method} {rng.choice(_IDS_PATHS)} HTTP/1.1"
    return line.encode("latin-1")


_PII_WORDS = (
    "invoice", "attached", "meeting", "quarterly", "review", "thanks",
    "project", "update", "schedule", "draft",
)


def _pii_record(rng: random.Random, match: bool) -> bytes:
    """One document fragment (an email-ish sentence)."""
    words = [rng.choice(_PII_WORDS) for _ in range(rng.randrange(6, 14))]
    if match:
        kind = rng.randrange(3)
        if kind == 0:
            token = (
                f"{rng.randrange(100, 1000)}-{rng.randrange(10, 100)}-"
                f"{rng.randrange(1000, 10000)}"
            )
        elif kind == 1:
            token = "".join(str(rng.randrange(10)) for _ in range(16))
        else:
            token = f"{rng.choice(_PII_WORDS)}@example.com"
        words.insert(rng.randrange(len(words) + 1), token)
    return " ".join(words).encode("latin-1")


WORKLOAD_PROFILES: Dict[str, WorkloadProfile] = {
    "log_scan": WorkloadProfile(
        name="log_scan",
        description="severity/timestamp-anchored log line scanning",
        patterns=(
            r"^ERROR\b",
            r"^WARN",
            r"^\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2}",
            r"connection timed out$",
        ),
        record=_log_record,
    ),
    "ids": WorkloadProfile(
        name="ids",
        description="anchored HTTP request-line intrusion signatures",
        patterns=(
            r"(?i)^GET /admin",
            r"^POST /login\.php",
            r"\.\./\.\.",
            r"(?i)cmd\.exe$",
        ),
        record=_ids_record,
    ),
    "pii": WorkloadProfile(
        name="pii",
        description="word-boundary-delimited PII redaction",
        patterns=(
            r"\b\d{3}-\d{2}-\d{4}\b",
            r"\b\d{16}\b",
            r"\b[a-z][a-z.]*@[a-z]+\.(com|org|net)\b",
        ),
        record=_pii_record,
    ),
}


def workload_records(
    name: str, rng: random.Random, count: int, match_rate: float = 0.0
) -> List[bytes]:
    """Records for the named profile (KeyError on unknown names)."""
    return WORKLOAD_PROFILES[name].records(rng, count, match_rate)
