"""Synthetic workloads: dataset profiles, pattern and input generators."""

from .datasets import DATASET_NAMES, PROFILES, load_dataset
from .generator import DatasetProfile, generate_dataset, generate_pattern
from .prosite import PrositeSyntaxError, prosite_to_pcre, translate_collection
from .snort import content_to_pcre, extract_contents, extract_pcre, rules_to_patterns
from .rulesets import (
    WORKLOAD_PROFILES,
    ImportedRule,
    ImportedRuleset,
    WorkloadProfile,
    import_rules,
    import_ruleset,
    parse_rule_lines,
    workload_records,
)
from .inputs import (
    activation_stream,
    alpha_stream,
    background_bytes,
    dataset_stream,
    match_rate_stream,
)

__all__ = [
    "DATASET_NAMES",
    "DatasetProfile",
    "ImportedRule",
    "ImportedRuleset",
    "PROFILES",
    "PrositeSyntaxError",
    "WORKLOAD_PROFILES",
    "WorkloadProfile",
    "activation_stream",
    "alpha_stream",
    "background_bytes",
    "dataset_stream",
    "generate_dataset",
    "generate_pattern",
    "match_rate_stream",
    "content_to_pcre",
    "extract_contents",
    "extract_pcre",
    "import_rules",
    "import_ruleset",
    "load_dataset",
    "parse_rule_lines",
    "prosite_to_pcre",
    "rules_to_patterns",
    "translate_collection",
    "workload_records",
]
