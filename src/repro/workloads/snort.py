"""Snort/Suricata rule handling: extract the PCRE bodies from rules.

The Snort and Suricata datasets (§8) are network-intrusion rules whose
regex payloads appear in ``pcre:"/<pattern>/<flags>"`` options (plus
literal ``content:"..."`` options, which are plain strings).  This module
extracts both into the PCRE subset the compiler accepts, applying the
``i`` flag by case-folding and translating Snort's ``|41 42|`` hex-byte
content notation.
"""

from __future__ import annotations

import re as _re
from typing import Iterable, List, Optional

_PCRE_OPTION = _re.compile(r'pcre:\s*"(?P<body>/.*?/(?P<flags>[a-zA-Z]*))"')
_CONTENT_OPTION = _re.compile(r'content:\s*"(?P<body>(?:[^"\\]|\\.)*)"')

_ESCAPE_NEEDED = set("\\^$.[]|()?*+{}-")


def extract_pcre(rule: str) -> List[str]:
    """The regexes of one rule's ``pcre`` options, flags folded in."""
    out = []
    for match in _PCRE_OPTION.finditer(rule):
        body = match.group("body")
        flags = match.group("flags")
        pattern = body[1 : body.rfind("/")]
        if "i" in flags:
            pattern = f"(?i){pattern}"
        out.append(pattern)
    return out


def content_to_pcre(content: str) -> str:
    """Translate a Snort ``content`` string (with ``|..|`` hex spans and
    backslash escapes) into an escaped literal regex."""
    out: List[str] = []
    index = 0
    in_hex = False
    while index < len(content):
        char = content[index]
        if char == "|":
            in_hex = not in_hex
            index += 1
            continue
        if in_hex:
            if char == " ":
                index += 1
                continue
            byte = content[index : index + 2]
            if len(byte) < 2 or not _re.fullmatch(r"[0-9A-Fa-f]{2}", byte):
                raise ValueError(f"bad hex span in content {content!r}")
            out.append(f"\\x{byte.lower()}")
            index += 2
            continue
        if char == "\\" and index + 1 < len(content):
            out.append(_escape(content[index + 1]))
            index += 2
            continue
        out.append(_escape(char))
        index += 1
    return "".join(out)


def _escape(char: str) -> str:
    return "\\" + char if char in _ESCAPE_NEEDED else char


def extract_contents(rule: str) -> List[str]:
    """The ``content`` options of one rule as literal regexes."""
    out = []
    for match in _CONTENT_OPTION.finditer(rule):
        try:
            out.append(content_to_pcre(match.group("body")))
        except ValueError:
            continue
    return out


def rules_to_patterns(
    rules: Iterable[str], include_contents: bool = True
) -> List[str]:
    """Every usable pattern from a rule file's lines."""
    patterns: List[str] = []
    for rule in rules:
        rule = rule.strip()
        if not rule or rule.startswith("#"):
            continue
        patterns.extend(extract_pcre(rule))
        if include_contents:
            patterns.extend(extract_contents(rule))
    return patterns
