"""PROSITE motif syntax → PCRE translation.

The Prosite dataset (§8) consists of protein motifs written in PROSITE's
own pattern syntax [29, 32], e.g.::

    C-x(2,4)-C-x(3)-[LIVMFYWC]-x(8)-H-x(3,5)-H.

Elements are separated by ``-`` and terminated by ``.``:

* ``A``            a residue letter (any of the 20 amino acids)
* ``[ALT]``        any of the listed residues
* ``{ALT}``        any residue *except* the listed ones
* ``x``            any residue
* ``e(n)``, ``e(m,n)``  bounded repetition of element ``e``
* ``<`` / ``>``    anchors to the sequence ends
* ``e*``           unbounded repetition (rare; used with ``x``)

Bounded ``x(m,n)`` gaps are exactly the bounded repetitions BVAP
accelerates, which is why PROSITE is one of the paper's benchmarks.
"""

from __future__ import annotations

import re as _re
from typing import List

AMINO_ACIDS = "ACDEFGHIKLMNPQRSTVWY"

_ELEMENT_RE = _re.compile(
    r"""
    (?P<body>
        [A-Za-z]            # single residue or x
      | \[[A-Za-z]+\]       # any-of
      | \{[A-Za-z]+\}       # none-of
    )
    (?P<star>\*)?
    (?:\((?P<low>\d+)(?:,(?P<high>\d+))?\))?
    $
    """,
    _re.VERBOSE,
)


class PrositeSyntaxError(ValueError):
    """Raised on malformed PROSITE patterns."""


def prosite_to_pcre(motif: str) -> str:
    """Translate one PROSITE pattern into the PCRE subset.

    >>> prosite_to_pcre("C-x(2,4)-C-x(3)-[LIVMFYWC]-x(8)-H-x(3,5)-H.")
    'C.{2,4}C.{3}[LIVMFYWC].{8}H.{3,5}H'
    """
    text = motif.strip()
    if text.endswith("."):
        text = text[:-1]
    if not text:
        raise PrositeSyntaxError("empty PROSITE pattern")

    anchored_start = text.startswith("<")
    anchored_end = text.endswith(">")
    text = text.lstrip("<").rstrip(">")

    parts: List[str] = []
    for element in text.split("-"):
        element = element.strip()
        if not element:
            raise PrositeSyntaxError(f"empty element in {motif!r}")
        parts.append(_translate_element(element, motif))
    # ``<``/``>`` become real ^/$ constraints: the compiler lowers them
    # into start/end gates, so an end-anchored motif only fires at the
    # sequence boundary instead of matching anywhere.
    prefix = "^" if anchored_start else ""
    suffix = "$" if anchored_end else ""
    return prefix + "".join(parts) + suffix


def _translate_element(element: str, motif: str) -> str:
    match = _ELEMENT_RE.match(element)
    if not match:
        raise PrositeSyntaxError(f"bad element {element!r} in {motif!r}")
    body = match.group("body")
    if body in ("x", "X"):
        base = "."
    elif len(body) == 1:
        if body.upper() not in AMINO_ACIDS:
            raise PrositeSyntaxError(
                f"unknown residue {body!r} in {motif!r}"
            )
        base = body.upper()
    elif body.startswith("["):
        base = "[" + body[1:-1].upper() + "]"
    else:  # {...} = none-of
        base = "[^" + body[1:-1].upper() + "]"

    if match.group("star"):
        return base + "*"
    low = match.group("low")
    high = match.group("high")
    if low is None:
        return base
    if high is None:
        return f"{base}{{{int(low)}}}"
    if int(high) < int(low):
        raise PrositeSyntaxError(f"bounds out of order in {element!r}")
    return f"{base}{{{int(low)},{int(high)}}}"


def translate_collection(motifs: List[str]) -> List[str]:
    """Translate a list of motifs, skipping malformed ones."""
    out = []
    for motif in motifs:
        try:
            out.append(prosite_to_pcre(motif))
        except PrositeSyntaxError:
            continue
    return out
