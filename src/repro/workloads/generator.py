"""Profile-driven synthetic regex generation.

The paper's seven benchmark rule sets (Snort, Suricata, Prosite, ClamAV,
YARA, SpamAssassin, RegexLib) are proprietary or unavailable offline, so
the evaluation here runs on *synthetic corpora generated to match the
statistics the paper reports*: the fraction of regexes with bounded
repetition (37% across all datasets), the share of NFA states contributed
by repetitions after unfolding (85%), the average plain-STE run length
(16, from the paper's RegexLib analysis), per-dataset repetition-bound
distributions, and per-dataset BV-STE ratios (≤18%, ~5% for
SpamAssassin).  See DESIGN.md §2 for the substitution rationale.

Generation is fully deterministic given the seed.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class DatasetProfile:
    """Shape parameters of one synthetic rule set."""

    name: str
    #: Bytes used for literal runs (regex-safe characters only).
    literal_pool: str
    #: Character-class tokens for class positions and counting bodies.
    class_tokens: Tuple[str, ...]
    #: Probability that a regex contains bounded repetition at all.
    counting_prob: float
    #: Counting blocks per counting regex (inclusive range).
    blocks: Tuple[int, int]
    #: Repetition bounds are sampled log-uniformly from this range.
    bound_range: Tuple[int, int]
    #: Weights for exact {n} / range {m,n} / at-least {n,} blocks.
    bound_kind_weights: Tuple[float, float, float] = (0.5, 0.4, 0.1)
    #: Literal-run length (inclusive range); paper average is 16 plain
    #: STEs per regex overall.
    run_length: Tuple[int, int] = (3, 12)
    #: Number of literal/class segments per regex.
    segments: Tuple[int, int] = (1, 3)
    #: Probability of a '.' (any-byte) counting body vs a class token.
    dot_body_prob: float = 0.5
    #: Probability of decorating a segment with an alternation group.
    alternation_prob: float = 0.1
    #: Probability of a trailing optional/star decoration on a segment.
    decoration_prob: float = 0.15
    #: Probability that a segment is an *unfactored shared-affix
    #: alternation* — branches spelling out a common literal prefix and
    #: suffix around a distinguishing byte, the way community rule sets
    #: write ``(http|https)`` or ``(jpg|jpeg|gif)`` by hand instead of
    #: factoring the affixes out.  The duplicated affix positions are
    #: exactly what the ``compiler.reduce`` quotient pass merges.  At the
    #: default 0.0 no extra RNG draws happen, so legacy profiles keep
    #: byte-identical pattern streams.
    shared_affix_prob: float = 0.0


def _sample_bound(rng: random.Random, lo: int, hi: int) -> int:
    """Log-uniform integer in [lo, hi] — matches the heavy right tail of
    real rule sets (a few huge bounds, many small ones)."""
    import math

    value = math.exp(rng.uniform(math.log(lo), math.log(hi)))
    return max(lo, min(hi, int(round(value))))


def _literal_run(rng: random.Random, profile: DatasetProfile) -> str:
    length = rng.randint(*profile.run_length)
    return "".join(rng.choice(profile.literal_pool) for _ in range(length))


def _shared_affix_group(rng: random.Random, profile: DatasetProfile) -> str:
    """An unfactored alternation whose branches share literal affixes.

    Every branch repeats the same prefix and suffix around a distinct
    middle byte, e.g. ``(coamz|cobmz|cocmz)`` — the position-automaton
    states for the repeated affixes are left/follow-equivalent and
    collapse under the reduction pass, mirroring how hand-written
    ``(http|https)``-style groups reduce.
    """
    prefix = "".join(
        rng.choice(profile.literal_pool) for _ in range(rng.randint(2, 4))
    )
    suffix = "".join(
        rng.choice(profile.literal_pool) for _ in range(rng.randint(2, 4))
    )
    middles = rng.sample(profile.literal_pool, rng.randint(2, 4))
    return "(" + "|".join(prefix + mid + suffix for mid in middles) + ")"


def _segment(rng: random.Random, profile: DatasetProfile) -> str:
    if profile.shared_affix_prob and rng.random() < profile.shared_affix_prob:
        return _shared_affix_group(rng, profile)
    text = _literal_run(rng, profile)
    if rng.random() < profile.alternation_prob:
        other = _literal_run(rng, profile)
        text = f"({text}|{other})"
    if rng.random() < profile.decoration_prob:
        token = rng.choice(profile.class_tokens)
        text += token + rng.choice("*?+")
    return text


def _counting_block(rng: random.Random, profile: DatasetProfile) -> str:
    if rng.random() < profile.dot_body_prob:
        body = "."
    else:
        body = rng.choice(profile.class_tokens)
    lo_bound, hi_bound = profile.bound_range
    kind = rng.choices(
        ("exact", "range", "atleast"), weights=profile.bound_kind_weights
    )[0]
    if kind == "exact":
        bound = _sample_bound(rng, lo_bound, hi_bound)
        return f"{body}{{{bound}}}"
    if kind == "range":
        high = _sample_bound(rng, max(2, lo_bound), hi_bound)
        low = rng.randint(0, max(0, high - 1)) if rng.random() < 0.5 else 1
        return f"{body}{{{low},{high}}}"
    bound = _sample_bound(rng, lo_bound, min(hi_bound, 64))
    return f"{body}{{{bound},}}"


def generate_pattern(rng: random.Random, profile: DatasetProfile) -> str:
    """One synthetic rule in the profile's style."""
    parts: List[str] = [_segment(rng, profile)]
    if rng.random() < profile.counting_prob:
        blocks = rng.randint(*profile.blocks)
        for _ in range(blocks):
            parts.append(_counting_block(rng, profile))
            parts.append(_segment(rng, profile))
    else:
        extra = rng.randint(*profile.segments) - 1
        for _ in range(extra):
            token = rng.choice(profile.class_tokens)
            parts.append(token)
            parts.append(_segment(rng, profile))
    return "".join(parts)


def generate_dataset(
    profile: DatasetProfile, count: int, seed: int = 0
) -> List[str]:
    """A reproducible list of ``count`` patterns for one profile."""
    rng = random.Random(zlib.crc32(profile.name.encode()) ^ seed)
    return [generate_pattern(rng, profile) for _ in range(count)]
