"""Shared bit-twiddling helpers for the hot simulation paths.

Python 3.10 added :meth:`int.bit_count` (a single CPython opcode-level
popcount); earlier interpreters fall back to the classic
``bin(x).count("1")`` idiom.  Everything in the package that counts set
bits — matcher occupancy, BV activity accounting, character-class sizes —
goes through :func:`popcount` so the fast path is picked exactly once.
"""

from __future__ import annotations

try:  # Python >= 3.10: the unbound method works on any int
    popcount = int.bit_count
except AttributeError:  # pragma: no cover - exercised only on Python 3.9

    def popcount(value: int) -> int:
        """Number of set bits in ``value``."""
        return bin(value).count("1")
