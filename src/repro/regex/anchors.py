"""Lowering of positional assertions into gated automaton variants.

The scan engines execute Glushkov-style position automata, which have no
notion of stream position: every state is injectable at every byte and
every final state reports wherever it fires.  Anchors are therefore
*compiled away* before translation.  :func:`lower_anchors` rewrites one
parsed AST (which may contain :class:`~repro.regex.ast.Anchor` nodes)
into a small set of anchor-free **variants**, each carrying three gates
the matcher enforces positionally:

* ``boi`` — the variant's start positions are injected only at stream
  offset 0 (the ``^`` start gate);
* ``eoi`` — the variant's finals do not report per-byte; they are held
  as candidates and emitted only by end-of-input finalisation (the
  ``$`` deferral);
* ``adjust`` — the variant's finals report ``end - 1``: the variant
  consumed one extra *confirm byte* beyond the real match (the
  lookbehind trick that makes ``\\b`` exact in a streaming automaton).

The union of the variants' gated languages reproduces ``re.search``
semantics for the supported subset.  The rules:

* ``^`` — everything concatenated before it must be nullable (it is
  projected to the empty match) or the variant is impossible; the
  variant gains ``boi``.  ``a^b`` therefore contributes nothing, and a
  pattern whose variants all die compiles to the **empty matcher**.
* ``$`` — symmetric on the right; the variant gains ``eoi``.
* ``\\b`` at the start — with a uniformly word-first core ``X``:
  ``\\bX == (X gated to offset 0)  |  ([^\\w]X)`` (the extra leading
  non-word byte shifts nothing: match *ends* are what engines report).
  A uniformly non-word-first core needs a leading word byte instead
  (and no offset-0 variant: the imaginary byte before the stream is
  non-word).
* ``\\b`` at the end — with a uniformly word-last core:
  ``X\\b == (X held to end-of-input)  |  (X[^\\w] reporting end-1)``;
  non-word-last cores take a trailing word confirm byte.
* ``\\b`` mid-pattern — dropped when the adjacent byte classes prove
  the boundary always holds, impossible when they prove it never
  holds; mixed word/non-word edge classes are unsupported.

Unsupported combinations (anchors under quantifiers, ``\\b`` on a
nullable or mixed-edge core, variant explosions) raise
:class:`~repro.resilience.errors.UnsupportedFeatureError`, which the
ruleset machinery quarantines as ``E_UNSUPPORTED``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from . import ast
from ..resilience.errors import UnsupportedFeatureError
from .charclass import CharClass, WORD

__all__ = ["Variant", "lower_anchors", "MAX_VARIANTS"]

NONWORD = ~WORD

#: Ceiling on the variant fan-out of one pattern.  Real rules use one or
#: two anchors; a pattern that explodes past this is quarantined rather
#: than compiled into a giant union.
MAX_VARIANTS = 16


@dataclass(frozen=True)
class Variant:
    """One anchor-free gated alternative of a lowered pattern."""

    core: ast.Regex
    boi: bool = False
    eoi: bool = False
    adjust: bool = False

    def describe(self) -> str:
        gates = [
            name
            for name, on in (
                ("boi", self.boi), ("eoi", self.eoi), ("adjust", self.adjust)
            )
            if on
        ]
        return f"{self.core}[{','.join(gates) or 'open'}]"


def _unsupported(message: str, pattern: str) -> UnsupportedFeatureError:
    return UnsupportedFeatureError(message, pattern, 0)


# ----------------------------------------------------------------------
# First/last byte classes of an anchor-free AST


def _first_classes(node: ast.Regex) -> CharClass:
    """Union of the possible first bytes of non-empty matches."""
    if isinstance(node, ast.Epsilon):
        return CharClass.empty()
    if isinstance(node, ast.Symbol):
        return node.cc
    if isinstance(node, ast.Concat):
        first = _first_classes(node.left)
        if ast.nullable(node.left):
            first = first | _first_classes(node.right)
        return first
    if isinstance(node, ast.Alternation):
        return _first_classes(node.left) | _first_classes(node.right)
    if isinstance(node, (ast.Star, ast.Plus, ast.Optional_, ast.Repeat)):
        return _first_classes(node.inner)
    raise TypeError(f"unknown node: {node!r}")


def _last_classes(node: ast.Regex) -> CharClass:
    """Union of the possible last bytes of non-empty matches."""
    if isinstance(node, ast.Epsilon):
        return CharClass.empty()
    if isinstance(node, ast.Symbol):
        return node.cc
    if isinstance(node, ast.Concat):
        last = _last_classes(node.right)
        if ast.nullable(node.right):
            last = last | _last_classes(node.left)
        return last
    if isinstance(node, ast.Alternation):
        return _last_classes(node.left) | _last_classes(node.right)
    if isinstance(node, (ast.Star, ast.Plus, ast.Optional_, ast.Repeat)):
        return _last_classes(node.inner)
    raise TypeError(f"unknown node: {node!r}")


def _edge_kind(classes: CharClass) -> str:
    """'word', 'nonword', or 'mixed' for a first/last byte class set."""
    if classes.is_empty():
        return "mixed"  # no non-empty match: callers treat as unsupported
    if classes.issubset(WORD):
        return "word"
    if not classes.overlaps(WORD):
        return "nonword"
    return "mixed"


# ----------------------------------------------------------------------
# Step 1: distribute anchored alternations into linear variants


def _expand(node: ast.Regex, pattern: str) -> List[List[ast.Regex]]:
    """Flatten ``node`` into alternative item sequences.

    Anchor-free subtrees stay atomic (no blow-up); alternations and
    concatenations that *contain* anchors are distributed so every
    resulting sequence is a flat mix of anchor-free atoms and Anchor
    markers.  Anchors under quantifiers are unsupported.
    """
    if not ast.has_anchors(node):
        return [[node]]
    if isinstance(node, ast.Anchor):
        return [[node]]
    if isinstance(node, ast.Concat):
        out = []
        for left in _expand(node.left, pattern):
            for right in _expand(node.right, pattern):
                out.append(left + right)
                if len(out) > MAX_VARIANTS:
                    raise _unsupported(
                        "anchor distribution exceeds the variant limit",
                        pattern,
                    )
        return out
    if isinstance(node, ast.Alternation):
        out = _expand(node.left, pattern) + _expand(node.right, pattern)
        if len(out) > MAX_VARIANTS:
            raise _unsupported(
                "anchor distribution exceeds the variant limit", pattern
            )
        return out
    # Star / Plus / Optional_ / Repeat with an anchor inside.
    raise _unsupported(
        "anchors under quantifiers are not supported", pattern
    )


# ----------------------------------------------------------------------
# Step 2: resolve one linear variant


def _resolve(
    items: List[ast.Regex], pattern: str
) -> Optional[Tuple[bool, bool, List[ast.Regex], bool, bool]]:
    """Resolve ``^``/``$`` and split off edge word boundaries.

    Returns ``(boi, eoi, core_items, lead_wb, trail_wb)`` or ``None``
    when the variant is impossible (e.g. ``a^b`` / ``a$b``) or matches
    only the empty string.  Interior ``\\b`` is decided in place via
    adjacent byte classes.
    """
    boi = eoi = False

    starts = [
        i for i, item in enumerate(items)
        if isinstance(item, ast.Anchor) and item.kind == ast.Anchor.START
    ]
    if starts:
        boi = True
        cut = max(starts)
        for item in items[:cut]:
            if isinstance(item, ast.Anchor):
                if item.kind == ast.Anchor.END:
                    return None  # $ at offset <= 0: empty-input only
                continue  # a ^-coincident \b: re-checked at offset 0
            if not ast.nullable(item):
                return None  # a^b: impossible
        kept = [
            item for item in items[:cut]
            if isinstance(item, ast.Anchor) and item.kind == ast.Anchor.WORD
        ]
        items = kept + [
            item for item in items[cut:]
            if not (
                isinstance(item, ast.Anchor)
                and item.kind == ast.Anchor.START
            )
        ]

    ends = [
        i for i, item in enumerate(items)
        if isinstance(item, ast.Anchor) and item.kind == ast.Anchor.END
    ]
    if ends:
        eoi = True
        cut = min(ends)
        for item in items[cut:]:
            if isinstance(item, ast.Anchor):
                continue
            if not ast.nullable(item):
                return None  # a$b: impossible
        kept = [
            item for item in items[cut:]
            if isinstance(item, ast.Anchor) and item.kind == ast.Anchor.WORD
        ]
        items = items[:cut] + kept

    # Only core atoms and word boundaries remain.  Locate the edges.
    lo = 0
    while lo < len(items) and isinstance(items[lo], ast.Anchor):
        lo += 1
    hi = len(items)
    while hi > lo and isinstance(items[hi - 1], ast.Anchor):
        hi -= 1
    lead_wb = lo > 0
    trail_wb = hi < len(items)
    core_items = []
    prefix: List[ast.Regex] = []
    interior = items[lo:hi]
    for index, item in enumerate(interior):
        if not isinstance(item, ast.Anchor):
            prefix.append(item)
            core_items.append(item)
            continue
        # Interior \b: decide from the adjacent byte classes.
        suffix = [x for x in interior[index + 1:] if not isinstance(x, ast.Anchor)]
        before = ast.balanced_concat(list(prefix))
        after = ast.balanced_concat(suffix)
        if ast.nullable(before) or ast.nullable(after):
            raise _unsupported(
                "word boundary beside a nullable subpattern is not supported",
                pattern,
            )
        left = _edge_kind(_last_classes(before))
        right = _edge_kind(_first_classes(after))
        if "mixed" in (left, right):
            raise _unsupported(
                "word boundary between mixed word/non-word classes "
                "is not supported",
                pattern,
            )
        if left == right:
            return None  # boundary can never hold
        # Boundary always holds: drop the anchor.

    if not core_items:
        return None  # only empty matches: never reported
    return boi, eoi, core_items, lead_wb, trail_wb


# ----------------------------------------------------------------------
# Step 3: expand edge word boundaries into gated variants


def _expand_word_edges(
    boi: bool,
    eoi: bool,
    core: ast.Regex,
    lead_wb: bool,
    trail_wb: bool,
    pattern: str,
) -> List[Variant]:
    if (lead_wb or trail_wb) and ast.nullable(core):
        # A confirm/lead byte beside a nullable core would report the
        # core's *empty* match, which engines never emit.
        raise _unsupported(
            "word boundary on a nullable pattern is not supported", pattern
        )

    heads: List[Tuple[ast.Regex, bool]] = []  # (core', boi')
    if lead_wb:
        kind = _edge_kind(_first_classes(core))
        if kind == "mixed":
            raise _unsupported(
                "word boundary before mixed word/non-word first classes "
                "is not supported",
                pattern,
            )
        if kind == "word":
            # Boundary holds at offset 0 or after a non-word byte.
            heads.append((core, True))
            if not boi:
                heads.append((ast.Concat(ast.Symbol(NONWORD), core), False))
        else:
            # Non-word first byte: needs a word byte before it; the
            # imaginary pre-stream byte is non-word, so no offset-0 form.
            if boi:
                return []
            heads.append((ast.Concat(ast.Symbol(WORD), core), False))
    else:
        heads.append((core, boi))

    out: List[Variant] = []
    for head, head_boi in heads:
        if not trail_wb:
            out.append(Variant(head, boi=head_boi, eoi=eoi))
            continue
        kind = _edge_kind(_last_classes(core))
        if kind == "mixed":
            raise _unsupported(
                "word boundary after mixed word/non-word last classes "
                "is not supported",
                pattern,
            )
        if kind == "word":
            # Boundary holds at end-of-input or before a non-word byte.
            out.append(Variant(head, boi=head_boi, eoi=True))
            if not eoi:
                out.append(
                    Variant(
                        ast.Concat(head, ast.Symbol(NONWORD)),
                        boi=head_boi,
                        adjust=True,
                    )
                )
        else:
            # Non-word-last core needs a word confirm byte; at EOI the
            # imaginary post-stream byte is non-word, so $ cannot hold.
            if eoi:
                continue
            out.append(
                Variant(
                    ast.Concat(head, ast.Symbol(WORD)),
                    boi=head_boi,
                    adjust=True,
                )
            )
    return out


# ----------------------------------------------------------------------
# Entry point


def lower_anchors(
    node: ast.Regex, pattern: str = ""
) -> Optional[Tuple[Variant, ...]]:
    """Lower one parsed AST into gated anchor-free variants.

    Returns ``None`` when the AST contains no anchors (the pattern
    compiles through the classic un-gated path unchanged), an empty
    tuple when the anchors are unsatisfiable (the pattern compiles to
    the empty matcher), and otherwise the variant set whose gated union
    is the pattern's anchored language.
    """
    if not ast.has_anchors(node):
        return None
    variants: List[Variant] = []
    for items in _expand(node, pattern):
        resolved = _resolve(list(items), pattern)
        if resolved is None:
            continue
        boi, eoi, core_items, lead_wb, trail_wb = resolved
        core = ast.balanced_concat(list(core_items))
        for variant in _expand_word_edges(
            boi, eoi, core, lead_wb, trail_wb, pattern
        ):
            if variant not in variants:
                variants.append(variant)
        if len(variants) > MAX_VARIANTS:
            raise _unsupported(
                "anchor lowering exceeds the variant limit", pattern
            )
    return tuple(variants)
