"""A PCRE-subset regex parser.

Supports the constructs used by the paper's benchmark rule sets:

* literal bytes, ``\\xHH`` escapes, control escapes (``\\n``, ``\\t``, ...)
* shorthand classes ``\\d \\D \\w \\W \\s \\S``
* bracket classes ``[a-z0-9]`` and negated classes ``[^...]``
* the dot ``.`` (any byte — the paper's capital sigma)
* grouping ``( )`` / ``(?: )``, alternation ``|``
* quantifiers ``* + ?`` and bounded repetition ``{n}``, ``{m,}``, ``{m,n}``
* optional lazy-quantifier suffix ``?`` (ignored: for the *match-detection*
  semantics of automata processors, greedy and lazy are equivalent);
  stacking a second quantifier directly on a quantified atom (``a**``,
  ``a+*``, ``a{2,3}*``, possessive-looking ``a*+``) raises the same
  "multiple repeat" syntax error PCRE and Python's ``re`` produce
* the case-insensitive flag, inline (``(?i)``, ``(?i:...)``) or via
  ``parse(..., ignorecase=True)``: letters in literals and classes match
  both cases
* anchors ``^``/``$``/``\\b``, parsed as first-class
  :class:`~repro.regex.ast.Anchor` nodes and compiled into real
  positional constraints by :mod:`repro.regex.anchors` (start-of-stream
  gate, end-of-input finalisation, word-boundary variants); pass
  ``allow_anchors=False`` to make them a syntax error instead.
  Quantifying a bare anchor (``^*``) raises the same "nothing to
  repeat" error Python's ``re`` produces.

Unsupported PCRE features (backreferences, lookaround, ``\\B``, capture
semantics, the multiline flag combined with anchors) raise
:class:`RegexSyntaxError` / :class:`UnsupportedFeatureError`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from . import ast
from ..resilience.errors import RegexSyntaxError, UnsupportedFeatureError
from .charclass import ALPHABET_SIZE, DIGIT, SPACE, WORD, CharClass

_CONTROL_ESCAPES = {
    "n": ord("\n"),
    "t": ord("\t"),
    "r": ord("\r"),
    "f": ord("\f"),
    "v": ord("\v"),
    "a": 0x07,
    "e": 0x1B,
    "0": 0x00,
}

_CLASS_ESCAPES = {
    "d": DIGIT,
    "D": ~DIGIT,
    "w": WORD,
    "W": ~WORD,
    "s": SPACE,
    "S": ~SPACE,
}

_UPPER = CharClass.from_range(ord("A"), ord("Z"))
_LOWER = CharClass.from_range(ord("a"), ord("z"))
_ALPHA = _UPPER | _LOWER

#: POSIX bracket classes ([[:name:]]), as used by Snort/Suricata rules.
_POSIX_CLASSES = {
    "alpha": _ALPHA,
    "digit": DIGIT,
    "alnum": _ALPHA | DIGIT,
    "upper": _UPPER,
    "lower": _LOWER,
    "space": SPACE,
    "xdigit": DIGIT
    | CharClass.from_range(ord("a"), ord("f"))
    | CharClass.from_range(ord("A"), ord("F")),
    "punct": CharClass.from_chars(
        bytes(b for b in range(0x21, 0x7F))
    )
    - (_ALPHA | DIGIT),
    "print": CharClass.from_range(0x20, 0x7E),
    "graph": CharClass.from_range(0x21, 0x7E),
    "cntrl": CharClass.from_range(0x00, 0x1F) | CharClass.from_char(0x7F),
    "blank": CharClass.from_chars(b" \t"),
}

_SPECIAL = set("\\^$.[|()?*+{")


# The error classes live in the resilience layer (structured taxonomy
# with caret diagnostics); re-exported here for backwards compatibility.
__all__ = ["RegexSyntaxError", "UnsupportedFeatureError", "parse"]


def _case_fold(cc: CharClass) -> CharClass:
    """Extend a class so ASCII letters match either case."""
    lower = CharClass.from_range(ord("a"), ord("z"))
    upper = CharClass.from_range(ord("A"), ord("Z"))
    mask = cc.mask
    mask |= (cc & lower).mask >> 32  # a-z -> A-Z
    mask |= (cc & upper).mask << 32  # A-Z -> a-z
    return CharClass(mask)


class _Parser:
    """Recursive-descent parser over a pattern string."""

    def __init__(
        self, pattern: str, allow_anchors: bool, ignorecase: bool
    ) -> None:
        self.pattern = pattern
        self.pos = 0
        self.allow_anchors = allow_anchors
        self.ignorecase = ignorecase
        self.multiline = False
        # Set by _atom for a bare ^/$/\b token (not one wrapped in a
        # group), so _quantified can reproduce re's "nothing to repeat".
        self._bare_anchor = False

    # -- character stream ------------------------------------------------

    def _peek(self) -> Optional[str]:
        if self.pos < len(self.pattern):
            return self.pattern[self.pos]
        return None

    def _next(self) -> str:
        char = self._peek()
        if char is None:
            raise self._error("unexpected end of pattern")
        if ord(char) > 255:
            raise self._error(
                f"non-byte character {char!r}; patterns are byte regexes"
            )
        self.pos += 1
        return char

    def _eat(self, char: str) -> bool:
        if self._peek() == char:
            self.pos += 1
            return True
        return False

    def _expect(self, char: str) -> None:
        if not self._eat(char):
            raise self._error(f"expected {char!r}")

    def _error(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(message, self.pattern, self.pos)

    def _unsupported(self, message: str) -> UnsupportedFeatureError:
        return UnsupportedFeatureError(message, self.pattern, self.pos)

    # -- grammar -----------------------------------------------------------

    def parse(self) -> ast.Regex:
        node = self._alternation()
        if self._peek() is not None:
            raise self._error(f"unexpected {self._peek()!r}")
        if self.multiline and ast.has_anchors(node):
            # (?m) changes ^/$ to line anchors; this engine only
            # implements stream anchors, so the combination must not
            # silently mis-anchor — quarantine it instead.
            raise UnsupportedFeatureError(
                "multiline flag with anchors is not supported", self.pattern, 0
            )
        return node

    def _alternation(self) -> ast.Regex:
        node = self._concat()
        while self._eat("|"):
            node = ast.alternation(node, self._concat())
        return node

    def _concat(self) -> ast.Regex:
        parts: list = []
        while True:
            char = self._peek()
            if char is None or char in "|)":
                return ast.balanced_concat(parts)
            parts.append(self._quantified())

    def _quantified(self) -> ast.Regex:
        atom = self._atom()
        if self._bare_anchor:
            self._bare_anchor = False
            self._reject_quantified_anchor()
            return atom
        char = self._peek()
        if char == "*":
            self.pos += 1
            atom = ast.star(atom)
        elif char == "+":
            self.pos += 1
            atom = ast.plus(atom)
        elif char == "?":
            self.pos += 1
            atom = ast.optional(atom)
        elif char == "{":
            bounds = self._try_bounds()
            if bounds is None:
                return atom
            low, high = bounds
            atom = ast.repeat(atom, low, high)
        else:
            return atom
        # A trailing '?' marks a lazy quantifier; match-detection
        # semantics is unaffected, so it is consumed and ignored.
        self._eat("?")
        self._reject_stacked_quantifier()
        return atom

    def _reject_quantified_anchor(self) -> None:
        """A quantifier directly on a bare anchor token is "nothing to
        repeat", exactly as Python's ``re`` judges ``^*`` / ``$?`` /
        ``\\b{2}``.  A grouped anchor (``(?:^)*``) still parses — the
        lowering pass quarantines it later."""
        char = self._peek()
        if char in ("*", "+", "?"):
            raise self._error("nothing to repeat")
        if char == "{":
            start = self.pos
            if self._try_bounds() is not None:
                self.pos = start
                raise self._error("nothing to repeat")

    def _reject_stacked_quantifier(self) -> None:
        """Reject a second quantifier applied directly to a quantifier.

        PCRE and Python's ``re`` raise "multiple repeat" for ``a**``,
        ``a+*``, ``a{2,3}*`` and friends; silently collapsing them (the
        old behaviour) masks pattern bugs.  The possessive-looking
        ``a*+`` is rejected too: possessive quantifiers change the
        matched language (``a*+a`` never matches), so treating ``+`` as
        noise would be wrong.  Quantify a group instead: ``(a*)*``.
        """
        char = self._peek()
        if char in ("*", "+", "?"):
            raise self._error("multiple repeat")
        if char == "{":
            start = self.pos
            if self._try_bounds() is not None:
                self.pos = start
                raise self._error("multiple repeat")

    def _try_bounds(self) -> Optional[Tuple[int, Optional[int]]]:
        """Parse ``{m}``, ``{m,}`` or ``{m,n}``; ``None`` on a literal brace."""
        start = self.pos
        self._expect("{")
        low = self._number()
        if low is None:
            self.pos = start
            return None
        high: Optional[int] = low
        if self._eat(","):
            high = self._number()  # None for "{m,}"
        if not self._eat("}"):
            self.pos = start
            return None
        if high is not None and high < low:
            raise self._error(f"repetition bounds out of order {{{low},{high}}}")
        return low, high

    def _number(self) -> Optional[int]:
        digits = ""
        while (char := self._peek()) is not None and char.isdigit():
            digits += self._next()
        return int(digits) if digits else None

    def _emit(self, cc: CharClass) -> ast.Regex:
        if self.ignorecase:
            cc = _case_fold(cc)
        return ast.symbol(cc)

    def _atom(self) -> ast.Regex:
        char = self._next()
        if char == "(":
            saved_ignorecase = self.ignorecase
            scoped = False
            if self._eat("?"):
                scoped = self._group_modifier()
            node = self._alternation()
            self._expect(")")
            if scoped:
                self.ignorecase = saved_ignorecase
            return node
        if char == "[":
            return self._emit(self._bracket_class())
        if char == ".":
            return ast.symbol(CharClass.any())
        if char == "\\":
            nxt = self._peek()
            if nxt == "b":
                self.pos += 1
                return self._anchor(ast.Anchor.WORD, "\\b")
            if nxt == "B":
                raise self._unsupported(
                    "negated word boundary \\B is not supported"
                )
            return self._emit(self._escape())
        if char in "^$":
            kind = ast.Anchor.START if char == "^" else ast.Anchor.END
            return self._anchor(kind, char)
        if char in "*+?{":
            if char == "{":
                # A brace that does not open a quantifier is a literal.
                return ast.symbol(CharClass.from_char(ord(char)))
            raise self._error(f"quantifier {char!r} with nothing to repeat")
        if char in ")":
            raise self._error("unbalanced ')'")
        return self._emit(CharClass.from_char(ord(char)))

    def _anchor(self, kind: str, token: str) -> ast.Regex:
        if not self.allow_anchors:
            raise self._error(f"anchor {token!r} not allowed")
        self._bare_anchor = True
        return ast.anchor(kind)

    def _group_modifier(self) -> bool:
        """Consume a ``(?...`` modifier.

        Returns True when the modifier scopes to this group (the ``:``
        forms), so the caller restores flags at the closing paren.
        Supported: ``(?:`` and inline flags ``i`` (case-insensitive),
        ``s``/``x`` (no-ops here: ``.`` is already any-byte), and ``m``
        (recorded; rejected at the end of the parse if the pattern also
        uses anchors, since line anchors are not implemented).
        """
        char = self._next()
        if char == ":":
            return True
        if char in "=!<":
            raise self._unsupported("lookaround assertions are not supported")
        flags = ""
        while char.isalpha():
            flags += char
            nxt = self._peek()
            if nxt is None or nxt in ":)":
                break
            char = self._next()
        if not flags:
            raise self._unsupported(f"unsupported group modifier {char!r}")
        for flag in flags:
            if flag == "i":
                self.ignorecase = True
            elif flag == "m":
                self.multiline = True
            elif flag not in "sx":
                raise self._unsupported(f"unsupported inline flag {flag!r}")
        return self._eat(":")

    def _escape(self) -> CharClass:
        char = self._next()
        if char == "x":
            return CharClass.from_char(self._hex_byte())
        if char == "b":
            # Only reachable from bracket classes (atom-level \b is the
            # word-boundary anchor): PCRE reads [\b] as backspace.
            return CharClass.from_char(0x08)
        if char == "B":
            raise self._unsupported("\\B is not supported")
        if char in _CONTROL_ESCAPES:
            return CharClass.from_char(_CONTROL_ESCAPES[char])
        if char in _CLASS_ESCAPES:
            return _CLASS_ESCAPES[char]
        if char.isdigit():
            raise self._unsupported("backreferences are not supported")
        return CharClass.from_char(ord(char))

    def _hex_byte(self) -> int:
        digits = ""
        for _ in range(2):
            char = self._peek()
            if char is None or char not in "0123456789abcdefABCDEF":
                break
            digits += self._next()
        if not digits:
            raise self._error("\\x requires hex digits")
        return int(digits, 16)

    def _bracket_class(self) -> CharClass:
        negate = self._eat("^")
        cc = CharClass.empty()
        first = True
        while True:
            char = self._peek()
            if char is None:
                raise self._error("unterminated character class")
            if char == "]" and not first:
                self.pos += 1
                break
            first = False
            cc = cc | self._class_item()
        if cc.is_empty():
            raise self._error("empty character class")
        return ~cc if negate else cc

    def _class_item(self) -> CharClass:
        if self.pattern.startswith("[:", self.pos):
            return self._posix_class()
        lo_cc = self._class_atom()
        if self._peek() == "-" and self.pos + 1 < len(self.pattern) and self.pattern[self.pos + 1] != "]":
            if lo_cc.size() != 1:
                # e.g. [\d-x] — treat '-' literally per PCRE.
                return lo_cc
            self.pos += 1
            hi_cc = self._class_atom()
            if hi_cc.size() != 1:
                raise self._error("invalid range endpoint")
            (lo,) = tuple(lo_cc)
            (hi,) = tuple(hi_cc)
            if hi < lo:
                raise self._error(f"reversed range {chr(lo)}-{chr(hi)}")
            return CharClass.from_range(lo, hi)
        return lo_cc

    def _posix_class(self) -> CharClass:
        """``[:name:]`` inside a bracket class (POSIX notation)."""
        end = self.pattern.find(":]", self.pos + 2)
        if end < 0:
            raise self._error("unterminated POSIX class")
        name = self.pattern[self.pos + 2 : end]
        if name not in _POSIX_CLASSES:
            raise self._error(f"unknown POSIX class [:{name}:]")
        self.pos = end + 2
        return _POSIX_CLASSES[name]

    def _class_atom(self) -> CharClass:
        char = self._next()
        if char == "\\":
            return self._escape()
        return CharClass.from_char(ord(char))


def parse(
    pattern: str, allow_anchors: bool = True, ignorecase: bool = False
) -> ast.Regex:
    """Parse a PCRE-subset pattern into a regex AST.

    >>> from repro.regex import parser
    >>> str(parser.parse("a{3,5}"))
    'a{3,5}'
    """
    return _Parser(pattern, allow_anchors, ignorecase).parse()
