"""Random generation utilities: matching strings and random regexes.

``random_match`` walks an AST and produces a string in the regex's
language — used by the workload generators to plant (partial) matches in
synthetic input streams and by the tests as positive examples.

``random_regex`` produces a random AST from a seeded RNG; the property
tests use it (alongside Hypothesis) to fuzz the compiler pipeline.
"""

from __future__ import annotations

import random
from typing import Optional

from . import ast
from .charclass import CharClass


def random_match(
    node: ast.Regex,
    rng: random.Random,
    max_unbounded: int = 3,
) -> bytes:
    """A random member of the regex's language.

    ``max_unbounded`` caps the iterations chosen for ``*``/``+``/``{m,}``.
    """
    if isinstance(node, (ast.Epsilon, ast.Anchor)):
        # Anchors are zero-width; the caller controls where the sampled
        # fragment is planted, so the assertion may or may not hold there.
        return b""
    if isinstance(node, ast.Symbol):
        choices = list(node.cc)
        if not choices:
            raise ValueError("cannot sample from an empty character class")
        return bytes([rng.choice(choices)])
    if isinstance(node, ast.Concat):
        return random_match(node.left, rng, max_unbounded) + random_match(
            node.right, rng, max_unbounded
        )
    if isinstance(node, ast.Alternation):
        picked = node.left if rng.random() < 0.5 else node.right
        return random_match(picked, rng, max_unbounded)
    if isinstance(node, ast.Star):
        count = rng.randint(0, max_unbounded)
        return b"".join(
            random_match(node.inner, rng, max_unbounded) for _ in range(count)
        )
    if isinstance(node, ast.Plus):
        count = rng.randint(1, max(1, max_unbounded))
        return b"".join(
            random_match(node.inner, rng, max_unbounded) for _ in range(count)
        )
    if isinstance(node, ast.Optional_):
        if rng.random() < 0.5:
            return random_match(node.inner, rng, max_unbounded)
        return b""
    if isinstance(node, ast.Repeat):
        high = node.high
        if high is None:
            high = node.low + max_unbounded
        count = rng.randint(node.low, high)
        return b"".join(
            random_match(node.inner, rng, max_unbounded) for _ in range(count)
        )
    raise TypeError(f"unknown node: {node!r}")


def random_charclass(rng: random.Random, alphabet: bytes) -> CharClass:
    """A random predicate over a restricted alphabet."""
    roll = rng.random()
    if roll < 0.55:
        return CharClass.from_char(rng.choice(alphabet))
    if roll < 0.8:
        size = rng.randint(2, min(4, len(alphabet)))
        return CharClass.from_chars(rng.sample(list(alphabet), size))
    return CharClass.any()


def random_regex(
    rng: random.Random,
    alphabet: bytes = b"abc",
    depth: int = 3,
    allow_counting: bool = True,
    max_bound: int = 12,
) -> ast.Regex:
    """A random regex AST for fuzz testing the pipeline."""
    if depth <= 0:
        return ast.symbol(random_charclass(rng, alphabet))
    roll = rng.random()
    if roll < 0.35:
        return ast.symbol(random_charclass(rng, alphabet))
    if roll < 0.6:
        return ast.concat(
            random_regex(rng, alphabet, depth - 1, allow_counting, max_bound),
            random_regex(rng, alphabet, depth - 1, allow_counting, max_bound),
        )
    if roll < 0.72:
        return ast.alternation(
            random_regex(rng, alphabet, depth - 1, allow_counting, max_bound),
            random_regex(rng, alphabet, depth - 1, allow_counting, max_bound),
        )
    if roll < 0.8:
        return ast.star(
            random_regex(rng, alphabet, depth - 1, allow_counting, max_bound)
        )
    if roll < 0.86:
        return ast.optional(
            random_regex(rng, alphabet, depth - 1, allow_counting, max_bound)
        )
    if roll < 0.9 or not allow_counting:
        return ast.plus(
            random_regex(rng, alphabet, depth - 1, allow_counting, max_bound)
        )
    low = rng.randint(0, max_bound)
    high: Optional[int]
    if rng.random() < 0.4:
        high = low if low > 0 else 1
        low = high
    else:
        high = rng.randint(low, max_bound)
        if high == 0:
            high = 1
    inner = random_regex(rng, alphabet, depth - 1, False, max_bound)
    return ast.repeat(inner, low, high)
