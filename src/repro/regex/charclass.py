"""Character classes over the byte alphabet.

A character class is a predicate over the 256-symbol byte alphabet
(paper §2: ``sigma`` is a subset of the alphabet).  We represent a class as
an immutable 256-bit integer mask: bit ``b`` is set iff byte ``b`` belongs to
the class.  Integer masks make the set algebra (union, intersection,
complement) single machine operations and hashing/equality exact.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from .._bits import popcount

ALPHABET_SIZE = 256
_FULL_MASK = (1 << ALPHABET_SIZE) - 1


class CharClass:
    """An immutable set of byte values, used as a transition predicate.

    Instances are hashable and support the usual set operators::

        >>> digits = CharClass.from_range(ord("0"), ord("9"))
        >>> ord("5") in digits
        True
        >>> (digits | CharClass.from_char(ord("a"))).size()
        11
    """

    __slots__ = ("mask",)

    def __init__(self, mask: int) -> None:
        if not 0 <= mask <= _FULL_MASK:
            raise ValueError(f"mask out of range: {mask:#x}")
        object.__setattr__(self, "mask", mask)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("CharClass is immutable")

    def __reduce__(self):
        # The immutability guard breaks the default slots-state pickling;
        # reconstructing from the mask keeps instances picklable (shard
        # workers receive whole automata over process boundaries).
        return (CharClass, (self.mask,))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> "CharClass":
        """The class matching no symbol."""
        return _EMPTY

    @classmethod
    def any(cls) -> "CharClass":
        """The class matching every byte (the paper's capital-sigma / ``.``)."""
        return _ANY

    @classmethod
    def from_char(cls, byte: int) -> "CharClass":
        """Singleton class for one byte value."""
        if not 0 <= byte < ALPHABET_SIZE:
            raise ValueError(f"byte out of range: {byte}")
        return cls(1 << byte)

    @classmethod
    def from_chars(cls, bytes_: Iterable[int]) -> "CharClass":
        """Class containing exactly the given byte values."""
        mask = 0
        for byte in bytes_:
            if not 0 <= byte < ALPHABET_SIZE:
                raise ValueError(f"byte out of range: {byte}")
            mask |= 1 << byte
        return cls(mask)

    @classmethod
    def from_range(cls, lo: int, hi: int) -> "CharClass":
        """Class for the inclusive byte range ``[lo, hi]``."""
        if not (0 <= lo <= hi < ALPHABET_SIZE):
            raise ValueError(f"bad range: [{lo}, {hi}]")
        return cls(((1 << (hi - lo + 1)) - 1) << lo)

    @classmethod
    def from_string(cls, text: str) -> "CharClass":
        """Class containing the bytes of an ASCII/Latin-1 string."""
        return cls.from_chars(text.encode("latin-1"))

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------

    def __or__(self, other: "CharClass") -> "CharClass":
        return CharClass(self.mask | other.mask)

    def __and__(self, other: "CharClass") -> "CharClass":
        return CharClass(self.mask & other.mask)

    def __sub__(self, other: "CharClass") -> "CharClass":
        return CharClass(self.mask & ~other.mask & _FULL_MASK)

    def __invert__(self) -> "CharClass":
        return CharClass(~self.mask & _FULL_MASK)

    def __contains__(self, byte: int) -> bool:
        return 0 <= byte < ALPHABET_SIZE and bool(self.mask >> byte & 1)

    def matches(self, byte: int) -> bool:
        """True iff the byte satisfies this predicate."""
        return byte in self

    def is_empty(self) -> bool:
        return self.mask == 0

    def is_any(self) -> bool:
        return self.mask == _FULL_MASK

    def size(self) -> int:
        """Number of bytes in the class."""
        return popcount(self.mask)

    def overlaps(self, other: "CharClass") -> bool:
        return bool(self.mask & other.mask)

    def issubset(self, other: "CharClass") -> bool:
        return self.mask & ~other.mask == 0

    def __iter__(self) -> Iterator[int]:
        mask = self.mask
        byte = 0
        while mask:
            if mask & 1:
                yield byte
            mask >>= 1
            byte += 1

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CharClass) and self.mask == other.mask

    def __hash__(self) -> int:
        return hash(self.mask)

    def ranges(self) -> List[Tuple[int, int]]:
        """Maximal inclusive byte ranges covered by the class."""
        out: List[Tuple[int, int]] = []
        start = None
        prev = None
        for byte in self:
            if start is None:
                start = prev = byte
            elif byte == prev + 1:
                prev = byte
            else:
                out.append((start, prev))
                start = prev = byte
        if start is not None:
            out.append((start, prev))
        return out

    def __repr__(self) -> str:
        if self.is_any():
            return "CharClass.any()"
        if self.is_empty():
            return "CharClass.empty()"
        return f"CharClass({pretty(self)!r})"


def _fmt_byte(byte: int) -> str:
    char = chr(byte)
    # Escape every regex metacharacter so printed forms re-parse, both
    # standalone and inside bracket classes (extra escapes are harmless).
    if char in "[]^-\\.$|()?*+{}":
        return "\\" + char
    if 0x20 <= byte < 0x7F:
        return char
    return f"\\x{byte:02x}"


def pretty(cc: CharClass) -> str:
    """Human-readable rendering, e.g. ``[a-z0-9]`` or ``a``."""
    if cc.is_any():
        return "."
    if cc.is_empty():
        return "[]"
    ranges = cc.ranges()
    if len(ranges) == 1 and ranges[0][0] == ranges[0][1]:
        return _fmt_byte(ranges[0][0])
    negated = ~cc
    if negated.size() < cc.size() // 2:
        return "[^" + _render_ranges(negated.ranges()) + "]"
    return "[" + _render_ranges(ranges) + "]"


def _render_ranges(ranges: List[Tuple[int, int]]) -> str:
    parts = []
    for lo, hi in ranges:
        if lo == hi:
            parts.append(_fmt_byte(lo))
        elif hi == lo + 1:
            parts.append(_fmt_byte(lo) + _fmt_byte(hi))
        else:
            parts.append(f"{_fmt_byte(lo)}-{_fmt_byte(hi)}")
    return "".join(parts)


_EMPTY = CharClass(0)
_ANY = CharClass(_FULL_MASK)

# Common PCRE shorthand classes.
DIGIT = CharClass.from_range(ord("0"), ord("9"))
WORD = (
    CharClass.from_range(ord("a"), ord("z"))
    | CharClass.from_range(ord("A"), ord("Z"))
    | DIGIT
    | CharClass.from_char(ord("_"))
)
SPACE = CharClass.from_chars(b" \t\n\r\f\v")
