"""Abstract syntax trees for regexes with bounded repetitions.

The grammar follows the paper (§2)::

    r ::= eps | sigma | r|r | r.r | r* | r? | r+ | r{m,n}

``sigma`` is a :class:`~repro.regex.charclass.CharClass`.  Bounded repetition
``r{m,n}`` keeps its bounds symbolically (the whole point of the paper is to
*not* unfold it); ``n = None`` encodes an unbounded upper limit ``r{m,}``.

Nodes are immutable and hashable so rewrite passes can memoise on them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

from .charclass import CharClass, pretty


class Regex:
    """Base class for all regex AST nodes."""

    __slots__ = ()

    def __reduce__(self) -> tuple:
        # The nodes are frozen dataclasses with __slots__, a combination
        # the default pickle protocol cannot restore (it setattrs into
        # the frozen instance).  Rebuild through the constructor instead
        # — needed by the on-disk compile cache and the parallel
        # compile workers, which ship whole CompiledRegex objects.
        return (
            type(self),
            tuple(getattr(self, f.name) for f in dataclasses.fields(self)),
        )

    def __or__(self, other: "Regex") -> "Regex":
        return alternation(self, other)

    def __add__(self, other: "Regex") -> "Regex":
        return concat(self, other)

    def walk(self) -> Iterator["Regex"]:
        """Pre-order traversal of the subtree rooted at this node."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> Tuple["Regex", ...]:
        return ()


@dataclass(frozen=True)
class Epsilon(Regex):
    """Matches the empty string only."""

    __slots__ = ()

    def __str__(self) -> str:
        # Printed as an empty non-capturing group so every printed AST
        # re-parses (the smart constructors eliminate most Epsilons).
        return "(?:)"


@dataclass(frozen=True)
class Symbol(Regex):
    """A character-class leaf."""

    cc: CharClass

    __slots__ = ("cc",)

    def __str__(self) -> str:
        return pretty(self.cc)


@dataclass(frozen=True)
class Anchor(Regex):
    """A zero-width positional assertion: ``^``, ``$``, or ``\\b``.

    ``kind`` is one of ``"start"`` (``^``, stream offset 0), ``"end"``
    (``$``, end of input) or ``"word"`` (``\\b``, a word/non-word
    boundary over :data:`repro.regex.charclass.WORD`).  Anchors never
    reach the Glushkov/NBVA constructions — the compiler lowers them
    into gated automaton variants first (:mod:`repro.regex.anchors`) —
    but they are first-class AST so the oracle can evaluate them and
    printed ASTs re-parse.
    """

    kind: str

    __slots__ = ("kind",)

    START = "start"
    END = "end"
    WORD = "word"

    def __post_init__(self) -> None:
        if self.kind not in (self.START, self.END, self.WORD):
            raise ValueError(f"unknown anchor kind: {self.kind!r}")

    def __str__(self) -> str:
        return {"start": "^", "end": "$", "word": "\\b"}[self.kind]


@dataclass(frozen=True)
class Concat(Regex):
    left: Regex
    right: Regex

    __slots__ = ("left", "right")

    def children(self) -> Tuple[Regex, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{_wrap(self.left, self)}{_wrap(self.right, self)}"


@dataclass(frozen=True)
class Alternation(Regex):
    left: Regex
    right: Regex

    __slots__ = ("left", "right")

    def children(self) -> Tuple[Regex, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left}|{self.right}"


@dataclass(frozen=True)
class Star(Regex):
    """Kleene star ``r*``."""

    inner: Regex

    __slots__ = ("inner",)

    def children(self) -> Tuple[Regex, ...]:
        return (self.inner,)

    def __str__(self) -> str:
        return f"{_wrap(self.inner, self)}*"


@dataclass(frozen=True)
class Plus(Regex):
    """``r+`` — one or more repetitions."""

    inner: Regex

    __slots__ = ("inner",)

    def children(self) -> Tuple[Regex, ...]:
        return (self.inner,)

    def __str__(self) -> str:
        return f"{_wrap(self.inner, self)}+"


@dataclass(frozen=True)
class Optional_(Regex):
    """``r?`` — zero or one occurrence."""

    inner: Regex

    __slots__ = ("inner",)

    def children(self) -> Tuple[Regex, ...]:
        return (self.inner,)

    def __str__(self) -> str:
        return f"{_wrap(self.inner, self)}?"


@dataclass(frozen=True)
class Repeat(Regex):
    """Bounded repetition ``r{low, high}``; ``high=None`` means unbounded."""

    inner: Regex
    low: int
    high: Optional[int]

    __slots__ = ("inner", "low", "high")

    def __post_init__(self) -> None:
        if self.low < 0:
            raise ValueError(f"negative lower bound: {self.low}")
        if self.high is not None and self.high < self.low:
            raise ValueError(f"bounds out of order: {{{self.low},{self.high}}}")

    def children(self) -> Tuple[Regex, ...]:
        return (self.inner,)

    def is_exact(self) -> bool:
        """True for ``r{n}`` i.e. low == high."""
        return self.high == self.low

    def __str__(self) -> str:
        body = _wrap(self.inner, self)
        if self.high is None:
            return f"{body}{{{self.low},}}"
        if self.is_exact():
            return f"{body}{{{self.low}}}"
        return f"{body}{{{self.low},{self.high}}}"


def _wrap(child: Regex, parent: Regex) -> str:
    """Parenthesise a child when required for faithful printing."""
    needs = isinstance(child, Alternation) or (
        isinstance(parent, (Star, Plus, Optional_, Repeat))
        and isinstance(child, (Concat, Star, Plus, Optional_, Repeat, Anchor))
    )
    text = str(child)
    return f"({text})" if needs else text


# ----------------------------------------------------------------------
# Smart constructors — light algebraic simplification at build time.
# ----------------------------------------------------------------------

EPSILON = Epsilon()


def symbol(cc: CharClass) -> Regex:
    return Symbol(cc)


def literal(text: str) -> Regex:
    """Concatenation of singleton classes for each byte of ``text``."""
    return balanced_concat(
        [Symbol(CharClass.from_char(byte)) for byte in text.encode("latin-1")]
    )


def concat(left: Regex, right: Regex) -> Regex:
    if isinstance(left, Epsilon):
        return right
    if isinstance(right, Epsilon):
        return left
    return Concat(left, right)


def concat_all(*parts: Regex) -> Regex:
    return balanced_concat(list(parts))


def balanced_concat(parts: "list[Regex]") -> Regex:
    """Concatenate a list as a balanced tree.

    Long literal patterns (e.g. multi-kilobyte malware signatures) and
    unfolded repetitions would otherwise produce concatenation chains deep
    enough to exhaust Python's recursion limit in the tree-walking passes.
    """
    parts = [part for part in parts if not isinstance(part, Epsilon)]
    if not parts:
        return EPSILON
    while len(parts) > 1:
        paired = [
            concat(parts[i], parts[i + 1]) if i + 1 < len(parts) else parts[i]
            for i in range(0, len(parts), 2)
        ]
        parts = paired
    return parts[0]


def alternation(left: Regex, right: Regex) -> Regex:
    if left == right:
        return left
    return Alternation(left, right)


def star(inner: Regex) -> Regex:
    if isinstance(inner, (Star, Epsilon)):
        return inner if isinstance(inner, Star) else Star(inner)
    return Star(inner)


def plus(inner: Regex) -> Regex:
    return Plus(inner)


def optional(inner: Regex) -> Regex:
    if isinstance(inner, (Optional_, Star, Epsilon)):
        return inner if not isinstance(inner, Epsilon) else EPSILON
    return Optional_(inner)


def repeat(inner: Regex, low: int, high: Optional[int]) -> Regex:
    """Bounded repetition with trivial-case collapsing."""
    if high == 0:
        return EPSILON
    if (low, high) == (1, 1):
        return inner
    if (low, high) == (0, 1):
        return optional(inner)
    if high is None and low == 0:
        return star(inner)
    if high is None and low == 1:
        return plus(inner)
    return Repeat(inner, low, high)


def anchor(kind: str) -> Regex:
    return Anchor(kind)


def has_anchors(node: Regex) -> bool:
    """True iff the subtree contains any positional assertion."""
    return any(isinstance(sub, Anchor) for sub in node.walk())


def nullable(node: Regex) -> bool:
    """True iff the node's language contains the empty string.

    Anchors are zero-width, hence nullable — at the positions where the
    assertion holds they match exactly the empty string.
    """
    if isinstance(node, (Epsilon, Anchor)):
        return True
    if isinstance(node, Symbol):
        return False
    if isinstance(node, Concat):
        return nullable(node.left) and nullable(node.right)
    if isinstance(node, Alternation):
        return nullable(node.left) or nullable(node.right)
    if isinstance(node, (Star, Optional_)):
        return True
    if isinstance(node, Plus):
        return nullable(node.inner)
    if isinstance(node, Repeat):
        return node.low == 0 or nullable(node.inner)
    raise TypeError(f"unknown node: {node!r}")


def size(node: Regex) -> int:
    """Number of AST nodes — the paper's notion of regex size up to Θ."""
    return sum(1 for _ in node.walk())


def symbol_count(node: Regex) -> int:
    """Number of character-class occurrences (Glushkov positions if unfolded
    repetitions are counted once)."""
    return sum(1 for n in node.walk() if isinstance(n, Symbol))


def max_repeat_bound(node: Regex) -> int:
    """Largest finite repetition upper bound anywhere in the AST (0 if none)."""
    best = 0
    for sub in node.walk():
        if isinstance(sub, Repeat):
            bound = sub.high if sub.high is not None else sub.low
            best = max(best, bound)
    return best


def has_bounded_repetition(node: Regex, threshold: int = 0) -> bool:
    """True iff the AST contains a Repeat with finite upper bound > threshold.

    The paper calls a bounded repetition *non-trivial* when its maximum
    upper bound exceeds 4; pass ``threshold=4`` for that notion.
    """
    for sub in node.walk():
        if isinstance(sub, Repeat):
            bound = sub.high if sub.high is not None else sub.low
            if bound > threshold:
                return True
    return False
