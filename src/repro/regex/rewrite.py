"""Regex rewriting for the BVAP compiler (paper §7).

Three rewrites are implemented:

1. **Unfolding** (Example 7.1): bounded repetitions with a small upper bound
   are expanded, e.g. ``(bc){2} -> bcbc`` and ``d{1,3} -> d d? d?``;
   ``f{2,} -> f f f*``.

2. **Bound splitting** (Example 7.2): repetitions whose bounds exceed the
   (virtual) bit-vector size are split, e.g. with ``bv_size=64``::

       b{147}    -> b{64} b{64} b{19}
       b{2,114}  -> b{1} b{1,64} b{0,32} b{0,16} b?
       a{1,100}  -> a{1,64} a{0,32} a? a? a? a?

   Range pieces are restricted to the widths the hardware can read with its
   ``rAll``/``rHalf``/``rQuarter`` instructions over virtual BV sizes
   (powers of two times 8, up to ``bv_size``), i.e. ``{2,4,8,16,32,64}``.

3. **Flattening**: nested counting cannot map onto the flat per-state bit
   vectors of the BVM, so when a repetition body itself contains a counting
   block the inner (smaller-bound) block is unfolded.  Likewise a repetition
   over a *nullable* body is normalised to a non-nullable body first
   (``r{m,n}`` with nullable ``r`` accepts the same language as
   ``(denull(r)){0,n}``).

The output of :func:`rewrite` contains ``Repeat`` nodes only in *supported*
form: exact ``X{c}`` with ``2 < c <= bv_size`` or ranges ``X{0|1, s}`` with
``s`` a supported read width, in both cases with a non-nullable,
counting-free ``X``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from . import ast
from ..resilience.errors import BudgetExceededError
from .ast import (
    Alternation,
    Concat,
    Epsilon,
    Optional_,
    Plus,
    Regex,
    Repeat,
    Star,
    Symbol,
)

#: Virtual bit-vector sizes realisable on the 8x8 SRAM BV array (§5): the
#: number of Swap words is configurable, so widths are multiples of 8.
VIRTUAL_SIZES = (8, 16, 32, 64)

#: Default ceiling on the symbols one ``{m,n}`` unfolding may create.
#: Large enough for every realistic rule (``url=.{8000}`` is 8000), small
#: enough that a pathological ``(a{1000}){1000}`` cannot silently build a
#: million-node AST.  Override via :attr:`RewriteParams.max_unfold` or a
#: :class:`repro.resilience.Budget`; ``None`` disables the bound.
DEFAULT_MAX_UNFOLD = 1_000_000


def supported_range_widths(bv_size: int) -> Tuple[int, ...]:
    """Range-read widths realisable via rAll/rHalf/rQuarter (§4, §5).

    For each virtual size ``v <= bv_size`` the hardware reads ``r(1, v)``,
    ``r(1, v/2)`` and ``r(1, v/4)``.
    """
    widths = set()
    for v in VIRTUAL_SIZES:
        if v <= bv_size:
            widths.update((v, v // 2, v // 4))
    return tuple(sorted(widths, reverse=True))


@dataclass(frozen=True)
class RewriteParams:
    """User-controlled compiler parameters (§7, §8 design-space knobs)."""

    bv_size: int = 64
    unfold_threshold: int = 4
    #: Hard bound on the symbols a single unfolding may create; raising
    #: :class:`BudgetExceededError` instead of building a huge AST.
    max_unfold: Optional[int] = DEFAULT_MAX_UNFOLD

    def __post_init__(self) -> None:
        if self.bv_size not in VIRTUAL_SIZES:
            raise ValueError(
                f"bv_size must be one of {VIRTUAL_SIZES}, got {self.bv_size}"
            )
        if self.unfold_threshold < 2:
            raise ValueError("unfold_threshold must be >= 2 (paper step 1)")
        if self.max_unfold is not None and self.max_unfold < self.unfold_threshold:
            raise ValueError(
                "max_unfold must be >= unfold_threshold "
                f"({self.unfold_threshold}), got {self.max_unfold}"
            )


# ----------------------------------------------------------------------
# Unfolding
# ----------------------------------------------------------------------


def _num_symbols(node: Regex) -> int:
    """Symbol-node count of an AST (its Glushkov state count)."""
    if isinstance(node, Symbol):
        return 1
    if isinstance(node, Epsilon):
        return 0
    if isinstance(node, Repeat):
        bound = node.high if node.high is not None else node.low + 1
        return _num_symbols(node.inner) * max(bound, 1)
    return sum(_num_symbols(child) for child in node.children())


def check_unfold_budget(
    inner: Regex, low: int, high: Optional[int], limit: Optional[int]
) -> None:
    """Raise :class:`BudgetExceededError` when unfolding ``inner{low,high}``
    would create more than ``limit`` symbols (``None`` = unbounded)."""
    if limit is None:
        return
    bound = high if high is not None else low + 1
    estimated = _num_symbols(inner) * max(bound, 1)
    if estimated > limit:
        shown = f"{{{low}}}" if high == low else f"{{{low},{high}}}"
        raise BudgetExceededError(
            f"unfolding repetition {shown} would create {estimated} symbols, "
            f"exceeding the configured max_unfold={limit}",
            kind="unfold",
            limit=limit,
            actual=estimated,
        )


def unfold_repeat(
    inner: Regex,
    low: int,
    high: Optional[int],
    limit: Optional[int] = None,
) -> Regex:
    """Expand ``inner{low,high}`` with concatenation/?/* only (§2).

    ``r{m,n} == r^m (r?)^(n-m)`` and ``r{m,} == r^m r*``.

    The result is a *balanced* concatenation so that unfolding large
    bounds (the baseline processors unfold everything) keeps the AST
    shallow enough for the recursive passes.  ``limit`` bounds the
    expansion (see :func:`check_unfold_budget`).
    """
    check_unfold_budget(inner, low, high, limit)
    parts: List[Regex] = [inner] * low
    if high is None:
        parts.append(ast.star(inner))
    else:
        parts.extend([ast.optional(inner)] * (high - low))
    return ast.balanced_concat(parts)


def unfold_all(
    node: Regex, limit: Optional[int] = DEFAULT_MAX_UNFOLD
) -> Regex:
    """Unfold every bounded repetition (the baseline processors' strategy)."""
    return _map_repeats(
        node, lambda inner, lo, hi: unfold_repeat(inner, lo, hi, limit)
    )


def unfold_small(
    node: Regex, threshold: int, limit: Optional[int] = DEFAULT_MAX_UNFOLD
) -> Regex:
    """Unfold repetitions whose finite upper bound is <= ``threshold``."""

    def visit(inner: Regex, low: int, high: Optional[int]) -> Regex:
        bound = high if high is not None else low
        if bound <= threshold:
            return unfold_repeat(inner, low, high, limit)
        return ast.repeat(inner, low, high)

    return _map_repeats(node, visit)


def _map_repeats(node: Regex, fn) -> Regex:
    """Rebuild the AST bottom-up, passing each Repeat through ``fn``."""
    if isinstance(node, (Epsilon, Symbol)):
        return node
    if isinstance(node, Concat):
        return ast.concat(_map_repeats(node.left, fn), _map_repeats(node.right, fn))
    if isinstance(node, Alternation):
        return ast.alternation(_map_repeats(node.left, fn), _map_repeats(node.right, fn))
    if isinstance(node, Star):
        return ast.star(_map_repeats(node.inner, fn))
    if isinstance(node, Plus):
        return ast.plus(_map_repeats(node.inner, fn))
    if isinstance(node, Optional_):
        return ast.optional(_map_repeats(node.inner, fn))
    if isinstance(node, Repeat):
        return fn(_map_repeats(node.inner, fn), node.low, node.high)
    raise TypeError(f"unknown node: {node!r}")


# ----------------------------------------------------------------------
# Nullability normalisation
# ----------------------------------------------------------------------


def denull(node: Regex) -> Optional[Regex]:
    """The regex for ``L(node) \\ {epsilon}``; ``None`` if that is empty."""
    if isinstance(node, Epsilon):
        return None
    if isinstance(node, Symbol):
        return node
    if isinstance(node, Alternation):
        left = denull(node.left)
        right = denull(node.right)
        if left is None:
            return right
        if right is None:
            return left
        return ast.alternation(left, right)
    if isinstance(node, Concat):
        if not ast.nullable(node.left) or not ast.nullable(node.right):
            return node  # already epsilon-free as a whole
        left = denull(node.left)
        right = denull(node.right)
        parts: List[Regex] = []
        if left is not None:
            parts.append(ast.concat(left, node.right))
        if right is not None:
            parts.append(ast.concat(node.left, right))
        if not parts:
            return None
        out = parts[0]
        for part in parts[1:]:
            out = ast.alternation(out, part)
        return out
    if isinstance(node, (Star, Plus)):
        inner = denull(node.inner)
        return None if inner is None else ast.plus(inner)
    if isinstance(node, Optional_):
        return denull(node.inner)
    if isinstance(node, Repeat):
        inner = denull(node.inner)
        if inner is None:
            return None
        if not ast.nullable(node.inner) and node.low >= 1:
            return node
        return ast.repeat(inner, 1, node.high)
    raise TypeError(f"unknown node: {node!r}")


# ----------------------------------------------------------------------
# Bound decomposition
# ----------------------------------------------------------------------


def decompose_bounds(
    low: int, high: int, params: RewriteParams
) -> List[Tuple[int, int]]:
    """Split ``{low, high}`` into hardware-supported pieces (Example 7.2).

    Returns ``(lo_i, hi_i)`` pieces whose mins sum to ``low`` and whose maxes
    sum to ``high``.  Each piece is an exact count ``<= bv_size``, a range
    ``{0|1, s}`` with ``s`` a supported read width, or a small range
    ``<= unfold_threshold`` destined for unfolding.
    """
    if high < low:
        raise ValueError(f"bounds out of order: {{{low},{high}}}")
    pieces: List[Tuple[int, int]] = []
    bv = params.bv_size

    if low == high:
        count = low
        while count > bv:
            pieces.append((bv, bv))
            count -= bv
        if count > 0:
            pieces.append((count, count))
        return pieces

    # r{m,n} -> r{m-1} . r{1, n-m+1}   (paper §4)
    if low >= 2:
        pieces.extend(decompose_bounds(low - 1, low - 1, params))
        high -= low - 1
        low = 1

    widths = supported_range_widths(bv)
    remaining_min = low  # 0 or 1, absorbed into the first range piece
    remaining_max = high
    while remaining_max > 0:
        if remaining_max <= params.unfold_threshold:
            pieces.append((remaining_min, remaining_max))
            break
        fit = [w for w in widths if w <= remaining_max]
        if not fit:
            pieces.append((remaining_min, remaining_max))
            break
        width = fit[0]
        pieces.append((remaining_min, width))
        remaining_max -= width
        remaining_min = 0
    return pieces


def is_supported_repeat(node: Repeat, params: RewriteParams) -> bool:
    """True iff the hardware can run this Repeat on a single BV chain."""
    if node.high is None:
        return False
    if ast.nullable(node.inner) or ast.has_bounded_repetition(node.inner):
        return False
    if node.is_exact():
        return params.unfold_threshold < node.low <= params.bv_size
    return (
        node.low in (0, 1)
        and node.high in supported_range_widths(params.bv_size)
        and node.high > params.unfold_threshold
    )


# ----------------------------------------------------------------------
# Full rewrite pipeline
# ----------------------------------------------------------------------


def rewrite(node: Regex, params: RewriteParams = RewriteParams()) -> Regex:
    """Apply the full §7 rewrite pipeline.

    After this pass every remaining ``Repeat`` satisfies
    :func:`is_supported_repeat`.
    """
    node = _flatten_nesting(node, params)
    node = _split_and_unfold(node, params)
    return node


def _flatten_nesting(node: Regex, params: RewriteParams) -> Regex:
    """Remove nested counting and nullable repetition bodies (bottom-up)."""

    def visit(inner: Regex, low: int, high: Optional[int]) -> Regex:
        if ast.nullable(inner):
            # L(r{m,n}) with nullable r == L(denull(r){0,n})
            stripped = denull(inner)
            if stripped is None:
                return ast.EPSILON
            inner = stripped
            low = 0
        if ast.has_bounded_repetition(inner, threshold=params.unfold_threshold):
            # Inner counting survived its own rewrite only if large; a BV
            # cannot nest, so the inner block is unfolded here.
            inner = unfold_all(inner, params.max_unfold)
        return ast.repeat(inner, low, high)

    return _map_repeats(node, visit)


def check_split_budget(
    inner: Regex, low: int, high: Optional[int], params: RewriteParams
) -> None:
    """Bound the *bound-splitting* expansion of a huge repetition.

    Splitting ``X{m,n}`` produces roughly ``n / bv_size`` chained BV
    pieces, each repeating ``X`` — the same blow-up as unfolding, merely
    divided by the vector width — so the ``max_unfold`` budget covers it
    too (e.g. ``x{1,10^8}`` would otherwise silently build ~1.5M nodes).
    """
    if params.max_unfold is None:
        return
    bound = high if high is not None else low
    estimated = _num_symbols(inner) * (bound // params.bv_size + 1)
    if estimated > params.max_unfold:
        shown = f"{{{low}}}" if high == low else f"{{{low},{high}}}"
        raise BudgetExceededError(
            f"splitting repetition {shown} into {params.bv_size}-bit vector "
            f"pieces would create {estimated} states, exceeding the "
            f"configured max_unfold={params.max_unfold}",
            kind="unfold",
            limit=params.max_unfold,
            actual=estimated,
        )


def _split_and_unfold(node: Regex, params: RewriteParams) -> Regex:
    def visit(inner: Regex, low: int, high: Optional[int]) -> Regex:
        check_split_budget(inner, low, high, params)
        if high is None:
            # r{m,} == r{m} r*   (§2)
            head = visit(inner, low, low) if low > 0 else ast.EPSILON
            return ast.concat(head, ast.star(inner))
        bound = high
        if bound <= params.unfold_threshold:
            return unfold_repeat(inner, low, high, params.max_unfold)
        pieces = decompose_bounds(low, high, params)
        out: Regex = ast.EPSILON
        for lo, hi in pieces:
            if hi <= params.unfold_threshold:
                out = ast.concat(
                    out, unfold_repeat(inner, lo, hi, params.max_unfold)
                )
            else:
                out = ast.concat(out, ast.repeat(inner, lo, hi))
        return out

    return _map_repeats(node, visit)
