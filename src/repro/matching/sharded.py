"""Sharded parallel scan orchestrator: fused shards on worker processes.

The fused engine (:mod:`repro.matching.fused`) collapses a whole pattern
set into one bitset step per byte, but it is single-process — on a
multi-core machine every other core idles.  BVAP itself scales the other
way (§8): many patterns are packed onto independent tiles/arrays/banks
that all consume the same input stream in parallel.  This module is the
software analogue of that decomposition:

1. **Planning** (:func:`plan_shards`): the compiled patterns are
   partitioned into *K* shards by a compile-time cost model
   (:func:`estimate_cost`) combining the scan-NFA state count, the
   widest virtual bit vector, and an activation-ratio hint derived from
   the character-class density of the automaton — the same signals
   :mod:`repro.analysis.characterize` aggregates over rule sets.
   Shards are balanced greedily (longest-processing-time first), the
   classic bank-partitioning heuristic CAMA applies at the hardware
   level.

2. **Execution** (:class:`ShardedScanner`): each shard runs the fused
   engine in a long-lived worker process.  Input chunks are broadcast
   to every worker, and up to :data:`MAX_INFLIGHT_CHUNKS` chunks are in
   flight at once — the software mirror of §6's ping-pong I/O
   buffering: while the workers chew on chunk *i*, chunk *i+1* is
   already in their pipes.

3. **Deterministic merge**: every worker reports ``(pattern_id, end)``
   events per chunk; the orchestrator merges them in ``(end,
   pattern_id)`` order, which is byte-identical to the stream the
   single-process fused engine emits (a dedicated parity test enforces
   this on the golden corpus and the differential fuzzer).

Resilience mirrors the per-pattern quarantine semantics: a shard whose
worker dies (crash, SIGKILL, poisoned automaton) or stops answering is
*degraded*, never fatal — its patterns stop reporting, the scan
completes on the surviving shards, the failure is recorded in
:attr:`ShardedScanner.failures`, and the ``scan.shard.failed`` counter
is incremented when telemetry is on.

An ``inline`` backend runs the same plan/merge machinery on in-process
matchers (no workers) — the degenerate single-machine mode used for
unit-testing the merge logic and on platforms without multiprocessing.
"""

from __future__ import annotations

import logging
import math
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..telemetry import flight, profiler
from ..automata.ah import is_counter_free
from ..compiler.pipeline import CompiledRegex
from .fused import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_TABLE_STATES,
    FusedAutomaton,
    FusedMatcher,
    fuse_patterns,
)

log = logging.getLogger("repro.matching.sharded")

#: Default broadcast-chunk size.  Large enough that one pickle
#: round-trip per worker amortises over tens of thousands of scanned
#: bytes, small enough that two in-flight chunks stay cache-friendly.
DEFAULT_CHUNK_BYTES = 1 << 16

#: Ping-pong depth: how many broadcast chunks may be in flight before
#: the orchestrator blocks on the oldest one (§6 I/O double buffering).
MAX_INFLIGHT_CHUNKS = 2

#: How long the orchestrator waits for one shard's chunk reply before
#: declaring the worker hung and degrading the shard.
DEFAULT_RECV_TIMEOUT_S = 60.0

BACKENDS = ("process", "inline")


# ---------------------------------------------------------------------------
# Compile-time cost planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardCost:
    """Cost estimate for scanning one compiled pattern.

    Attributes:
        slot: index into the compiled-pattern list being planned.
        states: estimated scan-NFA state count — the AH-NBVA size for
            counter-free patterns (the graph the fused engine reuses),
            else the fully unfolded Glushkov size.
        bv_width: widest virtual bit vector the pattern demands (0 when
            counter-free after rewriting).
        activation_ratio: mean character-class density of the states in
            ``[0, 1]`` — dense classes keep more states live per byte,
            the activation-ratio signal of ``analysis.characterize``.
        cost: the scalar the planner balances.
    """

    slot: int
    states: int
    bv_width: int
    activation_ratio: float
    cost: float


def estimate_cost(compiled: CompiledRegex, slot: int = 0) -> ShardCost:
    """Estimate the per-byte scan cost one pattern adds to a shard.

    The model is deliberately simple and fully compile-time: cost grows
    linearly with the scan-NFA state count (mask width and closure work),
    is scaled up by the activation ratio (dense classes stay live and
    defeat the lazy-DFA cache), and pays a logarithmic surcharge for wide
    bit vectors (their unfolded scan NFAs branch more).
    """
    ah = compiled.ah
    if is_counter_free(ah):
        states = ah.num_states
        bv_width = 0
    else:
        states = compiled.unfolded_states or 4 * ah.num_states
        bv_width = max(compiled.virtual_widths(), default=0)
    if ah.num_states:
        density = sum(state.cc.size() for state in ah.states) / ah.num_states
        activation = density / 256.0
    else:
        activation = 0.0
    cost = float(max(states, 1)) * (1.0 + activation)
    if bv_width:
        cost *= 1.0 + math.log2(1 + bv_width) / 8.0
    return ShardCost(
        slot=slot,
        states=states,
        bv_width=bv_width,
        activation_ratio=activation,
        cost=cost,
    )


@dataclass
class ShardPlan:
    """The planner's output: which pattern slots land on which shard."""

    shards: List[List[int]]
    costs: List[float]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def balance(self) -> float:
        """Max shard cost over mean shard cost (1.0 = perfectly even)."""
        if not self.costs or not sum(self.costs):
            return 1.0
        mean = sum(self.costs) / len(self.costs)
        return max(self.costs) / mean

    def to_json(self) -> Dict[str, object]:
        return {
            "shards": [list(s) for s in self.shards],
            "costs": [round(c, 3) for c in self.costs],
            "balance": round(self.balance(), 4),
        }


def plan_shards(
    compiled: Sequence[CompiledRegex],
    num_shards: int,
    costs: Optional[Sequence[ShardCost]] = None,
) -> ShardPlan:
    """Partition patterns into at most ``num_shards`` balanced shards.

    Greedy LPT (longest processing time first): sort patterns by
    descending cost, always assign to the currently lightest shard.
    Deterministic — ties break on slot index — so the same pattern set
    always yields the same plan.  Empty shards (more shards than
    patterns) are dropped.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if costs is None:
        costs = [estimate_cost(c, slot) for slot, c in enumerate(compiled)]
    buckets: List[List[int]] = [[] for _ in range(min(num_shards, max(len(compiled), 1)))]
    totals = [0.0] * len(buckets)
    for item in sorted(costs, key=lambda c: (-c.cost, c.slot)):
        lightest = min(range(len(buckets)), key=lambda i: (totals[i], i))
        buckets[lightest].append(item.slot)
        totals[lightest] += item.cost
    shards = [sorted(bucket) for bucket in buckets if bucket]
    totals = [t for bucket, t in zip(buckets, totals) if bucket]
    # Stable shard numbering: order shards by their first (lowest) slot.
    order = sorted(range(len(shards)), key=lambda i: shards[i][0])
    return ShardPlan(
        shards=[shards[i] for i in order], costs=[totals[i] for i in order]
    )


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _shard_worker_main(
    conn,
    automaton: FusedAutomaton,
    report_ids: Sequence[int],
    cache_bytes: int,
    table_states: int = DEFAULT_TABLE_STATES,
    prefilter: bool = True,
) -> None:
    """Command loop of one shard worker process.

    Protocol (parent -> worker / worker -> parent):

    * ``("feed", seq, data)`` -> ``("events", seq, [(pattern_id, end),
      ...], busy_s, stats)`` — fused-engine feed over one chunk; end
      offsets are chunk-relative, pattern ids are the *original* set
      ids.  ``stats`` is the worker's cumulative telemetry snapshot
      (lazy-DFA cache hits/misses, symbols scanned) — three ints per
      reply, so shipping it costs nothing measurable, and the parent
      merges the *deltas* into its registry under a ``shard`` label.
    * ``("reset",)`` -> ``("ok",)`` — rewind to the empty activation.
    * ``("ping",)`` -> ``("ok",)`` — liveness probe.
    * ``("fail",)`` — hard-exit(1), the fault-injection hook tests use
      to kill a shard deterministically mid-stream.
    * ``("stop",)`` — clean shutdown.
    """
    matcher = FusedMatcher(
        automaton,
        cache_bytes=cache_bytes,
        table_states=table_states,
        prefilter=prefilter,
    )
    ids = list(report_ids)
    symbols = 0
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return  # parent went away; die quietly
            op = message[0]
            if op == "feed":
                _, seq, data = message
                started = time.perf_counter()
                events = [
                    (ids[slot], end) for slot, end in matcher.feed(data)
                ]
                symbols += len(data)
                stats = {
                    "cache_hits": matcher.cache_hits,
                    "cache_misses": matcher.cache_misses,
                    "symbols": symbols,
                }
                conn.send(
                    (
                        "events",
                        seq,
                        events,
                        time.perf_counter() - started,
                        stats,
                    )
                )
            elif op == "reset":
                matcher.reset()
                conn.send(("ok",))
            elif op == "ping":
                conn.send(("ok",))
            elif op == "fail":
                os._exit(1)
            elif op == "hang":
                time.sleep(message[1])
                conn.send(("ok",))
            elif op == "stop":
                return
    finally:
        conn.close()


class _InlineShard:
    """In-process stand-in for a worker: same protocol, no process."""

    def __init__(
        self,
        automaton: FusedAutomaton,
        report_ids: Sequence[int],
        cache_bytes: int,
        label: str = "shard",
        table_states: int = DEFAULT_TABLE_STATES,
        prefilter: bool = True,
    ) -> None:
        self.matcher = FusedMatcher(
            automaton,
            cache_bytes=cache_bytes,
            table_states=table_states,
            prefilter=prefilter,
        )
        self.ids = list(report_ids)
        self.label = label
        self.symbols = 0

    def feed(
        self, data: bytes
    ) -> Tuple[List[Tuple[int, int]], float, Dict[str, int]]:
        started = time.perf_counter()
        prof = profiler.active_profiler()
        if prof is not None:
            # Inline shards are the profiler's multi-binding case: every
            # shard walks the same input, so tallies merge by global
            # pattern id and heatmap buckets line up.
            pairs = prof.feed(self.matcher, data, self.ids, label=self.label)
        else:
            pairs = self.matcher.feed(data)
        events = [(self.ids[slot], end) for slot, end in pairs]
        self.symbols += len(data)
        stats = {
            "cache_hits": self.matcher.cache_hits,
            "cache_misses": self.matcher.cache_misses,
            "symbols": self.symbols,
        }
        return events, time.perf_counter() - started, stats

    def reset(self) -> None:
        self.matcher.reset()


# ---------------------------------------------------------------------------
# Orchestrator
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardFailure:
    """One degraded shard: which patterns stopped reporting and why."""

    shard: int
    pattern_ids: Tuple[int, ...]
    reason: str  # "died", "timeout", or "send_failed"


@dataclass
class _Shard:
    """Parent-side bookkeeping for one shard."""

    index: int
    slots: List[int]
    pattern_ids: List[int]
    automaton: FusedAutomaton
    #: The shard's compiled patterns, kept so incremental add/remove can
    #: re-fuse just this shard without the whole-set compiled list.
    compiled: List[CompiledRegex] = field(default_factory=list)
    #: Running cost-model total; the incremental planner assigns new
    #: patterns to the currently lightest shard by this number.
    cost: float = 0.0
    process: Optional[object] = None  # multiprocessing.Process
    conn: Optional[object] = None  # parent end of the duplex pipe
    inline: Optional[_InlineShard] = None
    alive: bool = True
    events_total: int = 0
    busy_s: float = 0.0
    #: Latest cumulative telemetry snapshot shipped back by the worker
    #: (cache hits/misses, symbols scanned) and the portion of it already
    #: published into the parent registry — the difference is the delta
    #: :meth:`ShardedScanner._record_metrics` merges under ``shard=N``.
    worker_stats: Dict[str, int] = field(default_factory=dict)
    published_stats: Dict[str, int] = field(default_factory=dict)
    # Replies can momentarily run ahead of the collector when a chunk's
    # answer arrives while a later chunk is being sent; buffer by seq.
    pending: Dict[
        int, Tuple[List[Tuple[int, int]], float, Dict[str, int]]
    ] = field(default_factory=dict)


class ShardedScanner:
    """Scan a compiled pattern set on K fused shards in parallel.

    The streaming contract is the per-engine one: :meth:`feed` reports
    chunk-relative end offsets and state persists across calls;
    :meth:`reset` rewinds every shard.  Workers are started lazily on
    first use and torn down by :meth:`close` (also via the context
    manager protocol and, best-effort, on garbage collection).

    Args:
        compiled: the compiled patterns (quarantine survivors).
        pattern_ids: original set ids to report, one per compiled entry.
        num_shards: target shard count; defaults to ``os.cpu_count()``
            capped at the pattern count.
        backend: ``"process"`` (default) or ``"inline"``.
        chunk_bytes: broadcast granularity (see module docstring).
        cache_bytes: per-shard lazy-DFA cache budget.
        recv_timeout_s: per-chunk reply deadline before a shard is
            declared hung and degraded.
        mp_context: a ``multiprocessing`` context; defaults to ``fork``
            where available (cheap start, no automaton re-pickle) else
            the platform default.
    """

    def __init__(
        self,
        compiled: Sequence[CompiledRegex],
        pattern_ids: Optional[Sequence[int]] = None,
        num_shards: Optional[int] = None,
        *,
        backend: str = "process",
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        recv_timeout_s: float = DEFAULT_RECV_TIMEOUT_S,
        mp_context=None,
        table_states: int = DEFAULT_TABLE_STATES,
        prefilter: bool = True,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1")
        if recv_timeout_s <= 0:
            raise ValueError("recv_timeout_s must be positive")
        if pattern_ids is None:
            pattern_ids = [c.regex_id for c in compiled]
        if len(pattern_ids) != len(compiled):
            raise ValueError("pattern_ids and compiled must align")
        if num_shards is None:
            num_shards = max(1, min(len(compiled), os.cpu_count() or 1))
        self.backend = backend
        self.chunk_bytes = chunk_bytes
        self.cache_bytes = cache_bytes
        if table_states < 0:
            raise ValueError("table_states must be >= 0")
        self.table_states = table_states
        self.prefilter = bool(prefilter)
        self.recv_timeout_s = recv_timeout_s
        self._mp_context = mp_context
        self.plan = plan_shards(compiled, num_shards)
        self.failures: List[ShardFailure] = []
        self._started = False
        self._closed = False
        self._shards: List[_Shard] = []
        ids = list(pattern_ids)
        for index, slots in enumerate(self.plan.shards):
            members = [compiled[slot] for slot in slots]
            self._shards.append(
                _Shard(
                    index=index,
                    slots=list(slots),
                    pattern_ids=[ids[slot] for slot in slots],
                    automaton=fuse_patterns(members),
                    compiled=members,
                    cost=self.plan.costs[index],
                )
            )

    # -- lifecycle -----------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def live_shards(self) -> List[int]:
        return [s.index for s in self._shards if s.alive]

    def worker_pids(self) -> List[Optional[int]]:
        """One pid per shard (None: inline backend or not started)."""
        return [
            s.process.pid if s.process is not None else None
            for s in self._shards
        ]

    def _context(self):
        if self._mp_context is not None:
            return self._mp_context
        import multiprocessing

        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # platform without fork
            return multiprocessing.get_context()

    def _start_shard(self, shard: _Shard) -> None:
        """Launch one shard's execution backend (worker or inline)."""
        if self.backend == "inline":
            shard.inline = _InlineShard(
                shard.automaton,
                shard.pattern_ids,
                self.cache_bytes,
                label=f"shard-{shard.index}",
                table_states=self.table_states,
                prefilter=self.prefilter,
            )
            return
        ctx = self._context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_shard_worker_main,
            args=(
                child_conn,
                shard.automaton,
                shard.pattern_ids,
                self.cache_bytes,
                self.table_states,
                self.prefilter,
            ),
            daemon=True,
            name=f"repro-shard-{shard.index}",
        )
        process.start()
        child_conn.close()
        shard.process = process
        shard.conn = parent_conn

    def _stop_shard(self, shard: _Shard) -> None:
        """Tear down one shard's backend, leaving its bookkeeping alone."""
        if shard.conn is not None:
            try:
                if shard.alive:
                    shard.conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
            try:
                shard.conn.close()
            except OSError:
                pass
            shard.conn = None
        if shard.process is not None:
            shard.process.join(timeout=2.0)
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=2.0)
            shard.process = None
        shard.inline = None

    def start(self) -> None:
        """Start the workers (idempotent; feed/reset call this lazily)."""
        if self._started:
            return
        if self._closed:
            raise RuntimeError("ShardedScanner is closed")
        self._started = True
        for shard in self._shards:
            self._start_shard(shard)
        if self.backend == "process" and telemetry.metrics_enabled():
            telemetry.registry().gauge("scan.shard.workers").set(
                len(self.live_shards())
            )

    def close(self) -> None:
        """Tear down every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if not self._started:
            return
        for shard in self._shards:
            self._stop_shard(shard)
            shard.alive = False

    def __enter__(self) -> "ShardedScanner":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; close() is the real API
        try:
            self.close()
        except Exception:
            pass

    # -- incremental updates -------------------------------------------

    def _restart_shard(self, shard: _Shard) -> None:
        """Re-fuse one shard after its pattern list changed and relaunch
        only its backend.  The restarted shard resumes from the empty
        activation; untouched shards keep their workers and state."""
        shard.automaton = fuse_patterns(shard.compiled)
        shard.pending.clear()
        # The fresh worker's cumulative counters restart at zero, so the
        # published baseline must too or the next delta would go negative.
        shard.worker_stats = {}
        shard.published_stats = {}
        if self._started and shard.alive:
            self._stop_shard(shard)
            self._start_shard(shard)

    def add_patterns(
        self,
        compiled: Sequence[CompiledRegex],
        pattern_ids: Optional[Sequence[int]] = None,
    ) -> None:
        """Add compiled patterns, re-fusing only the shards that receive
        them.

        Each pattern is assigned to the currently lightest live shard by
        the running cost totals — the online counterpart of the greedy
        LPT plan — so an add touches (and restarts) as few shards as
        possible.  When every shard has degraded, a fresh shard is
        created to host the new patterns.
        """
        if self._closed:
            raise RuntimeError("ShardedScanner is closed")
        if pattern_ids is None:
            pattern_ids = [c.regex_id for c in compiled]
        if len(pattern_ids) != len(compiled):
            raise ValueError("pattern_ids and compiled must align")
        touched = []
        for regex, pattern_id in zip(compiled, pattern_ids):
            cost = estimate_cost(regex).cost
            live = [s for s in self._shards if s.alive]
            if not live:
                shard = _Shard(
                    index=len(self._shards),
                    slots=[],
                    pattern_ids=[],
                    automaton=fuse_patterns([]),
                    compiled=[],
                )
                self._shards.append(shard)
                live = [shard]
            shard = min(live, key=lambda s: (s.cost, s.index))
            shard.compiled.append(regex)
            shard.pattern_ids.append(pattern_id)
            shard.cost += cost
            if shard not in touched:
                touched.append(shard)
        for shard in touched:
            self._restart_shard(shard)

    def remove_patterns(self, pattern_ids: Sequence[int]) -> None:
        """Drop patterns, re-fusing only the shards that held them.

        Shards left empty are retired entirely (worker stopped, shard
        removed from the rotation).  Raises ``ValueError`` if any id is
        unknown to the scanner.
        """
        if self._closed:
            raise RuntimeError("ShardedScanner is closed")
        remove = set(pattern_ids)
        known = {pid for s in self._shards for pid in s.pattern_ids}
        unknown = remove - known
        if unknown:
            raise ValueError(f"unknown pattern ids: {sorted(unknown)}")
        survivors = []
        for shard in self._shards:
            if not remove.intersection(shard.pattern_ids):
                survivors.append(shard)
                continue
            keep = [
                i for i, pid in enumerate(shard.pattern_ids)
                if pid not in remove
            ]
            shard.compiled = [shard.compiled[i] for i in keep]
            shard.pattern_ids = [shard.pattern_ids[i] for i in keep]
            shard.cost = sum(
                estimate_cost(c).cost for c in shard.compiled
            )
            if shard.compiled:
                self._restart_shard(shard)
                survivors.append(shard)
            else:
                self._stop_shard(shard)
        self._shards = survivors

    # -- failure handling ----------------------------------------------

    def _degrade(self, shard: _Shard, reason: str) -> None:
        """Mark one shard failed; the scan continues without it."""
        if not shard.alive:
            return
        shard.alive = False
        if shard.conn is not None:
            try:
                shard.conn.close()
            except OSError:
                pass
            shard.conn = None
        if shard.process is not None:
            if shard.process.is_alive():
                shard.process.terminate()
            shard.process.join(timeout=2.0)
            shard.process = None
        failure = ShardFailure(
            shard=shard.index,
            pattern_ids=tuple(shard.pattern_ids),
            reason=reason,
        )
        self.failures.append(failure)
        log.warning(
            "shard %d degraded (%s); patterns %s stop reporting",
            shard.index,
            reason,
            list(shard.pattern_ids),
        )
        if telemetry.metrics_enabled():
            registry = telemetry.registry()
            registry.counter("scan.shard.failed").inc()
            registry.gauge("scan.shard.workers").set(len(self.live_shards()))
        if flight.flight_enabled():
            flight.record(
                "shard_failure",
                shard=shard.index,
                reason=reason,
                pattern_ids=list(shard.pattern_ids),
            )
            flight.auto_dump(f"shard-{shard.index}-{reason}")

    def inject_fault(self, shard_index: int, mode: str = "die") -> None:
        """Fault-injection hook for chaos tests (process backend only).

        ``mode="die"`` makes the worker hard-exit before its next reply;
        ``mode="hang"`` makes it sleep past the reply deadline.  Either
        way the next :meth:`feed`/:meth:`reset` degrades the shard
        instead of failing the scan.
        """
        if mode not in ("die", "hang"):
            raise ValueError(f"mode must be 'die' or 'hang', got {mode!r}")
        self.start()
        if self.backend != "process":
            raise RuntimeError("fault injection needs the process backend")
        shard = self._shards[shard_index]
        if not shard.alive:
            return
        message = (
            ("fail",) if mode == "die" else ("hang", 4 * self.recv_timeout_s)
        )
        self._send(shard, message)

    # -- scanning ------------------------------------------------------

    def _send(self, shard: _Shard, message) -> None:
        try:
            shard.conn.send(message)
        except (OSError, ValueError, BrokenPipeError):
            self._degrade(shard, "send_failed")

    def _recv_reply(self, shard: _Shard, seq: int):
        """One shard's reply for chunk ``seq`` (None once degraded)."""
        if not shard.alive:
            return None
        if seq in shard.pending:
            return shard.pending.pop(seq)
        deadline = time.monotonic() + self.recv_timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._degrade(shard, "timeout")
                return None
            try:
                if not shard.conn.poll(min(remaining, 0.25)):
                    continue
                message = shard.conn.recv()
            except (EOFError, OSError):
                self._degrade(shard, "died")
                return None
            if message[0] != "events":
                continue  # stale ok from an interleaved reset
            _, got_seq, events, busy_s, stats = message
            if got_seq == seq:
                return events, busy_s, stats
            shard.pending[got_seq] = (events, busy_s, stats)

    def _collect(self, seq: int, base: int) -> List[Tuple[int, int]]:
        """Merge all live shards' events for one chunk, rebased to the
        stream offset, in the fused engine's ``(end, pattern_id)``
        order."""
        gathered: List[Tuple[int, int]] = []
        for shard in self._shards:
            reply = self._recv_reply(shard, seq)
            if reply is None:
                continue
            events, busy_s, stats = reply
            shard.events_total += len(events)
            shard.busy_s += busy_s
            shard.worker_stats = stats
            gathered.extend(events)
        gathered.sort(key=lambda event: (event[1], event[0]))
        return [(pattern_id, base + end) for pattern_id, end in gathered]

    def feed(self, data: bytes) -> List[Tuple[int, int]]:
        """Scan one chunk stream from the current state.

        Returns ``(pattern_id, end)`` events with ends relative to
        ``data`` — the same contract as
        :meth:`repro.matching.fused.FusedMatcher.feed`.
        """
        self.start()
        if self._closed:
            raise RuntimeError("ShardedScanner is closed")
        if not data:
            return []
        wall_started = time.perf_counter()
        busy_before = [s.busy_s for s in self._shards]
        out: List[Tuple[int, int]] = []
        if self.backend == "inline":
            for base in range(0, len(data), self.chunk_bytes):
                chunk = data[base : base + self.chunk_bytes]
                gathered: List[Tuple[int, int]] = []
                for shard in self._shards:
                    if not shard.alive:
                        continue
                    events, busy_s, stats = shard.inline.feed(chunk)
                    shard.events_total += len(events)
                    shard.busy_s += busy_s
                    shard.worker_stats = stats
                    gathered.extend(events)
                gathered.sort(key=lambda event: (event[1], event[0]))
                out.extend((pid, base + end) for pid, end in gathered)
        else:
            inflight: deque = deque()
            seq = 0
            for base in range(0, len(data), self.chunk_bytes):
                chunk = data[base : base + self.chunk_bytes]
                for shard in self._shards:
                    if shard.alive:
                        self._send(shard, ("feed", seq, chunk))
                inflight.append((seq, base))
                seq += 1
                if len(inflight) >= MAX_INFLIGHT_CHUNKS:
                    done_seq, done_base = inflight.popleft()
                    out.extend(self._collect(done_seq, done_base))
            while inflight:
                done_seq, done_base = inflight.popleft()
                out.extend(self._collect(done_seq, done_base))
        self._record_metrics(data, out, wall_started, busy_before)
        return out

    def _record_metrics(
        self,
        data: bytes,
        out: List[Tuple[int, int]],
        wall_started: float,
        busy_before: List[float],
    ) -> None:
        if not telemetry.metrics_enabled():
            return
        wall = time.perf_counter() - wall_started
        registry = telemetry.registry()
        registry.counter("scan.shard.bytes").inc(
            len(data) * len(self.live_shards())
        )
        registry.counter("scan.shard.matches").inc(len(out))
        registry.gauge("scan.shard.workers").set(len(self.live_shards()))
        for shard, before in zip(self._shards, busy_before):
            registry.counter(
                "scan.shard.events", shard=shard.index
            ).inc(shard.events_total)
            if wall > 0:
                registry.gauge(
                    "scan.shard.occupancy", shard=shard.index
                ).set(min((shard.busy_s - before) / wall, 1.0))
            # Merge the worker's cumulative telemetry (shipped with each
            # events reply, across the process boundary) as deltas so
            # parent counters stay monotone under repeated feeds.
            for key, total in shard.worker_stats.items():
                delta = total - shard.published_stats.get(key, 0)
                if delta > 0:
                    registry.counter(
                        f"scan.shard.{key}", shard=shard.index
                    ).inc(delta)
                shard.published_stats[key] = total

    def reset(self) -> None:
        """Rewind every live shard to the empty activation."""
        if self._closed or not self._started:
            return  # fresh scanners are already at the empty activation
        if self.backend == "inline":
            for shard in self._shards:
                if shard.alive:
                    shard.inline.reset()
            return
        waiting = []
        for shard in self._shards:
            if shard.alive:
                shard.pending.clear()
                self._send(shard, ("reset",))
                waiting.append(shard)
        for shard in waiting:
            if not shard.alive:
                continue
            try:
                if shard.conn.poll(self.recv_timeout_s):
                    shard.conn.recv()  # ("ok",)
                else:
                    self._degrade(shard, "timeout")
            except (EOFError, OSError):
                self._degrade(shard, "died")

    def scan(self, data: bytes) -> List[Tuple[int, int]]:
        """Fresh-state :meth:`feed`."""
        self.start()
        self.reset()
        return self.feed(data)

    # -- introspection -------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Orchestrator statistics for telemetry/bench reporting."""
        return {
            "num_shards": self.num_shards,
            "live_shards": len(self.live_shards()),
            "plan": self.plan.to_json(),
            "failures": [
                {
                    "shard": f.shard,
                    "pattern_ids": list(f.pattern_ids),
                    "reason": f.reason,
                }
                for f in self.failures
            ],
            "events_per_shard": {
                s.index: s.events_total for s in self._shards
            },
            "worker_stats": {
                s.index: dict(s.worker_stats) for s in self._shards
            },
        }
