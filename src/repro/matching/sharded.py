"""Sharded parallel scan orchestrator: fused shards on worker processes.

The fused engine (:mod:`repro.matching.fused`) collapses a whole pattern
set into one bitset step per byte, but it is single-process — on a
multi-core machine every other core idles.  BVAP itself scales the other
way (§8): many patterns are packed onto independent tiles/arrays/banks
that all consume the same input stream in parallel.  This module is the
software analogue of that decomposition:

1. **Planning** (:func:`plan_shards`): the compiled patterns are
   partitioned into *K* shards by a compile-time cost model
   (:func:`estimate_cost`) combining the scan-NFA state count, the
   widest virtual bit vector, and an activation-ratio hint derived from
   the character-class density of the automaton — the same signals
   :mod:`repro.analysis.characterize` aggregates over rule sets.
   Shards are balanced greedily (longest-processing-time first), the
   classic bank-partitioning heuristic CAMA applies at the hardware
   level.

2. **Execution** (:class:`ShardedScanner`): each shard runs the fused
   engine in a long-lived worker process.  Input chunks are broadcast
   to every worker, and up to :data:`MAX_INFLIGHT_CHUNKS` chunks are in
   flight at once — the software mirror of §6's ping-pong I/O
   buffering: while the workers chew on chunk *i*, chunk *i+1* is
   already in their pipes.

3. **Deterministic merge**: every worker reports ``(pattern_id, end)``
   events per chunk; the orchestrator merges them in ``(end,
   pattern_id)`` order, which is byte-identical to the stream the
   single-process fused engine emits (a dedicated parity test enforces
   this on the golden corpus and the differential fuzzer).

Resilience is a supervised state machine per shard — **healthy →
restarting(backoff) → failover → degraded**:

* Without a :class:`~repro.resilience.budget.RestartPolicy` the
  behaviour is the original degrade-only one: a shard whose worker dies
  (crash, SIGKILL, poisoned automaton) or stops answering is *degraded*,
  never fatal — its patterns stop reporting, the scan completes on the
  surviving shards, the failure is recorded in
  :attr:`ShardedScanner.failures`, and the ``scan.shard.failed`` counter
  is incremented when telemetry is on.
* With a policy (``Budget(restart=RestartPolicy())``) recovery is
  *lossless*.  Every ``checkpoint_chunks`` broadcast chunks each worker
  ships its fused activation snapshot back with the chunk reply; the
  parent holds it as a :class:`ShardCheckpoint` together with the
  shard's last-emitted ``(end, pattern_id)`` watermark and buffers the
  tail chunks since the oldest live checkpoint.  A failed worker is
  restarted with exponential backoff, seeded from its checkpoint,
  replays only the buffered tail, and the merge layer deduplicates
  replayed events by watermark — the merged stream stays byte-identical
  to an uninterrupted run (the simultaneous-finite-automata seam
  argument: a chunk re-executed from a known entry state composes
  exactly).  Once the policy's restart budget is exhausted the dead
  shard's compiled patterns are re-fused onto the lightest surviving
  shard (:func:`repro.matching.fused.append_nfas` keeps the host's
  activation valid bit for bit), recorded as a :class:`ShardFailover`;
  only when no survivor exists does the shard finally degrade.

An ``inline`` backend runs the same plan/merge machinery on in-process
matchers (no workers) — the degenerate single-machine mode used for
unit-testing the merge logic and on platforms without multiprocessing.
"""

from __future__ import annotations

import logging
import math
import os
import random
import signal
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..telemetry import flight, profiler
from ..automata.ah import is_counter_free
from ..compiler.pipeline import CompiledRegex
from ..resilience.budget import RestartPolicy
from .fused import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_TABLE_STATES,
    FusedAutomaton,
    FusedMatcher,
    append_nfas,
    fuse_patterns,
)

log = logging.getLogger("repro.matching.sharded")

#: Default broadcast-chunk size.  Large enough that one pickle
#: round-trip per worker amortises over tens of thousands of scanned
#: bytes, small enough that two in-flight chunks stay cache-friendly.
DEFAULT_CHUNK_BYTES = 1 << 16

#: Ping-pong depth: how many broadcast chunks may be in flight before
#: the orchestrator blocks on the oldest one (§6 I/O double buffering).
MAX_INFLIGHT_CHUNKS = 2

#: How long the orchestrator waits for one shard's chunk reply before
#: declaring the worker hung and degrading the shard.
DEFAULT_RECV_TIMEOUT_S = 60.0

BACKENDS = ("process", "inline")


# ---------------------------------------------------------------------------
# Compile-time cost planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardCost:
    """Cost estimate for scanning one compiled pattern.

    Attributes:
        slot: index into the compiled-pattern list being planned.
        states: estimated scan-NFA state count — the AH-NBVA size for
            counter-free patterns (the graph the fused engine reuses),
            else the fully unfolded Glushkov size.
        bv_width: widest virtual bit vector the pattern demands (0 when
            counter-free after rewriting).
        activation_ratio: mean character-class density of the states in
            ``[0, 1]`` — dense classes keep more states live per byte,
            the activation-ratio signal of ``analysis.characterize``.
        cost: the scalar the planner balances.
    """

    slot: int
    states: int
    bv_width: int
    activation_ratio: float
    cost: float


def estimate_cost(compiled: CompiledRegex, slot: int = 0) -> ShardCost:
    """Estimate the per-byte scan cost one pattern adds to a shard.

    The model is deliberately simple and fully compile-time: cost grows
    linearly with the scan-NFA state count (mask width and closure work),
    is scaled up by the activation ratio (dense classes stay live and
    defeat the lazy-DFA cache), and pays a logarithmic surcharge for wide
    bit vectors (their unfolded scan NFAs branch more).
    """
    ah = compiled.ah
    if is_counter_free(ah):
        states = ah.num_states
        bv_width = 0
    else:
        states = compiled.unfolded_states or 4 * ah.num_states
        bv_width = max(compiled.virtual_widths(), default=0)
    if ah.num_states:
        density = sum(state.cc.size() for state in ah.states) / ah.num_states
        activation = density / 256.0
    else:
        activation = 0.0
    cost = float(max(states, 1)) * (1.0 + activation)
    if bv_width:
        cost *= 1.0 + math.log2(1 + bv_width) / 8.0
    return ShardCost(
        slot=slot,
        states=states,
        bv_width=bv_width,
        activation_ratio=activation,
        cost=cost,
    )


@dataclass
class ShardPlan:
    """The planner's output: which pattern slots land on which shard."""

    shards: List[List[int]]
    costs: List[float]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def balance(self) -> float:
        """Max shard cost over mean shard cost (1.0 = perfectly even)."""
        if not self.costs or not sum(self.costs):
            return 1.0
        mean = sum(self.costs) / len(self.costs)
        return max(self.costs) / mean

    def to_json(self) -> Dict[str, object]:
        return {
            "shards": [list(s) for s in self.shards],
            "costs": [round(c, 3) for c in self.costs],
            "balance": round(self.balance(), 4),
        }


def plan_shards(
    compiled: Sequence[CompiledRegex],
    num_shards: int,
    costs: Optional[Sequence[ShardCost]] = None,
) -> ShardPlan:
    """Partition patterns into at most ``num_shards`` balanced shards.

    Greedy LPT (longest processing time first): sort patterns by
    descending cost, always assign to the currently lightest shard.
    Deterministic — ties break on slot index — so the same pattern set
    always yields the same plan.  Empty shards (more shards than
    patterns) are dropped.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if costs is None:
        costs = [estimate_cost(c, slot) for slot, c in enumerate(compiled)]
    buckets: List[List[int]] = [[] for _ in range(min(num_shards, max(len(compiled), 1)))]
    totals = [0.0] * len(buckets)
    for item in sorted(costs, key=lambda c: (-c.cost, c.slot)):
        lightest = min(range(len(buckets)), key=lambda i: (totals[i], i))
        buckets[lightest].append(item.slot)
        totals[lightest] += item.cost
    shards = [sorted(bucket) for bucket in buckets if bucket]
    totals = [t for bucket, t in zip(buckets, totals) if bucket]
    # Stable shard numbering: order shards by their first (lowest) slot.
    order = sorted(range(len(shards)), key=lambda i: shards[i][0])
    return ShardPlan(
        shards=[shards[i] for i in order], costs=[totals[i] for i in order]
    )


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _shard_worker_main(
    conn,
    automaton: FusedAutomaton,
    report_ids: Sequence[int],
    cache_bytes: int,
    table_states: int = DEFAULT_TABLE_STATES,
    prefilter: bool = True,
) -> None:
    """Command loop of one shard worker process.

    Protocol (parent -> worker / worker -> parent):

    * ``("feed", seq, data, want_ckpt)`` -> ``("events", seq,
      [(pattern_id, end), ...], busy_s, stats, snapshot)`` —
      fused-engine feed over one chunk; end offsets are chunk-relative,
      pattern ids are the *original* set ids.  ``stats`` is the worker's
      cumulative telemetry snapshot (lazy-DFA cache hits/misses, symbols
      scanned) — three ints per reply, so shipping it costs nothing
      measurable, and the parent merges the *deltas* into its registry
      under a ``shard`` label.  ``snapshot`` is the matcher's
      :meth:`~repro.matching.fused.FusedMatcher.state_snapshot` when the
      parent asked for a checkpoint (``want_ckpt``), else ``None``.
    * ``("restore", snapshot)`` -> ``("ok",)`` — adopt a parent-held
      checkpoint (or ``("error", message)`` on an incompatible one);
      how a restarted worker is seeded before replaying the tail.
    * ``("finish",)`` -> ``("finished", [(pattern_id, -1), ...])`` —
      end-of-input finalisation: matches the ``$`` gate held as live
      candidates, reported with the
      :meth:`~repro.matching.fused.FusedMatcher.finish` ``-1``
      convention (the stream's final byte).  Non-mutating.
    * ``("reset",)`` -> ``("ok",)`` — rewind to the empty activation.
    * ``("ping", nonce)`` -> ``("pong", nonce)`` — watchdog heartbeat;
      the nonce echo distinguishes a live reply from stale pipe data.
    * ``("fail",)`` — hard-exit(1), the fault-injection hook tests use
      to kill a shard deterministically mid-stream.
    * ``("corrupt",)`` — emit one junk frame on the reply pipe (the
      pipe-corruption chaos fault); the worker then continues normally.
    * ``("stop",)`` — clean shutdown.
    """
    matcher = FusedMatcher(
        automaton,
        cache_bytes=cache_bytes,
        table_states=table_states,
        prefilter=prefilter,
    )
    ids = list(report_ids)
    symbols = 0
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return  # parent went away; die quietly
            op = message[0]
            if op == "feed":
                _, seq, data, want_ckpt = message
                started = time.perf_counter()
                events = [
                    (ids[slot], end) for slot, end in matcher.feed(data)
                ]
                symbols += len(data)
                stats = {
                    "cache_hits": matcher.cache_hits,
                    "cache_misses": matcher.cache_misses,
                    "symbols": symbols,
                }
                conn.send(
                    (
                        "events",
                        seq,
                        events,
                        time.perf_counter() - started,
                        stats,
                        matcher.state_snapshot() if want_ckpt else None,
                    )
                )
            elif op == "restore":
                try:
                    matcher.restore_state(message[1])
                except ValueError as error:
                    conn.send(("error", str(error)))
                else:
                    conn.send(("ok",))
            elif op == "finish":
                conn.send(
                    (
                        "finished",
                        [
                            (ids[slot], end)
                            for slot, end in matcher.finish()
                        ],
                    )
                )
            elif op == "reset":
                matcher.reset()
                conn.send(("ok",))
            elif op == "ping":
                conn.send(("pong", message[1] if len(message) > 1 else None))
            elif op == "fail":
                os._exit(1)
            elif op == "corrupt":
                conn.send(("junk", "corrupted-frame"))
            elif op == "hang":
                time.sleep(message[1])
                conn.send(("ok",))
            elif op == "stop":
                return
    finally:
        conn.close()


class _InlineShard:
    """In-process stand-in for a worker: same protocol, no process."""

    def __init__(
        self,
        automaton: FusedAutomaton,
        report_ids: Sequence[int],
        cache_bytes: int,
        label: str = "shard",
        table_states: int = DEFAULT_TABLE_STATES,
        prefilter: bool = True,
    ) -> None:
        self.matcher = FusedMatcher(
            automaton,
            cache_bytes=cache_bytes,
            table_states=table_states,
            prefilter=prefilter,
        )
        self.ids = list(report_ids)
        self.label = label
        self.symbols = 0

    def feed(
        self, data: bytes
    ) -> Tuple[List[Tuple[int, int]], float, Dict[str, int]]:
        started = time.perf_counter()
        prof = profiler.active_profiler()
        if prof is not None:
            # Inline shards are the profiler's multi-binding case: every
            # shard walks the same input, so tallies merge by global
            # pattern id and heatmap buckets line up.
            pairs = prof.feed(self.matcher, data, self.ids, label=self.label)
        else:
            pairs = self.matcher.feed(data)
        events = [(self.ids[slot], end) for slot, end in pairs]
        self.symbols += len(data)
        stats = {
            "cache_hits": self.matcher.cache_hits,
            "cache_misses": self.matcher.cache_misses,
            "symbols": self.symbols,
        }
        return events, time.perf_counter() - started, stats

    def finish(self) -> List[Tuple[int, int]]:
        return [
            (self.ids[slot], end) for slot, end in self.matcher.finish()
        ]

    def reset(self) -> None:
        self.matcher.reset()


# ---------------------------------------------------------------------------
# Orchestrator
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardFailure:
    """One degraded shard: which patterns stopped reporting and why."""

    shard: int
    pattern_ids: Tuple[int, ...]
    reason: str  # "died", "timeout", or "send_failed"


@dataclass(frozen=True)
class ShardRestart:
    """One successful supervised worker restart."""

    shard: int
    attempt: int  # 1-based restart attempt that succeeded
    reason: str  # what killed the previous worker
    backoff_s: float
    replayed_bytes: int  # buffered tail re-scanned from the checkpoint


@dataclass(frozen=True)
class ShardFailover:
    """One permanent shard failure whose patterns moved to a survivor."""

    shard: int
    to_shard: int
    pattern_ids: Tuple[int, ...]
    reason: str


@dataclass(frozen=True)
class ShardCheckpoint:
    """Parent-held recovery point for one shard.

    ``snapshot`` is the worker's fused activation snapshot after chunk
    ``seq`` (``None`` means the empty activation — the floor checkpoint
    installed at start/reset before any chunk was acknowledged);
    ``watermark`` is the last-emitted ``(stream_end, pattern_id)`` event
    at that moment, the dedup key replay filters against.
    """

    shard: int
    seq: int
    snapshot: Optional[Dict[str, int]]
    watermark: Optional[Tuple[int, int]]

    @property
    def active(self) -> int:
        return self.snapshot["active"] if self.snapshot else 0

    @property
    def at_start(self) -> bool:
        """Whether stream offset 0 is still ahead at this checkpoint.

        A floor checkpoint (``snapshot is None``) answers True: it is
        installed at start/reset, before any byte.  One installed
        mid-stream by an incremental re-fuse inherits the documented
        empty-activation restart semantics — the shard's ``^`` gates
        re-arm on its next chunk.
        """
        if self.snapshot is None:
            return True
        return bool(self.snapshot.get("at_start", 1))

    @property
    def tail_emits(self) -> int:
        """The matcher's seam-dedup slot mask at this checkpoint."""
        return self.snapshot.get("tail_emits", 0) if self.snapshot else 0


#: Sentinel a supervised ``_recv_reply`` returns instead of degrading:
#: the caller (the per-seq collector) owns the heal decision.
_FAILED = object()


@dataclass
class _Shard:
    """Parent-side bookkeeping for one shard."""

    index: int
    slots: List[int]
    pattern_ids: List[int]
    automaton: FusedAutomaton
    #: The shard's compiled patterns, kept so incremental add/remove can
    #: re-fuse just this shard without the whole-set compiled list.
    compiled: List[CompiledRegex] = field(default_factory=list)
    #: Running cost-model total; the incremental planner assigns new
    #: patterns to the currently lightest shard by this number.
    cost: float = 0.0
    process: Optional[object] = None  # multiprocessing.Process
    conn: Optional[object] = None  # parent end of the duplex pipe
    inline: Optional[_InlineShard] = None
    alive: bool = True
    events_total: int = 0
    busy_s: float = 0.0
    #: Latest cumulative telemetry snapshot shipped back by the worker
    #: (cache hits/misses, symbols scanned) and the portion of it already
    #: published into the parent registry — the difference is the delta
    #: :meth:`ShardedScanner._record_metrics` merges under ``shard=N``.
    worker_stats: Dict[str, int] = field(default_factory=dict)
    published_stats: Dict[str, int] = field(default_factory=dict)
    #: Totals carried over from previous worker incarnations of this
    #: shard; published totals are ``carry + worker_stats`` so the
    #: ``scan.shard.<stat>{shard=N}`` deltas stay exact and monotone
    #: across supervised restarts (no negative deltas, no double count).
    stats_carry: Dict[str, int] = field(default_factory=dict)
    # Replies can momentarily run ahead of the collector when a chunk's
    # answer arrives while a later chunk is being sent; buffer by seq.
    pending: Dict[int, Tuple[Any, ...]] = field(default_factory=dict)
    # -- supervision state (unused without a RestartPolicy) ------------
    #: Last two checkpoints; the previous one is what failover needs
    #: when the survivor already checkpointed one boundary ahead.
    ckpt: Optional[ShardCheckpoint] = None
    prev_ckpt: Optional[ShardCheckpoint] = None
    #: Last-emitted ``(stream_end, pattern_id)`` over *consumed* replies.
    watermark: Optional[Tuple[int, int]] = None
    #: Per-pattern watermark overrides, non-empty only between a
    #: failover adoption and the heal that re-synchronises both origins
    #: (the adopted patterns' emit horizon lags the host's by up to one
    #: chunk, so one merged watermark would over- or under-filter).
    wm_overrides: Dict[int, Optional[Tuple[int, int]]] = field(
        default_factory=dict
    )
    #: Restart-budget spend against ``RestartPolicy.max_restarts``.
    restarts_used: int = 0
    #: Failure noticed but not yet healed ("died"/"timeout"/...).
    fault: Optional[str] = None


class ShardedScanner:
    """Scan a compiled pattern set on K fused shards in parallel.

    The streaming contract is the per-engine one: :meth:`feed` reports
    chunk-relative end offsets and state persists across calls;
    :meth:`reset` rewinds every shard.  Workers are started lazily on
    first use and torn down by :meth:`close` (also via the context
    manager protocol and, best-effort, on garbage collection).

    Args:
        compiled: the compiled patterns (quarantine survivors).
        pattern_ids: original set ids to report, one per compiled entry.
        num_shards: target shard count; defaults to ``os.cpu_count()``
            capped at the pattern count.
        backend: ``"process"`` (default) or ``"inline"``.
        chunk_bytes: broadcast granularity (see module docstring).
        cache_bytes: per-shard lazy-DFA cache budget.
        recv_timeout_s: per-chunk reply deadline before a shard is
            declared hung (the watchdog) and healed or degraded.
        mp_context: a ``multiprocessing`` context; defaults to ``fork``
            where available (cheap start, no automaton re-pickle) else
            the platform default.
        restart_policy: a :class:`~repro.resilience.budget.RestartPolicy`
            arming supervised recovery (checkpoints, bounded restarts
            with backoff, failover re-fuse); ``None`` keeps the original
            degrade-only behaviour.  Process backend only.
        seed: seeds the supervision RNG (backoff jitter) so recovery
            schedules replay deterministically.
    """

    def __init__(
        self,
        compiled: Sequence[CompiledRegex],
        pattern_ids: Optional[Sequence[int]] = None,
        num_shards: Optional[int] = None,
        *,
        backend: str = "process",
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        recv_timeout_s: float = DEFAULT_RECV_TIMEOUT_S,
        mp_context=None,
        table_states: int = DEFAULT_TABLE_STATES,
        prefilter: bool = True,
        restart_policy: Optional[RestartPolicy] = None,
        seed: int = 0,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1")
        if recv_timeout_s <= 0:
            raise ValueError("recv_timeout_s must be positive")
        if pattern_ids is None:
            pattern_ids = [c.regex_id for c in compiled]
        if len(pattern_ids) != len(compiled):
            raise ValueError("pattern_ids and compiled must align")
        if num_shards is None:
            num_shards = max(1, min(len(compiled), os.cpu_count() or 1))
        self.backend = backend
        self.chunk_bytes = chunk_bytes
        self.cache_bytes = cache_bytes
        if table_states < 0:
            raise ValueError("table_states must be >= 0")
        self.table_states = table_states
        self.prefilter = bool(prefilter)
        self.recv_timeout_s = recv_timeout_s
        self._mp_context = mp_context
        self.restart_policy = restart_policy
        self.seed = seed
        self._rng = random.Random(seed)
        self.plan = plan_shards(compiled, num_shards)
        self.failures: List[ShardFailure] = []
        self.restarts: List[ShardRestart] = []
        self.failovers: List[ShardFailover] = []
        self._started = False
        self._closed = False
        #: Next broadcast sequence number; persistent across feeds so
        #: checkpoint boundaries stay uniform over the whole stream.
        self._seq = 0
        #: Total bytes fed since the last reset — the global-offset base
        #: watermarks are expressed in.
        self._stream_pos = 0
        #: Buffered tail chunks ``seq -> (stream_base, bytes)`` since the
        #: oldest live checkpoint (supervised runs only; bounded by
        #: ``checkpoint_chunks`` plus the in-flight window).
        self._tail: "OrderedDict[int, Tuple[int, bytes]]" = OrderedDict()
        self._hb_nonce = 0
        self._shards: List[_Shard] = []
        ids = list(pattern_ids)
        for index, slots in enumerate(self.plan.shards):
            members = [compiled[slot] for slot in slots]
            self._shards.append(
                _Shard(
                    index=index,
                    slots=list(slots),
                    pattern_ids=[ids[slot] for slot in slots],
                    automaton=fuse_patterns(members),
                    compiled=members,
                    cost=self.plan.costs[index],
                )
            )

    # -- lifecycle -----------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def _supervised(self) -> bool:
        """Supervised recovery is armed (policy set, process backend)."""
        return self.restart_policy is not None and self.backend == "process"

    def _floor_checkpoint(self, shard: _Shard) -> ShardCheckpoint:
        """The empty-activation checkpoint at the current stream point —
        what a shard recovers from before its first real snapshot."""
        return ShardCheckpoint(
            shard=shard.index,
            seq=self._seq - 1,
            snapshot=None,
            watermark=None,
        )

    def live_shards(self) -> List[int]:
        return [s.index for s in self._shards if s.alive]

    def worker_pids(self) -> List[Optional[int]]:
        """One pid per shard (None: inline backend or not started)."""
        return [
            s.process.pid if s.process is not None else None
            for s in self._shards
        ]

    def _context(self):
        if self._mp_context is not None:
            return self._mp_context
        import multiprocessing

        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # platform without fork
            return multiprocessing.get_context()

    def _start_shard(self, shard: _Shard) -> None:
        """Launch one shard's execution backend (worker or inline)."""
        if self.backend == "inline":
            shard.inline = _InlineShard(
                shard.automaton,
                shard.pattern_ids,
                self.cache_bytes,
                label=f"shard-{shard.index}",
                table_states=self.table_states,
                prefilter=self.prefilter,
            )
            return
        ctx = self._context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_shard_worker_main,
            args=(
                child_conn,
                shard.automaton,
                shard.pattern_ids,
                self.cache_bytes,
                self.table_states,
                self.prefilter,
            ),
            daemon=True,
            name=f"repro-shard-{shard.index}",
        )
        process.start()
        child_conn.close()
        shard.process = process
        shard.conn = parent_conn

    def _stop_shard(self, shard: _Shard) -> None:
        """Tear down one shard's backend, leaving its bookkeeping alone."""
        if shard.conn is not None:
            try:
                if shard.alive:
                    shard.conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
            try:
                shard.conn.close()
            except OSError:
                pass
            shard.conn = None
        if shard.process is not None:
            shard.process.join(timeout=2.0)
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=2.0)
            shard.process = None
        shard.inline = None

    def start(self) -> None:
        """Start the workers (idempotent; feed/reset call this lazily)."""
        if self._started:
            return
        if self._closed:
            raise RuntimeError("ShardedScanner is closed")
        self._started = True
        for shard in self._shards:
            self._start_shard(shard)
            if self._supervised:
                shard.ckpt = self._floor_checkpoint(shard)
        if self.backend == "process" and telemetry.metrics_enabled():
            telemetry.registry().gauge("scan.shard.workers").set(
                len(self.live_shards())
            )

    def close(self) -> None:
        """Tear down every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if not self._started:
            return
        for shard in self._shards:
            self._stop_shard(shard)
            shard.alive = False

    def __enter__(self) -> "ShardedScanner":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; close() is the real API
        try:
            self.close()
        except Exception:
            pass

    # -- incremental updates -------------------------------------------

    def _fold_stats(self, shard: _Shard) -> None:
        """Fold the (dying) worker's cumulative totals into the shard's
        carry, so published totals (``carry + worker_stats``) never move
        backwards when the fresh worker restarts its counters at zero."""
        for key, total in shard.worker_stats.items():
            shard.stats_carry[key] = shard.stats_carry.get(key, 0) + total
        shard.worker_stats = {}

    def _restart_shard(self, shard: _Shard) -> None:
        """Re-fuse one shard after its pattern list changed and relaunch
        only its backend.  The restarted shard resumes from the empty
        activation; untouched shards keep their workers and state.  A
        mid-stream restart also rewinds the shard's stream position, so
        anchored patterns on it re-arm their ``^`` gates at the next
        chunk — the streaming-exactness contract only covers shards
        whose pattern list did not change."""
        shard.automaton = fuse_patterns(shard.compiled)
        shard.pending.clear()
        self._fold_stats(shard)
        if self._supervised:
            shard.ckpt = self._floor_checkpoint(shard)
            shard.prev_ckpt = None
            shard.watermark = None
            shard.wm_overrides = {}
        if self._started and shard.alive:
            self._stop_shard(shard)
            self._start_shard(shard)

    def add_patterns(
        self,
        compiled: Sequence[CompiledRegex],
        pattern_ids: Optional[Sequence[int]] = None,
    ) -> None:
        """Add compiled patterns, re-fusing only the shards that receive
        them.

        Each pattern is assigned to the currently lightest live shard by
        the running cost totals — the online counterpart of the greedy
        LPT plan — so an add touches (and restarts) as few shards as
        possible.  When every shard has degraded, a fresh shard is
        created to host the new patterns.
        """
        if self._closed:
            raise RuntimeError("ShardedScanner is closed")
        if pattern_ids is None:
            pattern_ids = [c.regex_id for c in compiled]
        if len(pattern_ids) != len(compiled):
            raise ValueError("pattern_ids and compiled must align")
        touched = []
        for regex, pattern_id in zip(compiled, pattern_ids):
            cost = estimate_cost(regex).cost
            live = [s for s in self._shards if s.alive]
            if not live:
                shard = _Shard(
                    index=len(self._shards),
                    slots=[],
                    pattern_ids=[],
                    automaton=fuse_patterns([]),
                    compiled=[],
                )
                self._shards.append(shard)
                live = [shard]
            shard = min(live, key=lambda s: (s.cost, s.index))
            shard.compiled.append(regex)
            shard.pattern_ids.append(pattern_id)
            shard.cost += cost
            if shard not in touched:
                touched.append(shard)
        for shard in touched:
            self._restart_shard(shard)

    def remove_patterns(self, pattern_ids: Sequence[int]) -> None:
        """Drop patterns, re-fusing only the shards that held them.

        Shards left empty are retired entirely (worker stopped, shard
        removed from the rotation).  Raises ``ValueError`` if any id is
        unknown to the scanner.
        """
        if self._closed:
            raise RuntimeError("ShardedScanner is closed")
        remove = set(pattern_ids)
        known = {pid for s in self._shards for pid in s.pattern_ids}
        unknown = remove - known
        if unknown:
            raise ValueError(f"unknown pattern ids: {sorted(unknown)}")
        survivors = []
        for shard in self._shards:
            if not remove.intersection(shard.pattern_ids):
                survivors.append(shard)
                continue
            keep = [
                i for i, pid in enumerate(shard.pattern_ids)
                if pid not in remove
            ]
            shard.compiled = [shard.compiled[i] for i in keep]
            shard.pattern_ids = [shard.pattern_ids[i] for i in keep]
            shard.cost = sum(
                estimate_cost(c).cost for c in shard.compiled
            )
            if shard.compiled:
                self._restart_shard(shard)
                survivors.append(shard)
            else:
                self._stop_shard(shard)
        self._shards = survivors

    # -- failure handling ----------------------------------------------

    def _teardown_worker(self, shard: _Shard) -> None:
        """Kill one shard's worker process (SIGKILL — SIGTERM stays
        pending on a SIGSTOPped worker) and fold its telemetry carry,
        leaving the shard's plan/checkpoint bookkeeping alone."""
        if shard.conn is not None:
            try:
                shard.conn.close()
            except OSError:
                pass
            shard.conn = None
        if shard.process is not None:
            if shard.process.is_alive():
                shard.process.kill()
            shard.process.join(timeout=2.0)
            shard.process = None
        shard.pending.clear()
        self._fold_stats(shard)

    def _degrade(self, shard: _Shard, reason: str) -> None:
        """Mark one shard failed; the scan continues without it."""
        if not shard.alive:
            return
        shard.alive = False
        shard.fault = None
        shard.wm_overrides = {}
        self._teardown_worker(shard)
        failure = ShardFailure(
            shard=shard.index,
            pattern_ids=tuple(shard.pattern_ids),
            reason=reason,
        )
        self.failures.append(failure)
        log.warning(
            "shard %d degraded (%s); patterns %s stop reporting",
            shard.index,
            reason,
            list(shard.pattern_ids),
        )
        if telemetry.metrics_enabled():
            registry = telemetry.registry()
            registry.counter("scan.shard.failed").inc()
            registry.gauge("scan.shard.workers").set(len(self.live_shards()))
        if flight.flight_enabled():
            flight.record(
                "shard_failure",
                shard=shard.index,
                reason=reason,
                pattern_ids=list(shard.pattern_ids),
            )
            flight.auto_dump(f"shard-{shard.index}-{reason}")

    def _fail_shard(self, shard: _Shard, reason: str):
        """Route one observed worker failure: under supervision mark it
        for healing at the collect barrier, else degrade immediately."""
        if self._supervised:
            if shard.fault is None:
                shard.fault = reason
            return _FAILED
        self._degrade(shard, reason)
        return None

    # -- supervised recovery -------------------------------------------

    def _absorb_reply(
        self,
        shard: _Shard,
        seq: int,
        stream_base: int,
        reply: Tuple[Any, ...],
        gathered: List[Tuple[int, int]],
    ) -> None:
        """Consume one healthy ``events`` reply: merge its events and,
        under supervision, advance the shard's watermark/checkpoint."""
        events, busy_s, stats, snapshot = reply
        shard.events_total += len(events)
        shard.busy_s += busy_s
        shard.worker_stats = stats
        if self._supervised:
            if events:
                last = max((stream_base + end, pid) for pid, end in events)
                if shard.watermark is None or last > shard.watermark:
                    shard.watermark = last
            if snapshot is not None:
                shard.prev_ckpt = shard.ckpt
                shard.ckpt = ShardCheckpoint(
                    shard=shard.index,
                    seq=seq,
                    snapshot=snapshot,
                    watermark=shard.watermark,
                )
        gathered.extend(events)

    def _prune_tail(self) -> None:
        """Drop buffered tail chunks every live shard has checkpointed
        past; the buffer stays bounded by the checkpoint cadence plus
        the in-flight window."""
        floors = [
            s.ckpt.seq
            for s in self._shards
            if s.alive and s.ckpt is not None
        ]
        if not floors:
            self._tail.clear()
            return
        floor = min(floors)
        while self._tail and next(iter(self._tail)) <= floor:
            self._tail.popitem(last=False)

    def _filter_replayed(
        self,
        shard: _Shard,
        chunk_base: int,
        events: List[Tuple[int, int]],
    ) -> List[Tuple[int, int]]:
        """Drop replayed events already emitted, advancing the shard's
        watermark(s) with the survivors.

        Normally one watermark covers the whole shard; during a failover
        adoption the per-pattern ``wm_overrides`` keep the dedup exact
        for the adopted patterns, whose emit horizon lags the host's.
        """
        fresh: List[Tuple[int, int]] = []
        overrides = shard.wm_overrides
        for pid, end in events:
            key = (chunk_base + end, pid)
            if pid in overrides:
                wm = overrides[pid]
                if wm is None or key > wm:
                    fresh.append((pid, end))
                    overrides[pid] = key
            else:
                wm = shard.watermark
                if wm is None or key > wm:
                    fresh.append((pid, end))
                    shard.watermark = key
        return fresh

    def _collapse_overrides(self, shard: _Shard) -> None:
        """Merge the per-pattern overrides back into one watermark.

        Exact once every origin has been emitted through the same chunk
        boundary — which a completed heal replay guarantees, since later
        chunks' stream ends are strictly larger than any earlier
        chunk's.
        """
        if not shard.wm_overrides:
            return
        marks = [wm for wm in shard.wm_overrides.values() if wm is not None]
        if shard.watermark is not None:
            marks.append(shard.watermark)
        shard.watermark = max(marks) if marks else None
        shard.wm_overrides = {}

    def _replay_tail(
        self, shard: _Shard, start_seq: int, seq: int
    ) -> Optional[Tuple[List[Tuple[int, int]], int]]:
        """Replay buffered tail chunks ``start_seq..seq`` through a
        recovering worker, deduplicating against the watermark(s) and
        installing the checkpoints it ships back.  Returns ``(fresh
        events for chunk seq, replayed bytes)``, or None when a chunk
        replay failed (``shard.fault`` set; nothing unrecoverable was
        emitted — fresh events only ever appear at chunk ``seq``, the
        last one replayed)."""
        replayed = 0
        fresh_for_seq: List[Tuple[int, int]] = []
        for s in range(start_seq, seq + 1):
            entry = self._tail.get(s)
            if entry is None:  # pruned past a live checkpoint: impossible
                shard.fault = "tail_gap"  # unless bookkeeping broke; bail
                return None
            chunk_base, chunk = entry
            reply = self._replay_chunk(shard, s, chunk)
            if reply is None:
                return None
            events, busy_s, stats, snapshot = reply
            replayed += len(chunk)
            shard.busy_s += busy_s
            shard.worker_stats = stats
            fresh = self._filter_replayed(shard, chunk_base, events)
            shard.events_total += len(fresh)
            if snapshot is not None:
                shard.prev_ckpt = shard.ckpt
                shard.ckpt = ShardCheckpoint(
                    shard=shard.index,
                    seq=s,
                    snapshot=snapshot,
                    watermark=shard.watermark,
                )
            if s == seq:
                fresh_for_seq = fresh
        return fresh_for_seq, replayed

    def _heal(
        self, shard: _Shard, seq: int, stream_base: int
    ) -> List[Tuple[int, int]]:
        """Recover one failed shard at chunk ``seq``: bounded restarts
        with backoff, then failover, then degrade.  Returns the shard's
        (deduplicated) events for chunk ``seq``."""
        policy = self.restart_policy
        reason = shard.fault or "died"
        shard.fault = None
        while shard.alive and shard.restarts_used < policy.max_restarts:
            shard.restarts_used += 1
            attempt = shard.restarts_used
            backoff = policy.backoff_s(attempt, self._rng)
            log.warning(
                "shard %d worker failed (%s); restart attempt %d/%d "
                "after %.3fs backoff",
                shard.index, reason, attempt, policy.max_restarts, backoff,
            )
            self._teardown_worker(shard)
            if backoff > 0:
                time.sleep(backoff)
            events = self._revive(shard, seq, stream_base, reason, backoff)
            if events is not None:
                return events
            reason = shard.fault or "died"
            shard.fault = None
        return self._failover(shard, seq, stream_base, reason)

    def _restore_worker(self, shard: _Shard, snapshot) -> bool:
        """Seed a freshly started worker from a checkpoint snapshot
        (``None`` = empty activation); False on any handshake failure."""
        try:
            if snapshot is not None:
                shard.conn.send(("restore", snapshot))
            else:
                shard.conn.send(("reset",))
            if not shard.conn.poll(self.recv_timeout_s):
                shard.fault = "restore_timeout"
                return False
            ack = shard.conn.recv()
        except (EOFError, OSError, ValueError, BrokenPipeError):
            shard.fault = "restore_failed"
            return False
        if ack[0] != "ok":
            shard.fault = "restore_rejected"
            return False
        return True

    def _replay_chunk(self, shard: _Shard, seq: int, chunk: bytes):
        """Send one buffered tail chunk to a recovering worker and wait
        for its reply; None on failure (``shard.fault`` set)."""
        want_ckpt = (seq + 1) % self.restart_policy.checkpoint_chunks == 0
        try:
            shard.conn.send(("feed", seq, chunk, want_ckpt))
        except (OSError, ValueError, BrokenPipeError):
            shard.fault = "send_failed"
            return None
        reply = self._recv_reply(shard, seq)
        if reply is None or reply is _FAILED:
            return None
        return reply

    def _resend_inflight(self, shard: _Shard, seq: int) -> bool:
        """Re-broadcast the chunks beyond ``seq`` that were already in
        flight when the shard failed (their original replies died with
        the old worker; replay regenerates them deterministically)."""
        for later in range(seq + 1, self._seq):
            entry = self._tail.get(later)
            if entry is None:
                continue
            want_ckpt = (
                (later + 1) % self.restart_policy.checkpoint_chunks == 0
            )
            try:
                shard.conn.send(("feed", later, entry[1], want_ckpt))
            except (OSError, ValueError, BrokenPipeError):
                shard.fault = "send_failed"
                return False
        return True

    def _revive(
        self,
        shard: _Shard,
        seq: int,
        stream_base: int,
        reason: str,
        backoff: float,
    ) -> Optional[List[Tuple[int, int]]]:
        """One restart attempt: relaunch the worker, seed it from the
        shard's checkpoint, replay the buffered tail through chunk
        ``seq`` deduplicating by watermark, and re-send the in-flight
        chunks beyond it.  Returns chunk ``seq``'s fresh events, or
        None when the attempt itself failed (caller retries)."""
        ckpt = shard.ckpt
        self._start_shard(shard)
        if not self._restore_worker(shard, ckpt.snapshot if ckpt else None):
            return None
        start_seq = (ckpt.seq if ckpt is not None else self._seq - 1) + 1
        result = self._replay_tail(shard, start_seq, seq)
        if result is None:
            return None
        fresh_for_seq, replayed = result
        self._collapse_overrides(shard)
        # Best-effort: the replay through chunk ``seq`` succeeded and its
        # fresh events are already watermarked, so they MUST be emitted —
        # a resend failure only notes the fault and the next collect
        # heals again from here.
        self._resend_inflight(shard, seq)
        restart = ShardRestart(
            shard=shard.index,
            attempt=shard.restarts_used,
            reason=reason,
            backoff_s=backoff,
            replayed_bytes=replayed,
        )
        self.restarts.append(restart)
        log.info(
            "shard %d restarted (attempt %d, %s); replayed %d tail bytes",
            shard.index, restart.attempt, reason, replayed,
        )
        if telemetry.metrics_enabled():
            registry = telemetry.registry()
            registry.counter("scan.shard.restarts").inc()
            registry.counter("scan.shard.replayed_bytes").inc(replayed)
        if flight.flight_enabled():
            flight.record(
                "shard_restart",
                shard=shard.index,
                attempt=restart.attempt,
                reason=reason,
                replayed_bytes=replayed,
                checkpoint_seq=ckpt.seq if ckpt is not None else None,
            )
        return fresh_for_seq

    def _host_snapshot_at(
        self, host: _Shard, seq: int
    ) -> Optional[ShardCheckpoint]:
        """The host's checkpoint at exactly ``seq``, if it kept one."""
        if host.ckpt is not None and host.ckpt.seq == seq:
            return host.ckpt
        if host.prev_ckpt is not None and host.prev_ckpt.seq == seq:
            return host.prev_ckpt
        return None

    def _failover(
        self,
        shard: _Shard,
        seq: int,
        stream_base: int,
        reason: str,
    ) -> List[Tuple[int, int]]:
        """Permanent failure: re-fuse the dead shard's patterns onto the
        lightest surviving shard, losslessly.

        The host's automaton grows by :func:`append_nfas` (its existing
        combined-state indices — and therefore its checkpointed
        activation mask — stay valid bit for bit); the dead shard's
        checkpointed activation shifts into the appended slice.  Both
        origins' tails replay from the common checkpoint with per-origin
        watermark dedup, after which a single merged watermark is exact
        again.  Degrades only when no aligned survivor exists.
        """
        self._teardown_worker(shard)
        survivors = [
            s for s in self._shards if s.alive and s is not shard
        ]
        if not survivors or not shard.compiled:
            self._degrade(shard, reason)
            return []
        ckpt_x = shard.ckpt or self._floor_checkpoint(shard)
        host = min(survivors, key=lambda s: (s.cost, s.index))
        host_ckpt = self._host_snapshot_at(host, ckpt_x.seq)
        if host_ckpt is None:
            # Checkpoints misaligned (e.g. the host itself just healed
            # mid-boundary): lossless adoption is impossible, fail soft.
            self._degrade(shard, reason)
            return []
        for s in range(ckpt_x.seq + 1, seq + 1):
            if s not in self._tail:
                self._degrade(shard, reason)
                return []
        # -- build the combined automaton and activation ---------------
        x_auto = shard.automaton
        host_states = host.automaton.num_states
        combined_auto = append_nfas(
            host.automaton,
            x_auto.nfas,
            sources=list(x_auto.sources) if x_auto.sources else None,
            literals=list(x_auto.literals) if x_auto.literals else None,
        )
        combined_active = host_ckpt.active | (ckpt_x.active << host_states)
        # Stream bookkeeping composes slot-wise: the adopted patterns'
        # seam-dedup bits shift past the host's slots, and both origins
        # checkpointed the same stream boundary so the host's at_start
        # answers for the pair.
        host_patterns = len(host.pattern_ids)
        combined_snapshot = {
            "version": FusedMatcher.STATE_VERSION,
            "active": combined_active,
            "num_states": combined_auto.num_states,
            "at_start": int(host_ckpt.at_start),
            "tail_emits": host_ckpt.tail_emits
            | (ckpt_x.tail_emits << host_patterns),
        }
        adopted_ids = tuple(shard.pattern_ids)
        x_wm = shard.watermark
        x_overrides = dict(shard.wm_overrides)
        # -- restart the host on the combined automaton ----------------
        self._teardown_worker(host)
        host.automaton = combined_auto
        host.slots.extend(shard.slots)
        host.pattern_ids.extend(shard.pattern_ids)
        host.compiled.extend(shard.compiled)
        host.cost += shard.cost
        shard.slots = []
        shard.pattern_ids = []
        shard.compiled = []
        shard.cost = 0.0
        shard.alive = False
        shard.ckpt = None
        shard.prev_ckpt = None
        shard.wm_overrides = {}
        # Per-origin dedup: the host acked through the failed chunk but
        # the dead shard only through the one before it, so one merged
        # watermark would over-filter the adopted patterns' events in
        # that chunk.  The overrides stay on the host until a completed
        # heal replay re-synchronises both origins (then they collapse
        # back into the single watermark) — and they survive a nested
        # failover, where a mid-adoption host hands its own overrides
        # down to the next survivor.
        for pid in adopted_ids:
            host.wm_overrides[pid] = x_overrides.get(pid, x_wm)
        # From here on the host recovers from the combined checkpoint
        # even if this adoption replay itself fails (it keeps its own
        # restart budget, so its supervision takes over).
        host.ckpt = ShardCheckpoint(
            shard=host.index,
            seq=ckpt_x.seq,
            snapshot=combined_snapshot,
            watermark=host.watermark,
        )
        host.prev_ckpt = None
        self._record_failover(shard, host, adopted_ids, reason)
        self._start_shard(host)
        if not self._restore_worker(host, combined_snapshot):
            return self._heal(host, seq, stream_base)
        result = self._replay_tail(host, ckpt_x.seq + 1, seq)
        if result is None:
            # Nothing fresh was emitted before the failed chunk's reply,
            # so handing over to the host's own supervision (same seq,
            # same watermarks) stays lossless.
            return self._heal(host, seq, stream_base)
        fresh_for_seq, replayed = result
        self._collapse_overrides(host)
        if telemetry.metrics_enabled():
            telemetry.registry().counter(
                "scan.shard.replayed_bytes"
            ).inc(replayed)
        # If re-broadcasting the in-flight chunks fails the fault is
        # noted and the next collect heals the host; the healed chunk's
        # events are already safe to emit either way.
        self._resend_inflight(host, seq)
        return fresh_for_seq

    def _record_failover(
        self,
        shard: _Shard,
        host: _Shard,
        pattern_ids: Tuple[int, ...],
        reason: str,
    ) -> None:
        failover = ShardFailover(
            shard=shard.index,
            to_shard=host.index,
            pattern_ids=pattern_ids,
            reason=reason,
        )
        self.failovers.append(failover)
        log.warning(
            "shard %d failed permanently (%s); patterns %s re-fused onto "
            "shard %d",
            shard.index, reason, list(pattern_ids), host.index,
        )
        if telemetry.metrics_enabled():
            registry = telemetry.registry()
            registry.counter("scan.shard.failovers").inc()
            registry.gauge("scan.shard.workers").set(len(self.live_shards()))
        if flight.flight_enabled():
            flight.record(
                "shard_failover",
                shard=shard.index,
                to_shard=host.index,
                reason=reason,
                pattern_ids=list(pattern_ids),
            )

    def heartbeat(self) -> Dict[int, bool]:
        """Watchdog probe: nonced ping to every live worker.

        Detects a hung (e.g. SIGSTOPped) worker while the stream is
        idle, without waiting for the next chunk's reply deadline.  A
        failed probe marks the shard faulted; under supervision the next
        :meth:`feed` heals it, otherwise it degrades immediately.  Not
        for use with chunks in flight (call between feeds).
        """
        self.start()
        status: Dict[int, bool] = {}
        for shard in self._shards:
            if not shard.alive:
                status[shard.index] = False
                continue
            if self.backend == "inline":
                status[shard.index] = True
                continue
            self._hb_nonce += 1
            nonce = self._hb_nonce
            ok = False
            try:
                shard.conn.send(("ping", nonce))
                deadline = time.monotonic() + self.recv_timeout_s
                while time.monotonic() < deadline:
                    if not shard.conn.poll(0.05):
                        continue
                    message = shard.conn.recv()
                    if message[0] == "pong" and message[1] == nonce:
                        ok = True
                        break
                    if message[0] == "events":
                        shard.pending[message[1]] = tuple(message[2:])
            except (EOFError, OSError, ValueError, BrokenPipeError):
                ok = False
            if not ok:
                self._fail_shard(
                    shard, "heartbeat" if shard.process is None
                    or shard.process.is_alive() else "died"
                )
            status[shard.index] = ok
        return status

    def inject_fault(self, shard_index: int, mode: str = "die") -> None:
        """Fault-injection hook for chaos tests (process backend only).

        * ``"die"`` — the worker hard-exits before its next reply;
        * ``"kill"`` — SIGKILL from outside, no cooperation at all;
        * ``"hang"`` — it sleeps past the reply deadline (watchdog trip);
        * ``"stop"`` — SIGSTOP, the OS-level hang (also a watchdog trip,
          and the restart path must SIGKILL through it);
        * ``"corrupt"`` — one junk frame on the reply pipe;
        * ``"slow"`` — a short stall well under the deadline (must be
          tolerated, not healed).

        Without a :class:`RestartPolicy` the next :meth:`feed`/
        :meth:`reset` degrades the faulted shard; with one it heals.
        """
        modes = ("die", "kill", "hang", "stop", "corrupt", "slow")
        if mode not in modes:
            raise ValueError(f"mode must be one of {modes}, got {mode!r}")
        self.start()
        if self.backend != "process":
            raise RuntimeError("fault injection needs the process backend")
        shard = self._shards[shard_index]
        if not shard.alive:
            return
        if mode in ("stop", "kill"):
            if shard.process is not None and shard.process.is_alive():
                os.kill(
                    shard.process.pid,
                    signal.SIGSTOP if mode == "stop" else signal.SIGKILL,
                )
            return
        message = {
            "die": ("fail",),
            "hang": ("hang", 4 * self.recv_timeout_s),
            "corrupt": ("corrupt",),
            "slow": ("hang", min(0.05, self.recv_timeout_s / 4)),
        }[mode]
        self._send(shard, message)

    # -- scanning ------------------------------------------------------

    def _send(self, shard: _Shard, message) -> None:
        try:
            shard.conn.send(message)
        except (OSError, ValueError, BrokenPipeError):
            self._fail_shard(shard, "send_failed")

    def _recv_reply(self, shard: _Shard, seq: int):
        """One shard's reply for chunk ``seq``.

        Returns the ``(events, busy_s, stats, snapshot)`` payload, None
        once the shard degraded, or :data:`_FAILED` when a supervised
        shard needs healing (the collector owns that decision)."""
        if not shard.alive:
            return None
        if shard.fault is not None:
            return _FAILED
        if seq in shard.pending:
            return shard.pending.pop(seq)
        deadline = time.monotonic() + self.recv_timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return self._fail_shard(shard, "timeout")
            try:
                if not shard.conn.poll(min(remaining, 0.25)):
                    continue
                message = shard.conn.recv()
            except (EOFError, OSError):
                return self._fail_shard(shard, "died")
            if message[0] != "events":
                continue  # stale ok / junk frame from an interleaved op
            _, got_seq, events, busy_s, stats, snapshot = message
            if got_seq == seq:
                return events, busy_s, stats, snapshot
            shard.pending[got_seq] = (events, busy_s, stats, snapshot)

    def _collect(self, seq: int, base: int) -> List[Tuple[int, int]]:
        """Merge all live shards' events for one chunk, rebased to the
        chunk offset, in the fused engine's ``(end, pattern_id)`` order.

        Supervised shards that failed this chunk are healed (restart →
        failover → degrade) right here, so the merge already contains
        their deduplicated replay events."""
        stream_base = self._stream_pos + base
        gathered: List[Tuple[int, int]] = []
        failed: List[_Shard] = []
        for shard in self._shards:
            reply = self._recv_reply(shard, seq)
            if reply is None:
                continue
            if reply is _FAILED:
                failed.append(shard)
                continue
            self._absorb_reply(shard, seq, stream_base, reply, gathered)
        for shard in failed:
            gathered.extend(self._heal(shard, seq, stream_base))
        if self._supervised:
            self._prune_tail()
        gathered.sort(key=lambda event: (event[1], event[0]))
        return [(pattern_id, base + end) for pattern_id, end in gathered]

    def feed(self, data: bytes) -> List[Tuple[int, int]]:
        """Scan one chunk stream from the current state.

        Returns ``(pattern_id, end)`` events with ends relative to
        ``data`` — the same contract as
        :meth:`repro.matching.fused.FusedMatcher.feed`.
        """
        self.start()
        if self._closed:
            raise RuntimeError("ShardedScanner is closed")
        if not data:
            return []
        wall_started = time.perf_counter()
        busy_before = [s.busy_s for s in self._shards]
        out: List[Tuple[int, int]] = []
        if self.backend == "inline":
            for base in range(0, len(data), self.chunk_bytes):
                chunk = data[base : base + self.chunk_bytes]
                gathered: List[Tuple[int, int]] = []
                for shard in self._shards:
                    if not shard.alive:
                        continue
                    events, busy_s, stats = shard.inline.feed(chunk)
                    shard.events_total += len(events)
                    shard.busy_s += busy_s
                    shard.worker_stats = stats
                    gathered.extend(events)
                gathered.sort(key=lambda event: (event[1], event[0]))
                out.extend((pid, base + end) for pid, end in gathered)
        else:
            inflight: deque = deque()
            for base in range(0, len(data), self.chunk_bytes):
                chunk = data[base : base + self.chunk_bytes]
                seq = self._seq
                want_ckpt = False
                if self._supervised:
                    # Buffer the tail chunk *before* broadcasting, so a
                    # send-time failure can already replay it.
                    self._tail[seq] = (self._stream_pos + base, chunk)
                    want_ckpt = (
                        (seq + 1) % self.restart_policy.checkpoint_chunks
                        == 0
                    )
                for shard in self._shards:
                    # A faulted shard gets its missed chunks replayed
                    # from the buffered tail when the collector heals it.
                    if shard.alive and shard.fault is None:
                        self._send(shard, ("feed", seq, chunk, want_ckpt))
                inflight.append((seq, base))
                self._seq += 1
                if len(inflight) >= MAX_INFLIGHT_CHUNKS:
                    done_seq, done_base = inflight.popleft()
                    out.extend(self._collect(done_seq, done_base))
            while inflight:
                done_seq, done_base = inflight.popleft()
                out.extend(self._collect(done_seq, done_base))
        self._stream_pos += len(data)
        self._record_metrics(data, out, wall_started, busy_before)
        return out

    def finish(self) -> List[Tuple[int, int]]:
        """Finalise the stream: matches every shard held for the ``$``
        gate, merged in pattern-id order.

        Events follow the
        :meth:`repro.matching.fused.FusedMatcher.finish` convention —
        ``(pattern_id, -1)``, the stream's final byte.  Non-mutating and
        only valid between feeds (no chunks in flight).  A supervised
        shard found faulted here is healed first (its checkpoint + tail
        replay restore the end-of-stream activation); a shard that then
        cannot answer degrades — finalisation itself has no chunk to
        replay.
        """
        self.start()
        if self._closed:
            raise RuntimeError("ShardedScanner is closed")
        out: List[Tuple[int, int]] = []
        if self.backend == "inline":
            for shard in self._shards:
                if shard.alive:
                    out.extend(shard.inline.finish())
            out.sort()
            return out
        waiting: List[_Shard] = []
        for shard in self._shards:
            if not shard.alive:
                continue
            if shard.fault is not None:
                if self._supervised and self._seq > 0:
                    # Healing replays through the last broadcast chunk;
                    # its events were already emitted, so the watermark
                    # dedup returns nothing new here.
                    self._heal(shard, self._seq - 1, self._stream_pos)
                else:
                    self._degrade(shard, shard.fault)
                if not shard.alive:
                    continue
            try:
                shard.conn.send(("finish",))
            except (OSError, ValueError, BrokenPipeError):
                self._degrade(shard, "finish_failed")
                continue
            waiting.append(shard)
        for shard in waiting:
            deadline = time.monotonic() + self.recv_timeout_s
            answered = False
            try:
                while time.monotonic() < deadline:
                    remaining = deadline - time.monotonic()
                    if not shard.conn.poll(max(min(remaining, 0.25), 0.0)):
                        continue
                    message = shard.conn.recv()
                    if message[0] == "finished":
                        out.extend(message[1])
                        answered = True
                        break
                    # skip stale events/junk frames
            except (EOFError, OSError):
                pass
            if not answered:
                self._degrade(shard, "finish_failed")
        out.sort()
        return out

    def _record_metrics(
        self,
        data: bytes,
        out: List[Tuple[int, int]],
        wall_started: float,
        busy_before: List[float],
    ) -> None:
        if not telemetry.metrics_enabled():
            return
        wall = time.perf_counter() - wall_started
        registry = telemetry.registry()
        registry.counter("scan.shard.bytes").inc(
            len(data) * len(self.live_shards())
        )
        registry.counter("scan.shard.matches").inc(len(out))
        registry.gauge("scan.shard.workers").set(len(self.live_shards()))
        for shard, before in zip(self._shards, busy_before):
            registry.counter(
                "scan.shard.events", shard=shard.index
            ).inc(shard.events_total)
            if wall > 0:
                registry.gauge(
                    "scan.shard.occupancy", shard=shard.index
                ).set(min((shard.busy_s - before) / wall, 1.0))
            # Merge the worker's cumulative telemetry (shipped with each
            # events reply, across the process boundary) as deltas so
            # parent counters stay monotone under repeated feeds.  The
            # carry folds in all previous worker incarnations, so a
            # supervised restart mid-scan never publishes a negative (or
            # double-counted) delta.
            totals = dict(shard.stats_carry)
            for key, value in shard.worker_stats.items():
                totals[key] = totals.get(key, 0) + value
            for key, total in totals.items():
                delta = total - shard.published_stats.get(key, 0)
                if delta > 0:
                    registry.counter(
                        f"scan.shard.{key}", shard=shard.index
                    ).inc(delta)
                shard.published_stats[key] = total

    def _relaunch_fresh(self, shard: _Shard) -> None:
        """Replace a shard's worker with a brand-new one at the empty
        activation — how a supervised reset handles a faulted worker.
        Spends nothing from the restart budget: there is no tail to
        replay, the empty activation *is* the target state."""
        shard.fault = None
        self._teardown_worker(shard)
        self._start_shard(shard)

    def reset(self) -> None:
        """Rewind every live shard to the empty activation."""
        if self._closed or not self._started:
            return  # fresh scanners are already at the empty activation
        if self._supervised:
            self._tail.clear()
            self._seq = 0
            self._stream_pos = 0
        if self.backend == "inline":
            for shard in self._shards:
                if shard.alive:
                    shard.inline.reset()
            return
        waiting = []
        for shard in self._shards:
            if not shard.alive:
                continue
            shard.pending.clear()
            if self._supervised:
                shard.watermark = None
                shard.wm_overrides = {}
                shard.ckpt = self._floor_checkpoint(shard)
                shard.prev_ckpt = None
                if shard.fault is not None:
                    self._relaunch_fresh(shard)
                    continue
            self._send(shard, ("reset",))
            if shard.fault is not None:  # supervised send failure
                self._relaunch_fresh(shard)
                continue
            if shard.alive:
                waiting.append(shard)
        for shard in waiting:
            deadline = time.monotonic() + self.recv_timeout_s
            acked = False
            try:
                while time.monotonic() < deadline:
                    remaining = deadline - time.monotonic()
                    if not shard.conn.poll(max(min(remaining, 0.25), 0.0)):
                        continue
                    message = shard.conn.recv()
                    if message[0] == "ok":
                        acked = True
                        break
                    # skip stale events/junk frames from before the reset
            except (EOFError, OSError):
                pass
            if acked:
                continue
            reason = (
                "died"
                if shard.process is not None and not shard.process.is_alive()
                else "timeout"
            )
            if self._fail_shard(shard, reason) is _FAILED:
                self._relaunch_fresh(shard)

    def scan(self, data: bytes) -> List[Tuple[int, int]]:
        """Fresh-state :meth:`feed`."""
        self.start()
        self.reset()
        return self.feed(data)

    # -- introspection -------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Orchestrator statistics for telemetry/bench reporting."""
        return {
            "num_shards": self.num_shards,
            "live_shards": len(self.live_shards()),
            "plan": self.plan.to_json(),
            "failures": [
                {
                    "shard": f.shard,
                    "pattern_ids": list(f.pattern_ids),
                    "reason": f.reason,
                }
                for f in self.failures
            ],
            "restarts": [
                {
                    "shard": r.shard,
                    "attempt": r.attempt,
                    "reason": r.reason,
                    "backoff_s": round(r.backoff_s, 4),
                    "replayed_bytes": r.replayed_bytes,
                }
                for r in self.restarts
            ],
            "failovers": [
                {
                    "shard": f.shard,
                    "to_shard": f.to_shard,
                    "pattern_ids": list(f.pattern_ids),
                    "reason": f.reason,
                }
                for f in self.failovers
            ],
            "events_per_shard": {
                s.index: s.events_total for s in self._shards
            },
            "worker_stats": {
                s.index: dict(s.worker_stats) for s in self._shards
            },
        }
