"""Scan-engine micro-benchmark helpers (the ``bench`` CLI verb and
``benchmarks/bench_scan.py`` both build on these).

The measurement of record is a *patterns × input-size grid* over a
workload-profile rule set, timing the fused engine against the
per-pattern engines and deriving fused speedups.  Results serialise to a
plain-JSON perf record (``BENCH_scan.json``) so successive PRs can track
the scan trajectory.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..compiler import CompilerOptions
from ..workloads import PROFILES, dataset_stream, load_dataset, match_rate_stream
from .engine import ENGINES, PatternSet

#: The engine every speedup is quoted against: the per-pattern loop over
#: the same automaton class the fused engine executes.
BASELINE_ENGINE = "nfa"

#: The three fused stepping tiers, benched as pseudo-engines on the
#: match-rate axis.  ``table_states=None`` means "engine default".
FUSED_VARIANTS: Dict[str, Dict[str, object]] = {
    "fused-bitset": {"table_states": 0, "prefilter": False},
    "fused-table": {"table_states": None, "prefilter": False},
    "fused-prefilter": {"table_states": None, "prefilter": True},
}

_STATIC_PROVENANCE: Optional[Dict[str, object]] = None


def provenance() -> Dict[str, object]:
    """Machine/revision context stamped into every bench cell.

    A throughput number is only comparable to another run when both were
    taken on the same code and comparable hardware — so every cell
    carries the git revision, CPU count, Python version, and the
    1-minute load average at measurement time (the noise indicator the
    regression comparator surfaces when a drop looks machine-induced).
    The static parts are probed once per process; the load average is
    re-read per cell.
    """
    global _STATIC_PROVENANCE
    if _STATIC_PROVENANCE is None:
        try:
            rev = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=5,
                cwd=os.path.dirname(os.path.abspath(__file__)),
            ).stdout.strip() or None
        except (OSError, subprocess.SubprocessError):
            rev = None
        _STATIC_PROVENANCE = {
            "git_revision": rev,
            "cpus": os.cpu_count(),
            "python": sys.version.split()[0],
        }
    out = dict(_STATIC_PROVENANCE)
    try:
        out["load_avg_1m"] = round(os.getloadavg()[0], 2)
    except (OSError, AttributeError):  # pragma: no cover - platform
        out["load_avg_1m"] = None
    return out


@dataclass
class EngineTiming:
    """Best-of-N wall time of one engine over one workload cell."""

    engine: str
    seconds: float
    matches: int
    input_bytes: int

    @property
    def throughput_mbps(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.input_bytes / self.seconds / 1e6

    def to_dict(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "seconds": self.seconds,
            "matches": self.matches,
            "throughput_mbps": round(self.throughput_mbps, 3),
        }


def _best_of(func, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def time_engine(
    patterns: Sequence[str],
    data: bytes,
    engine: str,
    options: CompilerOptions = CompilerOptions(),
    repeats: int = 3,
    shards: Optional[int] = None,
    table_states: Optional[int] = None,
    prefilter: bool = True,
) -> EngineTiming:
    """Compile once, scan ``repeats`` times, keep the best wall time.

    ``shards`` sizes the worker pool for ``engine="sharded"`` (ignored
    elsewhere); the workers are torn down before returning so bench runs
    never leak processes.  ``table_states`` (via the budget) and
    ``prefilter`` pin the fused stepping tier — ``table_states=0`` with
    ``prefilter=False`` forces pure bitset stepping.
    """
    kwargs: Dict[str, object] = {"shards": shards} if engine == "sharded" else {}
    if engine in ("fused", "sharded"):
        kwargs["prefilter"] = prefilter
        if table_states is not None:
            kwargs["budget"] = replace(
                options.budget, max_table_states=table_states
            )
    pattern_set = PatternSet(patterns, options=options, engine=engine, **kwargs)
    try:
        matches = pattern_set.scan(data)  # warm caches/workers before timing
        seconds = _best_of(lambda: pattern_set.scan(data), repeats)
    finally:
        pattern_set.close()
    return EngineTiming(
        engine=engine,
        seconds=seconds,
        matches=len(matches),
        input_bytes=len(data),
    )


def bench_cell(
    patterns: Sequence[str],
    data: bytes,
    engines: Sequence[str],
    options: CompilerOptions = CompilerOptions(),
    repeats: int = 3,
    shards: Optional[int] = None,
    prefilter: bool = True,
) -> Dict[str, object]:
    """One grid cell: every engine over the same patterns and input.

    Also asserts that every engine produced the same match count — a
    cheap differential tripwire inside the perf harness itself.
    """
    timings = [
        time_engine(
            patterns, data, engine, options, repeats,
            shards=shards, prefilter=prefilter,
        )
        for engine in engines
    ]
    counts = {t.engine: t.matches for t in timings}
    if len(set(counts.values())) > 1:
        raise AssertionError(f"engines disagree on match count: {counts}")
    cell: Dict[str, object] = {
        "num_patterns": len(patterns),
        "input_bytes": len(data),
        "timings": {t.engine: t.to_dict() for t in timings},
        "provenance": provenance(),
    }
    baseline = next(
        (t for t in timings if t.engine == BASELINE_ENGINE), None
    )
    fused = next((t for t in timings if t.engine == "fused"), None)
    if baseline and fused and fused.seconds > 0:
        cell["fused_speedup"] = round(baseline.seconds / fused.seconds, 2)
    return cell


def bench_shard_scaling(
    patterns: Sequence[str],
    data: bytes,
    shard_counts: Sequence[int] = (1, 2, 4),
    options: CompilerOptions = CompilerOptions(),
    repeats: int = 3,
) -> Dict[str, object]:
    """Shard-scaling cell: sharded at each worker count vs fused.

    ``speedup_vs_fused`` > 1 means the worker pool beat the
    single-process fused engine in wall time.  ``cpus`` records the
    machine's core count — on a single-core box the sharded engine
    cannot beat fused (K workers redo the per-byte step K times with no
    parallel hardware), so scaling records are only comparable across
    machines via this field.
    """
    fused = time_engine(patterns, data, "fused", options, repeats)
    rows: List[Dict[str, object]] = []
    for count in shard_counts:
        timing = time_engine(
            patterns, data, "sharded", options, repeats, shards=count
        )
        if timing.matches != fused.matches:
            raise AssertionError(
                f"sharded@{count} found {timing.matches} matches, "
                f"fused found {fused.matches}"
            )
        row = timing.to_dict()
        row["shards"] = count
        if timing.seconds > 0:
            row["speedup_vs_fused"] = round(fused.seconds / timing.seconds, 2)
        rows.append(row)
    return {
        "num_patterns": len(patterns),
        "input_bytes": len(data),
        "cpus": os.cpu_count(),
        "fused": fused.to_dict(),
        "shards": rows,
    }


def _supervised_scan(
    compiled,
    ids: Sequence[int],
    data: bytes,
    shards: int,
    chunk_bytes: int,
    checkpoint_chunks: int,
    kill_chunk: Optional[int],
) -> Dict[str, object]:
    """One supervised sharded pass; ``kill_chunk`` injects a worker death.

    Worker spawn happens outside the timed region so the figure is the
    steady-state scan cost (clean) or scan-plus-recovery cost (faulted),
    not process start-up.
    """
    from ..resilience.budget import RestartPolicy
    from .sharded import ShardedScanner

    chunks = [
        data[base : base + chunk_bytes]
        for base in range(0, len(data), chunk_bytes)
    ]
    policy = RestartPolicy(
        max_restarts=2,
        backoff_base_s=0.01,
        backoff_cap_s=0.05,
        checkpoint_chunks=checkpoint_chunks,
    )
    matches: List[tuple] = []
    with ShardedScanner(
        list(compiled),
        list(ids),
        shards,
        chunk_bytes=chunk_bytes,
        restart_policy=policy,
        seed=0,
    ) as scanner:
        pos = 0
        start = time.perf_counter()
        for index, chunk in enumerate(chunks):
            if index == kill_chunk:
                scanner.inject_fault(0, "die")
            matches.extend(
                (pid, pos + end) for pid, end in scanner.feed(chunk)
            )
            pos += len(chunk)
        seconds = time.perf_counter() - start
        restarts = list(scanner.restarts)
    return {
        "seconds": seconds,
        "matches": matches,
        "restarts": len(restarts),
        "replayed_bytes": sum(r.replayed_bytes for r in restarts),
    }


def bench_recovery(
    patterns: Sequence[str],
    data: bytes,
    options: CompilerOptions = CompilerOptions(),
    shards: int = 2,
    chunk_bytes: int = 1024,
    checkpoint_chunks: int = 4,
    repeats: int = 3,
) -> Dict[str, object]:
    """Recovery-latency cell: supervised sharded scan, clean vs killed.

    The faulted pass injects one worker death (cooperative ``die``, so
    the schedule is deterministic) at the mid-stream chunk; supervision
    restarts the shard from its checkpoint and replays the buffered
    tail.  ``recovery_overhead_s`` is the wall-clock price of that heal
    (faulted minus clean, best-of-``repeats`` each), and the cell
    asserts the two match streams are identical — the bench doubles as
    a recovery-parity tripwire.
    """
    from ..compiler.pipeline import compile_ruleset

    ruleset = compile_ruleset(list(patterns), options)
    compiled = ruleset.regexes
    ids = [regex.regex_id for regex in compiled]
    num_chunks = max(1, (len(data) + chunk_bytes - 1) // chunk_bytes)
    kill_chunk = num_chunks // 2

    def best(kill: Optional[int]) -> Dict[str, object]:
        runs = [
            _supervised_scan(
                compiled, ids, data, shards, chunk_bytes,
                checkpoint_chunks, kill,
            )
            for _ in range(repeats)
        ]
        return min(runs, key=lambda r: r["seconds"])

    clean = best(None)
    faulted = best(kill_chunk)
    if clean["matches"] != faulted["matches"]:
        raise AssertionError(
            f"recovery changed the match stream: clean "
            f"{len(clean['matches'])} events, faulted "
            f"{len(faulted['matches'])}"
        )
    return {
        "num_patterns": len(patterns),
        "input_bytes": len(data),
        "shards": shards,
        "chunk_bytes": chunk_bytes,
        "checkpoint_chunks": checkpoint_chunks,
        "kill_chunk": kill_chunk,
        "matches": len(clean["matches"]),
        "clean_s": round(clean["seconds"], 6),
        "faulted_s": round(faulted["seconds"], 6),
        "recovery_overhead_s": round(
            max(0.0, faulted["seconds"] - clean["seconds"]), 6
        ),
        "restarts": faulted["restarts"],
        "replayed_bytes": faulted["replayed_bytes"],
        "provenance": provenance(),
    }


def _variant_timing(
    name: str,
    patterns: Sequence[str],
    data: bytes,
    options: CompilerOptions,
    repeats: int,
) -> EngineTiming:
    cfg = FUSED_VARIANTS[name]
    timing = time_engine(
        patterns,
        data,
        "fused",
        options,
        repeats,
        table_states=cfg["table_states"],  # type: ignore[arg-type]
        prefilter=bool(cfg["prefilter"]),
    )
    timing.engine = name
    return timing


def bench_match_rates(
    profile_name: str = "RegexLib",
    num_patterns: int = 16,
    input_size: int = 1 << 16,
    rates: Sequence[float] = (0.0, 0.01, 0.5),
    options: CompilerOptions = CompilerOptions(),
    repeats: int = 3,
    seed: int = 1,
) -> List[Dict[str, object]]:
    """The match-rate axis: the three fused tiers at each plant rate.

    The prefilter's win shrinks as the match rate rises (more of the
    input sits inside armed windows), so each cell times pure bitset
    stepping, the dense table, and table+prefilter over the same input
    and quotes ``table_speedup`` / ``prefilter_speedup`` against the
    bitset tier.  Before timing, the three variants' *full match
    streams* (not just counts) are compared — the bench doubles as a
    differential tripwire for the tier fallback logic.
    """
    profile = PROFILES[profile_name]
    patterns = load_dataset(profile_name, num_patterns, seed)
    cells: List[Dict[str, object]] = []
    for rate in rates:
        data = match_rate_stream(
            patterns,
            random.Random(seed + int(rate * 10_000)),
            input_size,
            profile.literal_pool,
            rate,
        )
        streams = {}
        for name, cfg in FUSED_VARIANTS.items():
            budget = replace(
                options.budget,
                max_table_states=cfg["table_states"],  # type: ignore[arg-type]
            )
            ps = PatternSet(
                patterns,
                options=options,
                engine="fused",
                budget=budget,
                prefilter=bool(cfg["prefilter"]),
            )
            try:
                streams[name] = ps.scan(data)
            finally:
                ps.close()
        if len({tuple(s) for s in streams.values()}) > 1:
            counts = {name: len(s) for name, s in streams.items()}
            raise AssertionError(
                f"fused tiers disagree at match rate {rate}: {counts}"
            )
        timings = {
            name: _variant_timing(name, patterns, data, options, repeats)
            for name in FUSED_VARIANTS
        }
        cell: Dict[str, object] = {
            "num_patterns": len(patterns),
            "input_bytes": len(data),
            "match_rate": rate,
            "matches": len(streams["fused-bitset"]),
            "timings": {n: t.to_dict() for n, t in timings.items()},
            "provenance": provenance(),
        }
        bitset = timings["fused-bitset"]
        if bitset.seconds > 0:
            for name, key in (
                ("fused-table", "table_speedup"),
                ("fused-prefilter", "prefilter_speedup"),
            ):
                if timings[name].seconds > 0:
                    cell[key] = round(
                        bitset.seconds / timings[name].seconds, 2
                    )
        cells.append(cell)
    return cells


def bench_workloads(
    profiles: Sequence[str] = ("log_scan", "ids", "pii"),
    num_records: int = 512,
    match_rates: Sequence[float] = (0.0, 0.05),
    options: CompilerOptions = CompilerOptions(),
    repeats: int = 3,
    seed: int = 1,
) -> List[Dict[str, object]]:
    """Per-record scan cells over the anchored workload profiles.

    The ruleset-importer workloads (:data:`repro.workloads.rulesets.
    WORKLOAD_PROFILES`) pair anchored rule sets with framed-traffic
    generators; since ``^``/``$`` are *stream* anchors, realistic
    deployment scans one record (log line, request line, document) per
    ``scan()`` call — which is exactly what these cells time.  Each cell
    runs the three fused stepping tiers over the identical record list,
    compares their full match streams (the anchored differential
    tripwire), and quotes ``table_speedup`` / ``prefilter_speedup``
    against pure bitset stepping.  The 0%%-match-rate cells are the
    acceptance evidence that gated (anchored) automatons still get the
    table and prefilter wins.
    """
    from ..workloads.rulesets import WORKLOAD_PROFILES

    cells: List[Dict[str, object]] = []
    for name in profiles:
        profile = WORKLOAD_PROFILES[name]
        patterns = list(profile.patterns)
        for rate in match_rates:
            rng = random.Random(seed + int(rate * 10_000))
            records = profile.records(rng, num_records, rate)
            total_bytes = sum(len(record) for record in records)
            streams: Dict[str, List] = {}
            timings: Dict[str, EngineTiming] = {}
            for variant, cfg in FUSED_VARIANTS.items():
                budget = replace(
                    options.budget,
                    max_table_states=cfg["table_states"],  # type: ignore[arg-type]
                )
                ps = PatternSet(
                    patterns,
                    options=options,
                    engine="fused",
                    budget=budget,
                    prefilter=bool(cfg["prefilter"]),
                )
                try:
                    stream = [
                        (index, match.pattern_id, match.end)
                        for index, record in enumerate(records)
                        for match in ps.scan(record)
                    ]
                    streams[variant] = stream
                    seconds = _best_of(
                        lambda: [ps.scan(record) for record in records],
                        repeats,
                    )
                finally:
                    ps.close()
                timings[variant] = EngineTiming(
                    engine=variant,
                    seconds=seconds,
                    matches=len(stream),
                    input_bytes=total_bytes,
                )
            if len({tuple(s) for s in streams.values()}) > 1:
                counts = {v: len(s) for v, s in streams.items()}
                raise AssertionError(
                    f"fused tiers disagree on workload {name!r} at "
                    f"match rate {rate}: {counts}"
                )
            cell: Dict[str, object] = {
                "workload": name,
                "num_patterns": len(patterns),
                "records": num_records,
                "input_bytes": total_bytes,
                "match_rate": rate,
                "matches": len(streams["fused-bitset"]),
                "timings": {v: t.to_dict() for v, t in timings.items()},
                "provenance": provenance(),
            }
            bitset = timings["fused-bitset"]
            if bitset.seconds > 0:
                for variant, key in (
                    ("fused-table", "table_speedup"),
                    ("fused-prefilter", "prefilter_speedup"),
                ):
                    if timings[variant].seconds > 0:
                        cell[key] = round(
                            bitset.seconds / timings[variant].seconds, 2
                        )
            cells.append(cell)
    return cells


def bench_grid(
    profile_name: str = "RegexLib",
    pattern_counts: Sequence[int] = (1, 4, 16),
    input_sizes: Sequence[int] = (4096, 16384),
    engines: Sequence[str] = ENGINES,
    options: CompilerOptions = CompilerOptions(),
    repeats: int = 3,
    seed: int = 1,
    shard_counts: Optional[Sequence[int]] = None,
    match_rates: Optional[Sequence[float]] = None,
    recovery: bool = False,
) -> Dict[str, object]:
    """The full perf record: pattern-count × input-size grid.

    With ``shard_counts`` the record additionally carries a
    ``shard_scaling`` section measured on the largest grid cell; with
    ``match_rates`` a ``match_rate_grid`` timing the fused stepping
    tiers (bitset / table / table+prefilter) at each plant rate, plus
    the ``table_speedup_low_match`` and ``prefilter_speedup_zero_match``
    headline keys.  ``recovery`` adds the supervised-recovery latency
    cell (:func:`bench_recovery`) on the largest workload.
    """
    profile = PROFILES[profile_name]
    max_patterns = max(pattern_counts)
    all_patterns = load_dataset(profile_name, max_patterns, seed)
    grid: List[Dict[str, object]] = []
    for count in pattern_counts:
        patterns = all_patterns[:count]
        for size in input_sizes:
            data = dataset_stream(
                patterns,
                random.Random(seed + size),
                size,
                profile.literal_pool,
            )
            grid.append(bench_cell(patterns, data, engines, options, repeats))
    record: Dict[str, object] = {
        "benchmark": "fused_scan",
        "profile": profile_name,
        "seed": seed,
        "repeats": repeats,
        "engines": list(engines),
        "baseline_engine": BASELINE_ENGINE,
        "python": sys.version.split()[0],
        "provenance": provenance(),
        "grid": grid,
    }
    # Headline number: fused speedup on the largest-pattern-count cells.
    headline = [
        cell["fused_speedup"]
        for cell in grid
        if cell["num_patterns"] == max_patterns and "fused_speedup" in cell
    ]
    if headline:
        record["fused_speedup_max_patterns"] = max(headline)
    if shard_counts:
        size = max(input_sizes)
        data = dataset_stream(
            all_patterns,
            random.Random(seed + size),
            size,
            profile.literal_pool,
        )
        record["shard_scaling"] = bench_shard_scaling(
            all_patterns, data, shard_counts, options, repeats
        )
    if recovery:
        size = max(input_sizes)
        data = dataset_stream(
            all_patterns,
            random.Random(seed + size),
            size,
            profile.literal_pool,
        )
        record["recovery"] = bench_recovery(
            all_patterns, data, options, repeats=repeats
        )
    if match_rates:
        cells = bench_match_rates(
            profile_name,
            num_patterns=max_patterns,
            input_size=max(input_sizes),
            rates=match_rates,
            options=options,
            repeats=repeats,
            seed=seed,
        )
        record["match_rate_grid"] = cells
        low = min(cells, key=lambda c: c["match_rate"])
        if "table_speedup" in low:
            record["table_speedup_low_match"] = low["table_speedup"]
        zero = next((c for c in cells if c["match_rate"] == 0.0), None)
        if zero and "prefilter_speedup" in zero:
            record["prefilter_speedup_zero_match"] = zero["prefilter_speedup"]
    return record


def bench_compile_cache(
    profile_name: str = "RegexLib",
    num_patterns: int = 64,
    options: CompilerOptions = CompilerOptions(),
    repeats: int = 3,
    seed: int = 1,
    cache_dir: Optional[str] = None,
    jobs: int = 1,
) -> Dict[str, object]:
    """Cold-vs-warm ruleset compile through the content-addressed cache.

    *Cold* is the first :func:`~repro.compiler.pipeline.compile_ruleset`
    against a fresh cache (every pattern misses and compiles); *warm* is
    the best of ``repeats`` immediate recompiles of the same rule set
    (every pattern hits).  The ratio is the compile-reuse headline the
    perf record tracks alongside the scan grid.
    """
    from ..compiler.cache import CompileCache
    from ..compiler.pipeline import compile_ruleset

    patterns = load_dataset(profile_name, num_patterns, seed)
    cache = CompileCache(cache_dir=cache_dir)
    start = time.perf_counter()
    cold_ruleset = compile_ruleset(patterns, options, cache=cache, jobs=jobs)
    cold_s = time.perf_counter() - start
    warm_s = _best_of(
        lambda: compile_ruleset(patterns, options, cache=cache, jobs=jobs),
        repeats,
    )
    info = cache.cache_info()
    record: Dict[str, object] = {
        "profile": profile_name,
        "num_patterns": num_patterns,
        "compiled": len(cold_ruleset.regexes),
        "jobs": jobs,
        "disk_cache": cache_dir is not None,
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "cache_hits": info["hits"],
        "cache_misses": info["misses"],
    }
    if warm_s > 0:
        record["warm_speedup"] = round(cold_s / warm_s, 2)
    return record


def bench_reduction(
    profile_name: str = "RegexLib",
    num_patterns: int = 64,
    input_size: int = 1 << 16,
    options: CompilerOptions = CompilerOptions(),
    repeats: int = 3,
    seed: int = 1,
) -> Dict[str, object]:
    """The ``reduction`` cell: what the ``compiler.reduce`` pass buys.

    Compiles the profile rule set twice — at the requested
    ``reduce_level`` and with reduction off — and measures the state
    count of the fused scan automaton (its combined bitset width, the
    quantity every per-byte step pays for), the AH-NBVA STE/BV-STE
    totals that size the hardware mapping, and the fused scan
    throughput over the same input both ways.  The two full match
    streams are compared first: the cell doubles as a
    reduced-vs-unreduced differential tripwire.
    """
    from ..compiler.pipeline import compile_ruleset
    from .fused import fuse_patterns

    profile = PROFILES[profile_name]
    patterns = load_dataset(profile_name, num_patterns, seed)
    data = dataset_stream(
        patterns, random.Random(seed + input_size), input_size,
        profile.literal_pool,
    )
    reduced_options = options
    if reduced_options.reduce_level == 0:
        raise ValueError("bench_reduction needs a reduced configuration")
    unreduced_options = replace(options, reduce_level=0)

    variants: Dict[str, Dict[str, object]] = {}
    streams: Dict[str, List[tuple]] = {}
    for name, opts in (
        ("reduced", reduced_options), ("unreduced", unreduced_options)
    ):
        ruleset = compile_ruleset(patterns, opts)
        fused = fuse_patterns(ruleset.regexes)
        ps = PatternSet(patterns, options=opts, engine="fused")
        try:
            streams[name] = ps.scan(data)  # also warms the matcher
            seconds = _best_of(lambda: ps.scan(data), repeats)
        finally:
            ps.close()
        variants[name] = {
            "seconds": seconds,
            "throughput_mbps": round(
                len(data) / seconds / 1e6 if seconds > 0 else float("inf"), 3
            ),
            "fused_states": fused.num_states,
            "stes": ruleset.num_stes,
            "bv_stes": ruleset.num_bv_stes,
        }
    if streams["reduced"] != streams["unreduced"]:
        raise AssertionError(
            f"reduction changed the match stream: "
            f"{len(streams['reduced'])} events reduced, "
            f"{len(streams['unreduced'])} unreduced"
        )
    before = variants["unreduced"]["fused_states"]
    after = variants["reduced"]["fused_states"]
    cell: Dict[str, object] = {
        "num_patterns": num_patterns,
        "input_bytes": len(data),
        "reduce_level": reduced_options.reduce_level,
        "matches": len(streams["reduced"]),
        "reduced": variants["reduced"],
        "unreduced": variants["unreduced"],
        "state_reduction": round(
            (before - after) / before if before else 0.0, 4
        ),
        "provenance": provenance(),
    }
    unreduced_s = variants["unreduced"]["seconds"]
    reduced_s = variants["reduced"]["seconds"]
    if isinstance(reduced_s, float) and reduced_s > 0:
        cell["reduction_speedup"] = round(unreduced_s / reduced_s, 2)
    return cell


def format_grid(record: Dict[str, object]) -> str:
    """Human-readable table of a :func:`bench_grid` record."""
    lines = [
        f"scan bench — profile {record['profile']}, "
        f"seed {record['seed']}, best of {record['repeats']}",
        f"{'patterns':>9} {'bytes':>8} "
        + " ".join(f"{e:>10}" for e in record["engines"])
        + f" {'fused-vs-' + str(record['baseline_engine']):>12}",
    ]
    for cell in record["grid"]:
        timings = cell["timings"]
        row = f"{cell['num_patterns']:>9} {cell['input_bytes']:>8} "
        row += " ".join(
            f"{timings[e]['throughput_mbps']:>8.2f}MB" if e in timings else f"{'-':>10}"
            for e in record["engines"]
        )
        speedup = cell.get("fused_speedup")
        row += f" {speedup:>11.2f}x" if speedup is not None else f" {'-':>12}"
        lines.append(row)
    scaling = record.get("shard_scaling")
    if scaling:
        lines.append(
            f"shard scaling — {scaling['num_patterns']} patterns, "
            f"{scaling['input_bytes']} bytes, {scaling['cpus']} cpus "
            f"(fused {scaling['fused']['throughput_mbps']:.2f}MB/s)"
        )
        for row in scaling["shards"]:
            speedup = row.get("speedup_vs_fused")
            lines.append(
                f"{row['shards']:>9} workers {row['throughput_mbps']:>8.2f}MB"
                + (f" {speedup:>11.2f}x vs fused" if speedup else "")
            )
    recovery = record.get("recovery")
    if recovery:
        lines.append(
            f"recovery — {recovery['shards']} shards, kill at chunk "
            f"{recovery['kill_chunk']}: clean "
            f"{recovery['clean_s'] * 1e3:.1f}ms, faulted "
            f"{recovery['faulted_s'] * 1e3:.1f}ms "
            f"(+{recovery['recovery_overhead_s'] * 1e3:.1f}ms heal, "
            f"{recovery['replayed_bytes']} bytes replayed)"
        )
    rate_cells = record.get("match_rate_grid")
    if rate_cells:
        lines.append(
            f"match-rate axis — {rate_cells[0]['num_patterns']} patterns, "
            f"{rate_cells[0]['input_bytes']} bytes"
        )
        for cell in rate_cells:
            timings = cell["timings"]
            row = f"{cell['match_rate']:>8.1%} "
            row += " ".join(
                f"{timings[n]['throughput_mbps']:>8.2f}MB"
                for n in FUSED_VARIANTS
                if n in timings
            )
            table = cell.get("table_speedup")
            pref = cell.get("prefilter_speedup")
            if table is not None:
                row += f"  table {table:.2f}x"
            if pref is not None:
                row += f"  prefilter {pref:.2f}x"
            lines.append(row)
    reduction = record.get("reduction")
    if reduction:
        red = reduction["reduced"]
        unred = reduction["unreduced"]
        lines.append(
            f"reduction — {reduction['num_patterns']} patterns at level "
            f"{reduction['reduce_level']}: {unred['fused_states']} -> "
            f"{red['fused_states']} fused states "
            f"({reduction['state_reduction']:.1%} fewer), "
            f"{unred['throughput_mbps']:.2f} -> "
            f"{red['throughput_mbps']:.2f}MB/s fused scan"
        )
    cache = record.get("compile_cache")
    if cache:
        lines.append(
            f"compile cache — {cache['num_patterns']} patterns: "
            f"cold {cache['cold_s'] * 1e3:.1f}ms, "
            f"warm {cache['warm_s'] * 1e3:.1f}ms"
            + (
                f" ({cache['warm_speedup']:.1f}x warm speedup)"
                if "warm_speedup" in cache
                else ""
            )
        )
    return "\n".join(lines)


def write_record(record: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")


def read_record(path: str) -> Optional[Dict[str, object]]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None
