"""Software matching engines and the brute-force consistency oracle."""

from .engine import (
    ENGINES,
    DegradationEvent,
    DegradationPolicy,
    Match,
    PatternSet,
)
from .fused import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_CACHE_SIZE,
    FusedAutomaton,
    FusedMatcher,
    build_fused,
    entry_bytes,
    fuse_patterns,
)
from .oracle import match_ends as oracle_match_ends
from .oracle import match_spans as oracle_match_spans

__all__ = [
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_CACHE_SIZE",
    "ENGINES",
    "DegradationEvent",
    "DegradationPolicy",
    "FusedAutomaton",
    "FusedMatcher",
    "Match",
    "PatternSet",
    "build_fused",
    "entry_bytes",
    "fuse_patterns",
    "oracle_match_ends",
    "oracle_match_spans",
]
