"""Software matching engines and the brute-force consistency oracle."""

from .engine import (
    ENGINES,
    DegradationEvent,
    DegradationPolicy,
    Match,
    PatternSet,
)
from .fused import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_CACHE_SIZE,
    DEFAULT_TABLE_BYTES,
    DEFAULT_TABLE_STATES,
    FusedAutomaton,
    FusedMatcher,
    build_fused,
    entry_bytes,
    fuse_patterns,
)
from .oracle import match_ends as oracle_match_ends
from .oracle import match_spans as oracle_match_spans
from .sharded import (
    DEFAULT_CHUNK_BYTES,
    ShardCheckpoint,
    ShardCost,
    ShardedScanner,
    ShardFailover,
    ShardFailure,
    ShardPlan,
    ShardRestart,
    estimate_cost,
    plan_shards,
)

__all__ = [
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_TABLE_BYTES",
    "DEFAULT_TABLE_STATES",
    "DEFAULT_CHUNK_BYTES",
    "ENGINES",
    "DegradationEvent",
    "DegradationPolicy",
    "FusedAutomaton",
    "FusedMatcher",
    "Match",
    "PatternSet",
    "ShardCheckpoint",
    "ShardCost",
    "ShardFailover",
    "ShardFailure",
    "ShardPlan",
    "ShardRestart",
    "ShardedScanner",
    "build_fused",
    "entry_bytes",
    "estimate_cost",
    "fuse_patterns",
    "oracle_match_ends",
    "oracle_match_spans",
    "plan_shards",
]
