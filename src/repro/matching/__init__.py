"""Software matching engines and the brute-force consistency oracle."""

from .engine import ENGINES, Match, PatternSet
from .fused import FusedAutomaton, FusedMatcher, build_fused, fuse_patterns
from .oracle import match_ends as oracle_match_ends
from .oracle import match_spans as oracle_match_spans

__all__ = [
    "ENGINES",
    "FusedAutomaton",
    "FusedMatcher",
    "Match",
    "PatternSet",
    "build_fused",
    "fuse_patterns",
    "oracle_match_ends",
    "oracle_match_spans",
]
