"""Software matching engines and the brute-force consistency oracle."""

from .engine import ENGINES, Match, PatternSet
from .oracle import match_ends as oracle_match_ends
from .oracle import match_spans as oracle_match_spans

__all__ = [
    "ENGINES",
    "Match",
    "PatternSet",
    "oracle_match_ends",
    "oracle_match_spans",
]
