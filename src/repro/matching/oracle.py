"""Brute-force regex oracle, independent of every automaton engine.

The paper validates its simulator "by comparing its matching results
against a reliable software matcher" (§8).  This module is that matcher: a
direct dynamic-programming evaluation of the regex *denotation* over spans
of the input.  It shares no code with the Glushkov/NBVA constructions —
it interprets the AST itself — so agreement with the automata engines is
meaningful evidence of correctness.

Complexity is O(|regex| * n^3)-ish; it is meant for test inputs, not for
throughput.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..regex import ast
from ..regex.charclass import WORD as _WORD

Span = Tuple[int, int]


def match_spans(node: ast.Regex, data: bytes) -> Set[Span]:
    """All ``(i, j)`` with ``data[i:j]`` in the language of ``node``."""
    length = len(data)
    cache: Dict[int, Set[Span]] = {}

    def spans(sub: ast.Regex) -> Set[Span]:
        key = id(sub)
        if key in cache:
            return cache[key]
        result = _compute(sub)
        cache[key] = result
        return result

    def _compute(sub: ast.Regex) -> Set[Span]:
        if isinstance(sub, ast.Epsilon):
            return {(i, i) for i in range(length + 1)}
        if isinstance(sub, ast.Symbol):
            return {(i, i + 1) for i in range(length) if data[i] in sub.cc}
        if isinstance(sub, ast.Concat):
            return _join(spans(sub.left), spans(sub.right))
        if isinstance(sub, ast.Alternation):
            return spans(sub.left) | spans(sub.right)
        if isinstance(sub, ast.Star):
            return _closure(spans(sub.inner), length, include_empty=True)
        if isinstance(sub, ast.Plus):
            return _closure(spans(sub.inner), length, include_empty=False)
        if isinstance(sub, ast.Optional_):
            return spans(sub.inner) | {(i, i) for i in range(length + 1)}
        if isinstance(sub, ast.Repeat):
            return _repeat(spans(sub.inner), sub.low, sub.high, length)
        if isinstance(sub, ast.Anchor):
            return _anchor_spans(sub.kind, data)
        raise TypeError(f"unknown node: {sub!r}")

    return spans(node)


def match_ends(node: ast.Regex, data: bytes) -> List[int]:
    """Start-anywhere / report-all-ends semantics (0-based end indices).

    A match ending at ``data[i]`` (inclusive) yields index ``i``; empty
    matches are excluded, mirroring the reporting-STE behaviour (§3).
    """
    ends = {j - 1 for (i, j) in match_spans(node, data) if j > i}
    return sorted(ends)


def _anchor_spans(kind: str, data: bytes) -> Set[Span]:
    """The empty spans at which a positional assertion holds.

    ``^`` holds at offset 0 only (no multiline), ``$`` at end-of-input
    only, and ``\\b`` wherever exactly one neighbour is a word byte —
    the positions before the start and after the end count as non-word.
    """
    length = len(data)
    if kind == ast.Anchor.START:
        return {(0, 0)}
    if kind == ast.Anchor.END:
        return {(length, length)}
    word = [byte in _WORD for byte in data]
    return {
        (i, i)
        for i in range(length + 1)
        if (word[i - 1] if i > 0 else False)
        != (word[i] if i < length else False)
    }


def _join(left: Set[Span], right: Set[Span]) -> Set[Span]:
    by_start: Dict[int, List[int]] = {}
    for i, j in right:
        by_start.setdefault(i, []).append(j)
    out: Set[Span] = set()
    for i, j in left:
        for k in by_start.get(j, ()):
            out.add((i, k))
    return out


def _closure(base: Set[Span], length: int, include_empty: bool) -> Set[Span]:
    """Transitive closure under concatenation (Kleene plus), optionally
    with the empty spans added (Kleene star)."""
    result = set(base)
    frontier = set(base)
    while frontier:
        extended = _join(frontier, base) - result
        result |= extended
        frontier = extended
    if include_empty:
        result |= {(i, i) for i in range(length + 1)}
    return result


def _repeat(base: Set[Span], low: int, high, length: int) -> Set[Span]:
    if high is None:
        tail = _closure(base, length, include_empty=True)
        return _join(_power(base, low, length), tail) if low else tail
    result: Set[Span] = set()
    current = {(i, i) for i in range(length + 1)}  # 0 repetitions
    for count in range(high + 1):
        if count >= low:
            result |= current
        if count < high:
            current = _join(current, base)
            if not current:
                break
    return result


def _power(base: Set[Span], exponent: int, length: int) -> Set[Span]:
    current = {(i, i) for i in range(length + 1)}
    for _ in range(exponent):
        current = _join(current, base)
    return current
