"""High-level pattern-matching API over the compiled automata.

:class:`PatternSet` is the library's front door: compile a list of PCRE
patterns once, then scan byte streams with any of the five execution
engines (functional models, not the cycle-accurate simulator):

* ``"ah"``    — AH-NBVA, the model BVAP executes (default);
* ``"nbva"``  — the pre-transformation NBVA (naïve design, Fig. 3(b));
* ``"nca"``   — counter automaton with explicit counter-value sets;
* ``"nfa"``   — fully unfolded Glushkov NFA (the baselines' model);
* ``"fused"`` — all patterns merged into one shared state space and
  advanced with a single bitset step per byte plus a lazy-DFA successor
  cache (:mod:`repro.matching.fused`) — the fast software scan path.

The first four step each pattern's matcher independently; ``"fused"``
executes the whole set at once.  All five produce identical match
streams; the test suite enforces this and checks them against the
brute-force oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from .. import telemetry
from ..automata.nca import NCAMatcher
from ..compiler.pipeline import (
    CompiledRegex,
    CompilerOptions,
    build_unfolded_nfa,
    compile_pattern,
)
from .fused import FusedMatcher, fuse_patterns

ENGINES = ("ah", "nbva", "nca", "nfa", "fused")


@dataclass(frozen=True)
class Match:
    """One reported match: which pattern matched ending at which index."""

    pattern_id: int
    end: int  # 0-based index of the last matched byte


class PatternSet:
    """A set of compiled patterns with a uniform scanning interface.

    >>> ps = PatternSet(["ab{3}c", "xy"])
    >>> [(m.pattern_id, m.end) for m in ps.scan(b"zabbbc xy")]
    [(0, 5), (1, 8)]
    """

    def __init__(
        self,
        patterns: Sequence[str],
        options: CompilerOptions = CompilerOptions(),
        engine: str = "ah",
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        self.options = options
        self.engine = engine
        self.compiled: List[CompiledRegex] = [
            compile_pattern(pattern, regex_id, options)
            for regex_id, pattern in enumerate(patterns)
        ]
        self._fused: Optional[FusedMatcher] = None
        if engine == "fused":
            self._fused = FusedMatcher(fuse_patterns(self.compiled))
            self._matchers = []
        else:
            self._matchers = [self._make_matcher(c) for c in self.compiled]

    def _make_matcher(self, compiled: CompiledRegex):
        if self.engine == "ah":
            return compiled.ah.matcher()
        if self.engine == "nbva":
            return compiled.nbva.matcher()
        if self.engine == "nca":
            return NCAMatcher(compiled.nbva)
        return build_unfolded_nfa(compiled.parsed).matcher()

    @property
    def patterns(self) -> List[str]:
        return [c.pattern for c in self.compiled]

    def reset(self) -> None:
        if self._fused is not None:
            self._fused.reset()
            return
        for matcher in self._matchers:
            matcher.reset()

    def scan(self, data: bytes) -> List[Match]:
        """Scan from a fresh state; report every (pattern, end) event."""
        self.reset()
        if telemetry.enabled():
            with telemetry.span(
                "engine.scan", "engine", engine=self.engine, symbols=len(data)
            ):
                return self._feed_instrumented(data)
        return self.feed(data)

    def feed(self, data: bytes) -> List[Match]:
        """Continue scanning from the current state (streaming use).

        Reported end offsets are relative to this chunk, for every
        engine (streaming callers track the absolute base themselves).
        """
        if telemetry.enabled():
            return self._feed_instrumented(data)
        if self._fused is not None:
            return [
                Match(pattern_id, offset)
                for pattern_id, offset in self._fused.feed(data)
            ]
        out: List[Match] = []
        matchers = self._matchers
        for offset, symbol in enumerate(data):
            for pattern_id, matcher in enumerate(matchers):
                if matcher.step(symbol):
                    out.append(Match(pattern_id, offset))
        return out

    def _feed_instrumented(self, data: bytes) -> List[Match]:
        """The :meth:`feed` loop plus telemetry: symbols scanned, matches
        emitted, and a per-symbol active-state occupancy histogram
        (summed over the set's matchers)."""
        collect = telemetry.metrics_enabled()
        if collect:
            registry = telemetry.registry()
            occupancy = registry.histogram("engine.active_states")
        out: List[Match] = []
        matchers = self._matchers
        fused = self._fused
        with telemetry.span(
            "engine.feed", "engine", engine=self.engine, symbols=len(data)
        ) as sp:
            if fused is not None:
                hits, misses = fused.cache_hits, fused.cache_misses
                for offset, symbol in enumerate(data):
                    for pattern_id in fused.step_report(symbol):
                        out.append(Match(pattern_id, offset))
                    if collect:
                        occupancy.observe(fused.active_count())
            else:
                for offset, symbol in enumerate(data):
                    for pattern_id, matcher in enumerate(matchers):
                        if matcher.step(symbol):
                            out.append(Match(pattern_id, offset))
                    if collect:
                        occupancy.observe(
                            sum(m.active_count() for m in matchers)
                        )
            sp.set(matches=len(out))
        if collect:
            registry.counter("engine.symbols_scanned").inc(len(data))
            registry.counter("engine.matches_emitted").inc(len(out))
            if fused is not None:
                registry.counter("engine.fused.cache_hits").inc(
                    fused.cache_hits - hits
                )
                registry.counter("engine.fused.cache_misses").inc(
                    fused.cache_misses - misses
                )
        return out

    def match_ends(self, data: bytes, pattern_id: int = 0) -> List[int]:
        """End indices for one pattern (fresh scan)."""
        return [m.end for m in self.scan(data) if m.pattern_id == pattern_id]

    def count_matches(self, data: bytes) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for match in self.scan(data):
            counts[match.pattern_id] = counts.get(match.pattern_id, 0) + 1
        return counts
