"""High-level pattern-matching API over the compiled automata.

:class:`PatternSet` is the library's front door: compile a list of PCRE
patterns once, then scan byte streams with any of the five execution
engines (functional models, not the cycle-accurate simulator):

* ``"ah"``    — AH-NBVA, the model BVAP executes (default);
* ``"nbva"``  — the pre-transformation NBVA (naïve design, Fig. 3(b));
* ``"nca"``   — counter automaton with explicit counter-value sets;
* ``"nfa"``   — fully unfolded Glushkov NFA (the baselines' model);
* ``"fused"`` — all patterns merged into one shared state space and
  advanced with a single bitset step per byte plus a lazy-DFA successor
  cache (:mod:`repro.matching.fused`) — the fast software scan path;
* ``"sharded"`` — the pattern set cost-partitioned onto K worker
  processes, each running a fused shard over broadcast input chunks,
  merged deterministically (:mod:`repro.matching.sharded`) — the
  multi-core scan path.

The first four step each pattern's matcher independently; ``"fused"``
executes the whole set at once and ``"sharded"`` spreads it over
processes.  All six produce identical match streams; the test suite
enforces this and checks them against the brute-force oracle.

Resilience hooks (:mod:`repro.resilience`):

* ``on_error="quarantine"`` isolates per-pattern compile failures into
  :class:`~repro.resilience.report.CompileReport` entries instead of
  aborting the whole set — the surviving patterns scan normally and
  keep their original pattern ids in reported matches;
* a :class:`~repro.resilience.budget.Budget` with ``deadline_s`` makes
  every engine check the wall clock every ``check_bytes`` scanned bytes
  and raise ``BudgetExceededError`` cooperatively;
* a :class:`DegradationPolicy` lets the fused engine shed patterns at
  run time: when the lazy-DFA cache thrashes or the combined active
  mask grows too wide, the widest-active pattern is demoted onto a
  per-pattern fallback engine (state-preserving for ``"nfa"``) and the
  fused automaton is rebuilt without it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from .. import telemetry
from ..telemetry import flight, profiler
from .._bits import popcount
from ..automata.ah import is_counter_free
from ..automata.nca import NCAMatcher
from ..compiler.pipeline import (
    CompiledRegex,
    CompilerOptions,
    build_scan_nfa,
    build_unfolded_nfa,
    compile_pattern,
    compile_pattern_isolated,
)
from ..resilience.budget import Budget
from ..resilience.report import (
    STATUS_DEGRADED,
    CompileReport,
)
from .fused import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_CACHE_SIZE,
    DEFAULT_TABLE_STATES,
    FusedMatcher,
    append_nfas,
    fuse_patterns,
    remap_active,
    remap_slot_mask,
    subset_fused,
)
from .sharded import ShardedScanner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..compiler.cache import CompileCache

ENGINES = ("ah", "nbva", "nca", "nfa", "fused", "sharded")

ON_ERROR_MODES = ("raise", "quarantine")


@dataclass(frozen=True)
class Match:
    """One reported match: which pattern matched ending at which index.

    ``end`` is chunk-relative in :meth:`PatternSet.feed` output and may
    be ``-1`` there when a ``\\b``-adjusted match straddles a chunk seam
    (the match ended on the previous chunk's final byte);
    :meth:`PatternSet.scan` and :meth:`PatternSet.finish` report absolute
    non-negative offsets.
    """

    pattern_id: int
    end: int  # 0-based index of the last matched byte


@dataclass(frozen=True)
class DegradationPolicy:
    """When and how the fused engine sheds patterns at run time.

    Checked every ``check_bytes`` scanned bytes.  Two triggers:

    * *cache thrash* — the successor cache is full
      (:meth:`~repro.matching.fused.FusedMatcher.cache_full`) and the
      hit rate over the last window dropped below ``min_hit_rate``;
    * *wide activation* — the combined active mask covers more than
      ``max_active_fraction`` of a fused space of at least
      ``min_states_for_width`` states, so every step pays near-worst-case
      big-int work and the cache cannot help.

    Either way the pattern with the widest active slice is demoted onto
    the first workable engine in ``fallback_chain`` and the fused
    automaton is rebuilt without it.  The ``"nfa"`` fallback transfers
    the pattern's live state bits, so no in-flight match is lost; other
    engines restart the pattern from the empty activation.
    """

    check_bytes: int = 4096
    min_window: int = 1024
    min_hit_rate: float = 0.5
    max_active_fraction: float = 0.75
    min_states_for_width: int = 64
    fallback_chain: Tuple[str, ...] = ("nfa",)
    max_demotions: Optional[int] = None

    def __post_init__(self) -> None:
        if self.check_bytes < 1:
            raise ValueError("check_bytes must be >= 1")
        if self.min_window < 1:
            raise ValueError("min_window must be >= 1")
        if not 0.0 <= self.min_hit_rate <= 1.0:
            raise ValueError("min_hit_rate must be in [0, 1]")
        if not 0.0 < self.max_active_fraction <= 1.0:
            raise ValueError("max_active_fraction must be in (0, 1]")
        if not self.fallback_chain:
            raise ValueError("fallback_chain must name at least one engine")
        for engine in self.fallback_chain:
            if engine not in ENGINES or engine == "fused":
                raise ValueError(
                    f"fallback_chain entries must be per-pattern engines, "
                    f"got {engine!r}"
                )
        if self.max_demotions is not None and self.max_demotions < 0:
            raise ValueError("max_demotions must be >= 0 or None")


@dataclass(frozen=True)
class DegradationEvent:
    """One runtime demotion: which pattern fell back to which engine."""

    pattern_id: int
    engine: str
    reason: str  # "cache_thrash" or "wide_active"


class PatternSet:
    """A set of compiled patterns with a uniform scanning interface.

    >>> ps = PatternSet(["ab{3}c", "xy"])
    >>> [(m.pattern_id, m.end) for m in ps.scan(b"zabbbc xy")]
    [(0, 5), (1, 8)]

    With ``on_error="quarantine"`` a bad pattern no longer aborts the
    batch; it is isolated into :attr:`reports` and the survivors keep
    their original pattern ids:

    >>> ps = PatternSet(["ab", "bad(", "cd"], on_error="quarantine")
    >>> [r.pattern_id for r in ps.reports if r.quarantined]
    [1]
    >>> [(m.pattern_id, m.end) for m in ps.scan(b"ab cd")]
    [(0, 1), (2, 4)]
    """

    def __init__(
        self,
        patterns: Sequence[str],
        options: CompilerOptions = CompilerOptions(),
        engine: str = "ah",
        budget: Optional[Budget] = None,
        on_error: str = "raise",
        degradation: Optional[DegradationPolicy] = None,
        shards: Optional[int] = None,
        shard_backend: str = "process",
        cache: "Optional[CompileCache]" = None,
        prefilter: bool = True,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        if on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
            )
        if budget is not None:
            options = replace(options, budget=budget)
        self.options = options
        self.engine = engine
        self.budget = options.budget
        self.on_error = on_error
        self.degradation = degradation
        self._cache = cache
        self.reports: List[CompileReport] = []
        self.degradations: List[DegradationEvent] = []
        self.compiled: List[CompiledRegex] = []
        self._pattern_ids: List[int] = []
        self._next_id = len(patterns)
        self._compile(patterns)
        self._demoted: List[Tuple[int, object]] = []
        self._deg_hits = 0
        self._deg_misses = 0
        self._fused: Optional[FusedMatcher] = None
        self._fused_ids: List[int] = []
        self._fused_compiled: List[CompiledRegex] = []
        self._sharded: Optional[ShardedScanner] = None
        self._prefilter = bool(prefilter)
        self._stream_len = 0
        if engine == "fused":
            self._fused = self._build_fused_matcher(fuse_patterns(self.compiled))
            self._fused_ids = list(self._pattern_ids)
            self._fused_compiled = list(self.compiled)
            self._matchers = []
        elif engine == "sharded":
            cache_bytes = self.budget.max_cache_bytes or DEFAULT_CACHE_BYTES
            self._sharded = ShardedScanner(
                self.compiled,
                self._pattern_ids,
                shards,
                backend=shard_backend,
                cache_bytes=cache_bytes,
                table_states=self._table_states(),
                prefilter=self._prefilter,
                restart_policy=self.budget.restart,
            )
            self._matchers = []
        else:
            self._matchers = [self._make_matcher(c) for c in self.compiled]

    # -- fused-matcher construction ------------------------------------

    def _table_states(self) -> int:
        """Dense-table state budget: ``Budget.max_table_states`` when set
        (0 disables the table), else the fused default."""
        limit = self.budget.max_table_states
        return DEFAULT_TABLE_STATES if limit is None else limit

    def _build_fused_matcher(
        self, automaton, old: Optional[FusedMatcher] = None
    ) -> FusedMatcher:
        """A :class:`FusedMatcher` over ``automaton`` honouring the set's
        budget and prefilter settings; ``old`` carries cache sizing across
        incremental rebuilds."""
        cache_bytes = self.budget.max_cache_bytes or DEFAULT_CACHE_BYTES
        return FusedMatcher(
            automaton,
            cache_size=old._cache_size if old is not None else DEFAULT_CACHE_SIZE,
            cache_bytes=(
                old._cache_byte_limit if old is not None else cache_bytes
            ),
            table_states=self._table_states(),
            table_bytes=self.budget.max_cache_bytes,
            prefilter=self._prefilter,
        )

    # -- compilation ---------------------------------------------------

    def _compile(
        self, patterns: Sequence[str], id_base: int = 0
    ) -> List[CompiledRegex]:
        """Compile ``patterns`` (assigned ids ``id_base`` onward) into the
        set; shares :func:`compile_pattern_isolated` with
        :func:`repro.compiler.pipeline.compile_ruleset`, so quarantine
        semantics and cache behaviour are identical.  Returns the newly
        compiled survivors in id order."""
        clock = self.budget.start()
        quarantined = 0
        fresh: List[CompiledRegex] = []
        for offset, pattern in enumerate(patterns):
            regex_id = id_base + offset
            if self.on_error == "raise":
                started = time.perf_counter()
                compiled = (
                    self._cache.get(pattern, self.options, regex_id)
                    if self._cache is not None
                    else None
                )
                if compiled is None:
                    compiled = compile_pattern(
                        pattern, regex_id, self.options, clock=clock
                    )
                    if self._cache is not None:
                        self._cache.put(pattern, self.options, compiled)
                report = CompileReport(
                    pattern_id=regex_id,
                    pattern=pattern,
                    elapsed_s=time.perf_counter() - started,
                )
            else:
                compiled, report = compile_pattern_isolated(
                    pattern, regex_id, self.options,
                    clock=clock, cache=self._cache,
                )
                if report.phase is None and report.quarantined:
                    report.phase = "compile"
            self.reports.append(report)
            if compiled is None:
                quarantined += 1
                if flight.flight_enabled():
                    flight.record(
                        "quarantine",
                        pattern_id=regex_id,
                        error_code=report.error_code,
                        phase=report.phase,
                    )
                continue
            self.compiled.append(compiled)
            self._pattern_ids.append(regex_id)
            fresh.append(compiled)
        if quarantined and telemetry.metrics_enabled():
            telemetry.registry().counter("compile.quarantined").inc(quarantined)
        return fresh

    def _make_matcher(self, compiled: CompiledRegex, engine: Optional[str] = None):
        engine = engine or self.engine
        if compiled.anchors is not None:
            # Anchor gates are positional (stream offset 0 / end of
            # input); the per-pattern step engines have no notion of
            # where the stream is, so every engine hosts an anchored
            # pattern on a single-pattern fused matcher driven through
            # feed()/finish().
            return self._build_fused_matcher(fuse_patterns([compiled]))
        if engine == "ah":
            return compiled.ah.matcher()
        if engine == "nbva":
            return compiled.nbva.matcher()
        if engine == "nca":
            return NCAMatcher(compiled.nbva)
        return build_unfolded_nfa(compiled.parsed).matcher()

    # -- incremental updates -------------------------------------------

    def add_patterns(self, patterns: Sequence[str]) -> List[int]:
        """Compile and add patterns without rebuilding the whole set.

        Returns the pattern ids assigned to ``patterns`` in order (ids
        keep ascending monotonically across the set's lifetime, so they
        never collide with existing or previously removed ids; a
        quarantined addition still consumes its id).  Only the delta is
        integrated: the fused engine appends the new scan NFAs to the
        combined state space (existing activation preserved bit for
        bit), the sharded engine routes each new pattern to the lightest
        shard and restarts only the touched shards, and the per-pattern
        engines just grow their matcher lists.  The resulting match
        stream is byte-identical to a from-scratch build over the same
        patterns with the same ids.
        """
        id_base = self._next_id
        self._next_id += len(patterns)
        fresh = self._compile(patterns, id_base=id_base)
        new_ids = [c.regex_id for c in fresh]
        if fresh:
            if self._sharded is not None:
                self._sharded.add_patterns(fresh, new_ids)
            elif self._fused is not None:
                old = self._fused
                nfas = [build_scan_nfa(c) for c in fresh]
                sources = [
                    "ah"
                    if c.anchors is None and is_counter_free(c.ah)
                    else "unfolded"
                    for c in fresh
                ]
                matcher = self._build_fused_matcher(
                    append_nfas(
                        old.fused, nfas, sources,
                        literals=[c.literals for c in fresh],
                    ),
                    old=old,
                )
                matcher.active = old.active
                # Stream bookkeeping survives the rebuild: appended slots
                # keep their positions, so the tail-emit mask carries
                # over unchanged, and a pattern added mid-stream must not
                # re-arm its ^ gate (offset 0 has already passed).
                matcher._at_start = old._at_start
                matcher._tail_emits = old._tail_emits
                self._fused = matcher
                self._fused_ids.extend(new_ids)
                self._fused_compiled.extend(fresh)
            else:
                self._matchers.extend(
                    self._make_matcher(c) for c in fresh
                )
        return list(range(id_base, self._next_id))

    def remove_patterns(self, pattern_ids: Sequence[int]) -> None:
        """Remove patterns by id without rebuilding the whole set.

        Surviving patterns keep their ids and — on the fused engine —
        their in-flight activation (the active mask is remapped onto the
        re-fused state space).  The sharded engine re-fuses and restarts
        only the shards that held a removed pattern; shards left empty
        are retired.  Removing a quarantined id just drops its report.
        Raises ``ValueError`` for ids the set never assigned.
        """
        remove = set(pattern_ids)
        unknown = remove - {r.pattern_id for r in self.reports}
        if unknown:
            raise ValueError(f"unknown pattern ids: {sorted(unknown)}")
        engine_present = remove.intersection(self._pattern_ids)
        keep_idx = [
            i for i, pid in enumerate(self._pattern_ids)
            if pid not in remove
        ]
        self.reports = [
            r for r in self.reports if r.pattern_id not in remove
        ]
        if self._sharded is not None:
            if engine_present:
                self._sharded.remove_patterns(sorted(engine_present))
        elif self._fused is not None:
            self._demoted = [
                (pid, m) for pid, m in self._demoted if pid not in remove
            ]
            keep_slots = [
                slot for slot, pid in enumerate(self._fused_ids)
                if pid not in remove
            ]
            if len(keep_slots) < len(self._fused_ids):
                old = self._fused
                matcher = self._build_fused_matcher(
                    subset_fused(old.fused, keep_slots), old=old
                )
                matcher.active = remap_active(
                    old.fused, keep_slots, old.active
                )
                matcher._at_start = old._at_start
                matcher._tail_emits = remap_slot_mask(
                    old._tail_emits, keep_slots
                )
                self._fused = matcher
                self._fused_ids = [
                    self._fused_ids[s] for s in keep_slots
                ]
                self._fused_compiled = [
                    self._fused_compiled[s] for s in keep_slots
                ]
        else:
            self._matchers = [self._matchers[i] for i in keep_idx]
        self.compiled = [self.compiled[i] for i in keep_idx]
        self._pattern_ids = [self._pattern_ids[i] for i in keep_idx]

    @property
    def patterns(self) -> List[str]:
        return [c.pattern for c in self.compiled]

    @property
    def quarantined(self) -> Dict[int, CompileReport]:
        """Quarantined patterns by original pattern id."""
        return {r.pattern_id: r for r in self.reports if r.quarantined}

    def reset(self) -> None:
        self._stream_len = 0
        if self._sharded is not None:
            self._sharded.reset()
            return
        if self._fused is not None:
            self._fused.reset()
            for _pattern_id, matcher in self._demoted:
                matcher.reset()
            return
        for matcher in self._matchers:
            matcher.reset()

    def close(self) -> None:
        """Release engine resources (the sharded workers); idempotent.

        The in-process engines hold nothing worth freeing, so plain
        ``with PatternSet(...) as ps:`` is safe for every engine.
        """
        if self._sharded is not None:
            self._sharded.close()

    def __enter__(self) -> "PatternSet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def shard_failures(self):
        """Degraded shards (sharded engine only; empty otherwise)."""
        return list(self._sharded.failures) if self._sharded else []

    @property
    def shard_restarts(self):
        """Supervised worker restarts (sharded engine only)."""
        return list(self._sharded.restarts) if self._sharded else []

    @property
    def shard_failovers(self):
        """Permanent shard failovers (sharded engine only)."""
        return list(self._sharded.failovers) if self._sharded else []

    # -- scanning ------------------------------------------------------

    def scan(self, data: bytes) -> List[Match]:
        """Scan from a fresh state; report every (pattern, end) event.

        For anchored sets this is ``reset`` + ``feed`` + ``finish``: the
        whole input is the stream, so ``$`` matches deferred to end of
        input are included, merged in (end, pattern id) order.
        """
        self.reset()
        if telemetry.enabled():
            with telemetry.span(
                "engine.scan", "engine", engine=self.engine, symbols=len(data)
            ):
                out = self.feed(data)
        else:
            out = self.feed(data)
        out.extend(self.finish())
        # Chunked engines (sharded's broadcast chunks, budget-stepped
        # feeds) rebase a \b-adjusted seam event to the previous chunk's
        # final byte, which lands out of order in the concatenated feed
        # output; one sort restores the canonical (end, id) stream.
        out.sort(key=lambda m: (m.end, m.pattern_id))
        return out

    def feed(self, data: bytes) -> List[Match]:
        """Continue scanning from the current state (streaming use).

        Reported end offsets are relative to this chunk, for every
        engine (streaming callers track the absolute base themselves);
        a ``\\b``-adjusted match that straddles the seam reports ``-1``,
        i.e. the previous chunk's final byte.  Anchored sets defer their
        ``$`` matches — call :meth:`finish` once the stream ends to
        collect them.  With a ``deadline_s`` budget the clock starts at
        each call and
        is checked every ``check_bytes`` bytes; with a
        :class:`DegradationPolicy` the fused engine re-evaluates its
        thrash/width triggers on the same cadence.
        """
        self._stream_len += len(data)
        clock = (
            self.budget.start() if self.budget.deadline_s is not None else None
        )
        degrade = self._fused is not None and self.degradation is not None
        if clock is None and not degrade:
            return self._feed_block(data, 0)
        step = self.budget.check_bytes
        if degrade:
            step = min(step, self.degradation.check_bytes)
        out: List[Match] = []
        for base in range(0, len(data), step):
            if clock is not None:
                clock.check("scan")
            out.extend(self._feed_block(data[base : base + step], base))
            if degrade:
                self._maybe_degrade()
        if clock is not None:
            clock.check("scan")
        return out

    def finish(self) -> List[Match]:
        """Finalise the stream: report matches held for the ``$`` gate.

        End-anchored candidates survive as live automaton states until
        end of input; calling ``finish`` declares the stream over and
        reports them.  Ends are absolute — the offset of the stream's
        final byte, counted from the last :meth:`reset` across every
        ``feed`` chunk.  Non-mutating and idempotent: the stream state is
        left intact and un-anchored sets always return ``[]``.
        """
        last = self._stream_len - 1
        pattern_ids: List[int] = []
        if self._sharded is not None:
            pattern_ids = [pid for pid, _end in self._sharded.finish()]
        elif self._fused is not None:
            ids = self._fused_ids
            pattern_ids = [
                ids[slot] for slot, _end in self._fused.finish()
            ]
        else:
            for slot, matcher in enumerate(self._matchers):
                if isinstance(matcher, FusedMatcher) and matcher.finish():
                    pattern_ids.append(self._pattern_ids[slot])
        pattern_ids.sort()
        return [Match(pattern_id, last) for pattern_id in pattern_ids]

    def _feed_block(self, data: bytes, base: int) -> List[Match]:
        """One uninterrupted stretch of the feed loop."""
        if (
            telemetry.enabled()
            or flight.flight_enabled()
            or profiler.profiling_enabled()
        ):
            return self._feed_instrumented(data, base)
        if self._sharded is not None:
            return [
                Match(pattern_id, base + end)
                for pattern_id, end in self._sharded.feed(data)
            ]
        fused = self._fused
        if fused is not None:
            if self._demoted:
                return self._feed_fused_degraded(data, base)
            ids = self._fused_ids
            return [
                Match(ids[slot], base + offset)
                for slot, offset in fused.feed(data)
            ]
        out: List[Match] = []
        ids = self._pattern_ids
        matchers = self._matchers
        if any(isinstance(m, FusedMatcher) for m in matchers):
            return self._feed_mixed(data, base)
        for offset, symbol in enumerate(data):
            for slot, matcher in enumerate(matchers):
                if matcher.step(symbol):
                    out.append(Match(ids[slot], base + offset))
        return out

    def _feed_fused_degraded(self, data: bytes, base: int) -> List[Match]:
        """Fused step plus the demoted per-pattern matchers, merged in
        (offset, pattern id) order so the stream is indistinguishable
        from the undegraded one."""
        fused = self._fused
        ids = self._fused_ids
        demoted = self._demoted
        events: List[Tuple[int, int]] = []
        if fused.fused.anchored:
            # Gated automatons are stepped through feed() (per-symbol
            # step_report cannot honour the positional gates); demoted
            # patterns are never anchored, so they still step per byte.
            events.extend(
                (base + offset, ids[slot])
                for slot, offset in fused.feed(data)
            )
            for pattern_id, matcher in demoted:
                events.extend(
                    (base + offset, pattern_id)
                    for offset, symbol in enumerate(data)
                    if matcher.step(symbol)
                )
        else:
            for offset, symbol in enumerate(data):
                for slot in fused.step_report(symbol):
                    events.append((base + offset, ids[slot]))
                for pattern_id, matcher in demoted:
                    if matcher.step(symbol):
                        events.append((base + offset, pattern_id))
        events.sort()
        return [Match(pattern_id, end) for end, pattern_id in events]

    def _feed_mixed(self, data: bytes, base: int) -> List[Match]:
        """Per-pattern feed when anchored patterns are present.

        Anchored patterns ride on single-pattern fused matchers that
        must see whole chunks (their gates are positional), so each
        matcher runs over the chunk independently and the events are
        merged in (end, pattern id) order.
        """
        ids = self._pattern_ids
        events: List[Tuple[int, int]] = []
        for slot, matcher in enumerate(self._matchers):
            if isinstance(matcher, FusedMatcher):
                events.extend(
                    (base + offset, ids[slot])
                    for _slot, offset in matcher.feed(data)
                )
            else:
                events.extend(
                    (base + offset, ids[slot])
                    for offset, symbol in enumerate(data)
                    if matcher.step(symbol)
                )
        events.sort()
        return [Match(pattern_id, end) for end, pattern_id in events]

    def _feed_instrumented(self, data: bytes, base: int = 0) -> List[Match]:
        """The :meth:`feed` loop plus telemetry: symbols scanned, matches
        emitted, and a per-symbol active-state occupancy histogram
        (summed over the set's matchers)."""
        collect = telemetry.metrics_enabled()
        if collect:
            registry = telemetry.registry()
            occupancy = registry.histogram("engine.active_states")
        out: List[Match] = []
        matchers = self._matchers
        fused = self._fused
        with telemetry.span(
            "engine.feed", "engine", engine=self.engine, symbols=len(data)
        ) as sp:
            if self._sharded is not None:
                # Per-shard instruments (scan.shard.*) are recorded by the
                # orchestrator itself; occupancy histograms live worker-side
                # and are not observable from here.
                out = [
                    Match(pattern_id, base + end)
                    for pattern_id, end in self._sharded.feed(data)
                ]
            elif fused is not None:
                hits, misses = fused.cache_hits, fused.cache_misses
                table_hits, table_misses = fused.table_hits, fused.table_misses
                skipped = fused.prefilter_skipped
                ids = self._fused_ids
                demoted = self._demoted
                prof = profiler.active_profiler()
                if prof is not None and not demoted:
                    # The profiler owns the stepping loop (it has to time
                    # the sampled steps itself); the occupancy histogram
                    # is not observed on this path — the profile's own
                    # heatmap carries the density picture instead.
                    # Gated automatons are sampled via one-byte feeds
                    # inside the profiler, so positional gates hold.
                    out = [
                        Match(ids[slot], base + offset)
                        for slot, offset in prof.feed(fused, data, ids)
                    ]
                elif fused.fused.anchored:
                    # Gated automatons run through feed(); per-symbol
                    # occupancy is not observable from outside the
                    # matcher, so the histogram sees the chunk-end
                    # density only.
                    events = [
                        (base + offset, ids[slot])
                        for slot, offset in fused.feed(data)
                    ]
                    for pattern_id, matcher in demoted:
                        events.extend(
                            (base + offset, pattern_id)
                            for offset, symbol in enumerate(data)
                            if matcher.step(symbol)
                        )
                    events.sort()
                    out = [
                        Match(pattern_id, end) for end, pattern_id in events
                    ]
                    if collect and data:
                        occupancy.observe(
                            fused.active_count()
                            + sum(m.active_count() for _pid, m in demoted)
                        )
                else:
                    events: List[Tuple[int, int]] = []
                    for offset, symbol in enumerate(data):
                        for slot in fused.step_report(symbol):
                            events.append((base + offset, ids[slot]))
                        for pattern_id, matcher in demoted:
                            if matcher.step(symbol):
                                events.append((base + offset, pattern_id))
                        if collect:
                            occupancy.observe(
                                fused.active_count()
                                + sum(m.active_count() for _pid, m in demoted)
                            )
                    if demoted:
                        events.sort()
                    out = [
                        Match(pattern_id, end) for end, pattern_id in events
                    ]
            elif any(isinstance(m, FusedMatcher) for m in matchers):
                out = self._feed_mixed(data, base)
                if collect and data:
                    occupancy.observe(
                        sum(m.active_count() for m in matchers)
                    )
            else:
                ids = self._pattern_ids
                for offset, symbol in enumerate(data):
                    for slot, matcher in enumerate(matchers):
                        if matcher.step(symbol):
                            out.append(Match(ids[slot], base + offset))
                    if collect:
                        occupancy.observe(
                            sum(m.active_count() for m in matchers)
                        )
            sp.set(matches=len(out))
        if collect:
            registry.counter("engine.symbols_scanned").inc(len(data))
            registry.counter("engine.matches_emitted").inc(len(out))
            if fused is not None:
                registry.counter("engine.fused.cache_hits").inc(
                    fused.cache_hits - hits
                )
                registry.counter("engine.fused.cache_misses").inc(
                    fused.cache_misses - misses
                )
                if fused.table_hits > table_hits:
                    registry.counter("engine.fused.table_hits").inc(
                        fused.table_hits - table_hits
                    )
                if fused.table_misses > table_misses:
                    registry.counter("engine.fused.table_misses").inc(
                        fused.table_misses - table_misses
                    )
                if fused.prefilter_skipped > skipped:
                    registry.counter("engine.fused.skipped_bytes").inc(
                        fused.prefilter_skipped - skipped
                    )
        if flight.flight_enabled():
            flight.record(
                "scan_chunk",
                engine=self.engine,
                base=base,
                symbols=len(data),
                matches=len(out),
            )
            if fused is not None:
                flight.note_state(
                    engine=self.engine,
                    active_states=fused.active_count(),
                    cache_hits=fused.cache_hits,
                    cache_misses=fused.cache_misses,
                    demoted=[pid for pid, _m in self._demoted],
                )
            elif self._sharded is not None:
                flight.note_state(
                    engine=self.engine,
                    shards=self._sharded.num_shards,
                    live_shards=self._sharded.live_shards(),
                    failed_shards=[
                        f.shard for f in self._sharded.failures
                    ],
                    restarts=len(self._sharded.restarts),
                    failovers=len(self._sharded.failovers),
                )
            else:
                flight.note_state(
                    engine=self.engine,
                    active_states=sum(
                        m.active_count() for m in matchers
                    ),
                )
        return out

    # -- graceful degradation ------------------------------------------

    def _maybe_degrade(self) -> None:
        """Evaluate the degradation triggers at a chunk boundary."""
        fused = self._fused
        policy = self.degradation
        if fused is None or policy is None or not self._fused_ids:
            return
        if (
            policy.max_demotions is not None
            and len(self.degradations) >= policy.max_demotions
        ):
            return
        window_hits = fused.cache_hits - self._deg_hits
        window_misses = fused.cache_misses - self._deg_misses
        self._deg_hits = fused.cache_hits
        self._deg_misses = fused.cache_misses
        window = window_hits + window_misses
        thrash = (
            window >= policy.min_window
            and fused.cache_full()
            and window_hits < policy.min_hit_rate * window
        )
        num_states = fused.fused.num_states
        wide = (
            num_states >= policy.min_states_for_width
            and fused.active_count() >= policy.max_active_fraction * num_states
        )
        if thrash or wide:
            self._demote_widest("cache_thrash" if thrash else "wide_active")

    def _demote_widest(self, reason: str) -> None:
        fused = self._fused
        automaton = fused.fused
        active = fused.active
        best_slot, best_width = 0, -1
        for slot in range(len(self._fused_ids)):
            if self._fused_compiled[slot].anchors is not None:
                # Anchored slots stay fused: the per-pattern fallback
                # engines cannot honour positional gates, and the gated
                # slice drains to a near-empty activation anyway.
                continue
            width = popcount(active & automaton.pattern_mask(slot))
            if width > best_width:
                best_slot, best_width = slot, width
        if best_width < 0:
            return
        self._demote(best_slot, reason)

    def _demote(self, slot: int, reason: str) -> None:
        """Move one fused slot onto a per-pattern fallback engine and
        rebuild the fused automaton without it."""
        fused = self._fused
        automaton = fused.fused
        pattern_id = self._fused_ids[slot]
        compiled = self._fused_compiled[slot]
        base, end = automaton.pattern_slice(slot)
        local_active = (fused.active >> base) & ((1 << (end - base)) - 1)
        matcher = None
        engine_used = None
        for engine in self.degradation.fallback_chain:
            try:
                if engine == "nfa" and automaton.nfas:
                    # The fused slice IS this pattern's scan-NFA activation,
                    # so the handoff preserves every in-flight partial match.
                    matcher = automaton.nfas[slot].matcher()
                    matcher.reset()
                    matcher.active = local_active
                else:
                    matcher = self._make_matcher(compiled, engine)
                    matcher.reset()  # fresh state: in-flight partials drop
                engine_used = engine
                break
            except ValueError:
                matcher = None
        if matcher is None:
            return  # nothing in the chain can host it; stay fused
        keep = [i for i in range(len(self._fused_ids)) if i != slot]
        new_matcher = self._build_fused_matcher(
            subset_fused(automaton, keep), old=fused
        )
        new_matcher.active = remap_active(automaton, keep, fused.active)
        new_matcher._at_start = fused._at_start
        new_matcher._tail_emits = remap_slot_mask(fused._tail_emits, keep)
        self._fused = new_matcher
        self._fused_ids = [self._fused_ids[i] for i in keep]
        self._fused_compiled = [self._fused_compiled[i] for i in keep]
        self._demoted.append((pattern_id, matcher))
        self._demoted.sort(key=lambda item: item[0])
        self._deg_hits = 0
        self._deg_misses = 0
        self.degradations.append(
            DegradationEvent(pattern_id=pattern_id, engine=engine_used, reason=reason)
        )
        for report in self.reports:
            if report.pattern_id == pattern_id:
                report.status = STATUS_DEGRADED
                report.phase = "scan"
                break
        if telemetry.metrics_enabled():
            telemetry.registry().counter("scan.degraded").inc()
        if flight.flight_enabled():
            flight.record(
                "degradation",
                pattern_id=pattern_id,
                engine=engine_used,
                reason=reason,
            )

    # -- conveniences --------------------------------------------------

    def match_ends(self, data: bytes, pattern_id: int = 0) -> List[int]:
        """End indices for one pattern (fresh scan)."""
        return [m.end for m in self.scan(data) if m.pattern_id == pattern_id]

    def count_matches(self, data: bytes) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for match in self.scan(data):
            counts[match.pattern_id] = counts.get(match.pattern_id, 0) + 1
        return counts
