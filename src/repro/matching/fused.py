"""Fused multi-pattern scan engine: one bitset step for the whole set.

The per-pattern engines in :mod:`repro.matching.engine` dispatch into
every pattern's matcher for every input byte — a 100-pattern rule set
costs 100 Python calls per byte.  This module merges all compiled
patterns into **one** shared state space and advances the whole set with
a single big-int bitset step per byte, the software analogue of how BVAP
maps many regexes onto one tile array (§8) and of simultaneous-automata
style data-parallel matching (see PAPERS.md).

Construction (:func:`fuse_patterns`):

* every pattern contributes its scanning NFA — the pruned AH-NBVA state
  graph when it is counter-free, else the fully unfolded Glushkov NFA
  (:func:`repro.compiler.pipeline.build_scan_nfa`);
* each pattern's states are offset-remapped into one combined
  ``classes`` / ``transitions`` / ``initial`` / ``final`` space;
* a ``final state -> pattern_id`` report map recovers which pattern
  fired from the combined active mask.

Execution (:class:`FusedMatcher`) reuses the 256-entry match-mask
precomputation of :class:`repro.automata.nfa.NFAMatcher` and adds a
lazily memoised successor cache — a hybrid lazy DFA mapping
``(active_mask, byte) -> (next_mask, fired pattern ids)`` with a bounded
LRU, so dense workloads amortise the inner closure loop into one
dictionary probe per byte.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .._bits import popcount
from ..automata.ah import is_counter_free
from ..automata.nfa import NFA, build_match_masks, mask_to_states, states_to_mask
from ..compiler.pipeline import CompiledRegex, build_scan_nfa

#: Default bound on the lazy-DFA successor cache.  Entries are a handful
#: of Python ints each; 1<<15 keeps even adversarial streams far below
#: the footprint of the automata themselves.
DEFAULT_CACHE_SIZE = 1 << 15

#: Default byte budget for the successor cache.  Entry cost is estimated
#: from the *bit length of the masks* (a 10k-state fused set stores ~2.5kB
#: of big-int per entry, a 100-state set ~100B), so wide pattern sets are
#: bounded by memory footprint, not entry count.
DEFAULT_CACHE_BYTES = 16 << 20

#: Estimated fixed overhead per cache entry (dict slot, key/value tuples,
#: int headers) in bytes, on top of the mask payloads.
_ENTRY_OVERHEAD_BYTES = 200


def entry_bytes(active: int, next_mask: int, report_len: int = 0) -> int:
    """Estimated resident bytes of one ``(active, symbol) -> (next, fired)``
    cache entry, keyed on the bit length of both masks."""
    return (
        _ENTRY_OVERHEAD_BYTES
        + active.bit_length() // 8
        + next_mask.bit_length() // 8
        + 32 * report_len
    )


@dataclass
class FusedAutomaton:
    """All patterns of a set remapped into one shared NFA state space.

    Attributes:
        classes: per-state character class over the combined space.
        transitions: per-state successor lists (combined indices).
        initial: start-anywhere states, re-armed every symbol.
        state_pattern: owning ``pattern_id`` for every combined state.
        finals: reporting state -> ``pattern_id`` report map.
        offsets: first combined state index of each pattern (the remap
            base; ``offsets[i+1] - offsets[i]`` is pattern *i*'s size).
        sources: per-pattern automaton provenance, ``"ah"`` when the
            counter-free AH-NBVA graph was reused, ``"unfolded"`` for
            the Glushkov fallback.
        nfas: the original per-pattern NFAs (kept so a pattern can be
            peeled back out — e.g. runtime demotion to a per-pattern
            engine — without recompiling).
    """

    classes: List
    transitions: List[List[int]]
    initial: Set[int]
    state_pattern: List[int]
    finals: Dict[int, int]
    offsets: List[int]
    sources: List[str] = field(default_factory=list)
    nfas: List[NFA] = field(default_factory=list)

    @property
    def num_states(self) -> int:
        return len(self.classes)

    @property
    def num_patterns(self) -> int:
        return len(self.offsets)

    def pattern_slice(self, pattern_id: int) -> Tuple[int, int]:
        """Half-open combined-state index range owned by ``pattern_id``."""
        base = self.offsets[pattern_id]
        end = (
            self.offsets[pattern_id + 1]
            if pattern_id + 1 < len(self.offsets)
            else self.num_states
        )
        return base, end

    def pattern_mask(self, pattern_id: int) -> int:
        """Bit mask selecting ``pattern_id``'s states in a combined mask."""
        base, end = self.pattern_slice(pattern_id)
        return ((1 << (end - base)) - 1) << base

    def matcher(
        self,
        cache_size: int = DEFAULT_CACHE_SIZE,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
    ) -> "FusedMatcher":
        return FusedMatcher(self, cache_size=cache_size, cache_bytes=cache_bytes)


def fuse_nfas(nfas: Sequence[NFA]) -> FusedAutomaton:
    """Offset-remap a list of per-pattern NFAs into one combined space."""
    classes: List = []
    transitions: List[List[int]] = []
    initial: Set[int] = set()
    state_pattern: List[int] = []
    finals: Dict[int, int] = {}
    offsets: List[int] = []
    for pattern_id, nfa in enumerate(nfas):
        base = len(classes)
        offsets.append(base)
        classes.extend(nfa.classes)
        transitions.extend(
            [base + dst for dst in dsts] for dsts in nfa.transitions
        )
        initial.update(base + state for state in nfa.initial)
        state_pattern.extend([pattern_id] * nfa.num_states)
        for state in nfa.final:
            finals[base + state] = pattern_id
    return FusedAutomaton(
        classes=classes,
        transitions=transitions,
        initial=initial,
        state_pattern=state_pattern,
        finals=finals,
        offsets=offsets,
        nfas=list(nfas),
    )


def append_nfas(
    fused: FusedAutomaton,
    nfas: Sequence[NFA],
    sources: Optional[Sequence[str]] = None,
) -> FusedAutomaton:
    """A new :class:`FusedAutomaton` with ``nfas`` appended as new patterns.

    The incremental counterpart of :func:`fuse_nfas`: every existing
    combined state keeps its index (only new states are added at the
    end), so an in-flight active mask from the old automaton remains
    valid against the new one — appended patterns simply start from the
    empty activation.  The input ``fused`` is not modified.
    """
    classes = list(fused.classes)
    transitions = list(fused.transitions)
    initial = set(fused.initial)
    state_pattern = list(fused.state_pattern)
    finals = dict(fused.finals)
    offsets = list(fused.offsets)
    combined_nfas = list(fused.nfas)
    for nfa in nfas:
        pattern_id = len(offsets)
        base = len(classes)
        offsets.append(base)
        classes.extend(nfa.classes)
        transitions.extend(
            [base + dst for dst in dsts] for dsts in nfa.transitions
        )
        initial.update(base + state for state in nfa.initial)
        state_pattern.extend([pattern_id] * nfa.num_states)
        for state in nfa.final:
            finals[base + state] = pattern_id
        combined_nfas.append(nfa)
    out = FusedAutomaton(
        classes=classes,
        transitions=transitions,
        initial=initial,
        state_pattern=state_pattern,
        finals=finals,
        offsets=offsets,
        nfas=combined_nfas,
    )
    if fused.sources or sources is not None:
        old_sources = (
            list(fused.sources)
            if fused.sources
            else ["unknown"] * fused.num_patterns
        )
        new_sources = (
            list(sources) if sources is not None else ["unknown"] * len(nfas)
        )
        if len(new_sources) != len(nfas):
            raise ValueError("sources and nfas must align")
        out.sources = old_sources + new_sources
    return out


def subset_fused(fused: FusedAutomaton, keep: Sequence[int]) -> FusedAutomaton:
    """Re-fuse only the pattern slots in ``keep`` (in the given order).

    The slot -> combined-state remap of the dropped automaton is undone
    by re-fusing the kept per-pattern NFAs, which is cheap because the
    originals are retained on :attr:`FusedAutomaton.nfas` — no pattern
    recompiles.  Pair with :func:`remap_active` to carry a live
    activation across the rebuild.
    """
    out = fuse_nfas([fused.nfas[slot] for slot in keep])
    if fused.sources:
        out.sources = [fused.sources[slot] for slot in keep]
    return out


def remap_active(fused: FusedAutomaton, keep: Sequence[int], active: int) -> int:
    """Translate an ``fused`` active mask onto ``subset_fused(fused, keep)``.

    Kept slots' state bits shift down to their new combined offsets;
    dropped slots' bits vanish.  In-flight partial matches of surviving
    patterns are therefore preserved exactly.
    """
    new_active = 0
    shift = 0
    for slot in keep:
        low, high = fused.pattern_slice(slot)
        new_active |= ((active >> low) & ((1 << (high - low)) - 1)) << shift
        shift += high - low
    return new_active


def fuse_patterns(compiled: Sequence[CompiledRegex]) -> FusedAutomaton:
    """Fuse a whole compiled pattern set (see module docstring)."""
    nfas: List[NFA] = []
    sources: List[str] = []
    for regex in compiled:
        nfas.append(build_scan_nfa(regex))
        sources.append("ah" if is_counter_free(regex.ah) else "unfolded")
    fused = fuse_nfas(nfas)
    fused.sources = sources
    return fused


def build_fused(
    compiled: Sequence[CompiledRegex],
    cache_size: int = DEFAULT_CACHE_SIZE,
    cache_bytes: int = DEFAULT_CACHE_BYTES,
) -> "FusedMatcher":
    """Convenience: fuse and wrap in a matcher in one call."""
    return FusedMatcher(
        fuse_patterns(compiled), cache_size=cache_size, cache_bytes=cache_bytes
    )


class FusedMatcher:
    """Bitset simulator for a :class:`FusedAutomaton` with a lazy-DFA cache.

    The streaming contract mirrors the per-pattern engines: state
    persists across :meth:`feed` calls, reported end offsets are
    relative to the current chunk, and :meth:`reset` rewinds to the
    empty activation.
    """

    def __init__(
        self,
        fused: FusedAutomaton,
        cache_size: int = DEFAULT_CACHE_SIZE,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
    ) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be positive")
        if cache_bytes < 1:
            raise ValueError("cache_bytes must be positive")
        self.fused = fused
        self._match_masks = build_match_masks(fused.classes)
        self._initial_mask = states_to_mask(fused.initial)
        self._final_mask = states_to_mask(fused.finals)
        self._succ_masks = [states_to_mask(dsts) for dsts in fused.transitions]
        self._state_pattern = fused.state_pattern
        self._cache_size = cache_size
        self._cache_byte_limit = cache_bytes
        self._cache_bytes = 0
        #: ``(active_mask, symbol) -> (next_mask, fired pattern ids)``
        self._cache: "OrderedDict[Tuple[int, int], Tuple[int, Tuple[int, ...]]]"
        self._cache = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self.reset()

    def reset(self) -> None:
        self.active = 0

    # -- one combined transition -------------------------------------

    def _advance(self, active: int, symbol: int) -> Tuple[int, Tuple[int, ...]]:
        cache = self._cache
        key = (active, symbol)
        hit = cache.get(key)
        if hit is not None:
            self.cache_hits += 1
            cache.move_to_end(key)
            return hit
        self.cache_misses += 1
        available = self._initial_mask
        succ = self._succ_masks
        remaining = active
        while remaining:
            low = remaining & -remaining
            available |= succ[low.bit_length() - 1]
            remaining ^= low
        next_mask = available & self._match_masks[symbol]
        fired = next_mask & self._final_mask
        report = self._report_ids(fired) if fired else ()
        entry = (next_mask, report)
        cache[key] = entry
        self._cache_bytes += entry_bytes(active, next_mask, len(report))
        while (
            len(cache) > self._cache_size
            or self._cache_bytes > self._cache_byte_limit
        ) and cache:
            old_key, old_entry = cache.popitem(last=False)
            self._cache_bytes -= entry_bytes(
                old_key[0], old_entry[0], len(old_entry[1])
            )
        return entry

    def _report_ids(self, fired: int) -> Tuple[int, ...]:
        """Pattern ids firing in ``fired``, deduplicated, ascending."""
        owners = self._state_pattern
        ids = set()
        while fired:
            low = fired & -fired
            ids.add(owners[low.bit_length() - 1])
            fired ^= low
        return tuple(sorted(ids))

    # -- matcher API ---------------------------------------------------

    def step(self, symbol: int) -> bool:
        """Consume one symbol; True iff *some* pattern's match ends here."""
        self.active, report = self._advance(self.active, symbol)
        return bool(report)

    def step_report(self, symbol: int) -> Tuple[int, ...]:
        """Consume one symbol; the pattern ids whose match ends here."""
        self.active, report = self._advance(self.active, symbol)
        return report

    def feed(self, data: bytes) -> List[Tuple[int, int]]:
        """Scan a chunk from the current state.

        Returns ``(pattern_id, end)`` events with chunk-relative end
        offsets, ordered by offset then pattern id — exactly the stream
        the per-pattern ``PatternSet.feed`` loop produces.
        """
        out: List[Tuple[int, int]] = []
        active = self.active
        advance = self._advance
        for offset, symbol in enumerate(data):
            active, report = advance(active, symbol)
            if report:
                for pattern_id in report:
                    out.append((pattern_id, offset))
        self.active = active
        return out

    def scan(self, data: bytes) -> List[Tuple[int, int]]:
        """Fresh-state :meth:`feed`."""
        self.reset()
        return self.feed(data)

    def match_ends(self, data: bytes) -> List[int]:
        """End indices over all patterns (fresh scan, deduplicated)."""
        return sorted({end for _pattern_id, end in self.scan(data)})

    def active_states(self) -> Set[int]:
        return mask_to_states(self.active)

    def active_count(self) -> int:
        return popcount(self.active)

    def cache_info(self) -> Dict[str, int]:
        """Lazy-DFA cache statistics (telemetry / bench reporting)."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._cache),
            "capacity": self._cache_size,
            "bytes": self._cache_bytes,
            "byte_capacity": self._cache_byte_limit,
        }

    def cache_full(self) -> bool:
        """True once either cache bound (entries or bytes) is saturated.

        Used by degradation policies: a low hit rate only signals thrash
        when the cache has actually filled — cold caches miss by design.
        """
        return (
            len(self._cache) >= self._cache_size
            or self._cache_bytes >= self._cache_byte_limit
        )
