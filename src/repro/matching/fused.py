"""Fused multi-pattern scan engine: one bitset step for the whole set.

The per-pattern engines in :mod:`repro.matching.engine` dispatch into
every pattern's matcher for every input byte — a 100-pattern rule set
costs 100 Python calls per byte.  This module merges all compiled
patterns into **one** shared state space and advances the whole set with
a single big-int bitset step per byte, the software analogue of how BVAP
maps many regexes onto one tile array (§8) and of simultaneous-automata
style data-parallel matching (see PAPERS.md).

Construction (:func:`fuse_patterns`):

* every pattern contributes its scanning NFA — the pruned AH-NBVA state
  graph when it is counter-free, else the fully unfolded Glushkov NFA
  (:func:`repro.compiler.pipeline.build_scan_nfa`);
* each pattern's states are offset-remapped into one combined
  ``classes`` / ``transitions`` / ``initial`` / ``final`` space;
* a ``final state -> pattern_id`` report map recovers which pattern
  fired from the combined active mask.

Execution (:class:`FusedMatcher`) layers three stepping tiers, fastest
first, all producing byte-identical match streams:

1. **Literal prefilter** — when every gated pattern *requires* some
   literal (:mod:`repro.compiler.prefilter`), each chunk is swept with
   C-speed ``bytes.find`` probes and the automaton's gated start states
   are only armed inside ``[occurrence - pre, occurrence]`` windows
   around the hits (plus an unconditional tail window covering
   occurrences that straddle into the next chunk).  Outside those
   windows the activation decays with *reduced* start-state injection
   and, once empty, the remaining gap is skipped outright.
2. **Dense transition table** — hot activation masks are interned as
   dense state ids and stepped through flat ``array``-backed rows keyed
   by byte-equivalence classes (two bytes are equivalent iff they select
   the same fused match mask), with a precomputed fired-pattern tuple
   per row.  The table is filled lazily and bounded by a state-count and
   byte budget (:class:`repro.resilience.budget.Budget`); blowing the
   budget falls back permanently to tier 3 mid-scan.
3. **Bitset stepping with a lazy-DFA cache** — the original big-int
   closure step memoised as ``(active_mask, byte) -> (next_mask, fired
   pattern ids)`` in a bounded LRU.

Soundness of the prefilter rests on a monotone-arming argument: arming
start states at a *superset* of the true match-start positions never
changes the reported stream (extra partials either die or re-derive
matches the full stepping would also report, and NFA set semantics
dedupes them), and the find-plus-tail windows provably cover every true
match start of a gated pattern.
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .. import telemetry
from .._bits import popcount
from ..automata.ah import is_counter_free
from ..automata.nfa import NFA, build_match_masks, mask_to_states, states_to_mask
from ..compiler.pipeline import CompiledRegex, build_scan_nfa
from ..compiler.prefilter import PatternLiterals
from ..telemetry import flight
from ..telemetry.profiler import byte_class_ids

#: Default bound on the lazy-DFA successor cache.  Entries are a handful
#: of Python ints each; 1<<15 keeps even adversarial streams far below
#: the footprint of the automata themselves.
DEFAULT_CACHE_SIZE = 1 << 15

#: Default byte budget for the successor cache.  Entry cost is estimated
#: from the *bit length of the masks* (a 10k-state fused set stores ~2.5kB
#: of big-int per entry, a 100-state set ~100B), so wide pattern sets are
#: bounded by memory footprint, not entry count.
DEFAULT_CACHE_BYTES = 16 << 20

#: Default bound on interned dense-DFA states for the table tier; 0
#: disables the table.  Reachable activation-mask counts on real rule
#: sets are small (the lazy-DFA cache already proved this), so 4096
#: states is generous while a pathological set blows it quickly and
#: falls back.
DEFAULT_TABLE_STATES = 4096

#: Default byte budget for the dense table (rows + interned masks).
DEFAULT_TABLE_BYTES = 8 << 20

#: Estimated fixed overhead per cache entry (dict slot, key/value tuples,
#: int headers) in bytes, on top of the mask payloads.
_ENTRY_OVERHEAD_BYTES = 200

#: Estimated fixed overhead per interned table state (dict slot, mask,
#: fired tuple) in bytes, on top of the transition rows.
_STATE_OVERHEAD_BYTES = 120

#: Cap on the total number of distinct literals one prefilter plan may
#: sweep per chunk; beyond this the ``bytes.find`` probes stop paying
#: for themselves and the hint-heaviest patterns stay always-on.
MAX_PLAN_LITERALS = 32


def entry_bytes(active: int, next_mask: int, report_len: int = 0) -> int:
    """Estimated resident bytes of one ``(active, symbol) -> (next, fired)``
    cache entry, keyed on the bit length of both masks."""
    return (
        _ENTRY_OVERHEAD_BYTES
        + active.bit_length() // 8
        + next_mask.bit_length() // 8
        + 32 * report_len
    )


@dataclass
class FusedAutomaton:
    """All patterns of a set remapped into one shared NFA state space.

    Attributes:
        classes: per-state character class over the combined space.
        transitions: per-state successor lists (combined indices).
        initial: start-anywhere states, re-armed every symbol.
        state_pattern: owning ``pattern_id`` for every combined state.
        finals: reporting state -> ``pattern_id`` report map.
        offsets: first combined state index of each pattern (the remap
            base; ``offsets[i+1] - offsets[i]`` is pattern *i*'s size).
        sources: per-pattern automaton provenance, ``"ah"`` when the
            counter-free AH-NBVA graph was reused, ``"unfolded"`` for
            the Glushkov fallback.
        nfas: the original per-pattern NFAs (kept so a pattern can be
            peeled back out — e.g. runtime demotion to a per-pattern
            engine — without recompiling).
        literals: per-pattern prefilter contracts
            (:class:`repro.compiler.prefilter.PatternLiterals`; ``None``
            entries stay always-on).  Empty when unknown, which disables
            prefiltering entirely.
        boi: combined initial states armed *only at stream offset 0*
            (the ``^`` start gate from anchor lowering).
        eoi_finals: candidate-final state -> ``pattern_id`` for ``$``
            variants; reported only by end-of-input finalisation.
        adjust_finals: final state -> ``pattern_id`` for ``\\b`` confirm
            variants; reported per-byte at ``end - 1``.
    """

    classes: List
    transitions: List[List[int]]
    initial: Set[int]
    state_pattern: List[int]
    finals: Dict[int, int]
    offsets: List[int]
    sources: List[str] = field(default_factory=list)
    nfas: List[NFA] = field(default_factory=list)
    literals: List[Optional[PatternLiterals]] = field(default_factory=list)
    boi: Set[int] = field(default_factory=set)
    eoi_finals: Dict[int, int] = field(default_factory=dict)
    adjust_finals: Dict[int, int] = field(default_factory=dict)

    @property
    def anchored(self) -> bool:
        """True when any pattern carries positional (anchor) gates."""
        return bool(self.boi or self.eoi_finals or self.adjust_finals)

    @property
    def num_states(self) -> int:
        return len(self.classes)

    @property
    def num_patterns(self) -> int:
        return len(self.offsets)

    def pattern_slice(self, pattern_id: int) -> Tuple[int, int]:
        """Half-open combined-state index range owned by ``pattern_id``."""
        base = self.offsets[pattern_id]
        end = (
            self.offsets[pattern_id + 1]
            if pattern_id + 1 < len(self.offsets)
            else self.num_states
        )
        return base, end

    def pattern_mask(self, pattern_id: int) -> int:
        """Bit mask selecting ``pattern_id``'s states in a combined mask."""
        base, end = self.pattern_slice(pattern_id)
        return ((1 << (end - base)) - 1) << base

    def matcher(
        self,
        cache_size: int = DEFAULT_CACHE_SIZE,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        table_states: int = DEFAULT_TABLE_STATES,
        table_bytes: Optional[int] = None,
        prefilter: bool = True,
    ) -> "FusedMatcher":
        return FusedMatcher(
            self,
            cache_size=cache_size,
            cache_bytes=cache_bytes,
            table_states=table_states,
            table_bytes=table_bytes,
            prefilter=prefilter,
        )


def fuse_nfas(
    nfas: Sequence[NFA],
    literals: Optional[Sequence[Optional[PatternLiterals]]] = None,
) -> FusedAutomaton:
    """Offset-remap a list of per-pattern NFAs into one combined space."""
    classes: List = []
    transitions: List[List[int]] = []
    initial: Set[int] = set()
    state_pattern: List[int] = []
    finals: Dict[int, int] = {}
    offsets: List[int] = []
    boi: Set[int] = set()
    eoi_finals: Dict[int, int] = {}
    adjust_finals: Dict[int, int] = {}
    for pattern_id, nfa in enumerate(nfas):
        base = len(classes)
        offsets.append(base)
        classes.extend(nfa.classes)
        transitions.extend(
            [base + dst for dst in dsts] for dsts in nfa.transitions
        )
        initial.update(base + state for state in nfa.initial)
        state_pattern.extend([pattern_id] * nfa.num_states)
        for state in nfa.final:
            finals[base + state] = pattern_id
        boi.update(base + state for state in nfa.boi)
        for state in nfa.eoi:
            eoi_finals[base + state] = pattern_id
        for state in nfa.adjust:
            adjust_finals[base + state] = pattern_id
    if literals is not None and len(literals) != len(nfas):
        raise ValueError("literals and nfas must align")
    return FusedAutomaton(
        classes=classes,
        transitions=transitions,
        initial=initial,
        state_pattern=state_pattern,
        finals=finals,
        offsets=offsets,
        nfas=list(nfas),
        literals=list(literals) if literals is not None else [],
        boi=boi,
        eoi_finals=eoi_finals,
        adjust_finals=adjust_finals,
    )


def append_nfas(
    fused: FusedAutomaton,
    nfas: Sequence[NFA],
    sources: Optional[Sequence[str]] = None,
    literals: Optional[Sequence[Optional[PatternLiterals]]] = None,
) -> FusedAutomaton:
    """A new :class:`FusedAutomaton` with ``nfas`` appended as new patterns.

    The incremental counterpart of :func:`fuse_nfas`: every existing
    combined state keeps its index (only new states are added at the
    end), so an in-flight active mask from the old automaton remains
    valid against the new one — appended patterns simply start from the
    empty activation.  The input ``fused`` is not modified.
    """
    classes = list(fused.classes)
    transitions = list(fused.transitions)
    initial = set(fused.initial)
    state_pattern = list(fused.state_pattern)
    finals = dict(fused.finals)
    offsets = list(fused.offsets)
    combined_nfas = list(fused.nfas)
    boi = set(fused.boi)
    eoi_finals = dict(fused.eoi_finals)
    adjust_finals = dict(fused.adjust_finals)
    for nfa in nfas:
        pattern_id = len(offsets)
        base = len(classes)
        offsets.append(base)
        classes.extend(nfa.classes)
        transitions.extend(
            [base + dst for dst in dsts] for dsts in nfa.transitions
        )
        initial.update(base + state for state in nfa.initial)
        state_pattern.extend([pattern_id] * nfa.num_states)
        for state in nfa.final:
            finals[base + state] = pattern_id
        boi.update(base + state for state in nfa.boi)
        for state in nfa.eoi:
            eoi_finals[base + state] = pattern_id
        for state in nfa.adjust:
            adjust_finals[base + state] = pattern_id
        combined_nfas.append(nfa)
    out = FusedAutomaton(
        classes=classes,
        transitions=transitions,
        initial=initial,
        state_pattern=state_pattern,
        finals=finals,
        offsets=offsets,
        nfas=combined_nfas,
        boi=boi,
        eoi_finals=eoi_finals,
        adjust_finals=adjust_finals,
    )
    if fused.sources or sources is not None:
        old_sources = (
            list(fused.sources)
            if fused.sources
            else ["unknown"] * fused.num_patterns
        )
        new_sources = (
            list(sources) if sources is not None else ["unknown"] * len(nfas)
        )
        if len(new_sources) != len(nfas):
            raise ValueError("sources and nfas must align")
        out.sources = old_sources + new_sources
    if fused.literals or literals is not None:
        old_literals = (
            list(fused.literals)
            if fused.literals
            else [None] * fused.num_patterns
        )
        new_literals = (
            list(literals) if literals is not None else [None] * len(nfas)
        )
        if len(new_literals) != len(nfas):
            raise ValueError("literals and nfas must align")
        out.literals = old_literals + new_literals
    return out


def subset_fused(fused: FusedAutomaton, keep: Sequence[int]) -> FusedAutomaton:
    """Re-fuse only the pattern slots in ``keep`` (in the given order).

    The slot -> combined-state remap of the dropped automaton is undone
    by re-fusing the kept per-pattern NFAs, which is cheap because the
    originals are retained on :attr:`FusedAutomaton.nfas` — no pattern
    recompiles.  Pair with :func:`remap_active` to carry a live
    activation across the rebuild.
    """
    out = fuse_nfas([fused.nfas[slot] for slot in keep])
    if fused.sources:
        out.sources = [fused.sources[slot] for slot in keep]
    if fused.literals:
        out.literals = [fused.literals[slot] for slot in keep]
    return out


def remap_slot_mask(mask: int, keep: Sequence[int]) -> int:
    """Translate a per-slot bitmask across a ``subset_fused`` rebuild.

    Bit ``keep[i]`` of ``mask`` becomes bit ``i``; dropped slots' bits
    vanish.  Used to carry :class:`FusedMatcher` stream bookkeeping that
    is indexed by pattern slot (``_tail_emits``) across incremental
    removes and runtime demotions.
    """
    out = 0
    for index, slot in enumerate(keep):
        if (mask >> slot) & 1:
            out |= 1 << index
    return out


def remap_active(fused: FusedAutomaton, keep: Sequence[int], active: int) -> int:
    """Translate an ``fused`` active mask onto ``subset_fused(fused, keep)``.

    Kept slots' state bits shift down to their new combined offsets;
    dropped slots' bits vanish.  In-flight partial matches of surviving
    patterns are therefore preserved exactly.
    """
    new_active = 0
    shift = 0
    for slot in keep:
        low, high = fused.pattern_slice(slot)
        new_active |= ((active >> low) & ((1 << (high - low)) - 1)) << shift
        shift += high - low
    return new_active


def fuse_patterns(compiled: Sequence[CompiledRegex]) -> FusedAutomaton:
    """Fuse a whole compiled pattern set (see module docstring)."""
    nfas: List[NFA] = []
    sources: List[str] = []
    for regex in compiled:
        nfas.append(build_scan_nfa(regex))
        # Anchored patterns execute the gated per-variant unfolded union
        # regardless of counter-freeness.
        sources.append(
            "ah"
            if regex.anchors is None and is_counter_free(regex.ah)
            else "unfolded"
        )
    fused = fuse_nfas(nfas, literals=[regex.literals for regex in compiled])
    fused.sources = sources
    return fused


def build_fused(
    compiled: Sequence[CompiledRegex],
    cache_size: int = DEFAULT_CACHE_SIZE,
    cache_bytes: int = DEFAULT_CACHE_BYTES,
    table_states: int = DEFAULT_TABLE_STATES,
    table_bytes: Optional[int] = None,
    prefilter: bool = True,
) -> "FusedMatcher":
    """Convenience: fuse and wrap in a matcher in one call."""
    return FusedMatcher(
        fuse_patterns(compiled),
        cache_size=cache_size,
        cache_bytes=cache_bytes,
        table_states=table_states,
        table_bytes=table_bytes,
        prefilter=prefilter,
    )


class _PrefilterPlan:
    """The merged, chunk-time view of a pattern set's literal contracts.

    ``hints`` is the deduplicated ``(literal, pre)`` sweep list;
    ``open_initial`` the injection mask of the always-on (non-gated)
    patterns; ``tail`` the unconditional end-of-chunk arming width that
    covers literal occurrences straddling into the next chunk; and
    ``skippable`` whether a drained activation allows skipping bytes at
    all (only when *every* pattern is gated).
    """

    __slots__ = ("hints", "open_initial", "tail", "gated", "skippable")

    def __init__(
        self,
        hints: Tuple[Tuple[bytes, int], ...],
        open_initial: int,
        tail: int,
        gated: FrozenSet[int],
    ) -> None:
        self.hints = hints
        self.open_initial = open_initial
        self.tail = tail
        self.gated = gated
        self.skippable = open_initial == 0


def _build_plan(fused: FusedAutomaton) -> Optional[_PrefilterPlan]:
    """Build the prefilter plan for ``fused``; None when nothing is gated."""
    literals = fused.literals
    if not literals or len(literals) != fused.num_patterns:
        return None
    entries = [
        (slot, lits) for slot, lits in enumerate(literals) if lits is not None
    ]
    if not entries:
        return None
    # Cap the per-chunk find sweep: un-gate the hint-heaviest patterns
    # until the combined literal set is small enough to pay off.
    total = sum(len(lits.hints) for _, lits in entries)
    if total > MAX_PLAN_LITERALS:
        entries.sort(key=lambda entry: len(entry[1].hints))
        while entries and total > MAX_PLAN_LITERALS:
            _, dropped = entries.pop()
            total -= len(dropped.hints)
    if not entries:
        return None
    gated = frozenset(slot for slot, _ in entries)
    open_initial = 0
    state_pattern = fused.state_pattern
    for state in fused.initial:
        if state_pattern[state] not in gated:
            open_initial |= 1 << state
    merged: Dict[bytes, int] = {}
    for _, lits in entries:
        for hint in lits.hints:
            prev = merged.get(hint.literal)
            if prev is None or hint.pre > prev:
                merged[hint.literal] = hint.pre
    hints = tuple(
        sorted(merged.items(), key=lambda item: (-len(item[0]), item[0]))
    )
    tail = max(pre + len(literal) for literal, pre in hints) - 1
    return _PrefilterPlan(hints, open_initial, tail, gated)


class FusedMatcher:
    """Tiered simulator for a :class:`FusedAutomaton` (see module docstring).

    The streaming contract mirrors the per-pattern engines: state
    persists across :meth:`feed` calls, reported end offsets are
    relative to the current chunk, and :meth:`reset` rewinds to the
    empty activation (the dense table and lazy-DFA cache survive resets
    — they memoise the automaton, not the stream).
    """

    def __init__(
        self,
        fused: FusedAutomaton,
        cache_size: int = DEFAULT_CACHE_SIZE,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        table_states: int = DEFAULT_TABLE_STATES,
        table_bytes: Optional[int] = None,
        prefilter: bool = True,
    ) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be positive")
        if cache_bytes < 1:
            raise ValueError("cache_bytes must be positive")
        if table_states < 0:
            raise ValueError("table_states must be >= 0")
        if table_bytes is None:
            table_bytes = DEFAULT_TABLE_BYTES
        if table_bytes < 1:
            raise ValueError("table_bytes must be positive")
        self.fused = fused
        self._match_masks = build_match_masks(fused.classes)
        self._initial_mask = states_to_mask(fused.initial)
        self._final_mask = states_to_mask(fused.finals)
        self._succ_masks = [states_to_mask(dsts) for dsts in fused.transitions]
        self._state_pattern = fused.state_pattern
        # -- anchor gates --------------------------------------------------
        self._boi_mask = states_to_mask(fused.boi)
        self._eoi_mask = states_to_mask(fused.eoi_finals)
        self._adjust_mask = states_to_mask(fused.adjust_finals)
        self._anchored = fused.anchored
        #: Per-byte injection mask: ``^``-gated start states are armed
        #: only by the dedicated stream-offset-0 step, never per byte.
        self._inject_initial = self._initial_mask & ~self._boi_mask
        self._cache_size = cache_size
        self._cache_byte_limit = cache_bytes
        self._cache_bytes = 0
        #: ``(active_mask, symbol) -> (next_mask, fired, fired_adjust)``
        #: pattern-id tuples; reduced-injection entries share the dict
        #: under ``symbol + 256``.
        self._cache: "OrderedDict[Tuple[int, int], Tuple[int, Tuple[int, ...], Tuple[int, ...]]]"
        self._cache = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        # -- prefilter tier ------------------------------------------------
        self._prefilter = bool(prefilter)
        self._plan = _build_plan(fused) if prefilter else None
        self._open_initial = (
            self._plan.open_initial
            if self._plan is not None
            else self._initial_mask
        ) & ~self._boi_mask
        self.prefilter_skipped = 0
        self.prefilter_armed = 0
        # -- table tier ----------------------------------------------------
        self._table_states = table_states
        self._table_byte_limit = table_bytes
        self._table_bytes = 0
        self.table_hits = 0
        self.table_misses = 0
        self.table_promotes = 0
        self.table_fallbacks = 0
        self.table_steps = 0
        self.bitset_steps = 0
        self.table_seconds = 0.0
        self.bitset_seconds = 0.0
        self._tab_open: Optional[array] = None
        if table_states > 0:
            class_of_byte, num_classes = byte_class_ids(self._match_masks)
            self._class_table = bytes(class_of_byte)
            self._num_classes = num_classes
            reps = [0] * num_classes
            for byte in range(255, -1, -1):
                reps[class_of_byte[byte]] = byte
            self._class_rep = reps
            self._blank_row = array("i", [-1]) * num_classes
            self._table_live = True
            self._state_ids: Dict[int, int] = {}
            self._state_masks: List[int] = []
            self._state_fired: List[Tuple[int, ...]] = []
            self._state_fired_adj: List[Tuple[int, ...]] = []
            self._tab_full = array("i")
            if self._plan is not None:
                self._tab_open = array("i")
        else:
            self._num_classes = 0
            self._table_live = False
            self._state_ids = {}
            self._state_masks = []
            self._state_fired = []
            self._state_fired_adj = []
            self._tab_full = array("i")
        self.reset()

    def reset(self) -> None:
        self.active = 0
        #: True until the first stream byte is consumed — the window in
        #: which ``^``-gated start states may be armed.
        self._at_start = True
        #: Slot mask of patterns that emitted an event ending exactly at
        #: the previous feed's final byte; suppresses cross-chunk and
        #: finalisation duplicates of the same match end.
        self._tail_emits = 0

    # -- state snapshot / restore -------------------------------------

    #: Snapshot document version, bumped on shape changes (v2 added the
    #: anchor-gate stream state: ``at_start`` and ``tail_emits``).
    STATE_VERSION = 2

    def state_snapshot(self) -> Dict[str, int]:
        """The matcher's complete stream-dependent state, picklable.

        The activation mask *is* the whole story: counters are unfolded
        away in the scan NFAs, and the dense table / lazy-DFA cache
        memoise the automaton, not the stream, so a fresh matcher
        restored from this snapshot produces a byte-identical event
        stream from here on.  This is what makes checkpointed crash
        recovery in :mod:`repro.matching.sharded` lossless: snapshot at
        a chunk boundary, replay the tail from the snapshot, and the
        seam composes exactly (the simultaneous-finite-automata
        argument).
        """
        return {
            "version": self.STATE_VERSION,
            "active": self.active,
            "num_states": self.fused.num_states,
            "at_start": int(self._at_start),
            "tail_emits": self._tail_emits,
        }

    def restore_state(self, snapshot: Dict[str, int]) -> None:
        """Adopt a :meth:`state_snapshot` taken on a compatible matcher.

        Raises ``ValueError`` on a version mismatch or an activation
        mask that does not fit this automaton's state space.
        """
        version = snapshot.get("version")
        if version != self.STATE_VERSION:
            raise ValueError(
                f"unsupported fused snapshot version {version!r}"
            )
        active = snapshot["active"]
        if active < 0 or active >> self.fused.num_states:
            raise ValueError(
                f"snapshot activation does not fit {self.fused.num_states} "
                "states"
            )
        self.active = active
        self._at_start = bool(snapshot["at_start"])
        self._tail_emits = snapshot["tail_emits"]

    # -- one combined transition -------------------------------------

    def _advance(
        self, active: int, symbol: int
    ) -> Tuple[int, Tuple[int, ...], Tuple[int, ...]]:
        cache = self._cache
        key = (active, symbol)
        hit = cache.get(key)
        if hit is not None:
            self.cache_hits += 1
            cache.move_to_end(key)
            return hit
        self.cache_misses += 1
        available = self._inject_initial
        succ = self._succ_masks
        remaining = active
        while remaining:
            low = remaining & -remaining
            available |= succ[low.bit_length() - 1]
            remaining ^= low
        next_mask = available & self._match_masks[symbol]
        fired = next_mask & self._final_mask
        report = self._report_ids(fired) if fired else ()
        fired_adj = next_mask & self._adjust_mask
        report_adj = self._report_ids(fired_adj) if fired_adj else ()
        entry = (next_mask, report, report_adj)
        cache[key] = entry
        self._cache_bytes += entry_bytes(
            active, next_mask, len(report) + len(report_adj)
        )
        while (
            len(cache) > self._cache_size
            or self._cache_bytes > self._cache_byte_limit
        ) and cache:
            old_key, old_entry = cache.popitem(last=False)
            self._cache_bytes -= entry_bytes(
                old_key[0], old_entry[0], len(old_entry[1]) + len(old_entry[2])
            )
        return entry

    def _advance_open(
        self, active: int, symbol: int
    ) -> Tuple[int, Tuple[int, ...], Tuple[int, ...]]:
        """One transition with *reduced* start-state injection: only the
        always-on patterns' start states are re-armed (the prefilter arms
        gated patterns explicitly around literal occurrences).  Shares
        the LRU cache with :meth:`_advance` under shifted symbol keys."""
        cache = self._cache
        key = (active, symbol + 256)
        hit = cache.get(key)
        if hit is not None:
            self.cache_hits += 1
            cache.move_to_end(key)
            return hit
        self.cache_misses += 1
        available = self._open_initial
        succ = self._succ_masks
        remaining = active
        while remaining:
            low = remaining & -remaining
            available |= succ[low.bit_length() - 1]
            remaining ^= low
        next_mask = available & self._match_masks[symbol]
        fired = next_mask & self._final_mask
        report = self._report_ids(fired) if fired else ()
        fired_adj = next_mask & self._adjust_mask
        report_adj = self._report_ids(fired_adj) if fired_adj else ()
        entry = (next_mask, report, report_adj)
        cache[key] = entry
        self._cache_bytes += entry_bytes(
            active, next_mask, len(report) + len(report_adj)
        )
        while (
            len(cache) > self._cache_size
            or self._cache_bytes > self._cache_byte_limit
        ) and cache:
            old_key, old_entry = cache.popitem(last=False)
            self._cache_bytes -= entry_bytes(
                old_key[0], old_entry[0], len(old_entry[1]) + len(old_entry[2])
            )
        return entry

    def _report_ids(self, fired: int) -> Tuple[int, ...]:
        """Pattern ids firing in ``fired``, deduplicated, ascending."""
        owners = self._state_pattern
        ids = set()
        while fired:
            low = fired & -fired
            ids.add(owners[low.bit_length() - 1])
            fired ^= low
        return tuple(sorted(ids))

    # -- dense table tier ---------------------------------------------

    def _intern(self, mask: int) -> int:
        """Dense id of ``mask``, interning it on first sight; -1 when the
        state-count or byte budget would be exceeded."""
        sid = self._state_ids.get(mask)
        if sid is not None:
            return sid
        if (
            len(self._state_masks) >= self._table_states
            or self._table_bytes >= self._table_byte_limit
        ):
            return -1
        sid = len(self._state_masks)
        self._state_ids[mask] = sid
        self._state_masks.append(mask)
        fired = mask & self._final_mask
        self._state_fired.append(self._report_ids(fired) if fired else ())
        fired_adj = mask & self._adjust_mask
        self._state_fired_adj.append(
            self._report_ids(fired_adj) if fired_adj else ()
        )
        self._tab_full.extend(self._blank_row)
        rows = 1
        if self._tab_open is not None:
            self._tab_open.extend(self._blank_row)
            rows = 2
        self._table_bytes += (
            _STATE_OVERHEAD_BYTES
            + rows * 4 * self._num_classes
            + mask.bit_length() // 8
        )
        self.table_promotes += 1
        return sid

    def _fill(self, state: int, cls: int, armed: bool) -> int:
        """Compute one missing table row entry via the bitset step."""
        self.table_misses += 1
        mask = self._state_masks[state]
        symbol = self._class_rep[cls]
        if armed:
            next_mask, _report, _report_adj = self._advance(mask, symbol)
        else:
            next_mask, _report, _report_adj = self._advance_open(mask, symbol)
        nxt = self._intern(next_mask)
        if nxt >= 0:
            row = state * self._num_classes + cls
            if armed:
                self._tab_full[row] = nxt
            else:
                self._tab_open[row] = nxt
        return nxt

    def _table_blowup(self) -> None:
        """Permanent mid-scan fallback to bitset stepping: the reachable
        state space outgrew the table budget, so stop paying intern
        costs, free the table, and record the event."""
        self.table_fallbacks += 1
        states = len(self._state_masks)
        table_bytes = self._table_bytes
        self._table_live = False
        self._state_ids = {}
        self._state_masks = []
        self._state_fired = []
        self._state_fired_adj = []
        self._tab_full = array("i")
        if self._tab_open is not None:
            self._tab_open = array("i")
        self._table_bytes = 0
        if telemetry.metrics_enabled():
            telemetry.registry().counter("scan.table.fallback").inc()
        if flight.flight_enabled():
            flight.record(
                "table_fallback",
                states=states,
                table_bytes=table_bytes,
                state_capacity=self._table_states,
                byte_capacity=self._table_byte_limit,
            )

    # -- span runners --------------------------------------------------

    def _run_span(
        self,
        data: bytes,
        translated: Optional[bytes],
        start: int,
        end: int,
        armed: bool,
        out: List[Tuple[int, int]],
    ) -> int:
        """Advance over ``data[start:end]`` appending ``(slot, end)``
        events.  Returns the position reached: ``end``, or earlier for an
        unarmed span whose activation provably drained to empty (the
        caller skips the rest of the gap)."""
        if start >= end:
            return end
        if self._table_live and translated is not None:
            return self._run_table(data, translated, start, end, armed, out)
        return self._run_bitset(data, start, end, armed, out)

    def _run_table(
        self,
        data: bytes,
        translated: bytes,
        start: int,
        end: int,
        armed: bool,
        out: List[Tuple[int, int]],
    ) -> int:
        t0 = perf_counter()
        state = self._intern(self.active)
        if state < 0:
            self.table_seconds += perf_counter() - t0
            self._table_blowup()
            return self._run_bitset(data, start, end, armed, out)
        nc = self._num_classes
        fired_tab = self._state_fired
        fired_adj_tab = self._state_fired_adj
        masks = self._state_masks
        miss0 = self.table_misses
        append = out.append
        pos = end
        seg = (
            translated
            if start == 0 and end == len(translated)
            else translated[start:end]
        )
        if armed:
            tab = self._tab_full
            for off, cls in enumerate(seg, start):
                nxt = tab[state * nc + cls]
                if nxt < 0:
                    nxt = self._fill(state, cls, True)
                    if nxt < 0:
                        return self._abort_span(
                            data, state, start, off, end, True, miss0, t0, out
                        )
                    tab = self._tab_full
                state = nxt
                fired = fired_tab[state]
                if fired:
                    for slot in fired:
                        append((slot, off))
                fired_adj = fired_adj_tab[state]
                if fired_adj:
                    for slot in fired_adj:
                        append((slot, off - 1))
        else:
            tab = self._tab_open
            can_die = self._plan is not None and self._plan.skippable
            for off, cls in enumerate(seg, start):
                nxt = tab[state * nc + cls]
                if nxt < 0:
                    nxt = self._fill(state, cls, False)
                    if nxt < 0:
                        return self._abort_span(
                            data, state, start, off, end, False, miss0, t0, out
                        )
                    tab = self._tab_open
                state = nxt
                fired = fired_tab[state]
                if fired:
                    for slot in fired:
                        append((slot, off))
                fired_adj = fired_adj_tab[state]
                if fired_adj:
                    for slot in fired_adj:
                        append((slot, off - 1))
                if can_die and not masks[state]:
                    pos = off + 1
                    break
        self.active = masks[state]
        served = pos - start
        self.table_steps += served
        self.table_hits += max(0, served - (self.table_misses - miss0))
        self.table_seconds += perf_counter() - t0
        return pos

    def _abort_span(
        self,
        data: bytes,
        state: int,
        start: int,
        off: int,
        end: int,
        armed: bool,
        miss0: int,
        t0: float,
        out: List[Tuple[int, int]],
    ) -> int:
        """The table blew its budget mid-span: sync the bitset activation,
        account the bytes served so far, and finish the span on tier 3."""
        self.active = self._state_masks[state]
        served = off - start
        self.table_steps += served
        self.table_hits += max(0, served - (self.table_misses - miss0))
        self.table_seconds += perf_counter() - t0
        self._table_blowup()
        return self._run_bitset(data, off, end, armed, out)

    def _run_bitset(
        self,
        data: bytes,
        start: int,
        end: int,
        armed: bool,
        out: List[Tuple[int, int]],
    ) -> int:
        t0 = perf_counter()
        active = self.active
        append = out.append
        pos = end
        if armed:
            advance = self._advance
            for off in range(start, end):
                active, report, report_adj = advance(active, data[off])
                if report:
                    for slot in report:
                        append((slot, off))
                if report_adj:
                    for slot in report_adj:
                        append((slot, off - 1))
        else:
            advance = self._advance_open
            can_die = self._plan is not None and self._plan.skippable
            for off in range(start, end):
                active, report, report_adj = advance(active, data[off])
                if report:
                    for slot in report:
                        append((slot, off))
                if report_adj:
                    for slot in report_adj:
                        append((slot, off - 1))
                if can_die and not active:
                    pos = off + 1
                    break
        self.active = active
        self.bitset_steps += pos - start
        self.bitset_seconds += perf_counter() - t0
        return pos

    # -- matcher API ---------------------------------------------------

    def step(self, symbol: int) -> bool:
        """Consume one symbol; True iff *some* pattern's match ends here.

        Per-byte stepping has no anchor semantics — gated automatons
        must be driven through :meth:`feed`/:meth:`finish`.
        """
        self.active, report, _report_adj = self._advance(self.active, symbol)
        return bool(report)

    def step_report(self, symbol: int) -> Tuple[int, ...]:
        """Consume one symbol; the pattern ids whose match ends here."""
        self.active, report, _report_adj = self._advance(self.active, symbol)
        return report

    def feed(self, data: bytes) -> List[Tuple[int, int]]:
        """Scan a chunk from the current state.

        Returns ``(pattern_id, end)`` events with chunk-relative end
        offsets, ordered by offset then pattern id — exactly the stream
        the per-pattern ``PatternSet.feed`` loop produces, whichever
        stepping tier serves each byte.  On anchored automatons a ``\\b``
        confirm byte can report across a chunk seam: the event end is
        then ``-1``, meaning the final byte of the *previous* chunk.
        """
        if self._anchored:
            return self._feed_gated(data)
        if data:
            self._at_start = False
        return self._feed_inner(data)

    def _feed_inner(self, data: bytes) -> List[Tuple[int, int]]:
        """Tier dispatch shared by the gated and un-gated feed paths."""
        if self._plan is not None:
            return self._feed_prefiltered(data)
        out: List[Tuple[int, int]] = []
        if self._table_live:
            translated = data.translate(self._class_table)
            self._run_span(data, translated, 0, len(data), True, out)
            return out
        t0 = perf_counter()
        active = self.active
        advance = self._advance
        for offset, symbol in enumerate(data):
            active, report, report_adj = advance(active, symbol)
            if report:
                for pattern_id in report:
                    out.append((pattern_id, offset))
            if report_adj:
                for pattern_id in report_adj:
                    out.append((pattern_id, offset - 1))
        self.active = active
        self.bitset_steps += len(data)
        self.bitset_seconds += perf_counter() - t0
        return out

    def _step_start(
        self, symbol: int, out: List[Tuple[int, int]]
    ) -> None:
        """The one transition consuming stream offset 0: full injection
        including the ``^``-gated start states.  Uncached — it runs at
        most once per stream."""
        available = self._initial_mask
        succ = self._succ_masks
        remaining = self.active
        while remaining:
            low = remaining & -remaining
            available |= succ[low.bit_length() - 1]
            remaining ^= low
        next_mask = available & self._match_masks[symbol]
        self.active = next_mask
        self.bitset_steps += 1
        fired = next_mask & self._final_mask
        if fired:
            for slot in self._report_ids(fired):
                out.append((slot, 0))
        fired_adj = next_mask & self._adjust_mask
        if fired_adj:  # pragma: no cover - needs a nullable confirm core
            for slot in self._report_ids(fired_adj):
                out.append((slot, -1))

    def _feed_gated(self, data: bytes) -> List[Tuple[int, int]]:
        """Anchored feed: byte 0 of the stream gets the full-injection
        start step, the rest runs through the normal tiers, and the
        event stream is sorted and deduplicated (a normal final at byte
        ``k`` and a ``\\b`` confirm final at byte ``k + 1`` report the
        same match end; ``_tail_emits`` extends the dedup across the
        previous chunk seam and against :meth:`finish`)."""
        n = len(data)
        if not n:
            return []
        raw: List[Tuple[int, int]] = []
        if self._at_start:
            self._at_start = False
            self._step_start(data[0], raw)
            if n > 1:
                raw.extend(
                    (slot, off + 1)
                    for slot, off in self._feed_inner(data[1:])
                )
        else:
            raw = self._feed_inner(data)
        raw.sort(key=lambda event: (event[1], event[0]))
        out: List[Tuple[int, int]] = []
        previous: Optional[Tuple[int, int]] = None
        tail = 0
        suppressed = self._tail_emits
        last = n - 1
        for slot, end in raw:
            if end == -1 and (suppressed >> slot) & 1:
                continue
            event = (slot, end)
            if event == previous:
                continue
            previous = event
            out.append(event)
            if end == last:
                tail |= 1 << slot
        self._tail_emits = tail
        return out

    def finish(self) -> List[Tuple[int, int]]:
        """End-of-input finalisation: report the ``$``-gated candidates
        still alive, as ``(pattern_id, -1)`` events (the match ended at
        the final byte of the stream consumed so far).  Non-mutating and
        idempotent; patterns that already reported that end (a normal or
        confirm final at the last byte) are suppressed.
        """
        fired = self.active & self._eoi_mask
        if not fired:
            return []
        suppressed = self._tail_emits
        return [
            (slot, -1)
            for slot in self._report_ids(fired)
            if not (suppressed >> slot) & 1
        ]

    def _feed_prefiltered(self, data: bytes) -> List[Tuple[int, int]]:
        """Tier-1 feed: sweep the chunk for required-literal occurrences,
        arm gated start states only inside the windows around them (plus
        the straddle-covering tail window), and run everything between
        with reduced injection — skipping outright once drained."""
        out: List[Tuple[int, int]] = []
        n = len(data)
        if not n:
            return out
        plan = self._plan
        spans: List[Tuple[int, int]] = []
        for literal, pre in plan.hints:
            idx = data.find(literal)
            while idx >= 0:
                lo = idx - pre
                spans.append((lo if lo > 0 else 0, idx + 1))
                idx = data.find(literal, idx + 1)
        tail_lo = n - plan.tail
        spans.append((tail_lo if tail_lo > 0 else 0, n))
        spans.sort()
        merged: List[Tuple[int, int]] = []
        cur_lo, cur_hi = spans[0]
        for lo, hi in spans[1:]:
            if lo <= cur_hi:
                if hi > cur_hi:
                    cur_hi = hi
            else:
                merged.append((cur_lo, cur_hi))
                cur_lo, cur_hi = lo, hi
        merged.append((cur_lo, cur_hi))
        translated = (
            data.translate(self._class_table) if self._table_live else None
        )
        pos = 0
        for lo, hi in merged:
            if pos < lo:
                reached = self._run_span(data, translated, pos, lo, False, out)
                if reached < lo:
                    self.prefilter_skipped += lo - reached
            self._run_span(data, translated, lo, hi, True, out)
            self.prefilter_armed += hi - lo
            pos = hi
        # The tail window always ends at n, so no trailing gap remains.
        return out

    def scan(self, data: bytes) -> List[Tuple[int, int]]:
        """Fresh-state :meth:`feed`, plus end-of-input finalisation on
        anchored automatons (``$`` candidates report at the last byte)."""
        self.reset()
        out = self.feed(data)
        if self._anchored:
            final = self.finish()
            if final:
                last = len(data) - 1
                out.extend((slot, last) for slot, _end in final)
                out.sort(key=lambda event: (event[1], event[0]))
        return out

    def match_ends(self, data: bytes) -> List[int]:
        """End indices over all patterns (fresh scan, deduplicated)."""
        return sorted({end for _pattern_id, end in self.scan(data)})

    def active_states(self) -> Set[int]:
        return mask_to_states(self.active)

    def active_count(self) -> int:
        return popcount(self.active)

    def cache_info(self) -> Dict[str, int]:
        """Lazy-DFA cache statistics (telemetry / bench reporting)."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._cache),
            "capacity": self._cache_size,
            "bytes": self._cache_bytes,
            "byte_capacity": self._cache_byte_limit,
        }

    def cache_full(self) -> bool:
        """True once either cache bound (entries or bytes) is saturated.

        Used by degradation policies: a low hit rate only signals thrash
        when the cache has actually filled — cold caches miss by design.
        """
        return (
            len(self._cache) >= self._cache_size
            or self._cache_bytes >= self._cache_byte_limit
        )

    def table_info(self) -> Dict[str, object]:
        """Dense-table tier statistics (telemetry / bench reporting)."""
        return {
            "live": self._table_live,
            "states": len(self._state_masks),
            "state_capacity": self._table_states,
            "bytes": self._table_bytes,
            "byte_capacity": self._table_byte_limit,
            "hits": self.table_hits,
            "misses": self.table_misses,
            "promotes": self.table_promotes,
            "fallbacks": self.table_fallbacks,
            "steps_table": self.table_steps,
            "steps_bitset": self.bitset_steps,
            "seconds_table": self.table_seconds,
            "seconds_bitset": self.bitset_seconds,
            "skipped_bytes": self.prefilter_skipped,
            "armed_bytes": self.prefilter_armed,
        }

    def prefilter_info(self) -> Optional[Dict[str, object]]:
        """The active prefilter plan, or None when every pattern is
        always-on (no usable required literals, or prefilter disabled)."""
        plan = self._plan
        if plan is None:
            return None
        return {
            "literals": [
                {"literal": literal.decode("latin-1"), "pre": pre}
                for literal, pre in plan.hints
            ],
            "gated_patterns": len(plan.gated),
            "open_patterns": self.fused.num_patterns - len(plan.gated),
            "tail_bytes": plan.tail,
            "skippable": plan.skippable,
            "skipped_bytes": self.prefilter_skipped,
            "armed_bytes": self.prefilter_armed,
        }
