"""I/O buffer hierarchy tests (§6, Fig. 8)."""

import pytest

from repro.hardware.iobuffer import (
    ARRAY_FIFO_ENTRIES,
    ARRAY_FIFO_REFILL_THRESHOLD,
    BANK_OUTPUT_ENTRIES,
    ArrayInputFIFO,
    BankInputBuffer,
    OutputPath,
    replay_io,
)


class TestBankInputBuffer:
    def test_initial_fill(self):
        bank = BankInputBuffer(dma_latency=10)
        bank.attach_source(1000)
        assert bank.available == 64  # one ping-pong half
        assert bank.dma_transfers == 1

    def test_refill_after_latency(self):
        bank = BankInputBuffer(dma_latency=3)
        bank.attach_source(1000)
        for _ in range(3):
            bank.tick()
        assert bank.available == 128

    def test_serve_decrements(self):
        bank = BankInputBuffer()
        bank.attach_source(100)
        granted = bank.serve(4)
        assert granted == 4
        assert bank.total_supplied == 4

    def test_serve_limited_by_availability(self):
        bank = BankInputBuffer()
        bank.attach_source(2)
        assert bank.serve(4) == 2
        assert bank.serve(4) == 0

    def test_source_exhaustion_stops_dma(self):
        bank = BankInputBuffer(dma_latency=1)
        bank.attach_source(64)
        for _ in range(10):
            bank.tick()
        assert bank.dma_transfers == 1
        assert bank.available == 64


class TestArrayInputFIFO:
    def test_refill_threshold(self):
        fifo = ArrayInputFIFO(index=0)
        assert fifo.wants_refill
        fifo.refill(ARRAY_FIFO_REFILL_THRESHOLD)
        assert not fifo.wants_refill

    def test_overflow_rejected(self):
        fifo = ArrayInputFIFO(index=0)
        with pytest.raises(ValueError):
            fifo.refill(ARRAY_FIFO_ENTRIES + 1)

    def test_broadcast_consumes(self):
        fifo = ArrayInputFIFO(index=0)
        fifo.refill(2)
        assert fifo.broadcast(stalled=False)
        assert fifo.occupancy == 1

    def test_stall_blocks_broadcast(self):
        fifo = ArrayInputFIFO(index=0)
        fifo.refill(2)
        assert not fifo.broadcast(stalled=True)
        assert fifo.occupancy == 2

    def test_underrun_counted(self):
        fifo = ArrayInputFIFO(index=0)
        assert not fifo.broadcast(stalled=False)
        assert fifo.underrun_cycles == 1


class TestOutputPath:
    def test_push_and_drain(self):
        output = OutputPath(num_arrays=2)
        assert output.push(0, 1)
        output.tick()
        assert output.array_fifos[0] == 0
        assert output.bank_fifo == 1

    def test_full_array_fifo_stalls(self):
        output = OutputPath(num_arrays=1)
        assert output.push(0, 2)
        assert not output.push(0, 1)  # 2-entry FIFO full
        assert output.full_stalls[0] == 1

    def test_bank_dma_when_full(self):
        output = OutputPath(num_arrays=1)
        for _ in range(BANK_OUTPUT_ENTRIES):
            assert output.push(0, 1)
            output.tick()
        assert output.dma_flushes == 1
        assert output.reports_out == BANK_OUTPUT_ENTRIES

    def test_flush_recovers_everything(self):
        output = OutputPath(num_arrays=2)
        output.push(0, 2)
        output.push(1, 1)
        output.flush()
        assert output.reports_out == 3


class TestReplay:
    def test_all_symbols_broadcast(self):
        stats = replay_io(500, [0] * 500)
        assert stats.symbols_broadcast == 500

    def test_stalls_lengthen_replay(self):
        smooth = replay_io(300, [0] * 300)
        stalled = replay_io(300, [2] * 300)
        assert stalled.cycles > smooth.cycles

    def test_dma_transfer_count(self):
        stats = replay_io(640, [0] * 640)
        assert stats.dma_transfers == 10  # 640 symbols / 64 per half

    def test_reports_flow_through(self):
        stats = replay_io(
            200, [0] * 200, report_schedule={10: 1, 50: 1, 51: 1}
        )
        assert stats.output_dma_flushes == 0  # 3 reports < 64-entry FIFO
        assert stats.output_full_stalls == 0

    def test_burst_reports_stall(self):
        # Three reports in one cycle exceed the 2-entry array FIFO.
        stats = replay_io(100, [0] * 100, report_schedule={10: 3})
        assert stats.output_full_stalls >= 1

    def test_fifo_never_overflows(self):
        stats = replay_io(400, [1, 0, 3, 0] * 100)
        assert stats.max_fifo_occupancy <= ARRAY_FIFO_ENTRIES

    def test_slow_dma_causes_underruns(self):
        fast = replay_io(500, [0] * 500, dma_latency=4)
        slow = replay_io(500, [0] * 500, dma_latency=200)
        assert slow.underrun_cycles > fast.underrun_cycles
