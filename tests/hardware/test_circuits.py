"""Table 4 circuit-model tests."""

import pytest

from repro.hardware import circuits


class TestTable4Values:
    """The published Table 4 rows, verbatim."""

    def test_sram(self):
        m = circuits.SRAM_8T_128x128
        assert (m.energy_min_pj, m.energy_max_pj) == (1.0, 14.2)
        assert m.delay_ps == 298.0
        assert m.area_um2 == 5655.0
        assert m.leakage_ua == 57.0

    def test_routing_switch(self):
        m = circuits.ROUTING_SWITCH_256
        assert (m.energy_min_pj, m.energy_max_pj) == (2.0, 55.0)
        assert m.area_um2 == 18153.0

    def test_cam(self):
        m = circuits.CAM_8T_32x256
        assert m.energy_min_pj == 33.56
        assert m.delay_ps == 336.0
        assert m.leakage_ua == 28.5

    def test_mfcb(self):
        m = circuits.MFCB_4PORT_48x48
        assert (m.energy_min_pj, m.energy_max_pj) == (0.76, 3.25)
        assert m.area_um2 == 1818.0

    def test_bit_vector(self):
        m = circuits.BIT_VECTOR_64
        assert m.energy_min_pj == 1.37
        assert m.area_um2 == 17.7
        assert m.leakage_ua == 0.56

    def test_global_wire(self):
        m = circuits.GLOBAL_WIRE_MM
        assert m.energy_min_pj == 0.07
        assert m.delay_ps == 66.0

    def test_table_has_six_rows(self):
        assert len(circuits.TABLE4) == 6


class TestEnergyModel:
    def test_activity_interpolation(self):
        m = circuits.SRAM_8T_128x128
        assert m.energy_pj(0.0) == 1.0
        assert m.energy_pj(1.0) == 14.2
        assert m.energy_pj(0.5) == pytest.approx(7.6)

    def test_activity_bounds_checked(self):
        with pytest.raises(ValueError):
            circuits.SRAM_8T_128x128.energy_pj(1.5)

    def test_voltage_scaling_quadratic(self):
        m = circuits.CAM_8T_32x256
        scaled = m.energy_pj(vdd=circuits.BVAP_S_VDD)
        assert scaled == pytest.approx(33.56 * (0.65 / 0.9) ** 2)

    def test_leakage_power(self):
        m = circuits.SRAM_8T_128x128
        assert m.leakage_w() == pytest.approx(57e-6 * 0.9)


class TestScaledSwitch:
    def test_quarter_area_for_half_dimensions(self):
        rcb = circuits.scaled_switch(128, 128)
        assert rcb.area_um2 == pytest.approx(18153 / 4)
        assert rcb.energy_max_pj == pytest.approx(55 / 4)
        assert rcb.leakage_ua == pytest.approx(228 / 4)

    def test_delay_scales_with_dimension(self):
        rcb = circuits.scaled_switch(128, 128)
        assert rcb.delay_ps == pytest.approx(410 / 2)

    def test_cannot_scale_up(self):
        with pytest.raises(ValueError):
            circuits.scaled_switch(512, 512)


class TestClocks:
    def test_paper_frequencies(self):
        """2 GHz system / 5 GHz BVM (§8)."""
        assert circuits.BVAP_SYSTEM_CLOCK_HZ == 2.0e9
        assert circuits.BVM_CLOCK_HZ == 5.0e9

    def test_bvap_slower_than_cama(self):
        assert circuits.BVAP_SYSTEM_CLOCK_HZ < circuits.CAMA_CLOCK_HZ
