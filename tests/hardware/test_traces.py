"""Trace renderer tests for Table 1 / Table 2 regeneration."""

import pytest

from repro.compiler import CompilerOptions, compile_pattern
from repro.hardware.traces import ah_trace, bits_str, naive_trace

OPTIONS = CompilerOptions(bv_size=8, unfold_threshold=2)


@pytest.fixture(scope="module")
def compiled():
    return compile_pattern("a(.a){3}b", options=OPTIONS)


class TestBitsStr:
    def test_format(self):
        assert bits_str(0b101, 3) == "[1,0,1]"
        assert bits_str(0, 2) == "[0,0]"


class TestNaiveTrace:
    def test_row_per_symbol(self, compiled):
        table = naive_trace(compiled.nbva, b"abaaabab")
        assert len(table.rows) == 8
        assert table.state_names == ["STE1", "STE2", "STE3", "STE4"]

    def test_report_in_last_row_only(self, compiled):
        table = naive_trace(compiled.nbva, b"abaaabab")
        assert [row["report"] for row in table.rows] == [False] * 7 + [True]

    def test_render_is_text(self, compiled):
        table = naive_trace(compiled.nbva, b"aba")
        text = table.render()
        assert "set1" in text and text.count("\n") == 2


class TestAHTrace:
    def test_table2_key_rows(self, compiled):
        """Spot-check Table 2 values on the AH design."""
        rows = ah_trace(compiled.ah, b"abaaabab")
        states = compiled.ah.states
        # Find the width-3 copy state (STE3).
        ste3 = next(
            i for i, s in enumerate(states) if repr(s.action) == "copy" and s.width == 3
        )
        ste2b = next(i for i, s in enumerate(states) if repr(s.action) == "shift")
        # Row 3 (0-indexed 2, input 'a'): bv3 -> [1,0,0] (Table 2 row 3)
        assert rows[2].bv_in[ste3] == 0b001
        # Row 5 (input 'a'): bv3 holds [1,1,0]
        assert rows[4].bv_in[ste3] == 0b011
        # ->bv2b after row 5: shift produced [0,1,1]
        assert rows[4].bv_out[ste2b] == 0b110

    def test_report_matches_matcher(self, compiled):
        rows = ah_trace(compiled.ah, b"abaaabab")
        assert [r.report for r in rows] == [False] * 7 + [True]
        assert compiled.ah.match_ends(b"abaaabab") == [7]

    def test_bv_out_respects_linearity(self, compiled):
        """->bvi equals the action applied to the OR of source vectors."""
        rows = ah_trace(compiled.ah, b"abaaab")
        ah = compiled.ah
        for row in rows:
            for dst, state in enumerate(ah.states):
                agg = 1 if dst in ah.injected else 0
                for src in ah.preds[dst]:
                    agg |= row.bv_in[src]
                expected = (
                    state.action.apply(agg, state.in_width, state.width)
                    if agg
                    else 0
                )
                assert row.bv_out[dst] == expected
