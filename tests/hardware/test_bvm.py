"""BVM instruction set (Table 3) and cost-model tests (§5)."""

import pytest

from repro.automata.actions import (
    COPY,
    SET1,
    SHIFT,
    ReadBit,
    ReadBitSet1,
    ReadRange,
    ReadRangeSet1,
)
from repro.hardware import bvm
from repro.hardware.bvm import Instruction, Opcode, instruction_for


class TestInstructionEncoding:
    @pytest.mark.parametrize("opcode", list(Opcode))
    def test_roundtrip(self, opcode):
        pointer = 5 if opcode in (Opcode.READ, Opcode.READ_SET1) else 0
        inst = Instruction(opcode, pointer)
        assert Instruction.decode(inst.encode()) == inst

    def test_pointer_width(self):
        # The 6-bit field stores pointer-1, so positions 1..64 encode.
        assert Instruction.decode(Instruction(Opcode.READ, 64).encode()).pointer == 64
        with pytest.raises(ValueError):
            Instruction(Opcode.READ, 65)

    def test_read_requires_pointer(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.READ, 0)

    def test_non_read_rejects_pointer(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.COPY, 3)

    def test_flags(self):
        assert Instruction(Opcode.RALL).is_read
        assert not Instruction(Opcode.COPY).is_read
        assert Instruction(Opcode.SHIFT).is_swap
        assert not Instruction(Opcode.RALL).is_swap
        assert Instruction(Opcode.RALL_SET1).is_set1
        assert Instruction(Opcode.SET1).is_set1


class TestActionMapping:
    def test_plain_ops(self):
        assert instruction_for(SET1, 64).opcode == Opcode.SET1
        assert instruction_for(COPY, 64).opcode == Opcode.COPY
        assert instruction_for(SHIFT, 64).opcode == Opcode.SHIFT

    def test_bit_reads(self):
        inst = instruction_for(ReadBit(37), 64)
        assert (inst.opcode, inst.pointer) == (Opcode.READ, 37)
        inst = instruction_for(ReadBitSet1(3), 8)
        assert (inst.opcode, inst.pointer) == (Opcode.READ_SET1, 3)

    @pytest.mark.parametrize(
        "high,virtual,opcode",
        [
            (64, 64, Opcode.RALL),
            (32, 64, Opcode.RHALF),
            (16, 64, Opcode.RQUARTER),
            (8, 8, Opcode.RALL),
            (4, 8, Opcode.RHALF),
            (2, 8, Opcode.RQUARTER),
        ],
    )
    def test_range_reads(self, high, virtual, opcode):
        assert instruction_for(ReadRange(high), virtual).opcode == opcode

    def test_range_set1_combined(self):
        inst = instruction_for(ReadRangeSet1(32), 64)
        assert inst.opcode == Opcode.RHALF_SET1

    def test_incompatible_range_rejected(self):
        """r(1,n) only exists at K, K/2, K/4 of the virtual size (§4/§5)."""
        with pytest.raises(ValueError):
            instruction_for(ReadRange(24), 64)


class TestSwapWords:
    def test_word_counts(self):
        assert bvm.swap_words(64) == 8
        assert bvm.swap_words(8) == 1
        assert bvm.swap_words(9) == 2

    def test_bounds(self):
        with pytest.raises(ValueError):
            bvm.swap_words(0)
        with pytest.raises(ValueError):
            bvm.swap_words(65)


class TestActivationCost:
    def test_idle_is_free(self):
        cost = bvm.activation_cost([], 0, 0)
        assert cost.bv_cycles == 0
        assert cost.energy_pj == 0.0

    def test_read_only(self):
        cost = bvm.activation_cost([], num_reads=2)
        assert cost.bv_cycles == bvm.READ_STEP_CYCLES
        assert cost.energy_pj > 0

    def test_swap_latency_scales_with_words(self):
        short = bvm.activation_cost([2])
        long = bvm.activation_cost([8])
        assert long.bv_cycles == short.bv_cycles + 6

    def test_virtual_size_saves_cycles(self):
        """§5: virtual BV sizes reduce Swap cycles and energy."""
        full = bvm.activation_cost([8])
        virtual = bvm.activation_cost([2])
        assert virtual.bv_cycles < full.bv_cycles
        assert virtual.energy_pj < full.energy_pj

    def test_parallel_bvs_share_cycles(self):
        one = bvm.activation_cost([8])
        many = bvm.activation_cost([8, 8, 8])
        assert many.bv_cycles == one.bv_cycles  # word-parallel across BVs
        assert many.energy_pj > one.energy_pj

    def test_set1_power_gated(self):
        """A set1-only BV costs a fraction of a moving BV (§5)."""
        mover = bvm.activation_cost([8])
        sender = bvm.activation_cost([], num_set1=1)
        assert sender.energy_pj < 0.2 * mover.energy_pj

    def test_leakage(self):
        assert bvm.bvm_leakage_w() == pytest.approx(
            48 * 0.56e-6 * 0.9 + 2 * 25e-6 * 0.9
        )
