"""Tile-level joint execution tests."""

import random

import pytest

from repro.compiler import compile_pattern
from repro.hardware.tile import TileCapacityError, TileEngine

PATTERNS = ["ab{20}c", "hello", "x[yz]{6}"]


def build_engine(patterns=PATTERNS):
    automata = [
        (rid, compile_pattern(p, rid).ah) for rid, p in enumerate(patterns)
    ]
    return automata, TileEngine(automata)


class TestSlots:
    def test_every_state_gets_a_slot(self):
        automata, engine = build_engine()
        total = sum(ah.num_states for _, ah in automata)
        assert engine.occupancy.stes == total
        slots = {
            engine.slot_of(rid, s)
            for rid, ah in automata
            for s in range(ah.num_states)
        }
        assert slots == set(range(total))

    def test_bv_slots_only_for_bv_stes(self):
        automata, engine = build_engine()
        for rid, ah in automata:
            for index, state in enumerate(ah.states):
                slot = engine.bv_slot_of(rid, index)
                assert (slot is not None) == state.is_bv_ste()

    def test_capacity_enforced(self):
        patterns = ["a" * 60 for _ in range(5)]  # 300 plain STEs
        automata = [
            (rid, compile_pattern(p, rid).ah)
            for rid, p in enumerate(patterns)
        ]
        with pytest.raises(TileCapacityError):
            TileEngine(automata)

    def test_bv_capacity_enforced(self):
        patterns = ["ab{1000}c" for _ in range(3)]  # ~32 vector BVs each
        automata = [
            (rid, compile_pattern(p, rid).ah)
            for rid, p in enumerate(patterns)
        ]
        with pytest.raises(TileCapacityError):
            TileEngine(automata, bvs_per_tile=48)


class TestJointExecution:
    def test_matches_equal_per_regex_engines(self):
        automata, engine = build_engine()
        rng = random.Random(0)
        data = bytes(rng.choice(b"abchelxyz ") for _ in range(400))
        joint = engine.match_stream(data)
        expected = sorted(
            (end, rid)
            for rid, ah in automata
            for end in ah.match_ends(data)
        )
        assert sorted(joint) == expected

    def test_active_vector_reflects_states(self):
        automata, engine = build_engine(["ab"])
        engine.reset()
        engine.step(ord("a"))
        assert engine.active_count() == 1
        assert engine.active_slots() == [engine.slot_of(0, 0)]

    def test_active_vector_joint_across_regexes(self):
        automata, engine = build_engine(["ab", "ax"])
        engine.reset()
        engine.step(ord("a"))
        assert engine.active_count() == 2  # both regexes' first STEs

    def test_reset_clears(self):
        _, engine = build_engine()
        engine.step(ord("a"))
        engine.reset()
        assert engine.active_vector == 0
