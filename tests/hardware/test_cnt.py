"""CNT (CAMA + counter elements) tests — the Fig. 12 strawman."""

import random

import pytest

from repro.hardware.baselines.cnt import (
    CNTSimulator,
    classify_repeats,
    compile_cnt,
    simulate_cnt,
)
from repro.regex.parser import parse


class TestAmbiguityClassifier:
    def test_fig12_case(self):
        """r a{64} b{m}: a{64} is counter-ambiguous, b{m} is not (§8)."""
        node = parse("a" * 16 + "a{64}b{128}")
        verdicts = {
            (rep.low, rep.high): ambiguous
            for rep, ambiguous in classify_repeats(node)
        }
        assert verdicts[(64, 64)] is True
        assert verdicts[(128, 128)] is False

    def test_start_of_regex_is_ambiguous(self):
        """A block at the start re-enters on every symbol (start-anywhere)."""
        (verdict,) = classify_repeats(parse("a{10}b"))
        assert verdict[1] is True

    def test_disjoint_preceded_block_unambiguous(self):
        (_, verdict) = classify_repeats(parse("xa{9}"))[-1], None
        rep, ambiguous = classify_repeats(parse("xa{9}"))[0]
        assert ambiguous is False

    def test_overlapping_preceded_block_ambiguous(self):
        rep, ambiguous = classify_repeats(parse("aa{9}"))[0]
        assert ambiguous is True

    def test_block_after_star_loop(self):
        # (xb)* before b{5}: the loop's last char x... preceding set is b
        rep, ambiguous = classify_repeats(parse("x(ab)*b{5}"))[0]
        assert ambiguous is True  # 'b' loops precede a 'b' block


class TestResources:
    def test_unambiguous_costs_one_counter(self):
        ruleset = compile_cnt(["xa{100}y"])
        regex = ruleset.regexes[0]
        assert regex.counters == 1
        assert regex.stes < 10  # body + literals, not 100 states

    def test_ambiguous_unfolds(self):
        ruleset = compile_cnt(["aa{50}b"])
        regex = ruleset.regexes[0]
        assert regex.counters == 0
        assert regex.stes >= 50

    def test_mixed_fig12_shape(self):
        ruleset = compile_cnt(["a" * 16 + "a{64}b{256}"])
        regex = ruleset.regexes[0]
        assert regex.counters == 1  # b{256}
        assert 64 + 16 <= regex.stes <= 64 + 16 + 4  # a{64} unfolded

    def test_counter_count_flat_in_bound(self):
        """A counter element handles any bound — CNT's one advantage."""
        small = compile_cnt(["xa{64}y"]).regexes[0]
        large = compile_cnt(["xa{2000}y"]).regexes[0]
        assert small.counters == large.counters == 1
        assert small.stes == large.stes

    def test_bad_pattern_rejected(self):
        ruleset = compile_cnt(["(", "ok"])
        assert 0 in ruleset.rejected
        assert len(ruleset.regexes) == 1


class TestSimulation:
    def test_matching_correct(self):
        patterns = ["xa{20}y"]
        data = b"x" + b"a" * 20 + b"y" + b"zzz"
        report = simulate_cnt(patterns, data)
        assert report.matches == 1
        assert report.architecture == "CNT"

    def test_energy_positive(self):
        rng = random.Random(1)
        data = bytes(rng.choice(b"xay") for _ in range(600))
        report = simulate_cnt(["xa{20}y", "y{8}x"], data)
        assert report.total_energy_j > 0
        assert report.area_mm2 > 0

    def test_area_grows_with_ambiguous_bound(self):
        small = simulate_cnt(["aa{32}b"], b"ab" * 50)
        large = simulate_cnt(["aa{512}b"], b"ab" * 50)
        assert large.area_mm2 >= small.area_mm2
