"""Cross-layer conformance: the cycle-level BVAP simulator and the
software scan engines report the same matches.

The simulator (:mod:`repro.hardware.simulator`) and the engines
(:mod:`repro.matching`) sit at opposite ends of the stack — one steps
mapped tiles/BVMs cycle by cycle, the other runs fused bitset automata —
but both consume the same compiled rule sets, so their match streams
must agree event for event: simulator ``notes["match_events"]`` entries
are ``(end index, regex id)``, engine matches are ``(pattern_id, end)``
with the same inclusive last-byte index.

Checked on the golden corpus (one pattern at a time and as one fused
rule set) and on the paper's Example 7.1/7.2 rewrite shapes, against
both the fused and the sharded engines.
"""

import random

import pytest

from repro.compiler import CompilerOptions, compile_ruleset
from repro.hardware.simulator import BVAPSimulator
from repro.matching import PatternSet, ShardedScanner
from repro.regex.generate import random_match
from repro.regex.parser import parse

from ..matching.test_golden_corpus import CORPUS

OPTIONS = CompilerOptions(bv_size=16, unfold_threshold=2)

#: Example 7.1 (small-bound unfolds) and Example 7.2 (bound splits past
#: the virtual BV widths) — the shapes §7's rewrites exist for.
EXAMPLE_PATTERNS = [
    "(bc){2}",
    "d{1,3}",
    "f{2,}",
    "b{20}",
    "b{2,23}",
    "a{1,20}",
]


def sim_events(ruleset, data):
    report = BVAPSimulator(ruleset).run(data, collect_matches=True)
    return sorted(report.notes["match_events"])


def engine_events(matches):
    return sorted((m.end, m.pattern_id) for m in matches)


def planted_input(patterns, seed, length=160):
    rng = random.Random(seed)
    nodes = [parse(p) for p in patterns]
    out = bytearray()
    while len(out) < length:
        if rng.random() < 0.3:
            try:
                out.extend(random_match(rng.choice(nodes), rng, 2))
            except ValueError:
                pass
        else:
            out.append(rng.choice(b"abcdf "))
    return bytes(out[:length])


@pytest.mark.parametrize(
    "pattern,data", CORPUS, ids=[pattern for pattern, _ in CORPUS]
)
def test_simulator_matches_fused_per_golden_pattern(pattern, data):
    ruleset = compile_ruleset([pattern], OPTIONS)
    assert not ruleset.rejected, pattern
    engine = PatternSet([pattern], options=OPTIONS, engine="fused")
    assert sim_events(ruleset, data) == engine_events(engine.scan(data)), (
        pattern
    )


def test_simulator_matches_fused_whole_corpus_ruleset():
    patterns = [pattern for pattern, _ in CORPUS]
    data = b" ".join(data for _, data in CORPUS)
    ruleset = compile_ruleset(patterns, OPTIONS)
    assert not ruleset.rejected
    engine = PatternSet(patterns, options=OPTIONS, engine="fused")
    expected = engine_events(engine.scan(data))
    assert expected, "corpus scan found nothing; conformance is vacuous"
    assert sim_events(ruleset, data) == expected


def test_simulator_matches_sharded_engine():
    """Hardware simulation vs the parallel orchestrator — the two
    farthest-apart execution paths in the repo."""
    patterns = [pattern for pattern, _ in CORPUS]
    data = b" ".join(data for _, data in CORPUS)
    ruleset = compile_ruleset(patterns, OPTIONS)
    with ShardedScanner(ruleset.regexes, num_shards=3) as scanner:
        got = sorted((end, pid) for pid, end in scanner.scan(data))
    assert got == sim_events(ruleset, data)


@pytest.mark.parametrize("seed", range(4))
def test_simulator_matches_engines_on_example_7_shapes(seed):
    data = planted_input(EXAMPLE_PATTERNS, seed)
    ruleset = compile_ruleset(EXAMPLE_PATTERNS, OPTIONS)
    assert not ruleset.rejected
    expected = sim_events(ruleset, data)
    fused = PatternSet(EXAMPLE_PATTERNS, options=OPTIONS, engine="fused")
    assert engine_events(fused.scan(data)) == expected
    with PatternSet(
        EXAMPLE_PATTERNS, options=OPTIONS, engine="sharded", shards=2
    ) as sharded:
        assert engine_events(sharded.scan(data)) == expected


def test_simulator_reduced_ruleset_matches_unreduced():
    """The cycle-level simulator consumes the reduced artifacts through
    mapping/encoding like any other backend: its match events must be
    identical with the ``compiler.reduce`` pass on and off."""
    patterns = [pattern for pattern, _ in CORPUS]
    data = b" ".join(data for _, data in CORPUS)
    reduced = compile_ruleset(patterns, OPTIONS)
    plain = compile_ruleset(
        patterns,
        CompilerOptions(bv_size=16, unfold_threshold=2, reduce_level=0),
    )
    events = sim_events(reduced, data)
    assert events, "reduced corpus simulation found nothing"
    assert events == sim_events(plain, data)
    engine = PatternSet(patterns, options=OPTIONS, engine="fused")
    assert events == engine_events(engine.scan(data))


def test_simulator_streaming_variant_conforms_too():
    """BVAP-S (streaming reconfiguration) must not change the match
    stream, only the timing/energy accounting."""
    patterns = EXAMPLE_PATTERNS
    data = planted_input(patterns, seed=9)
    ruleset = compile_ruleset(patterns, OPTIONS)
    engine = PatternSet(patterns, options=OPTIONS, engine="fused")
    expected = engine_events(engine.scan(data))
    assert sim_events(ruleset, data) == expected
    streaming = BVAPSimulator(ruleset, streaming=True).run(
        data, collect_matches=True
    )
    assert sorted(streaming.notes["match_events"]) == expected
