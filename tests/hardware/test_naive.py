"""Naïve PE-array design tests (Fig. 3(b), Table 1)."""

import random

import pytest

from repro.compiler import CompilerOptions, compile_pattern
from repro.hardware.naive import NaiveMachine

OPTIONS = CompilerOptions(bv_size=8, unfold_threshold=2)


def machine(pattern):
    return NaiveMachine(compile_pattern(pattern, options=OPTIONS).nbva)


class TestTable1Semantics:
    """The a(sigma a){3}b walk over 'abaaabab' (§3, Table 1)."""

    def setup_method(self):
        self.compiled = compile_pattern("a(.a){3}b", options=OPTIONS)
        self.machine = NaiveMachine(self.compiled.nbva)
        self.machine.reset()
        self.rows = [self.machine.step(s) for s in b"abaaabab"]

    def test_report_on_final_b(self):
        assert [row.report for row in self.rows] == [False] * 7 + [True]

    def test_ste1_active_on_every_a(self):
        # state 0 is the 'a' STE, available every cycle (initial)
        actives = [row.active[0] for row in self.rows]
        assert actives == [s == ord("a") for s in b"abaaabab"]

    def test_pe_ops_match_design(self):
        ops = {op for row in self.rows for (_, _, op, _) in row.pe_outputs}
        assert ops == {"set1", "shift", "copy", "r(3)"}

    def test_vector_progression(self):
        """The sigma-state vector accumulates overlapping counts: by the
        5th symbol it holds {1,2,3} ([1,1,1]) as in Table 1's row 5."""
        sigma = 1  # the sigma position in a(.a){3}b
        # After 'abaaa' (row index 4) the aggregated ->bv of the sigma
        # state is [1,1,1].
        assert self.rows[4].bv_out[sigma] == 0b111

    def test_availability_not_gated_by_reads(self):
        """Table 1 row 6: STE4 is active although the r(3) read failed in
        row 5 — availability flows through the plain crossbar."""
        final_state = max(self.compiled.nbva.final)
        assert self.rows[5].active[final_state]
        assert not self.rows[5].report  # but its vector stayed zero


class TestEquivalence:
    @pytest.mark.parametrize(
        "pattern",
        ["ab{6}c", "a{8}", "ab{1,8}c", "(ab){6}", "a{5,}b", "a(.a){3}b"],
    )
    def test_matches_nbva_engine(self, pattern):
        compiled = compile_pattern(pattern, options=OPTIONS)
        machine = NaiveMachine(compiled.nbva)
        rng = random.Random(42)
        for _ in range(10):
            data = bytes(rng.choice(b"abc") for _ in range(40))
            assert machine.match_ends(data) == compiled.nbva.match_ends(data)


class TestCostModel:
    def test_pe_count_is_transition_count(self):
        compiled = compile_pattern("ab{8}c", options=OPTIONS)
        assert NaiveMachine(compiled.nbva).num_pes() == len(
            compiled.nbva.transitions
        )

    def test_pe_array_quadratic(self):
        """The §3 argument: a full tile needs O(n^2) PEs."""
        assert NaiveMachine.pe_array_size(256) == 65536
        assert NaiveMachine.pe_array_size(16) == 256
