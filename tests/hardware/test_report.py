"""SimulationReport metric-derivation tests."""

import pytest

from repro.hardware.report import SimulationReport


def make_report(**overrides):
    base = dict(
        architecture="X",
        symbols=1000,
        system_cycles=1000,
        clock_hz=1e9,
        dynamic_energy_j=1e-9,
        leakage_energy_j=1e-10,
        area_mm2=2.0,
    )
    base.update(overrides)
    return SimulationReport(**base)


class TestDerivedMetrics:
    def test_time(self):
        assert make_report().time_s == pytest.approx(1e-6)

    def test_total_energy(self):
        assert make_report().total_energy_j == pytest.approx(1.1e-9)

    def test_energy_per_symbol(self):
        report = make_report()
        assert report.energy_per_symbol_j == pytest.approx(1.1e-12)
        assert report.energy_per_symbol_nj == pytest.approx(1.1e-3)

    def test_throughput(self):
        report = make_report()
        assert report.throughput_sym_per_s == pytest.approx(1e9)
        assert report.throughput_gbps == pytest.approx(8.0)

    def test_stalls_lower_throughput(self):
        stalled = make_report(system_cycles=2000)
        assert stalled.throughput_gbps == pytest.approx(4.0)

    def test_power(self):
        assert make_report().power_w == pytest.approx(1.1e-9 / 1e-6)

    def test_compute_density(self):
        assert make_report().compute_density_gbps_mm2 == pytest.approx(4.0)

    def test_edp(self):
        assert make_report().edp == pytest.approx(1.1e-9 * 1e-6)

    def test_fom(self):
        report = make_report()
        assert report.fom == pytest.approx(1.1e-9 * 2.0 / 8.0)

    def test_zero_throughput_fom_infinite(self):
        report = make_report(symbols=0, system_cycles=0)
        assert report.fom == float("inf")


class TestNormalisation:
    def test_normalized_to(self):
        mine = make_report(dynamic_energy_j=5e-10, leakage_energy_j=0.0)
        base = make_report(dynamic_energy_j=1e-9, leakage_energy_j=0.0)
        norm = mine.normalized_to(base)
        assert norm["energy_per_symbol"] == pytest.approx(0.5)
        assert norm["area"] == pytest.approx(1.0)
        assert norm["throughput"] == pytest.approx(1.0)
        assert set(norm) == {
            "area",
            "energy_per_symbol",
            "power",
            "compute_density",
            "throughput",
            "fom",
        }
