"""SimulationReport metric-derivation tests."""

import json

import pytest

from repro.hardware.report import SimulationReport


def make_report(**overrides):
    base = dict(
        architecture="X",
        symbols=1000,
        system_cycles=1000,
        clock_hz=1e9,
        dynamic_energy_j=1e-9,
        leakage_energy_j=1e-10,
        area_mm2=2.0,
    )
    base.update(overrides)
    return SimulationReport(**base)


class TestDerivedMetrics:
    def test_time(self):
        assert make_report().time_s == pytest.approx(1e-6)

    def test_total_energy(self):
        assert make_report().total_energy_j == pytest.approx(1.1e-9)

    def test_energy_per_symbol(self):
        report = make_report()
        assert report.energy_per_symbol_j == pytest.approx(1.1e-12)
        assert report.energy_per_symbol_nj == pytest.approx(1.1e-3)

    def test_throughput(self):
        report = make_report()
        assert report.throughput_sym_per_s == pytest.approx(1e9)
        assert report.throughput_gbps == pytest.approx(8.0)

    def test_stalls_lower_throughput(self):
        stalled = make_report(system_cycles=2000)
        assert stalled.throughput_gbps == pytest.approx(4.0)

    def test_power(self):
        assert make_report().power_w == pytest.approx(1.1e-9 / 1e-6)

    def test_compute_density(self):
        assert make_report().compute_density_gbps_mm2 == pytest.approx(4.0)

    def test_edp(self):
        assert make_report().edp == pytest.approx(1.1e-9 * 1e-6)

    def test_fom(self):
        report = make_report()
        assert report.fom == pytest.approx(1.1e-9 * 2.0 / 8.0)

    def test_zero_throughput_fom_infinite(self):
        report = make_report(symbols=0, system_cycles=0)
        assert report.fom == float("inf")


class TestZeroEdgeCases:
    """Degenerate streams and areas must not divide by zero."""

    def test_zero_symbols_energy_per_symbol(self):
        report = make_report(symbols=0)
        assert report.energy_per_symbol_j == 0.0
        assert report.energy_per_symbol_nj == 0.0

    def test_zero_cycles_time_throughput_power(self):
        report = make_report(symbols=0, system_cycles=0)
        assert report.time_s == 0.0
        assert report.throughput_sym_per_s == 0.0
        assert report.throughput_gbps == 0.0
        assert report.power_w == 0.0
        assert report.edp == 0.0

    def test_zero_area_compute_density(self):
        report = make_report(area_mm2=0.0)
        assert report.compute_density_gbps_mm2 == 0.0

    def test_zero_area_fom_is_zero_not_nan(self):
        report = make_report(area_mm2=0.0)
        assert report.fom == 0.0

    def test_normalized_to_zero_base_is_infinite(self):
        mine = make_report()
        base = make_report(symbols=0, system_cycles=0, area_mm2=0.0,
                           dynamic_energy_j=0.0, leakage_energy_j=0.0)
        norm = mine.normalized_to(base)
        assert norm["area"] == float("inf")
        assert norm["throughput"] == float("inf")


class TestMetricsNotes:
    """The telemetry snapshot rides in ``notes`` and must round-trip."""

    def test_metrics_snapshot_absent(self):
        assert make_report().metrics_snapshot is None

    def test_metrics_snapshot_non_dict_ignored(self):
        report = make_report(notes={"metrics": "garbage"})
        assert report.metrics_snapshot is None

    def test_metrics_snapshot_round_trip(self):
        snap = {
            "counters": {"sim.symbols": 1000, "sim.tile.bvm_activations{tile=0}": 4},
            "gauges": {"sim.progress_symbols": {"value": 1000, "max": 1000}},
            "histograms": {
                "sim.active_states": {
                    "bounds": [0, 1, 2], "counts": [1, 2, 3, 4],
                    "count": 10, "sum": 25.0, "mean": 2.5, "min": 0, "max": 9,
                }
            },
            "spans": {"compile.parse": {"count": 1, "total_us": 3.0, "max_us": 3.0}},
        }
        report = make_report(notes={"metrics": snap})
        restored = json.loads(json.dumps(report.notes))["metrics"]
        assert restored == snap
        assert report.metrics_snapshot == snap

    def test_real_simulation_snapshot_round_trips(self):
        from repro import telemetry
        from repro.compiler import compile_ruleset
        from repro.hardware.simulator import BVAPSimulator

        telemetry.reset()
        with telemetry.session():
            report = BVAPSimulator(compile_ruleset(["ab{8}c"])).run(
                b"a" + b"b" * 8 + b"c"
            )
        try:
            restored = json.loads(json.dumps(report.notes))["metrics"]
        finally:
            telemetry.reset()
        assert restored == report.metrics_snapshot
        assert restored["counters"]["sim.matches"] == 1


class TestNormalisation:
    def test_normalized_to(self):
        mine = make_report(dynamic_energy_j=5e-10, leakage_energy_j=0.0)
        base = make_report(dynamic_energy_j=1e-9, leakage_energy_j=0.0)
        norm = mine.normalized_to(base)
        assert norm["energy_per_symbol"] == pytest.approx(0.5)
        assert norm["area"] == pytest.approx(1.0)
        assert norm["throughput"] == pytest.approx(1.0)
        assert set(norm) == {
            "area",
            "energy_per_symbol",
            "power",
            "compute_density",
            "throughput",
            "fom",
        }
