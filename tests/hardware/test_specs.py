"""Architecture tile-spec tests: areas, energies, and the stall model."""

import pytest

from repro.hardware import circuits
from repro.hardware.specs import (
    BVAP_SPEC,
    CA_SPEC,
    CAMA_SPEC,
    EAP_SPEC,
    StallModel,
    wire_energy_pj,
)


class TestAreas:
    def test_ca_largest_tile(self):
        assert CA_SPEC.area_um2 > EAP_SPEC.area_um2 > CAMA_SPEC.area_um2

    def test_bvap_tile_about_1_5x_cama(self):
        """§8: a BVAP tile is ~1.5x a CAMA tile."""
        ratio = BVAP_SPEC.area_um2 / CAMA_SPEC.area_um2
        assert 1.25 <= ratio <= 1.6

    def test_bvm_included_only_in_bvap(self):
        delta = BVAP_SPEC.datapath_area_um2 - CAMA_SPEC.datapath_area_um2
        assert delta == pytest.approx(circuits.BVM_AREA_UM2)


class TestEnergies:
    def test_per_symbol_ordering(self):
        """CAMA's CAM matching is far cheaper than SRAM matching (§2)."""
        activity = 0.05
        ca = CA_SPEC.symbol_energy_pj(activity)
        eap = EAP_SPEC.symbol_energy_pj(activity)
        cama = CAMA_SPEC.symbol_energy_pj(activity)
        assert ca > eap > cama
        assert ca / cama > 4  # the gap behind the ~95% vs ~67% savings

    def test_energy_rises_with_activity(self):
        for spec in (CA_SPEC, EAP_SPEC, CAMA_SPEC, BVAP_SPEC):
            assert spec.symbol_energy_pj(0.5) > spec.symbol_energy_pj(0.0)

    def test_voltage_scaling(self):
        low = BVAP_SPEC.symbol_energy_pj(0.1, vdd=circuits.BVAP_S_VDD)
        high = BVAP_SPEC.symbol_energy_pj(0.1)
        assert low == pytest.approx(high * (0.65 / 0.9) ** 2)

    def test_wire_energy_linear_in_activity(self):
        assert wire_energy_pj(10) == pytest.approx(2 * wire_energy_pj(5))


class TestLeakage:
    def test_bvap_leaks_more_than_cama(self):
        assert BVAP_SPEC.leakage_w() > CAMA_SPEC.leakage_w()

    def test_ca_leaks_most(self):
        assert CA_SPEC.leakage_w() > EAP_SPEC.leakage_w() > CAMA_SPEC.leakage_w()


class TestStallModel:
    def test_no_swap_no_stall(self):
        model = StallModel()
        assert model.stall_cycles(0) == 0

    def test_stall_grows_with_words(self):
        model = StallModel()
        assert model.stall_cycles(8) > model.stall_cycles(2)

    def test_latency_cycles(self):
        model = StallModel()
        # Read(2) + words + pipeline fill(2)
        assert model.bvm_latency_cycles(8) == 12
        assert model.bvm_latency_cycles(1) == 5

    def test_buffering_hides_small_activations(self):
        model = StallModel(hidden_cycles=2)
        # 1-word swap: 5 BV cycles = 2 system cycles, fully hidden
        assert model.stall_cycles(1) == 0

    def test_streaming_clock_is_bvm_latency(self):
        """BVAP-S: bit-vector processing becomes the critical path."""
        model = StallModel()
        clock = model.streaming_clock_hz(8)
        assert clock == pytest.approx(5e9 / 12)
        assert clock < model.system_clock_hz / 2

    def test_clock_values_from_paper(self):
        assert BVAP_SPEC.clock_hz == 2.0e9
        assert CAMA_SPEC.clock_hz > BVAP_SPEC.clock_hz
