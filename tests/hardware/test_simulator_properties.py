"""Property-style invariants of the cycle-level simulators."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compiler import compile_ruleset
from repro.hardware.simulator import (
    BaselineSimulator,
    BVAPSimulator,
    SimOptions,
    compile_baseline,
)
from repro.hardware.specs import CAMA_SPEC

PATTERNS = ["ab{20}c", "x[yz]{8}", "hello"]


@pytest.fixture(scope="module")
def ruleset():
    return compile_ruleset(PATTERNS)


@pytest.fixture(scope="module")
def baseline():
    return compile_baseline(PATTERNS)


class TestMonotonicity:
    def test_energy_monotone_in_length(self, ruleset):
        rng = random.Random(0)
        data = bytes(rng.choice(b"abcxyzhel") for _ in range(1200))
        short = BVAPSimulator(ruleset).run(data[:400])
        full = BVAPSimulator(ruleset).run(data)
        assert full.total_energy_j > short.total_energy_j
        assert full.system_cycles >= short.system_cycles

    def test_cycles_bounded(self, ruleset):
        """Cycles never exceed symbols x (1 + worst stall)."""
        data = b"a" + b"b" * 499
        report = BVAPSimulator(ruleset).run(data)
        worst = max(
            c.lut_entry(t)
            for sim in [BVAPSimulator(ruleset)]
            for c in sim.controllers
            for t in range(len(c.tile_swap_words))
        ) if BVAPSimulator(ruleset).controllers[0].tile_swap_words else 0
        assert report.system_cycles <= len(data) * (1 + max(worst, 0) + 1)

    def test_hotter_input_never_cheaper_sm_st(self, baseline):
        cold = b"q" * 600
        hot = (b"hello" + b"q") * 100
        cold_report = BaselineSimulator(CAMA_SPEC, baseline).run(cold)
        hot_report = BaselineSimulator(CAMA_SPEC, baseline).run(hot)
        assert hot_report.dynamic_energy_j > cold_report.dynamic_energy_j


class TestConservation:
    def test_match_counts_independent_of_costs(self, ruleset):
        """Timing/energy options never change functional results."""
        data = b"zab" + b"b" * 19 + b"c xyyyyyyyyz hello"
        plain = BVAPSimulator(ruleset).run(data)
        prorated = BVAPSimulator(
            ruleset, options=SimOptions(prorate_area=True)
        ).run(data)
        streaming = BVAPSimulator(ruleset, streaming=True).run(data)
        assert plain.matches == prorated.matches == streaming.matches

    def test_prorated_never_exceeds_full(self, ruleset):
        data = b"abchello" * 100
        full = BVAPSimulator(ruleset).run(data)
        prorated = BVAPSimulator(
            ruleset, options=SimOptions(prorate_area=True)
        ).run(data)
        assert prorated.area_mm2 <= full.area_mm2
        assert prorated.total_energy_j <= full.total_energy_j

    def test_run_does_not_mutate_state_across_calls(self, ruleset):
        data = b"a" + b"b" * 20 + b"c"
        first = BVAPSimulator(ruleset).run(data)
        simulator = BVAPSimulator(ruleset)
        simulator.run(b"junk junk junk")
        second = simulator.run(data)
        assert first.matches == second.matches


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    length=st.integers(min_value=1, max_value=300),
)
def test_simulated_matches_equal_functional(seed, length):
    """For random inputs, the simulator's match count equals the sum of
    the functional engines' match streams."""
    ruleset = compile_ruleset(PATTERNS)
    rng = random.Random(seed)
    data = bytes(rng.choice(b"abcxyzhelo ") for _ in range(length))
    report = BVAPSimulator(ruleset).run(data)
    functional = sum(len(r.ah.match_ends(data)) for r in ruleset.regexes)
    assert report.matches == functional
