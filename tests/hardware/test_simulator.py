"""Cycle-level simulator tests for BVAP, BVAP-S, and the baselines."""

import random

import pytest

from repro.compiler import compile_ruleset
from repro.hardware.simulator import (
    BaselineSimulator,
    BVAPSimulator,
    SimOptions,
    compile_baseline,
)
from repro.hardware.specs import BVAP_SPEC, CA_SPEC, CAMA_SPEC, EAP_SPEC

PATTERNS = [
    "ab{60}c",
    "hello",
    "x[0-9]{12}y",
    # Large bounded repetitions: the workload class BVAP is built for —
    # they cost the unfolding baselines whole extra tiles.
    "q.{600}r",
    "w.{900}v",
]


@pytest.fixture(scope="module")
def data():
    rng = random.Random(0)
    return bytes(rng.choice(b"abchelox0123456789 ") for _ in range(1500))


@pytest.fixture(scope="module")
def ruleset():
    return compile_ruleset(PATTERNS)


@pytest.fixture(scope="module")
def baseline():
    return compile_baseline(PATTERNS)


class TestBVAPSimulator:
    def test_match_counts_equal_functional_model(self, ruleset, data):
        report = BVAPSimulator(ruleset).run(data)
        expected = sum(
            len(regex.ah.match_ends(data)) for regex in ruleset.regexes
        )
        assert report.matches == expected

    def test_cycles_at_least_symbols(self, ruleset, data):
        report = BVAPSimulator(ruleset).run(data)
        assert report.system_cycles >= report.symbols == len(data)
        assert report.stall_cycles == report.system_cycles - len(data)

    def test_energy_positive_and_decomposed(self, ruleset, data):
        report = BVAPSimulator(ruleset).run(data)
        assert report.dynamic_energy_j > 0
        assert report.leakage_energy_j > 0
        assert report.total_energy_j == pytest.approx(
            report.dynamic_energy_j + report.leakage_energy_j
        )

    def test_hot_input_stalls_more(self, ruleset):
        cold = b"z" * 800
        hot = b"a" + b"b" * 799  # keeps the b{60} counter running
        cold_report = BVAPSimulator(ruleset).run(cold)
        hot_report = BVAPSimulator(ruleset).run(hot)
        assert hot_report.stall_cycles > cold_report.stall_cycles
        assert hot_report.bvm_activations > cold_report.bvm_activations

    def test_event_driven_bvm(self, ruleset):
        """No BV activity => no stalls, no BVM activations (§6)."""
        report = BVAPSimulator(ruleset).run(b"z" * 500)
        assert report.stall_cycles == 0
        assert report.bvm_activations == 0

    def test_runs_are_reproducible(self, ruleset, data):
        a = BVAPSimulator(ruleset).run(data)
        b = BVAPSimulator(ruleset).run(data)
        assert a.total_energy_j == b.total_energy_j
        assert a.system_cycles == b.system_cycles


class TestBVAPStreaming:
    def test_constant_throughput(self, ruleset, data):
        report = BVAPSimulator(ruleset, streaming=True).run(data)
        assert report.system_cycles == len(data)  # never stalls
        assert report.architecture == "BVAP-S"

    def test_slower_clock_lower_power(self, ruleset, data):
        normal = BVAPSimulator(ruleset).run(data)
        streaming = BVAPSimulator(ruleset, streaming=True).run(data)
        assert streaming.clock_hz < normal.clock_hz
        assert streaming.power_w < normal.power_w
        assert streaming.throughput_gbps < normal.throughput_gbps

    def test_lower_voltage_saves_energy(self, ruleset, data):
        normal = BVAPSimulator(ruleset).run(data)
        streaming = BVAPSimulator(ruleset, streaming=True).run(data)
        assert (
            streaming.dynamic_energy_j < normal.dynamic_energy_j
        )  # 0.65V SM/ST rails


class TestBaselineSimulator:
    def test_match_counts_equal_nfa(self, baseline, data):
        report = BaselineSimulator(CAMA_SPEC, baseline).run(data)
        expected = sum(len(nfa.match_ends(data)) for nfa in baseline.nfas)
        assert report.matches == expected

    def test_one_symbol_per_cycle(self, baseline, data):
        report = BaselineSimulator(CA_SPEC, baseline).run(data)
        assert report.system_cycles == len(data)

    def test_architecture_names(self, baseline, data):
        for spec in (CA_SPEC, EAP_SPEC, CAMA_SPEC):
            assert BaselineSimulator(spec, baseline).run(data).architecture == spec.name

    def test_rejects_unfoldable_regexes(self):
        ruleset = compile_baseline(["a.{8000}b", "ok"])
        assert 0 in ruleset.rejected
        assert len(ruleset.nfas) == 1


class TestComparative:
    """The headline orderings the paper's Fig. 14 relies on."""

    def test_bvap_needs_fewer_tiles(self, ruleset, baseline):
        assert ruleset.mapping.num_tiles <= baseline.mapping.num_tiles

    def test_bvap_beats_cama_energy(self, ruleset, baseline, data):
        bvap = BVAPSimulator(ruleset).run(data)
        cama = BaselineSimulator(CAMA_SPEC, baseline).run(data)
        assert bvap.energy_per_symbol_j < cama.energy_per_symbol_j

    def test_cama_beats_sram_designs(self, baseline, data):
        cama = BaselineSimulator(CAMA_SPEC, baseline).run(data)
        ca = BaselineSimulator(CA_SPEC, baseline).run(data)
        eap = BaselineSimulator(EAP_SPEC, baseline).run(data)
        assert cama.energy_per_symbol_j < eap.energy_per_symbol_j
        assert eap.energy_per_symbol_j <= ca.energy_per_symbol_j

    def test_prorated_area_smaller(self, ruleset, data):
        full = BVAPSimulator(ruleset).run(data)
        prorated = BVAPSimulator(
            ruleset, options=SimOptions(prorate_area=True)
        ).run(data)
        assert prorated.area_mm2 < full.area_mm2
