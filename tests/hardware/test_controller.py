"""Global Controller / latency LUT tests (§6)."""

import pytest

from repro.hardware.controller import LUT_ENTRIES, ArrayController, build_controllers
from repro.hardware.specs import StallModel

MODEL = StallModel()


class TestLUT:
    def test_one_entry_per_tile_pair(self):
        controller = ArrayController([8, 2, 0, 0, 4, 4], MODEL)
        assert len(controller.lut) == 3

    def test_pair_takes_worst_latency(self):
        controller = ArrayController([8, 2], MODEL)
        assert controller.lut[0] == MODEL.stall_cycles(8)
        assert controller.lut_entry(0) == controller.lut_entry(1)

    def test_at_most_eight_entries(self):
        controller = ArrayController([1] * 16, MODEL)
        assert len(controller.lut) == LUT_ENTRIES
        with pytest.raises(ValueError):
            ArrayController([1] * 17, MODEL)


class TestStallDecision:
    def test_no_activation_no_stall(self):
        controller = ArrayController([8, 8], MODEL)
        assert controller.stall_for([]) == 0
        assert controller.stall_events == 0

    def test_stall_uses_activated_tiles_only(self):
        controller = ArrayController([8, 8, 0, 0], MODEL)
        # only the zero-latency pair activated
        assert controller.stall_for([2]) == 0
        # the slow pair activated
        assert controller.stall_for([0]) == MODEL.stall_cycles(8)

    def test_worst_activated_wins(self):
        controller = ArrayController([2, 2, 8, 8], MODEL)
        both = controller.stall_for([0, 2])
        assert both == MODEL.stall_cycles(8)

    def test_statistics_accumulate(self):
        controller = ArrayController([8, 8], MODEL)
        controller.stall_for([0])
        controller.stall_for([1])
        assert controller.stall_events == 2
        assert controller.stall_cycles_total == 2 * MODEL.stall_cycles(8)


class TestBuilder:
    def test_splits_by_array(self):
        controllers = build_controllers([8] * 20, tiles_per_array=16, stall_model=MODEL)
        assert len(controllers) == 2
        assert len(controllers[0].tile_swap_words) == 16
        assert len(controllers[1].tile_swap_words) == 4

    def test_empty_mapping_gets_inert_controller(self):
        controllers = build_controllers([], tiles_per_array=16, stall_model=MODEL)
        assert len(controllers) == 1
        assert controllers[0].stall_for([]) == 0
