"""Instrumented stepper tests: activity stats drive timing and energy."""

import pytest

from repro.compiler import CompilerOptions, compile_pattern
from repro.compiler.pipeline import build_unfolded_nfa
from repro.hardware.activity import AHStepper, NFAStepper, StepStats
from repro.regex.parser import parse

OPTIONS = CompilerOptions(bv_size=8, unfold_threshold=2)


def run_with_stats(stepper, data):
    stepper.reset()
    per_symbol = []
    for symbol in data:
        stats = StepStats()
        matched = stepper.step(symbol, stats)
        per_symbol.append((stats, matched))
    return per_symbol


class TestAHStepper:
    def test_matches_equal_ah_matcher(self):
        compiled = compile_pattern("a(.a){3}b", options=OPTIONS)
        data = b"abaaabab" * 3
        assert AHStepper(compiled.ah).match_ends(data) == compiled.ah.match_ends(
            data
        )

    def test_active_state_counts(self):
        compiled = compile_pattern("ab", options=OPTIONS)
        trace = run_with_stats(AHStepper(compiled.ah), b"ab")
        assert trace[0][0].active_states == 1  # a
        assert trace[1][0].active_states == 1  # b

    def test_bv_activity_tracked(self):
        compiled = compile_pattern("ab{8}c", options=OPTIONS)
        trace = run_with_stats(AHStepper(compiled.ah), b"abbb")
        assert trace[0][0].active_bv_states == 0
        assert trace[1][0].bvm_activated  # counting started

    def test_moving_words_and_max(self):
        compiled = compile_pattern("ab{8}c", options=OPTIONS)
        stepper = AHStepper(compiled.ah)
        trace = run_with_stats(stepper, b"abb")
        stats = trace[2][0]
        assert stats.moving_words >= 1
        assert stats.max_words >= 1

    def test_reads_counted_for_read_states(self):
        compiled = compile_pattern("ab{8}c", options=OPTIONS)
        data = b"a" + b"b" * 8 + b"c"
        trace = run_with_stats(AHStepper(compiled.ah), data)
        final_stats, matched = trace[-1]
        assert matched
        assert final_stats.reads >= 1

    def test_set1_counted(self):
        compiled = compile_pattern("ab{8}c", options=OPTIONS)
        trace = run_with_stats(AHStepper(compiled.ah), b"ab")
        assert trace[1][0].set1s >= 1

    def test_shared_stats_accumulate(self):
        one = compile_pattern("ab", options=OPTIONS)
        two = compile_pattern("a", options=OPTIONS)
        s1, s2 = AHStepper(one.ah), AHStepper(two.ah)
        stats = StepStats()
        s1.step(ord("a"), stats)
        s2.step(ord("a"), stats)
        assert stats.active_states == 2


class TestNFAStepper:
    def test_matches_equal_nfa(self):
        nfa = build_unfolded_nfa(parse("ab{2,4}c"))
        data = b"abbc abbbbbc abbbc"
        assert NFAStepper(nfa).match_ends(data) == nfa.match_ends(data)

    def test_active_count(self):
        nfa = build_unfolded_nfa(parse("a{4}"))
        stepper = NFAStepper(nfa)
        stats = StepStats()
        stepper.step(ord("a"), stats)
        assert stats.active_states == 1
        stats2 = StepStats()
        stepper.step(ord("a"), stats2)
        assert stats2.active_states == 2  # two overlapping runs
