"""Baseline simulator wrappers (CA, eAP, CAMA) tests."""

import random

import pytest

from repro.hardware.baselines import simulate_ca, simulate_cama, simulate_eap
from repro.hardware.simulator import compile_baseline

PATTERNS = ["ab{40}c", "needle", "x.{200}y"]


@pytest.fixture(scope="module")
def data():
    rng = random.Random(9)
    return bytes(rng.choice(b"abcneedlxy ") for _ in range(1200))


class TestWrappers:
    def test_names(self, data):
        assert simulate_ca(PATTERNS, data).architecture == "CA"
        assert simulate_eap(PATTERNS, data).architecture == "eAP"
        assert simulate_cama(PATTERNS, data).architecture == "CAMA"

    def test_same_matches_across_architectures(self, data):
        reports = [
            simulate_ca(PATTERNS, data),
            simulate_eap(PATTERNS, data),
            simulate_cama(PATTERNS, data),
        ]
        assert len({r.matches for r in reports}) == 1

    def test_precompiled_ruleset_reused(self, data):
        ruleset = compile_baseline(PATTERNS)
        one = simulate_cama(PATTERNS, data, ruleset=ruleset)
        two = simulate_cama(PATTERNS, data)
        assert one.total_energy_j == pytest.approx(two.total_energy_j)

    def test_paper_ordering(self, data):
        """Energy: CA >= eAP >> CAMA; area: CA > eAP > CAMA (Fig. 14)."""
        ca = simulate_ca(PATTERNS, data)
        eap = simulate_eap(PATTERNS, data)
        cama = simulate_cama(PATTERNS, data)
        assert ca.energy_per_symbol_j >= eap.energy_per_symbol_j
        assert eap.energy_per_symbol_j > 2 * cama.energy_per_symbol_j
        assert ca.area_mm2 > eap.area_mm2 > cama.area_mm2

    def test_throughput_cama_highest(self, data):
        ca = simulate_ca(PATTERNS, data)
        cama = simulate_cama(PATTERNS, data)
        assert cama.throughput_gbps > ca.throughput_gbps
