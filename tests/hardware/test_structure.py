"""Structural hierarchy tests (§6, Fig. 8)."""

import pytest

from repro.hardware import circuits
from repro.hardware.structure import (
    ArrayStructure,
    BankStructure,
    TileStructure,
    bank_for_mapping,
)


class TestTile:
    def test_breakdown_components(self):
        breakdown = TileStructure().area_breakdown_um2()
        assert set(breakdown) == {"cam", "rcb", "bvm", "periphery"}
        assert breakdown["bvm"] == circuits.BVM_AREA_UM2

    def test_fcb_mode_gates_leakage_not_area(self):
        normal = TileStructure()
        gated = TileStructure(fcb_mode=True)
        assert gated.area_um2() == normal.area_um2()
        assert gated.leakage_w() < normal.leakage_w()


class TestArray:
    def test_sixteen_tiles_default(self):
        assert len(ArrayStructure().tiles) == 16

    def test_rejects_too_many_tiles(self):
        with pytest.raises(ValueError):
            ArrayStructure(tiles=[TileStructure() for _ in range(17)])

    def test_control_overhead_below_one_percent(self):
        """§6: the stall control logic costs <1% of the array."""
        assert ArrayStructure().control_overhead_fraction() < 0.01

    def test_area_dominated_by_tiles(self):
        breakdown = ArrayStructure().area_breakdown_um2()
        assert breakdown["tiles"] > 0.8 * sum(breakdown.values())


class TestBank:
    def test_paper_capacities(self):
        capacity = BankStructure().capacity()
        assert capacity["stes"] == 16384
        assert capacity["bvs"] == 3072
        assert capacity["max_repetition_bound_per_tile"] == 3072

    def test_rejects_too_many_arrays(self):
        with pytest.raises(ValueError):
            BankStructure(arrays=[ArrayStructure() for _ in range(5)])

    def test_area_positive(self):
        assert BankStructure().area_mm2() > 1.0


class TestBuilder:
    def test_partial_bank(self):
        bank = bank_for_mapping(20)
        assert len(bank.arrays) == 2
        assert bank.capacity()["tiles"] == 20

    def test_fcb_pairs_marked(self):
        bank = bank_for_mapping(4, fcb_pairs=1)
        modes = [t.fcb_mode for a in bank.arrays for t in a.tiles]
        assert modes == [True, True, False, False]

    def test_rejects_over_capacity(self):
        with pytest.raises(ValueError):
            bank_for_mapping(65)

    def test_fcb_mode_lowers_bank_leakage(self):
        normal = bank_for_mapping(8)
        gated = bank_for_mapping(8, fcb_pairs=4)
        normal_leak = sum(a.leakage_w() for a in normal.arrays)
        gated_leak = sum(a.leakage_w() for a in gated.arrays)
        assert gated_leak < normal_leak
