"""End-to-end integration tests across the whole stack."""

import random

import pytest

from repro.compiler import (
    CompilerOptions,
    compile_ruleset,
    dump_config,
    load_config,
)
from repro.hardware.simulator import (
    BaselineSimulator,
    BVAPSimulator,
    compile_baseline,
)
from repro.hardware.specs import CAMA_SPEC
from repro.matching import PatternSet, oracle_match_ends
from repro.regex.parser import parse
from repro.workloads import PROFILES, dataset_stream, load_dataset


class TestDatasetRoundTrip:
    """Generate → compile → serialise → reload → simulate, per dataset."""

    @pytest.mark.parametrize("name", ["Prosite", "RegexLib"])
    def test_full_flow(self, name, tmp_path):
        patterns = load_dataset(name, 10, seed=9)
        ruleset = compile_ruleset(patterns)
        path = tmp_path / "config.json"
        dump_config(ruleset, str(path))
        loaded = load_config(str(path))

        data = dataset_stream(
            patterns, random.Random(1), 600, PROFILES[name].literal_pool,
            plant_rate=0.01,
        )
        for original, reloaded in zip(ruleset.regexes, loaded.automata):
            assert reloaded.match_ends(data) == original.ah.match_ends(data)

        report = BVAPSimulator(ruleset).run(data)
        functional = sum(
            len(regex.ah.match_ends(data)) for regex in ruleset.regexes
        )
        assert report.matches == functional


class TestEngineOracleOnDatasets:
    """The compiled engines agree with the brute-force oracle on real
    dataset patterns over short planted inputs."""

    @pytest.mark.parametrize("name", ["Prosite", "SpamAssassin"])
    def test_against_oracle(self, name):
        rng = random.Random(3)
        patterns = load_dataset(name, 6, seed=12)
        # keep inputs small: the oracle is O(n^3)
        for pattern in patterns:
            node = parse(pattern)
            from repro.regex import max_repeat_bound

            if max_repeat_bound(node) > 40:
                continue
            data = dataset_stream(
                [pattern], rng, 60, PROFILES[name].literal_pool,
                plant_rate=0.05, truncate_prob=0.3,
            )
            expected = oracle_match_ends(node, data)
            got = PatternSet([pattern]).match_ends(data)
            assert got == expected, pattern


class TestHardwareFunctionalEquivalence:
    """BVAP and the baselines agree on match counts for shared rules."""

    def test_cross_architecture_matches(self):
        patterns = ["ab{30}c", "hello[0-9]{4}", "x.{100}y"]
        rng = random.Random(4)
        data = dataset_stream(patterns, rng, 1500, "abchelxy0123456789",
                              plant_rate=0.01)
        bvap = BVAPSimulator(compile_ruleset(patterns)).run(data)
        cama = BaselineSimulator(CAMA_SPEC, compile_baseline(patterns)).run(data)
        assert bvap.matches == cama.matches


class TestFailureInjection:
    def test_empty_input(self):
        report = BVAPSimulator(compile_ruleset(["ab"])).run(b"")
        assert report.symbols == 0
        assert report.total_energy_j == 0.0

    def test_empty_ruleset_simulates(self):
        report = BVAPSimulator(compile_ruleset([])).run(b"abc")
        assert report.matches == 0
        assert report.num_tiles == 1  # floor for a provisioned device

    def test_all_rejected_ruleset(self):
        ruleset = compile_ruleset(["((("])
        assert not ruleset.regexes and ruleset.rejected

    def test_mixed_rejection_does_not_shift_ids(self):
        ruleset = compile_ruleset(["a", "(((", "b"])
        kept_ids = [regex.regex_id for regex in ruleset.regexes]
        assert kept_ids == [0, 2]
        assert ruleset.mapping.placements.keys() == {0, 2}

    def test_binary_input_bytes(self):
        """Full 0-255 byte range flows through every layer."""
        patterns = ["\\x00{8}\\xff", "[\\x80-\\x8f]{4}"]
        data = bytes([0] * 8 + [255] + list(range(0x80, 0x90)) * 2)
        matches = PatternSet(patterns).scan(data)
        assert any(m.pattern_id == 0 for m in matches)
        assert any(m.pattern_id == 1 for m in matches)

    def test_unfold_threshold_bounds_respected(self):
        with pytest.raises(ValueError):
            compile_ruleset(["a"], CompilerOptions(unfold_threshold=0))


class TestConfigProgrammedSimulator:
    """§8: the simulator is programmed from the compiler's JSON file."""

    def test_identical_to_direct_simulation(self, tmp_path):
        from repro.hardware import BVAPSimulator, simulator_from_config

        patterns = ["ab{60}c", "hello", "x.{200}y"]
        ruleset = compile_ruleset(patterns)
        path = tmp_path / "config.json"
        dump_config(ruleset, str(path))
        data = b"zz a" + b"b" * 60 + b"c hello x" + b"q" * 200 + b"y"
        direct = BVAPSimulator(ruleset).run(data)
        from_config = simulator_from_config(str(path)).run(data)
        assert from_config.matches == direct.matches
        assert from_config.system_cycles == direct.system_cycles
        assert from_config.total_energy_j == pytest.approx(
            direct.total_energy_j
        )

    def test_streaming_mode_from_config(self, tmp_path):
        from repro.hardware import simulator_from_config

        ruleset = compile_ruleset(["ab{40}c"])
        path = tmp_path / "config.json"
        dump_config(ruleset, str(path))
        report = simulator_from_config(str(path), streaming=True).run(
            b"a" + b"b" * 40 + b"c"
        )
        assert report.architecture == "BVAP-S"
        assert report.matches == 1
