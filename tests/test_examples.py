"""Smoke tests: every example script runs end to end."""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys, monkeypatch):
    path = os.path.join(EXAMPLES_DIR, name)
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_examples_present():
    """The deliverable requires a quickstart plus domain scenarios."""
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3
