"""Budget tests: validation, compile-time limits, unfold bounding, and
the cooperative scan deadline on every engine."""

import pytest

from repro.compiler.pipeline import CompilerOptions, compile_pattern
from repro.matching import ENGINES, PatternSet
from repro.regex.parser import parse
from repro.regex.rewrite import DEFAULT_MAX_UNFOLD, unfold_all, unfold_repeat
from repro.resilience import Budget, BudgetExceededError


class TestBudgetObject:
    def test_default_is_unlimited(self):
        assert Budget().unlimited()

    def test_any_limit_disables_unlimited(self):
        assert not Budget(max_states=10).unlimited()
        assert not Budget(deadline_s=1.0).unlimited()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_states": 0},
            {"max_unfold": -1},
            {"max_bv_width": 0},
            {"max_cache_bytes": 0},
            {"deadline_s": -0.5},
            {"check_bytes": 0},
        ],
    )
    def test_invalid_limits_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Budget(**kwargs)

    def test_charge_states(self):
        Budget(max_states=10).charge_states(10)  # at the limit: fine
        with pytest.raises(BudgetExceededError) as exc:
            Budget(max_states=10).charge_states(11, "a{9}")
        assert exc.value.kind == "states"
        assert exc.value.limit == 10
        assert exc.value.actual == 11

    def test_charge_bv_width(self):
        with pytest.raises(BudgetExceededError) as exc:
            Budget(max_bv_width=64).charge_bv_width(100)
        assert exc.value.kind == "bv_width"

    def test_clock_without_deadline_never_expires(self):
        clock = Budget().start()
        assert not clock.expired()
        clock.check("anything")  # no-op

    def test_zero_deadline_expires_immediately(self):
        clock = Budget(deadline_s=0.0).start()
        assert clock.expired()
        with pytest.raises(BudgetExceededError) as exc:
            clock.check("parse")
        assert exc.value.kind == "deadline"
        assert exc.value.phase == "parse"


class TestCompileBudgets:
    def test_max_states_quarantinable(self):
        # States are charged after the quotient pass, so the budget
        # judges the machine that would actually be deployed.
        options = CompilerOptions(budget=Budget(max_states=5))
        with pytest.raises(BudgetExceededError) as exc:
            compile_pattern("abcdefghij", options=options)
        assert exc.value.kind == "states"
        assert exc.value.phase == "reduce"

    def test_max_bv_width_enforced(self):
        options = CompilerOptions(budget=Budget(max_bv_width=32))
        with pytest.raises(BudgetExceededError) as exc:
            compile_pattern("ab{60}c", options=options)
        assert exc.value.kind == "bv_width"

    def test_deadline_aborts_compile(self):
        options = CompilerOptions(budget=Budget(deadline_s=0.0))
        with pytest.raises(BudgetExceededError) as exc:
            compile_pattern("ab", options=options)
        assert exc.value.kind == "deadline"

    def test_unaffected_patterns_compile_normally(self):
        options = CompilerOptions(budget=Budget(max_states=100))
        compiled = compile_pattern("ab{3}c", options=options)
        assert compiled.ah.num_states <= 100


class TestUnfoldBudget:
    """Satellite: ``{m,n}`` unfolding is bounded by ``max_unfold``."""

    def test_unfold_repeat_respects_limit(self):
        with pytest.raises(BudgetExceededError) as exc:
            unfold_repeat(parse("a"), 1, 100, limit=50)
        assert exc.value.kind == "unfold"
        assert exc.value.limit == 50

    def test_unfold_all_respects_limit(self):
        with pytest.raises(BudgetExceededError):
            unfold_all(parse("a{1000}"), 100)

    def test_default_limit_blocks_pathological_bounds(self):
        # At the default limit a hundred-million-wide bound errors
        # instead of exhausting memory.
        with pytest.raises(BudgetExceededError):
            unfold_all(parse("x{1,100000000}y"), DEFAULT_MAX_UNFOLD)

    def test_split_path_is_bounded_too(self):
        # Bound *splitting* (Example 7.2) creates ~n/64 pieces; it must
        # respect the same budget instead of recursing to death.
        options = CompilerOptions(budget=Budget(max_unfold=10_000))
        with pytest.raises(BudgetExceededError) as exc:
            compile_pattern("x{1,100000000}y", options=options)
        assert exc.value.phase == "rewrite"

    def test_small_unfolds_unchanged(self):
        assert unfold_all(parse("a{3}"), DEFAULT_MAX_UNFOLD) is not None


class TestScanDeadline:
    """Every engine checks the budget clock every ``check_bytes``."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_deadline_raises_mid_scan(self, engine):
        ps = PatternSet(["ab{2,4}c"], engine=engine)
        ps.budget = Budget(deadline_s=0.0, check_bytes=16)
        with pytest.raises(BudgetExceededError) as exc:
            ps.scan(b"abbc" * 64)
        assert exc.value.kind == "deadline"
        assert exc.value.phase == "scan"

    @pytest.mark.parametrize("engine", ENGINES)
    def test_generous_deadline_passes(self, engine):
        ps = PatternSet(["ab{2,4}c"], engine=engine)
        ps.budget = Budget(deadline_s=300.0, check_bytes=16)
        matches = ps.scan(b"zabbc")
        assert [(m.pattern_id, m.end) for m in matches] == [(0, 4)]

    def test_chunked_feed_matches_unchunked(self):
        data = b"abbc xabbbcx abbbbc" * 9
        plain = PatternSet(["ab{2,4}c"], engine="fused").scan(data)
        chunked_ps = PatternSet(["ab{2,4}c"], engine="fused")
        chunked_ps.budget = Budget(deadline_s=300.0, check_bytes=7)
        assert chunked_ps.scan(data) == plain


class TestRestartPolicy:
    """Supervised-restart parameters: validation and backoff shape."""

    def test_defaults_are_valid(self):
        from repro.resilience import RestartPolicy

        policy = RestartPolicy()
        assert policy.max_restarts >= 0
        assert policy.checkpoint_chunks >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_restarts": -1},
            {"backoff_base_s": -0.1},
            {"backoff_base_s": 1.0, "backoff_cap_s": 0.5},
            {"jitter": -0.1},
            {"jitter": 1.5},
            {"checkpoint_chunks": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        from repro.resilience import RestartPolicy

        with pytest.raises(ValueError):
            RestartPolicy(**kwargs)

    def test_backoff_doubles_then_caps(self):
        from repro.resilience import RestartPolicy

        policy = RestartPolicy(
            backoff_base_s=0.1, backoff_cap_s=0.5, jitter=0.0
        )
        delays = [policy.backoff_s(attempt) for attempt in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.4, 0.5]

    def test_jitter_is_bounded_and_seeded(self):
        import random

        from repro.resilience import RestartPolicy

        policy = RestartPolicy(
            backoff_base_s=0.1, backoff_cap_s=1.0, jitter=0.5
        )
        delays = [
            policy.backoff_s(1, random.Random(seed)) for seed in range(50)
        ]
        assert all(0.05 <= d <= 0.15 for d in delays)
        assert policy.backoff_s(1, random.Random(7)) == policy.backoff_s(
            1, random.Random(7)
        )

    def test_attempt_must_be_positive(self):
        from repro.resilience import RestartPolicy

        with pytest.raises(ValueError):
            RestartPolicy().backoff_s(0)

    def test_budget_carries_policy(self):
        from repro.resilience import RestartPolicy

        policy = RestartPolicy(max_restarts=1)
        assert Budget(restart=policy).restart is policy
        assert Budget().restart is None
