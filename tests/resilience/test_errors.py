"""Error-taxonomy tests: codes, caret diagnostics, JSON shape, and
backward compatibility with plain ``ValueError`` handling."""

import pytest

from repro.compiler.mapping import MappingError
from repro.compiler.translate import TranslationError
from repro.regex.parser import parse
from repro.resilience import (
    ERROR_CODES,
    BudgetExceededError,
    CapacityError,
    ReproError,
    RegexSyntaxError,
    SimulationFaultError,
    UnsupportedFeatureError,
)


class TestTaxonomy:
    def test_every_error_is_a_value_error(self):
        for cls in ERROR_CODES.values():
            assert issubclass(cls, ValueError)
            assert issubclass(cls, ReproError)

    def test_codes_are_stable_and_unique(self):
        assert ERROR_CODES["E_SYNTAX"] is RegexSyntaxError
        assert ERROR_CODES["E_UNSUPPORTED"] is UnsupportedFeatureError
        assert ERROR_CODES["E_BUDGET"] is BudgetExceededError
        assert ERROR_CODES["E_CAPACITY"] is CapacityError
        assert ERROR_CODES["E_FAULT"] is SimulationFaultError

    def test_compiler_errors_join_the_taxonomy(self):
        assert issubclass(MappingError, CapacityError)
        assert MappingError("x").code == "E_CAPACITY"
        assert issubclass(TranslationError, ReproError)
        assert TranslationError("x").code == "E_UNSUPPORTED"

    def test_unsupported_is_a_syntax_error(self):
        # Lookaround etc. are *positioned* rejections: same caret machinery.
        assert issubclass(UnsupportedFeatureError, RegexSyntaxError)


class TestCaretDiagnostic:
    def test_str_includes_caret_under_position(self):
        error = RegexSyntaxError("unbalanced ')'", "ab)c", 2)
        text = str(error)
        lines = text.splitlines()
        assert lines[0] == "unbalanced ')' at position 2 in 'ab)c'"
        assert lines[1].endswith("ab)c")
        assert lines[2].endswith("  ^")
        indent = len(lines[1]) - len("ab)c")
        assert lines[2].index("^") == indent + 2

    def test_caret_clamped_at_end_of_pattern(self):
        error = RegexSyntaxError("unexpected end", "ab(", 99)
        caret_line = str(error).splitlines()[-1]
        assert caret_line.index("^") == 4 + 3  # indent + len(pattern)

    def test_parser_raises_with_position(self):
        with pytest.raises(RegexSyntaxError) as exc:
            parse("ab(cd")
        assert exc.value.pattern == "ab(cd"
        assert "^" in str(exc.value)

    def test_parser_unsupported_features(self):
        for pattern in (r"a(?=b)", r"(a)\1"):
            with pytest.raises(UnsupportedFeatureError) as exc:
                parse(pattern)
            assert exc.value.code == "E_UNSUPPORTED"

    def test_legacy_value_error_handlers_still_work(self):
        with pytest.raises(ValueError):
            parse("ab(")


class TestJsonShape:
    def test_plain_error(self):
        error = ReproError("boom")
        assert error.to_json() == {"code": "E_REPRO", "message": "boom"}

    def test_phase_included_when_tagged(self):
        error = ReproError("boom")
        error.phase = "rewrite"
        assert error.to_json()["phase"] == "rewrite"

    def test_syntax_error_carries_pattern_and_pos(self):
        doc = RegexSyntaxError("bad", "xy", 1).to_json()
        assert doc["pattern"] == "xy"
        assert doc["pos"] == 1
        assert doc["code"] == "E_SYNTAX"

    def test_budget_error_carries_kind_and_limits(self):
        doc = BudgetExceededError(
            "too big", kind="states", limit=10, actual=42
        ).to_json()
        assert doc["kind"] == "states"
        assert doc["limit"] == 10
        assert doc["actual"] == 42
