"""Fault-injection harness tests: determinism, divergence detection,
masking, and spec validation."""

import pytest

from repro.compiler.pipeline import compile_ruleset
from repro.resilience import (
    FAULT_KINDS,
    FaultSpec,
    SimulationFaultError,
    format_report,
    run_campaign,
)

PATTERNS = ["ab{3}c", "x[0-9]{2}y", "a{2,9}b"]
DATA = b"zabbbc x42y aab aaaaaab abbbc x9y " * 8


@pytest.fixture(scope="module")
def ruleset():
    return compile_ruleset(PATTERNS)


class TestSpecValidation:
    @pytest.mark.parametrize("field", ["cam_rate", "bv_rate", "counter_rate"])
    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, field, rate):
        with pytest.raises(SimulationFaultError):
            FaultSpec(**{field: rate})

    def test_any_faults(self):
        assert not FaultSpec().any_faults()
        assert FaultSpec(cam_rate=0.1).any_faults()


class TestDeterminism:
    def test_same_seed_is_bit_identical(self, ruleset):
        """Acceptance: two runs with the same seed produce identical
        injected-fault lists, divergence cycles, and match deltas."""
        spec = FaultSpec(seed=42, cam_rate=0.05, bv_rate=0.05,
                         counter_rate=0.05)
        first = run_campaign(ruleset, DATA, spec)
        second = run_campaign(ruleset, DATA, spec)
        assert first.injected == second.injected
        assert first.first_divergence_cycle == second.first_divergence_cycle
        assert first.missed == second.missed
        assert first.spurious == second.spurious
        assert first.to_json() == second.to_json()

    def test_different_seeds_differ(self, ruleset):
        spec_a = FaultSpec(seed=1, cam_rate=0.2)
        spec_b = FaultSpec(seed=2, cam_rate=0.2)
        a = run_campaign(ruleset, DATA, spec_a)
        b = run_campaign(ruleset, DATA, spec_b)
        assert a.injected != b.injected

    def test_golden_verification_passes(self, ruleset):
        run_campaign(ruleset, DATA, FaultSpec(seed=0), verify_golden=True)


class TestDivergence:
    def test_zero_rates_never_diverge(self, ruleset):
        report = run_campaign(ruleset, DATA, FaultSpec(seed=7))
        assert report.injected == []
        assert not report.diverged
        assert report.missed == [] and report.spurious == []

    def test_cam_flips_cause_divergence(self, ruleset):
        """Acceptance: an injected CAM flip produces a non-empty
        divergence report."""
        report = run_campaign(
            ruleset, DATA, FaultSpec(seed=3, cam_rate=0.5)
        )
        assert report.injected
        assert all(f.kind == "cam" for f in report.injected)
        assert report.diverged
        assert report.first_divergence_cycle is not None
        # The first divergence cannot precede the first injection.
        assert report.first_divergence_cycle >= report.injected[0].cycle

    def test_bv_flips_touch_only_wide_states(self, ruleset):
        report = run_campaign(ruleset, DATA, FaultSpec(seed=5, bv_rate=0.5))
        widths = {
            regex.regex_id: [s.width for s in regex.ah.states]
            for regex in ruleset.regexes
        }
        for fault in report.injected:
            assert fault.kind == "bv"
            regex = ruleset.regexes[fault.regex_index]
            assert regex.ah.states[fault.state].width > 1
            assert 0 <= fault.bit < regex.ah.states[fault.state].width
        assert widths  # sanity: fixture compiled something

    def test_counter_flips_diverge(self, ruleset):
        report = run_campaign(
            ruleset, DATA, FaultSpec(seed=11, counter_rate=0.5)
        )
        assert report.injected
        assert report.diverged

    def test_match_delta_classified(self, ruleset):
        report = run_campaign(
            ruleset, DATA, FaultSpec(seed=9, cam_rate=0.3, counter_rate=0.3)
        )
        golden = set(report.golden_matches)
        faulty = set(report.faulty_matches)
        assert set(report.missed) == golden - faulty
        assert set(report.spurious) == faulty - golden


class TestReporting:
    def test_format_report_lines(self, ruleset):
        report = run_campaign(ruleset, DATA, FaultSpec(seed=3, cam_rate=0.2))
        text = format_report(report)
        assert "first divergence" in text
        assert "injected faults" in text
        for kind in FAULT_KINDS:
            assert f"{kind}=" in text

    def test_json_round_trip(self, ruleset):
        import json

        report = run_campaign(ruleset, DATA, FaultSpec(seed=3, cam_rate=0.2))
        doc = json.loads(json.dumps(report.to_json()))
        assert doc["seed"] == 3
        assert doc["symbols"] == len(DATA)
        assert doc["diverged"] == report.diverged

    def test_empty_ruleset_rejected(self):
        empty = compile_ruleset(["((("])  # everything quarantined
        with pytest.raises(SimulationFaultError):
            run_campaign(empty, DATA, FaultSpec(seed=0, cam_rate=0.1))


class TestChaosSpec:
    """Process-level chaos campaign configuration and scheduling."""

    def test_unknown_kind_rejected(self):
        from repro.resilience import ChaosSpec

        with pytest.raises(SimulationFaultError):
            ChaosSpec(kinds=("kill", "meteor"))

    def test_empty_kinds_rejected(self):
        from repro.resilience import ChaosSpec

        with pytest.raises(SimulationFaultError):
            ChaosSpec(kinds=())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_faults": -1},
            {"shards": 0},
            {"chunk_bytes": 0},
            {"max_restarts": -1},
            {"checkpoint_chunks": 0},
            {"recv_timeout_s": 0.0},
        ],
    )
    def test_bad_numbers_rejected(self, kwargs):
        from repro.resilience import ChaosSpec

        with pytest.raises(SimulationFaultError):
            ChaosSpec(**kwargs)

    def test_schedule_is_seeded_and_in_range(self):
        from repro.resilience import ChaosSpec, chaos_schedule

        spec = ChaosSpec(seed=42, kinds=("kill", "stop"), num_faults=8)
        first = chaos_schedule(spec, num_chunks=16, num_shards=3)
        second = chaos_schedule(spec, num_chunks=16, num_shards=3)
        assert first == second
        assert len(first) == 8
        for fault in first:
            assert 0 <= fault.chunk < 16
            assert 0 <= fault.shard < 3
            assert fault.kind in ("kill", "stop")
        different = chaos_schedule(
            ChaosSpec(seed=43, kinds=("kill", "stop"), num_faults=8),
            num_chunks=16,
            num_shards=3,
        )
        assert first != different

    def test_empty_inputs_rejected(self):
        from repro.resilience import ChaosSpec, run_chaos

        with pytest.raises(SimulationFaultError):
            run_chaos([], b"data", ChaosSpec())

    def test_chaos_needs_data(self, ruleset):
        from repro.resilience import ChaosSpec, run_chaos

        with pytest.raises(SimulationFaultError):
            run_chaos(ruleset.regexes, b"", ChaosSpec())


class TestChaosReport:
    def test_report_round_trips_and_formats(self, ruleset):
        from repro.resilience import ChaosSpec, format_chaos_report, run_chaos

        spec = ChaosSpec(
            seed=1, kinds=("die",), num_faults=1, chunk_bytes=64,
            max_restarts=1, checkpoint_chunks=2,
        )
        report = run_chaos(ruleset.regexes, DATA, spec)
        assert not report.diverged
        doc = report.to_json()
        assert doc["diverged"] is False
        assert doc["first_divergence"] is None
        assert doc["golden_matches"] == doc["chaos_matches"]
        assert len(doc["faults"]) == 1
        text = format_chaos_report(report)
        assert "byte-identical" in text
        assert "kill" not in text or "die" in text
