"""Graceful-degradation tests: the fused engine sheds patterns onto
per-pattern fallbacks without changing the match stream."""

import random

import pytest

from repro import telemetry
from repro.matching import DegradationPolicy, PatternSet

PATTERNS = ["ab{3}c", "x[0-9]{2}y", "q+r", "m{2,5}n"]


def _stream(size=8192, seed=1):
    rng = random.Random(seed)
    noise = bytes(rng.randrange(97, 123) for _ in range(size))
    return noise + b" abbbc x42y qqr mmn abbbc"


#: Triggers on the first checkpoint: every hit rate is "too low" and any
#: non-empty activation counts as "too wide".
AGGRESSIVE = DegradationPolicy(
    check_bytes=256,
    min_window=64,
    min_hit_rate=1.0,
    min_states_for_width=1,
    max_active_fraction=0.01,
)


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"check_bytes": 0},
            {"min_window": 0},
            {"min_hit_rate": 1.5},
            {"max_active_fraction": 0.0},
            {"fallback_chain": ()},
            {"fallback_chain": ("fused",)},
            {"fallback_chain": ("quantum",)},
            {"max_demotions": -1},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DegradationPolicy(**kwargs)

    def test_defaults_valid(self):
        policy = DegradationPolicy()
        assert policy.fallback_chain == ("nfa",)


class TestDemotion:
    def test_degradation_preserves_match_stream(self):
        data = _stream()
        reference = PatternSet(PATTERNS, engine="fused").scan(data)
        degraded_ps = PatternSet(
            PATTERNS, engine="fused", degradation=AGGRESSIVE
        )
        assert degraded_ps.scan(data) == reference
        assert degraded_ps.degradations  # something actually demoted

    def test_demotion_is_state_preserving(self):
        # Force the only demotion checkpoint to land mid-pattern: the
        # match straddles the chunk boundary at 256 bytes.
        pad = b"z" * 254
        data = pad + b"abbbc"
        ps = PatternSet(["ab{3}c"], engine="fused", degradation=AGGRESSIVE)
        matches = [(m.pattern_id, m.end) for m in ps.scan(data)]
        assert ps.degradations, "demotion did not trigger"
        assert matches == [(0, len(data) - 1)]

    def test_reports_marked_degraded(self):
        ps = PatternSet(PATTERNS, engine="fused", degradation=AGGRESSIVE)
        ps.scan(_stream(2048))
        demoted_ids = {event.pattern_id for event in ps.degradations}
        assert demoted_ids
        for report in ps.reports:
            if report.pattern_id in demoted_ids:
                assert report.status == "degraded"
                assert report.phase == "scan"

    def test_max_demotions_honoured(self):
        policy = DegradationPolicy(
            check_bytes=256,
            min_window=64,
            min_hit_rate=1.0,
            min_states_for_width=1,
            max_active_fraction=0.01,
            max_demotions=1,
        )
        ps = PatternSet(PATTERNS, engine="fused", degradation=policy)
        ps.scan(_stream())
        assert len(ps.degradations) == 1

    def test_no_policy_never_degrades(self):
        ps = PatternSet(PATTERNS, engine="fused")
        ps.scan(_stream())
        assert ps.degradations == []

    def test_degraded_set_keeps_streaming(self):
        ps = PatternSet(["ab{3}c", "xy"], engine="fused",
                        degradation=AGGRESSIVE)
        ps.scan(_stream(1024))
        assert ps.degradations
        ps.reset()
        first = ps.feed(b"zab")
        second = ps.feed(b"bbc xy")
        assert first == []
        assert [(m.pattern_id, m.end) for m in second] == [(0, 2), (1, 5)]

    def test_cache_thrash_reason_possible(self):
        # A tiny cache plus random input forces misses once full.
        policy = DegradationPolicy(
            check_bytes=256, min_window=16, min_hit_rate=1.0
        )
        ps = PatternSet(PATTERNS, engine="fused", degradation=policy)
        ps._fused._cache_size = 4  # force permanent thrash
        ps.scan(_stream(4096))
        reasons = {event.reason for event in ps.degradations}
        assert reasons <= {"cache_thrash", "wide_active"}
        assert "cache_thrash" in reasons

    def test_telemetry_counts_degradations(self):
        with telemetry.session():
            ps = PatternSet(PATTERNS, engine="fused", degradation=AGGRESSIVE)
            ps.scan(_stream(2048))
            snap = telemetry.snapshot()
        assert snap["counters"].get("scan.degraded", 0) == len(ps.degradations)
        assert ps.degradations
